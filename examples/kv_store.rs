//! A GPU-accelerated key-value store serving a mixed OLTP-style workload —
//! the "KV-stores with update/lookup intense workloads" use case the
//! paper's conclusion names. String keys (user ids), a 90/10 read/write
//! mix, duplicate writes within batches, and periodic deletes.
//!
//! ```text
//! cargo run -p cuart-examples --release --bin kv_store
//! ```

use cuart::update::status;
use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_workloads::{QueryStream, UpdateStream};

fn user_key(id: u64) -> Vec<u8> {
    // 24-byte string keys, e.g. "user:00000000000000001234" -> Leaf32 class.
    format!("user:{id:019}").into_bytes()
}

fn main() {
    // Populate the store.
    let n_users = 200_000u64;
    let mut art = Art::new();
    for id in 0..n_users {
        art.insert(&user_key(id), 1000 + id).unwrap();
    }
    let index = CuartIndex::build(&art, &CuartConfig::default());
    println!(
        "kv-store: {} users, {:.1} MiB on device",
        index.len(),
        index.device_bytes() as f64 / (1 << 20) as f64
    );

    let keys: Vec<Vec<u8>> = (0..n_users).map(user_key).collect();
    let dev = devices::a100();
    let mut session = index.device_session(&dev);
    let mut reads = QueryStream::new(keys.clone(), 0.95, 1);
    let mut writes = UpdateStream::new(keys, 0.05, 0.1, 2);

    let batch = 8192;
    let rounds = 20;
    let mut kernel_ns = 0.0;
    let mut total_reads = 0usize;
    let mut total_hits = 0usize;
    let (mut applied, mut superseded, mut missed) = (0usize, 0usize, 0usize);
    for round in 0..rounds {
        // 90% read batches, every 10th round is a write batch.
        if round % 10 == 9 {
            let ops = writes.next_batch(batch, DELETE);
            let (statuses, rep) = session.update_batch(&ops).unwrap();
            kernel_ns += rep.time_ns;
            for s in statuses {
                match s {
                    status::APPLIED => applied += 1,
                    status::SUPERSEDED => superseded += 1,
                    _ => missed += 1,
                }
            }
        } else {
            let queries = reads.next_batch(batch);
            let (results, rep) = session.lookup_batch(&queries).unwrap();
            kernel_ns += rep.time_ns;
            total_reads += results.len();
            total_hits += results.iter().filter(|&&r| r != NOT_FOUND).count();
        }
    }
    println!(
        "served {total_reads} reads ({:.1}% hits), writes: {applied} applied / {superseded} superseded / {missed} missed",
        100.0 * total_hits as f64 / total_reads.max(1) as f64
    );
    println!(
        "modeled device time: {:.2} ms for {} ops ({:.1} MOps/s kernel-side)",
        kernel_ns / 1e6,
        rounds * batch,
        (rounds * batch) as f64 / kernel_ns * 1000.0
    );

    // A point read after the storm, proving coherence.
    let probe = user_key(123);
    let (r, _) = session.lookup_batch(std::slice::from_ref(&probe)).unwrap();
    println!(
        "final state of {:?}: {:?}",
        String::from_utf8_lossy(&probe),
        (r[0] != NOT_FOUND).then_some(r[0])
    );
}
