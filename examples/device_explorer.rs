//! Memory-architecture what-if explorer (§4.6).
//!
//! Runs the same CuART and GRT lookup batch on the three paper GPUs and on
//! a hypothetical "HBM2 at GDDR6X command clock" device, showing that the
//! paper's HBM-vs-GDDR argument is about the **command clock**, not the
//! memory technology label.
//!
//! ```text
//! cargo run -p cuart-examples --release --bin device_explorer
//! ```

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::{devices, DeviceConfig};
use cuart_grt::GrtIndex;
use cuart_workloads::uniform_keys;

fn main() {
    let n = 300_000;
    let keys = uniform_keys(n, 32, 7);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64).unwrap();
    }
    let cuart = CuartIndex::build(&art, &CuartConfig::default());
    let grt = GrtIndex::build(&art);
    let probes = keys[..16384].to_vec();

    let mut lineup: Vec<DeviceConfig> = devices::all();
    // The what-if: A100's HBM2 channels driven at the 3090's command clock.
    let mut hypothetical = devices::a100();
    hypothetical.name = "A100 what-if (HBM2 @ 2500 MHz cmd clock)";
    hypothetical.mem.command_clock_mhz = 2500.0;
    lineup.push(hypothetical);

    println!(
        "{:<42} {:>10} {:>10} {:>8} {:>14}",
        "device", "CuART µs", "GRT µs", "ratio", "rand MT/s"
    );
    for mut dev in lineup {
        // Scale L2 so the mid-tree levels miss (figure-harness rule).
        dev.l2.size_bytes = (dev.l2.size_bytes / 64).max(32 << 10);
        let (_, cu) = cuart.lookup_batch_device(&dev, &probes, 32);
        let (_, gr) = grt.lookup_batch_device(&dev, &probes, 32);
        println!(
            "{:<42} {:>10.1} {:>10.1} {:>8.2} {:>14.0}",
            dev.name,
            cu.time_ns / 1000.0,
            gr.time_ns / 1000.0,
            gr.time_ns / cu.time_ns,
            dev.mem.random_rate_per_ns() * 1000.0
        );
    }
    println!(
        "\nPeak bandwidths (GB/s): A100 {:.0}, RTX 3090 {:.0}, GTX 1070 {:.0} — \
         yet random-access rate, not peak bandwidth, decides this workload (§4.6).",
        devices::a100().mem.peak_bandwidth_gbps(),
        devices::rtx3090().mem.peak_bandwidth_gbps(),
        devices::gtx1070().mem.peak_bandwidth_gbps()
    );
}
