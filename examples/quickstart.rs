//! Quickstart: build a CuART index, run lookups on the CPU engine and on a
//! simulated GPU, update values, delete a key.
//!
//! ```text
//! cargo run -p cuart-examples --release --bin quickstart
//! ```

use cuart::update::status;
use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;

fn main() {
    // 1. Build the classic pointer-based ART (the host-side structure).
    let mut art = Art::new();
    for i in 0..100_000u64 {
        art.insert(&i.to_be_bytes(), i * 10).unwrap();
    }
    let stats = art.stats();
    println!(
        "ART built: {} keys, {} inner nodes (N4:{} N16:{} N48:{} N256:{}), max depth {}",
        art.len(),
        stats.inner_nodes(),
        stats.nodes[0],
        stats.nodes[1],
        stats.nodes[2],
        stats.nodes[3],
        stats.max_depth
    );

    // 2. Map it into the CuART structure of buffers (§3.2 of the paper).
    let index = CuartIndex::build(&art, &CuartConfig::default());
    println!(
        "CuART mapped: {:.1} MiB device memory (incl. the 128 MiB compacted-root LUT)",
        index.device_bytes() as f64 / (1 << 20) as f64
    );

    // 3. CPU-engine lookups (the fast path of Figure 7).
    assert_eq!(index.lookup_cpu(&42u64.to_be_bytes()), Some(420));
    assert_eq!(index.lookup_cpu(&999_999_999u64.to_be_bytes()), None);
    println!(
        "CPU engine: key 42 -> {:?}",
        index.lookup_cpu(&42u64.to_be_bytes())
    );

    // 4. Batch lookups on a simulated RTX 3090.
    let dev = devices::rtx3090();
    let mut session = index.device_session(&dev);
    let queries: Vec<Vec<u8>> = (0..32_768u64)
        .map(|i| (i * 3).to_be_bytes().to_vec())
        .collect();
    let (results, report) = session.lookup_batch(&queries).unwrap();
    let hits = results.iter().filter(|&&r| r != NOT_FOUND).count();
    println!(
        "GPU batch: {} queries, {} hits, modeled kernel time {:.1} µs \
         ({} DRAM transactions, {:.0}% L2 hits)",
        queries.len(),
        hits,
        report.time_ns / 1000.0,
        report.dram_transactions,
        100.0 * report.l2_hits as f64 / report.sectors.max(1) as f64
    );

    // 5. Batch updates through the two-stage kernel (§3.4), including a
    //    duplicate (highest thread id wins) and a delete.
    let ops = vec![
        (7u64.to_be_bytes().to_vec(), 1111),
        (7u64.to_be_bytes().to_vec(), 2222), // wins over the 1111
        (13u64.to_be_bytes().to_vec(), DELETE),
    ];
    let (statuses, _) = session.update_batch(&ops).unwrap();
    assert_eq!(
        statuses,
        vec![status::SUPERSEDED, status::APPLIED, status::APPLIED]
    );
    let (check, _) = session
        .lookup_batch(&[7u64.to_be_bytes().to_vec(), 13u64.to_be_bytes().to_vec()])
        .unwrap();
    println!(
        "after update: key 7 -> {}, key 13 -> deleted ({})",
        check[0], check[1]
    );
    assert_eq!(check[0], 2222);
    assert_eq!(check[1], NOT_FOUND);
    println!(
        "freed leaf slots: {}",
        session.free_count(cuart::link::LinkType::Leaf8)
    );
}
