//! Metrics monitoring with string keys — the paper's conclusion names
//! "tracking and aggregating metrics with string-based keys, as done e.g.
//! by monitoring software" as a CuART use case: update/lookup-intense,
//! with *new* series appearing continuously (exercising the §5.1
//! device-side insert engine).
//!
//! ```text
//! cargo run -p cuart-examples --release --bin metrics_monitor
//! ```

use cuart::insert::insert_status;
use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;

/// A metric series key: "host.metric" padded into the 32-byte device max.
fn series_key(host: u32, metric: &str) -> Vec<u8> {
    let mut k = format!("h{host:04}.{metric}").into_bytes();
    k.truncate(32);
    k
}

const METRICS: &[&str] = &["cpu.user", "cpu.sys", "mem.rss", "net.rx", "net.tx", "disk.io"];

fn main() {
    // Bootstrap: 500 hosts × 6 metrics already known at map time.
    let mut art = Art::new();
    for host in 0..500 {
        for m in METRICS {
            art.insert(&series_key(host, m), 0).unwrap();
        }
    }
    let index = CuartIndex::build(&art, &CuartConfig::default());
    let dev = devices::rtx3090();
    let mut session = index.device_session(&dev);
    println!(
        "metrics store: {} series mapped, {:.1} MiB device memory",
        index.len(),
        index.device_bytes() as f64 / (1 << 20) as f64
    );

    let mut scrape_ns = 0.0;
    let mut new_series = 0usize;
    let mut spilled = 0usize;
    for round in 0..10u64 {
        // Each scrape updates every known series' latest value...
        let updates: Vec<(Vec<u8>, u64)> = (0..500)
            .flat_map(|h| {
                METRICS
                    .iter()
                    .map(move |m| (series_key(h, m), (h as u64) * 100 + round))
            })
            .collect();
        let (_, rep) = session.update_batch(&updates);
        scrape_ns += rep.time_ns;
        // ...and 20 freshly deployed hosts appear per round (inserts).
        let fresh: Vec<(Vec<u8>, u64)> = (0..20)
            .flat_map(|i| {
                let host = 1000 + round as u32 * 20 + i;
                METRICS.iter().map(move |m| (series_key(host, m), round))
            })
            .collect();
        let (statuses, rep) = session.insert_batch(&fresh);
        scrape_ns += rep.time_ns;
        new_series += statuses.iter().filter(|&&s| s == insert_status::INSERTED).count();
        spilled += statuses.iter().filter(|&&s| s == insert_status::SPILLED).count();
    }
    println!(
        "10 scrape rounds: {:.2} ms modeled device time, {} series inserted on-device, \
         {} spilled to host overflow",
        scrape_ns / 1e6,
        new_series,
        spilled
    );

    // Dashboards read back mixed old/new series.
    let probes = vec![
        series_key(42, "cpu.user"),       // bootstrap series
        series_key(1005, "mem.rss"),      // inserted series
        series_key(9999, "cpu.user"),     // never existed
    ];
    let (values, _) = session.lookup_batch(&probes);
    println!("h0042.cpu.user = {}", values[0]);
    println!("h1005.mem.rss  = {}", values[1]);
    assert_ne!(values[0], NOT_FOUND);
    assert_ne!(values[1], NOT_FOUND);
    assert_eq!(values[2], NOT_FOUND);
    println!("h9999.cpu.user = (absent, as expected)");
    println!("host overflow table holds {} series", session.overflow_len());
}
