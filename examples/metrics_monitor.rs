//! Metrics monitoring with string keys — the paper's conclusion names
//! "tracking and aggregating metrics with string-based keys, as done e.g.
//! by monitoring software" as a CuART use case: update/lookup-intense,
//! with *new* series appearing continuously (exercising the §5.1
//! device-side insert engine).
//!
//! This example is itself monitored: instead of hand-rolled counters it
//! attaches a [`Telemetry`] registry to the index and reads everything —
//! scrape time, inserts, host spills, claim conflicts — back out of the
//! snapshot, finishing with a Prometheus-style scrape of the store.
//!
//! ```text
//! cargo run -p cuart-examples --release --bin metrics_monitor
//! ```

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_telemetry::{names, BatchKind, Telemetry};
use std::sync::Arc;

/// A metric series key: "host.metric" padded into the 32-byte device max.
fn series_key(host: u32, metric: &str) -> Vec<u8> {
    let mut k = format!("h{host:04}.{metric}").into_bytes();
    k.truncate(32);
    k
}

const METRICS: &[&str] = &[
    "cpu.user", "cpu.sys", "mem.rss", "net.rx", "net.tx", "disk.io",
];

fn main() {
    // Bootstrap: 500 hosts × 6 metrics already known at map time.
    let mut art = Art::new();
    for host in 0..500 {
        for m in METRICS {
            art.insert(&series_key(host, m), 0).unwrap();
        }
    }
    let telemetry = Arc::new(Telemetry::new());
    let index = CuartIndex::build(&art, &CuartConfig::default()).with_telemetry(telemetry.clone());
    let dev = devices::rtx3090();
    let mut session = index.device_session(&dev);
    println!(
        "metrics store: {} series mapped, {:.1} MiB device memory",
        index.len(),
        index.device_bytes() as f64 / (1 << 20) as f64
    );
    if !telemetry.is_enabled() {
        eprintln!("note: built without the `telemetry` feature; snapshots will be empty");
    }

    for round in 0..10u64 {
        // Each scrape updates every known series' latest value...
        let updates: Vec<(Vec<u8>, u64)> = (0..500)
            .flat_map(|h| {
                METRICS
                    .iter()
                    .map(move |m| (series_key(h, m), (h as u64) * 100 + round))
            })
            .collect();
        session.update_batch(&updates).unwrap();
        // ...and 20 freshly deployed hosts appear per round (inserts).
        let fresh: Vec<(Vec<u8>, u64)> = (0..20)
            .flat_map(|i| {
                let host = 1000 + round as u32 * 20 + i;
                METRICS.iter().map(move |m| (series_key(host, m), round))
            })
            .collect();
        session.insert_batch(&fresh).unwrap();
    }

    // Everything the old hand-rolled counters tracked now comes out of the
    // telemetry snapshot — plus cache and conflict data nobody wired up.
    let snap = telemetry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    let scrape_ns: u64 = [names::UPDATE_KERNEL_NS, names::INSERT_KERNEL_NS]
        .iter()
        .filter_map(|n| snap.histograms.get(*n))
        .map(|h| h.sum)
        .sum();
    println!(
        "10 scrape rounds: {:.2} ms modeled device time, {} series inserted on-device, \
         {} spilled to host overflow, {} claim conflicts",
        scrape_ns as f64 / 1e6,
        counter(names::INSERT_KEYS) - counter(names::INSERT_HOST_SPILLS),
        counter(names::INSERT_HOST_SPILLS),
        counter(names::CLAIM_CONFLICTS),
    );
    let update_batches = counter(names::UPDATE_BATCHES);
    let insert_batches = counter(names::INSERT_BATCHES);
    println!(
        "event trace: {} events captured ({update_batches} update / {insert_batches} insert batches)",
        snap.events.len()
    );
    if let Some(last_insert) = snap
        .events
        .iter()
        .rev()
        .find(|e| e.kind == BatchKind::Insert)
    {
        println!(
            "last insert batch: {} keys, {} free-list refills, {} DRAM transactions",
            last_insert.keys, last_insert.freelist_refills, last_insert.dram_transactions
        );
    }

    // Dashboards read back mixed old/new series.
    let probes = vec![
        series_key(42, "cpu.user"),   // bootstrap series
        series_key(1005, "mem.rss"),  // inserted series
        series_key(9999, "cpu.user"), // never existed
    ];
    let (values, _) = session.lookup_batch(&probes).unwrap();
    println!("h0042.cpu.user = {}", values[0]);
    println!("h1005.mem.rss  = {}", values[1]);
    assert_ne!(values[0], NOT_FOUND);
    assert_ne!(values[1], NOT_FOUND);
    assert_eq!(values[2], NOT_FOUND);
    println!("h9999.cpu.user = (absent, as expected)");
    println!(
        "host overflow table holds {} series",
        session.overflow_len()
    );

    // And because this *is* monitoring software: expose ourselves.
    println!("\n--- prometheus scrape of the store itself (excerpt) ---");
    for line in telemetry
        .snapshot()
        .to_prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(12)
    {
        println!("{line}");
    }
}
