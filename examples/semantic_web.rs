//! Semantic-web indexing with long keys — the workload §3.2.3 motivates
//! ("the need for handling keys longer than the CuART maximum can arise in
//! some specific workloads such as semantic web indexing").
//!
//! Builds an index over BTC-like RDF terms where a fraction of keys exceed
//! the 32-byte device maximum, and compares the three long-key policies:
//! CPU routing (option 1), host-leaf links (option 2) and dynamic leaves
//! (option 3).
//!
//! ```text
//! cargo run -p cuart-examples --release --bin semantic_web
//! ```

use cuart::{CuartConfig, CuartIndex, LongKeyPolicy};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_host::gpu_runner::{run_cuart_lookups, RunConfig};
use cuart_host::hybrid::{hybrid_throughput, CPU_LONG_KEY_NS};
use cuart_workloads::{btc_keys, QueryStream};

fn main() {
    // RDF terms: 32-byte BTC keys plus 5% long IRIs (64 bytes).
    let mut keys = btc_keys(80_000, 1);
    for (i, k) in keys.iter_mut().enumerate() {
        if i % 20 == 0 {
            k.extend_from_slice(format!("/fragment#{i:027}").as_bytes());
            assert!(k.len() > 32);
        }
    }
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let long_count = keys.iter().filter(|k| k.len() > 32).count();
    println!(
        "RDF term index: {} keys, {} long (> 32 B, {:.1}%)",
        keys.len(),
        long_count,
        100.0 * long_count as f64 / keys.len() as f64
    );

    let dev = devices::a100();
    for policy in [
        LongKeyPolicy::CpuRoute,
        LongKeyPolicy::HostLeafLink,
        LongKeyPolicy::DynamicLeaf,
    ] {
        let cfg = CuartConfig {
            long_key_policy: policy,
            ..CuartConfig::default()
        };
        let index = CuartIndex::build(&art, &cfg);
        let mut session = index.device_session(&dev);
        let probes: Vec<Vec<u8>> = keys.iter().take(8192).cloned().collect();
        let (results, report) = session.lookup_batch(&probes).unwrap();
        let correct = probes
            .iter()
            .zip(&results)
            .filter(|(k, &r)| {
                let want = art.get(k).copied().unwrap_or(NOT_FOUND);
                r == want
            })
            .count();
        println!(
            "{policy:?}: {}/{} correct, host-side entries {}, device {:.1} MiB, kernel {:.1} µs",
            correct,
            probes.len(),
            index.buffers().host_entries(),
            index.device_bytes() as f64 / (1 << 20) as f64,
            report.time_ns / 1e3
        );
        assert_eq!(correct, probes.len());
    }

    // The Figure 13 consequence for CpuRoute: long-key fraction sets the pace.
    let cfg_idx = CuartConfig::default();
    let short_only: Vec<Vec<u8>> = keys.iter().filter(|k| k.len() <= 32).cloned().collect();
    let mut short_art = Art::new();
    for (i, k) in short_only.iter().enumerate() {
        short_art.insert(k, i as u64 + 1).unwrap();
    }
    let index = CuartIndex::build(&short_art, &cfg_idx);
    let mut qs = QueryStream::new(short_only, 1.0, 2);
    let run_cfg = RunConfig {
        batch_size: 8192,
        total_queries: 1 << 17,
        sample_batches: 2,
        ..RunConfig::default()
    };
    let gpu = run_cuart_lookups(&index, &dev, &run_cfg, &mut qs);
    println!("\nhybrid throughput as the long-key share grows (56 CPU threads):");
    for pct in [0.0, 1.0, 3.0, 5.0, 10.0] {
        let h = hybrid_throughput(&gpu, run_cfg.batch_size, pct / 100.0, 56, CPU_LONG_KEY_NS);
        println!(
            "  {pct:>4.1}% long keys -> {:>7.1} MOps/s{}",
            h.mops,
            if h.cpu_bound { "  (CPU-bound)" } else { "" }
        );
    }
}
