//! Analytical range and prefix queries over the ordered leaf buffers —
//! the "traditional database index well-suited for point, range and prefix
//! queries" use case of the paper's conclusion. Demonstrates §3.2.1's
//! claim that a range result is just (start, end) indices per leaf buffer.
//!
//! ```text
//! cargo run -p cuart-examples --release --bin range_scan
//! ```

use cuart::range::{materialize_span, range_query, range_spans};
use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;

/// Composite key: (date string, order id) — a typical order-table index.
fn order_key(day: u32, order: u32) -> Vec<u8> {
    format!(
        "2026-{:02}-{:02}#{order:08}",
        1 + (day / 28) % 12,
        1 + day % 28
    )
    .into_bytes()
}

fn main() {
    let mut art = Art::new();
    let mut total = 0u64;
    for day in 0..336u32 {
        for order in 0..300u32 {
            art.insert(&order_key(day, order), (day * 1000 + order) as u64)
                .unwrap();
            total += 1;
        }
    }
    let index = CuartIndex::build(&art, &CuartConfig::default());
    println!(
        "order index: {total} composite keys ({} on device)",
        index.len()
    );

    // Range query: all orders of one calendar day.
    let lo = b"2026-03-01#00000000".to_vec();
    let hi = b"2026-03-01#99999999".to_vec();
    let spans = range_spans(index.buffers(), &lo, &hi);
    for span in &spans {
        if !span.is_empty() {
            println!(
                "  span in {:?}: leaves [{}, {}) — transmitted as two indices (§3.2.1)",
                span.class, span.start, span.end
            );
        }
    }
    let day_orders: Vec<(Vec<u8>, u64)> = spans
        .iter()
        .flat_map(|s| materialize_span(index.buffers(), s))
        .collect();
    println!("  2026-03-01 has {} orders", day_orders.len());
    assert_eq!(day_orders.len(), 300); // each calendar day holds 300 orders

    // Cross-check against the pointer-based ART's range scan.
    let want = art.range(&lo, &hi).count();
    let got = range_query(index.buffers(), &lo, &hi).len();
    assert_eq!(got, want);
    println!("  matches the classic ART range scan: {got} rows");

    // Prefix scan: a whole month, via the ART API.
    let march: Vec<_> = art.scan_prefix(b"2026-03-").collect();
    println!("  2026-03 has {} orders (prefix scan)", march.len());

    // Point query mixed in, same index.
    let key = order_key(60, 5);
    println!(
        "  point lookup {:?} -> {:?}",
        String::from_utf8_lossy(&key),
        index.lookup_cpu(&key)
    );
    assert_eq!(index.lookup_cpu(&key), art.get(&key).copied());
}
