//! Fault drill — exercise the session's retry → degrade → recover loop
//! end to end, with a correctness oracle riding along.
//!
//! A deterministic [`FaultInjector`] shadows every device leg: 5 % of
//! device ops fail at random (seeded), plus one scheduled burst long
//! enough to exhaust the retry budget and force a degradation. The
//! session keeps serving through all of it — retried batches on the
//! device, degraded batches on the CPU path — and every lookup is checked
//! against a plain `BTreeMap` oracle. At the end the index is snapshotted,
//! verified, and a deliberately corrupted copy is shown to be rejected.
//!
//! ```text
//! cargo run -p cuart-examples --features faults --bin fault_drill
//! ```
//!
//! Built *without* `--features faults` the injector is inert and the
//! drill degenerates into a plain (still correct) session run.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::{devices, FaultConfig, FaultInjector};
use cuart_telemetry::{names, BatchKind, Telemetry};
use std::collections::BTreeMap;
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    format!("drill-key-{i:08}").into_bytes()
}

fn main() {
    // 20k keys, values = key index.
    let mut art = Art::new();
    let mut oracle: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for i in 0..20_000u64 {
        art.insert(&key(i), i).unwrap();
        oracle.insert(key(i), i);
    }
    let telemetry = Arc::new(Telemetry::new());
    let index = CuartIndex::build(&art, &CuartConfig::default()).with_telemetry(telemetry.clone());
    let dev = devices::rtx3090();

    if !FaultInjector::is_active() {
        eprintln!("note: built without the `faults` feature; the injector will never fire");
    }
    // 5 % per-op fault rate, plus a scheduled 16-op burst: 16 consecutive
    // failing device ops comfortably exhaust the default 4-attempt retry
    // budget, so the drill is guaranteed to visit the degraded state no
    // matter how the random rolls land.
    let injector = FaultInjector::new(FaultConfig::uniform(0xD1A7, 0.05).fail_range(24, 40));
    let mut session = index.device_session_with_faults(&dev, injector);
    println!(
        "fault drill: {} keys on {}, 5% fault rate + one 16-op burst, retry budget {}",
        index.len(),
        dev.name,
        session.retry_policy().max_attempts
    );

    let mut wrong = 0usize;
    for round in 0..24u64 {
        // Mutate a rotating slice of the key space...
        let updates: Vec<(Vec<u8>, u64)> = (0..512u64)
            .map(|i| {
                let k = (round * 512 + i) % 20_000;
                (key(k), 1_000_000 + round * 10 + k)
            })
            .collect();
        let (_, _) = session.update_batch(&updates).unwrap();
        for (k, v) in &updates {
            oracle.insert(k.clone(), *v);
        }
        // ...then read a mix of touched and untouched keys back.
        let probes: Vec<Vec<u8>> = (0..1024u64)
            .map(|i| key((i * 37 + round) % 20_000))
            .collect();
        let (values, _) = session.lookup_batch(&probes).unwrap();
        for (probe, got) in probes.iter().zip(&values) {
            let want = oracle.get(probe).copied().unwrap_or(NOT_FOUND);
            if *got != want {
                wrong += 1;
            }
        }
        let s = session.fault_stats();
        if round % 6 == 0 || s.degraded {
            println!(
                "round {round:>2}: {} faults, {} retries, {} degradations, {} recoveries{}",
                s.injected,
                s.retries,
                s.degradations,
                s.recoveries,
                if s.degraded {
                    "  [degraded: CPU path]"
                } else {
                    ""
                }
            );
        }
    }

    let stats = session.fault_stats();
    println!(
        "\ndrill done: {} faults injected, {} retried legs, {} degradations, {} recoveries",
        stats.injected, stats.retries, stats.degradations, stats.recoveries
    );
    println!(
        "correctness: {wrong} wrong lookups out of {} (oracle-checked)",
        24 * 1024
    );
    assert_eq!(wrong, 0, "fault handling must never corrupt results");
    if FaultInjector::is_active() {
        assert!(stats.retries > 0, "the drill should have retried");
        assert!(stats.degradations > 0, "the burst should have degraded");
        assert!(stats.recoveries > 0, "a later batch should have recovered");
    }

    // The same story, as telemetry.
    let snap = telemetry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    println!(
        "telemetry: {} cpu-fallback batches covering {} keys, {} ns modeled backoff",
        counter(names::FAULT_CPU_FALLBACK_BATCHES),
        counter(names::FAULT_CPU_FALLBACK_KEYS),
        snap.histograms
            .get(names::FAULT_BACKOFF_NS)
            .map(|h| h.sum)
            .unwrap_or(0),
    );
    let transitions: Vec<&str> = snap
        .events
        .iter()
        .filter_map(|e| match e.kind {
            BatchKind::Degraded => Some("degraded"),
            BatchKind::Recovered => Some("recovered"),
            _ => None,
        })
        .collect();
    println!("state transitions: {}", transitions.join(" -> "));

    // Crash-safe persistence: snapshot, verify, then prove a corrupted
    // copy cannot sneak back in.
    let dir = std::env::temp_dir().join(format!("cuart-fault-drill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drill.cuart");
    index.save(&path).unwrap();
    let info = cuart::persist::verify_snapshot(&path).unwrap();
    println!(
        "\nsnapshot: {} bytes, format v{}, {} sections CRC-verified, {} keys",
        info.file_bytes, info.version, info.sections, info.entries
    );
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // single bit flip
    let bad = dir.join("drill-corrupt.cuart");
    std::fs::write(&bad, &bytes).unwrap();
    match CuartIndex::load(&bad) {
        Err(e) => println!("corrupted copy rejected: {e}"),
        Ok(_) => panic!("bit-flipped snapshot must not load"),
    }
    std::fs::remove_dir_all(&dir).ok();
    println!("\nservice never stopped; no batch returned a wrong answer.");
}
