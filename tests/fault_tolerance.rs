//! Fault-tolerance integration suite: the retry → degrade → recover
//! session loop under a deterministic device-fault injector, checked
//! against a `BTreeMap` oracle at every step.
//!
//! The suite is feature-aware: without `--features faults` the injector
//! is inert (every check compiles to `Ok`), so the tests still run the
//! full session workload and verify correctness — they just skip the
//! assertions that require faults to actually fire. CI runs both builds.

use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::{devices, FaultConfig, FaultInjector};
use cuart_telemetry::{names, BatchKind, Telemetry};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn key(i: u64) -> Vec<u8> {
    format!("ft-{i:07}").into_bytes()
}

/// Build an index over `n` keys (value = key index) plus a matching oracle.
fn build(n: u64) -> (Art<u64>, BTreeMap<Vec<u8>, u64>) {
    let mut art = Art::new();
    let mut oracle = BTreeMap::new();
    for i in 0..n {
        art.insert(&key(i), i).unwrap();
        oracle.insert(key(i), i);
    }
    (art, oracle)
}

/// Drive `rounds` mixed batches (updates, deletes, inserts, lookups)
/// through `session`, mirroring every mutation into `oracle` and
/// checking every lookup against it. Returns the number of wrong
/// lookups (must be 0).
fn drive_rounds(
    session: &mut cuart::CuartSession<'_>,
    oracle: &mut BTreeMap<Vec<u8>, u64>,
    n: u64,
    rounds: u64,
) -> usize {
    let mut wrong = 0;
    for round in 0..rounds {
        // Updates over a rotating window, every 7th op a delete.
        let updates: Vec<(Vec<u8>, u64)> = (0..128u64)
            .map(|i| {
                let k = (round * 128 + i) % n;
                let v = if i % 7 == 3 { DELETE } else { round * 1000 + i };
                (key(k), v)
            })
            .collect();
        session.update_batch(&updates).unwrap();
        for (k, v) in &updates {
            if *v == DELETE {
                oracle.remove(k);
            } else {
                oracle.insert(k.clone(), *v);
            }
        }
        // Fresh inserts beyond the mapped key space.
        let fresh: Vec<(Vec<u8>, u64)> = (0..16u64)
            .map(|i| (key(n + round * 16 + i), 7_000_000 + round * 16 + i))
            .collect();
        session.insert_batch(&fresh).unwrap();
        for (k, v) in &fresh {
            oracle.insert(k.clone(), *v);
        }
        // Lookups across stored, deleted, inserted and absent keys.
        let probes: Vec<Vec<u8>> = (0..256u64)
            .map(|i| key((i * 31 + round * 17) % (n + rounds * 16 + 50)))
            .collect();
        let (values, _) = session.lookup_batch(&probes).unwrap();
        for (probe, got) in probes.iter().zip(&values) {
            let want = oracle.get(probe).copied().unwrap_or(NOT_FOUND);
            if *got != want {
                wrong += 1;
            }
        }
    }
    wrong
}

/// The acceptance drill: a 5 % per-op fault rate plus one scheduled
/// burst long enough to exhaust the retry budget. The session must
/// complete every batch with zero wrong lookups, retry at least once,
/// degrade at least once and recover at least once — and the telemetry
/// trace must show the Degraded → Recovered transition.
#[test]
fn five_percent_fault_rate_never_corrupts_and_recovers() {
    let n = 6_000;
    let (art, mut oracle) = build(n);
    let telemetry = Arc::new(Telemetry::new());
    let index =
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(telemetry.clone());
    let dev = devices::rtx3090();
    // The burst at ops [30, 46) covers 16 consecutive device ops — more
    // than the default 4-attempt budget can absorb.
    let injector = FaultInjector::new(FaultConfig::uniform(0x5EED, 0.05).fail_range(30, 46));
    let mut session = index.device_session_with_faults(&dev, injector);

    let wrong = drive_rounds(&mut session, &mut oracle, n, 20);
    assert_eq!(wrong, 0, "fault handling returned wrong lookup results");

    if !FaultInjector::is_active() {
        return; // injector inert without --features faults
    }
    let stats = session.fault_stats();
    assert!(stats.injected > 0, "5% rate should have fired");
    assert!(
        stats.retries > 0,
        "transient faults should have been retried"
    );
    assert!(stats.degradations >= 1, "the burst should have degraded");
    assert!(stats.recoveries >= 1, "a later batch should have recovered");

    let snap = telemetry.snapshot();
    assert!(snap.counters[names::FAULTS_INJECTED] > 0);
    assert!(snap.counters[names::FAULT_RETRIES] > 0);
    let kinds: Vec<BatchKind> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, BatchKind::Degraded | BatchKind::Recovered))
        .map(|e| e.kind)
        .collect();
    let first_degraded = kinds.iter().position(|k| *k == BatchKind::Degraded);
    let first_recovered = kinds.iter().position(|k| *k == BatchKind::Recovered);
    match (first_degraded, first_recovered) {
        (Some(d), Some(r)) => assert!(d < r, "Degraded must precede Recovered"),
        other => panic!("expected a Degraded -> Recovered transition, got {other:?}"),
    }
}

/// Even an injector that fails *every* device op must not take the
/// service down: the very first batch exhausts its retries, the session
/// degrades, and everything — lookups, updates, deletes, inserts — is
/// served correctly by the CPU path.
#[test]
fn total_device_loss_degrades_but_serves_correctly() {
    if !FaultInjector::is_active() {
        return;
    }
    let n = 2_000;
    let (art, mut oracle) = build(n);
    let index = CuartIndex::build(&art, &CuartConfig::for_tests());
    let dev = devices::gtx1070();
    let injector = FaultInjector::new(FaultConfig::uniform(1, 1.0));
    let mut session = index.device_session_with_faults(&dev, injector);

    let wrong = drive_rounds(&mut session, &mut oracle, n, 6);
    assert_eq!(wrong, 0);
    let stats = session.fault_stats();
    assert!(stats.degraded, "session must still be degraded");
    assert!(stats.recoveries == 0, "nothing can recover at rate 1.0");
    assert!(stats.degradations >= 1);
}

/// Identical seeds must replay identical fault schedules: the whole
/// drill — stats included — is deterministic.
#[test]
fn fault_schedules_replay_deterministically() {
    if !FaultInjector::is_active() {
        return;
    }
    let n = 1_500;
    let run = || {
        let (art, mut oracle) = build(n);
        let index = CuartIndex::build(&art, &CuartConfig::for_tests());
        let dev = devices::rtx3090();
        let injector = FaultInjector::new(FaultConfig::uniform(0xC0FFEE, 0.08));
        let mut session = index.device_session_with_faults(&dev, injector);
        let wrong = drive_rounds(&mut session, &mut oracle, n, 8);
        (wrong, session.fault_stats())
    };
    let (wrong_a, stats_a) = run();
    let (wrong_b, stats_b) = run();
    assert_eq!(wrong_a, 0);
    assert_eq!(wrong_b, 0);
    assert_eq!(stats_a, stats_b, "same seed must replay the same schedule");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: *no* seeded fault schedule — any seed, rates up to a
    /// brutal 30 %, plus a random scheduled burst — may ever corrupt the
    /// index. Post-run, every key agrees with the oracle, whether the
    /// session ended healthy, degraded, or somewhere in between.
    #[test]
    fn random_fault_schedules_never_corrupt_the_index(
        seed in any::<u64>(),
        rate_permille in 0u64..300,
        burst_start in 10u64..120,
        burst_len in 0u64..24,
    ) {
        let n = 1_200;
        let (art, mut oracle) = build(n);
        let index = CuartIndex::build(&art, &CuartConfig::for_tests());
        let dev = devices::rtx3090();
        let cfg = FaultConfig::uniform(seed, rate_permille as f64 / 1000.0)
            .fail_range(burst_start, burst_start + burst_len);
        let mut session = index.device_session_with_faults(&dev, FaultInjector::new(cfg));

        let wrong = drive_rounds(&mut session, &mut oracle, n, 6);
        prop_assert_eq!(wrong, 0, "schedule seed={} corrupted results", seed);

        // Final sweep: every oracle key readable, every deleted key gone.
        let probes: Vec<Vec<u8>> = (0..n + 200).map(key).collect();
        let (values, _) = session.lookup_batch(&probes).unwrap();
        for (probe, got) in probes.iter().zip(&values) {
            let want = oracle.get(probe).copied().unwrap_or(NOT_FOUND);
            prop_assert_eq!(*got, want, "final sweep mismatch (seed {})", seed);
        }
    }
}
