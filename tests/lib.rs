//! Integration-test support crate (tests live in the sibling files).
