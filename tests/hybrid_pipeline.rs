//! End-to-end hybrid pipeline: long keys answered by the host, short keys
//! by the (simulated) device, and the combined throughput model (§3.2.3
//! option 1, Figures 13/14).

use cuart::{CuartConfig, CuartIndex, LongKeyPolicy};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_grt::ApiProfile;
use cuart_grt::GrtIndex;
use cuart_host::gpu_runner::{run_cuart_lookups, run_grt_lookups, RunConfig};
use cuart_host::hybrid::{hybrid_throughput, CPU_LONG_KEY_NS};
use cuart_workloads::{long_key_mix, QueryStream};

fn mixed_index(n: usize, long_fraction: f64) -> (Art<u64>, CuartIndex, Vec<Vec<u8>>) {
    let keys = long_key_mix(n, 16, 48, long_fraction, 4242);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let cuart = CuartIndex::build(
        &art,
        &CuartConfig {
            lut_span: 2,
            long_key_policy: LongKeyPolicy::CpuRoute,
            multi_layer_nodes: false,
            single_leaf_class: false,
        },
    );
    (art, cuart, keys)
}

#[test]
fn session_routes_long_keys_correctly_end_to_end() {
    let (art, cuart, keys) = mixed_index(3000, 0.15);
    let mut session = cuart.device_session(&devices::a100());
    let (results, report) = session.lookup_batch(&keys).unwrap();
    for (k, got) in keys.iter().zip(&results) {
        assert_eq!(
            *got,
            art.get(k).copied().unwrap_or(NOT_FOUND),
            "key len {}",
            k.len()
        );
    }
    // The kernel only saw the short keys.
    assert!(report.threads <= keys.iter().filter(|k| k.len() <= 32).count());
    // Long keys really are host-resident, not device leaves.
    assert_eq!(
        cuart.buffers().host_leaves.len(),
        keys.iter().filter(|k| k.len() > 32).count()
    );
}

#[test]
fn throughput_drops_as_long_key_fraction_grows() {
    // Figure 13's mechanism, driven through the real GPU e2e report.
    let (art, cuart, keys) = mixed_index(60_000, 0.0);
    let _ = art;
    let dev = devices::a100();
    let cfg = RunConfig {
        batch_size: 4096,
        total_queries: 1 << 16,
        sample_batches: 2,
        ..RunConfig::default()
    };
    let mut qs = QueryStream::new(keys, 1.0, 7);
    let gpu = run_cuart_lookups(&cuart, &dev, &cfg, &mut qs);
    let mut last = f64::INFINITY;
    for frac in [0.0, 0.03, 0.10, 0.30] {
        let h = hybrid_throughput(&gpu, cfg.batch_size, frac, 56, CPU_LONG_KEY_NS);
        assert!(
            h.mops <= last + 1e-9,
            "throughput must not rise with CPU share"
        );
        last = h.mops;
    }
    // The collapse is severe: 30% on CPU costs > 2x overall.
    let h30 = hybrid_throughput(&gpu, cfg.batch_size, 0.30, 56, CPU_LONG_KEY_NS);
    assert!(h30.mops < gpu.mops / 2.0);
    assert!(h30.cpu_bound);
}

#[test]
fn all_gpu_engines_converge_when_cpu_bound() {
    // Figure 14: with a fixed CPU share, CuART / GRT-CUDA / GRT-OpenCL all
    // plateau at the CPU-leg level.
    let keys = cuart_workloads::uniform_keys(60_000, 16, 9);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
    let grt = GrtIndex::build(&art);
    let dev = devices::a100();
    let cfg = RunConfig {
        batch_size: 4096,
        total_queries: 1 << 16,
        sample_batches: 2,
        ..RunConfig::default()
    };
    let mut qs = QueryStream::new(keys.clone(), 1.0, 3);
    let cu = run_cuart_lookups(&cuart, &dev, &cfg, &mut qs);
    let mut qs = QueryStream::new(keys.clone(), 1.0, 3);
    let gc = run_grt_lookups(&grt, ApiProfile::Cuda, &dev, &cfg, &mut qs);
    let mut qs = QueryStream::new(keys, 1.0, 3);
    let go = run_grt_lookups(&grt, ApiProfile::OpenCl, &dev, &cfg, &mut qs);
    let hybrids: Vec<f64> = [&cu, &gc, &go]
        .iter()
        .map(|r| hybrid_throughput(r, cfg.batch_size, 0.20, 16, CPU_LONG_KEY_NS).mops)
        .collect();
    let spread = (hybrids.iter().copied().fold(0.0, f64::max)
        - hybrids.iter().copied().fold(f64::MAX, f64::min))
        / hybrids[0];
    assert!(
        spread < 0.10,
        "CPU-bound engines must converge: {hybrids:?}"
    );
}
