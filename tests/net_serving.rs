//! Loopback integration suite for the `cuart-net` serving subsystem.
//!
//! Five contracts are pinned here:
//!
//! 1. **Byte equivalence** — concurrent TCP clients spraying lookups
//!    through a [`ShardedScheduler`]-backed server get answers
//!    byte-identical to `CuartIndex::lookup_batch_cpu`.
//! 2. **Typed refusals** — queue-cap rejects, deadline sheds and (under
//!    `--features faults`) a breaker storm surface as typed error frames
//!    on a connection that stays usable; overload never drops a peer.
//! 3. **Hostile input** — bad magic, wrong version, CRC corruption,
//!    oversized and truncated frames each get an error frame (where the
//!    socket allows one) and cost at most that one connection.
//! 4. **No slot leaks** — a client that disconnects mid-flight leaves no
//!    resident ops behind: a full-queue-cap request still admits after
//!    the storm.
//! 5. **Drain ordering** — shutdown answers everything already admitted
//!    before closing, then the listener is really gone and the metrics
//!    spill shows the drained gauge.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_host::scheduler::{AdmissionPolicy, BreakerConfig, SchedulerConfig};
use cuart_host::sharded::ShardedScheduler;
use cuart_host::Scheduler;
use cuart_net::proto::{self, ErrorCode, Op, RespBody};
use cuart_net::{NetClient, NetError, NetServer, NetServerConfig};
use cuart_telemetry::{names, Telemetry};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Dense 8-byte keyed index: value = i * 3 + 1.
fn build_index(n: u64, telemetry: Option<&Arc<Telemetry>>) -> Arc<CuartIndex> {
    let mut art = Art::new();
    for i in 0..n {
        art.insert(&i.to_be_bytes(), i * 3 + 1).unwrap();
    }
    let mut index = CuartIndex::build(&art, &CuartConfig::for_tests());
    if let Some(t) = telemetry {
        index = index.with_telemetry(Arc::clone(t));
    }
    Arc::new(index)
}

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

fn listener() -> TcpListener {
    TcpListener::bind("127.0.0.1:0").expect("bind loopback")
}

/// splitmix64 for deterministic per-client key streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn concurrent_clients_match_the_cpu_engine_through_a_sharded_fleet() {
    let clients = 4u64;
    let (chunks, chunk) = if cfg!(debug_assertions) {
        (8u64, 512usize)
    } else {
        // ≥100k ops per client, ≥400k total over the fleet.
        (100u64, 1024usize)
    };
    let index = build_index(64 * 1024, None);
    let devs = [devices::rtx3090(), devices::gtx1070()];
    let cfg = SchedulerConfig {
        batch_target: 4 * 1024,
        deadline: Duration::from_micros(300),
        sort_batches: true,
        ..SchedulerConfig::default()
    };
    let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg).unwrap();
    let server = NetServer::serve_sharded(listener(), sharded, None, NetServerConfig::default())
        .expect("serve");
    let addr = server.local_addr();
    let stop = server.shutdown_handle();

    let mut handles = Vec::new();
    for p in 0..clients {
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            let mut conn = NetClient::connect(addr).expect("connect");
            let mut rng = p.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            let mut done = 0u64;
            for c in 0..chunks {
                // Mix of stored keys and (mostly missing) random ones.
                let keys: Vec<Vec<u8>> = (0..chunk)
                    .map(|_| {
                        let r = splitmix(&mut rng);
                        if r.is_multiple_of(2) {
                            key(r % (64 * 1024))
                        } else {
                            r.to_be_bytes().to_vec()
                        }
                    })
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = conn.lookup(keys).expect("serving fleet alive");
                assert_eq!(got, expect, "client {p} diverged in chunk {c}");
                done += chunk as u64;
            }
            done
        }));
    }
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, clients * chunks * chunk as u64);

    stop.shutdown();
    let report = server.join().expect("clean drain");
    assert_eq!(report.accepted, clients);
    assert_eq!(report.served_ops, total);
    assert_eq!(report.decode_errors, 0);
    let agg = report.sched.aggregate();
    assert_eq!(agg.ops_enqueued, total);
}

#[test]
fn updates_inserts_and_ranges_roundtrip_over_the_wire() {
    let index = build_index(4096, None);
    let sched = Scheduler::spawn(
        Arc::clone(&index),
        devices::gtx1070(),
        SchedulerConfig {
            batch_target: 256,
            deadline: Duration::from_micros(200),
            ..SchedulerConfig::default()
        },
    );
    let server =
        NetServer::serve_single(listener(), sched, None, NetServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = server.shutdown_handle();
    let mut conn = NetClient::connect(addr).unwrap();

    conn.ping().expect("ping");
    // Update an existing key, insert a brand-new one.
    let st = conn.update(vec![(key(100), 9999)]).unwrap();
    assert_eq!(st.len(), 1);
    let st = conn.insert(vec![(b"zz-new-key".to_vec(), 4242)]).unwrap();
    assert_eq!(st.len(), 1);
    // Point-read both back over the wire.
    assert_eq!(conn.lookup_one(key(100)).unwrap(), 9999);
    assert_eq!(conn.lookup_one(b"zz-new-key".to_vec()).unwrap(), 4242);
    // An inclusive range spanning the update sees the new value, in key
    // order; an inverted range is empty, not an error.
    let rows = conn
        .range(vec![(key(98), key(102)), (key(50), key(40))])
        .unwrap();
    assert_eq!(rows.len(), 2);
    let got: Vec<(Vec<u8>, u64)> = rows[0].clone();
    let expect: Vec<(Vec<u8>, u64)> = (98..=102)
        .map(|i| (key(i), if i == 100 { 9999 } else { i * 3 + 1 }))
        .collect();
    assert_eq!(got, expect);
    assert!(rows[1].is_empty());
    // Chunked batch helper: results concatenate in key order.
    let keys: Vec<Vec<u8>> = (0..300).map(key).collect();
    let expect: Vec<u64> = index
        .lookup_batch_cpu(&keys)
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            if i == 100 {
                9999
            } else {
                r.unwrap_or(NOT_FOUND)
            }
        })
        .collect();
    assert_eq!(conn.lookup_chunked(keys, 64).unwrap(), expect);

    stop.shutdown();
    let report = server.join().unwrap();
    assert_eq!(report.error_frames, 0);
}

#[test]
fn overload_refusals_are_typed_error_frames_on_a_live_connection() {
    let index = build_index(4096, None);
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(5),
        queue_cap: 64,
        admission: AdmissionPolicy::Reject,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let server =
        NetServer::serve_single(listener(), sched, None, NetServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = server.shutdown_handle();
    let mut conn = NetClient::connect(addr).unwrap();

    // A single request over the resident-op cap: typed QueueFull frame.
    let keys: Vec<Vec<u8>> = (0..65).map(key).collect();
    let err = conn.lookup(keys).expect_err("over the cap");
    match &err {
        NetError::Remote(code, _) => assert_eq!(*code, ErrorCode::QueueFull),
        other => panic!("expected a typed error frame, got {other}"),
    }
    assert_eq!(
        err.as_sched_error(),
        Some(cuart_host::SchedError::QueueFull)
    );

    // A 1 µs budget against a 5 ms coalesce deadline: shed, typed frame.
    conn.set_deadline(Some(Duration::from_micros(1)));
    let err = conn.lookup(vec![key(1)]).expect_err("must be shed");
    match &err {
        NetError::Remote(code, _) => assert_eq!(*code, ErrorCode::DeadlineExceeded),
        other => panic!("expected a typed error frame, got {other}"),
    }

    // The same connection keeps serving after both refusals.
    conn.set_deadline(None);
    conn.ping().expect("connection survived the refusals");
    assert_eq!(conn.lookup_one(key(7)).unwrap(), 7 * 3 + 1);

    stop.shutdown();
    let report = server.join().unwrap();
    assert_eq!(report.error_frames, 2);
    assert_eq!(report.decode_errors, 0);
    assert_eq!(report.sched.aggregate().shed_ops, 1);
}

#[test]
fn breaker_storm_stays_byte_equal_and_reports_trips() {
    use cuart_gpu_sim::{FaultConfig, FaultInjector};
    if !FaultInjector::is_active() {
        // Injector compiled out without `--features faults`; CI runs this
        // suite both ways.
        return;
    }
    let index = build_index(4096, None);
    let injector = FaultInjector::new(FaultConfig::uniform(0xB0BA, 0.0).fail_range(0, 8));
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(1),
        fault_injector: Some(injector),
        breaker: Some(BreakerConfig {
            fault_threshold: 2,
            open_cooldown: Duration::from_millis(20),
            probe_batches: 2,
            ..BreakerConfig::default()
        }),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let server =
        NetServer::serve_single(listener(), sched, None, NetServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = server.shutdown_handle();
    let mut conn = NetClient::connect(addr).unwrap();

    // Ride the whole breaker walk — device faults, degraded CPU path,
    // open pin, half-open probes — over the wire; every answer must stay
    // byte-identical to the CPU engine.
    for round in 0..40u64 {
        let keys: Vec<Vec<u8>> = (0..32).map(|i| key((round * 67 + i * 3) % 8192)).collect();
        let expect: Vec<u64> = index
            .lookup_batch_cpu(&keys)
            .into_iter()
            .map(|r| r.unwrap_or(NOT_FOUND))
            .collect();
        assert_eq!(conn.lookup(keys).unwrap(), expect, "round {round}");
        std::thread::sleep(Duration::from_millis(2));
    }

    stop.shutdown();
    let report = server.join().unwrap();
    let agg = report.sched.aggregate();
    assert!(agg.breaker_trips >= 1, "the storm must trip: {agg:?}");
    assert!(agg.breaker_open_batches >= 1, "{agg:?}");
}

// ---------------------------------------------------------------------------
// Hostile-input helpers
// ---------------------------------------------------------------------------

fn read_error_frame(stream: &mut TcpStream) -> (ErrorCode, String) {
    let mut header = [0u8; proto::FRAME_HEADER_BYTES];
    stream.read_exact(&mut header).expect("error frame header");
    let (len, crc) = proto::decode_frame_header(&header).expect("frame header");
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .expect("error frame payload");
    proto::check_frame_crc(&payload, crc).expect("frame crc");
    let resp = proto::decode_response(&payload).expect("response");
    match resp.body {
        RespBody::Error(code, msg) => (code, msg),
        other => panic!("expected an error frame, got {other:?}"),
    }
}

fn handshake_raw(addr: std::net::SocketAddr) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&proto::encode_hello(proto::VERSION)).unwrap();
    let mut hello = [0u8; proto::HELLO_BYTES];
    s.read_exact(&mut hello).unwrap();
    proto::decode_hello(&hello).unwrap();
    s
}

#[test]
fn hostile_frames_get_error_frames_and_cost_one_connection_each() {
    let telemetry = Arc::new(Telemetry::new());
    let index = build_index(4096, Some(&telemetry));
    let sched = Scheduler::spawn(
        Arc::clone(&index),
        devices::gtx1070(),
        SchedulerConfig {
            batch_target: 64,
            deadline: Duration::from_micros(200),
            ..SchedulerConfig::default()
        },
    );
    let server = NetServer::serve_single(
        listener(),
        sched,
        Some(Arc::clone(&telemetry)),
        NetServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr();
    let stop = server.shutdown_handle();

    // (a) Bad magic: typed BadVersion-class frame, no handshake echo.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"XXXXzzzz").unwrap();
    assert_eq!(read_error_frame(&mut s).0, ErrorCode::BadVersion);

    // (b) Right magic, future version: refused the same way.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(&proto::encode_hello(proto::VERSION + 9))
        .unwrap();
    assert_eq!(read_error_frame(&mut s).0, ErrorCode::BadVersion);

    // (c) Valid handshake, then a CRC-corrupted request frame.
    let mut s = handshake_raw(addr);
    let payload = proto::encode_request(&proto::Request {
        id: 9,
        deadline_us: 0,
        op: Op::Ping,
    })
    .unwrap();
    let mut frame = proto::encode_frame(&payload);
    let last = frame.len() - 1;
    frame[last] ^= 0xFF;
    s.write_all(&frame).unwrap();
    assert_eq!(read_error_frame(&mut s).0, ErrorCode::BadCrc);

    // (d) Header announcing an absurd length: rejected before allocating.
    let mut s = handshake_raw(addr);
    let mut header = [0u8; proto::FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
    s.write_all(&header).unwrap();
    assert_eq!(read_error_frame(&mut s).0, ErrorCode::TooLarge);

    // (e) Unknown opcode inside a well-formed frame.
    let mut s = handshake_raw(addr);
    let mut payload = Vec::new();
    payload.extend_from_slice(&11u64.to_le_bytes());
    payload.push(99); // no such opcode
    payload.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&proto::encode_frame(&payload)).unwrap();
    assert_eq!(read_error_frame(&mut s).0, ErrorCode::Unsupported);

    // (f) Truncated frame then hang-up: the server just moves on.
    let mut s = handshake_raw(addr);
    let mut frame = proto::encode_frame(&payload);
    frame.truncate(proto::FRAME_HEADER_BYTES + 2);
    s.write_all(&frame).unwrap();
    drop(s);

    // After all of that, a well-behaved client is served normally.
    let mut conn = NetClient::connect(addr).unwrap();
    assert_eq!(conn.lookup_one(key(3)).unwrap(), 3 * 3 + 1);

    stop.shutdown();
    let report = server.join().unwrap();
    assert!(
        report.decode_errors >= 5,
        "five hostile peers should be on the books: {report:?}"
    );
    assert_eq!(report.served_ops, 1);
    assert_eq!(
        telemetry.counter(names::NET_DECODE_ERRORS).get(),
        report.decode_errors
    );
}

#[test]
fn mid_flight_disconnects_leak_no_scheduler_slots() {
    let index = build_index(4096, None);
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(1),
        queue_cap: 64,
        admission: AdmissionPolicy::Reject,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let server =
        NetServer::serve_single(listener(), sched, None, NetServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = server.shutdown_handle();

    // 16 clients each admit a 32-op request and vanish without reading
    // the response.
    for round in 0..16u64 {
        let mut s = handshake_raw(addr);
        let payload = proto::encode_request(&proto::Request {
            id: round,
            deadline_us: 0,
            op: Op::Lookup((0..32).map(key).collect()),
        })
        .unwrap();
        s.write_all(&proto::encode_frame(&payload)).unwrap();
        drop(s);
    }

    // If any of those 512 ops leaked a resident slot, a request of
    // exactly `queue_cap` ops could never admit again. Retry briefly to
    // let the in-flight batches finish executing.
    let mut conn = NetClient::connect(addr).unwrap();
    let mut admitted = false;
    for _ in 0..100 {
        match conn.lookup((0..64).map(key).collect()) {
            Ok(values) => {
                assert_eq!(values.len(), 64);
                admitted = true;
                break;
            }
            Err(NetError::Remote(ErrorCode::QueueFull, _)) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected failure: {other}"),
        }
    }
    assert!(admitted, "disconnected requests must release their slots");

    stop.shutdown();
    server.join().expect("clean drain after disconnect storm");
}

#[test]
fn graceful_drain_answers_everything_admitted_then_closes_the_listener() {
    let telemetry = Arc::new(Telemetry::new());
    let index = build_index(4096, Some(&telemetry));
    let sched = Scheduler::spawn(
        Arc::clone(&index),
        devices::gtx1070(),
        SchedulerConfig {
            batch_target: 64,
            deadline: Duration::from_micros(500),
            ..SchedulerConfig::default()
        },
    );
    let server = NetServer::serve_single(
        listener(),
        sched,
        Some(Arc::clone(&telemetry)),
        NetServerConfig {
            allow_remote_shutdown: true,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Pipeline ten lookups and a shutdown on one raw socket without
    // reading a single response. The reader admits frames in order, so
    // all ten sit in the window before the shutdown op flips the stop
    // flag — drain MUST still answer every one of them.
    let mut s = handshake_raw(addr);
    let mut expected = std::collections::BTreeMap::new();
    for i in 0..10u64 {
        let payload = proto::encode_request(&proto::Request {
            id: i + 1,
            deadline_us: 0,
            op: Op::Lookup(vec![key(i)]),
        })
        .unwrap();
        s.write_all(&proto::encode_frame(&payload)).unwrap();
        expected.insert(i + 1, i * 3 + 1);
    }
    let payload = proto::encode_request(&proto::Request {
        id: 999,
        deadline_us: 0,
        op: Op::Shutdown,
    })
    .unwrap();
    s.write_all(&proto::encode_frame(&payload)).unwrap();

    // Eleven responses (order free — workers race), then EOF.
    let mut got = std::collections::BTreeMap::new();
    let mut shutdown_acked = false;
    for _ in 0..11 {
        let mut header = [0u8; proto::FRAME_HEADER_BYTES];
        s.read_exact(&mut header)
            .expect("drain must flush in-flight");
        let (len, crc) = proto::decode_frame_header(&header).unwrap();
        let mut payload = vec![0u8; len];
        s.read_exact(&mut payload).unwrap();
        proto::check_frame_crc(&payload, crc).unwrap();
        let resp = proto::decode_response(&payload).unwrap();
        match resp.body {
            RespBody::Values(v) => {
                got.insert(resp.id, v[0]);
            }
            RespBody::Ok => {
                assert_eq!(resp.id, 999);
                shutdown_acked = true;
            }
            other => panic!("unexpected drain response: {other:?}"),
        }
    }
    assert!(shutdown_acked);
    assert_eq!(got, expected, "every admitted request is answered");
    let mut byte = [0u8; 1];
    assert_eq!(s.read(&mut byte).unwrap_or(0), 0, "then the socket closes");

    let report = server.join().expect("remote-triggered drain");
    assert_eq!(report.served_ops, 10);
    assert_eq!(report.frames_in, 11);
    assert_eq!(report.frames_out, 11);
    // The metrics spill records the drain.
    assert_eq!(telemetry.gauge(names::NET_DRAINED).get(), 1.0);
    assert_eq!(telemetry.gauge(names::NET_CONNECTIONS).get(), 0.0);
    assert!(telemetry.counter(names::NET_FRAMES_IN).get() >= 11);

    // And the listener is really gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "accept loop must be stopped after drain"
    );
}
