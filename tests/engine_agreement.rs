//! Cross-crate agreement: every engine — classic ART, the GRT buffer (CPU
//! and GPU kernel), the CuART buffers (CPU engine and GPU kernel) — must
//! return identical answers on identical data.

use cuart::{CuartConfig, CuartIndex, LongKeyPolicy};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_grt::GrtIndex;
use cuart_workloads::{btc_keys, uniform_keys, QueryStream};
use proptest::prelude::*;

fn build_all(keys: &[Vec<u8>], cfg: &CuartConfig) -> (Art<u64>, GrtIndex, CuartIndex) {
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let grt = GrtIndex::build(&art);
    let cuart = CuartIndex::build(&art, cfg);
    (art, grt, cuart)
}

fn check_agreement(art: &Art<u64>, grt: &GrtIndex, cuart: &CuartIndex, probes: &[Vec<u8>]) {
    let stride = probes.iter().map(|k| k.len()).max().unwrap_or(8).max(8);
    let dev = devices::a100();
    let (grt_dev, _) = grt.lookup_batch_device(&dev, probes, stride);
    let mut session = cuart.device_session(&dev);
    let (cuart_dev, _) = session.lookup_batch(probes).unwrap();
    for (i, key) in probes.iter().enumerate() {
        let want = art.get(key).copied();
        assert_eq!(grt.lookup_cpu(key), want, "GRT CPU, key {key:x?}");
        assert_eq!(cuart.lookup_cpu(key), want, "CuART CPU, key {key:x?}");
        assert_eq!(
            grt_dev[i],
            want.unwrap_or(NOT_FOUND),
            "GRT kernel, key {key:x?}"
        );
        assert_eq!(
            cuart_dev[i],
            want.unwrap_or(NOT_FOUND),
            "CuART kernel, key {key:x?}"
        );
    }
}

#[test]
fn agreement_on_uniform_keys_all_lengths() {
    for kl in [4usize, 8, 12, 16, 24, 32] {
        let keys = uniform_keys(3000, kl, kl as u64);
        let (art, grt, cuart) = build_all(&keys, &CuartConfig::for_tests());
        let mut probes = keys[..300].to_vec();
        // Misses of the same length.
        let mut qs = QueryStream::new(keys.clone(), 0.0, 5);
        probes.extend(qs.next_batch(100));
        check_agreement(&art, &grt, &cuart, &probes);
    }
}

#[test]
fn agreement_on_btc_keys() {
    let keys = btc_keys(4000, 77);
    let (art, grt, cuart) = build_all(&keys, &CuartConfig::default());
    check_agreement(&art, &grt, &cuart, &keys[..500]);
}

#[test]
fn agreement_with_every_long_key_policy() {
    // Mixed lengths incl. > 32-byte keys.
    let keys = cuart_workloads::long_key_mix(1500, 16, 48, 0.2, 3);
    for policy in [
        LongKeyPolicy::CpuRoute,
        LongKeyPolicy::HostLeafLink,
        LongKeyPolicy::DynamicLeaf,
    ] {
        let cfg = CuartConfig {
            lut_span: 2,
            long_key_policy: policy,
            multi_layer_nodes: false,
            single_leaf_class: false,
        };
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let cuart = CuartIndex::build(&art, &cfg);
        for key in keys.iter().take(400) {
            assert_eq!(
                cuart.lookup_cpu(key),
                art.get(key).copied(),
                "policy {policy:?}, key len {}",
                key.len()
            );
        }
        // Device session answers (host-routing included) must also agree.
        let mut session = cuart.device_session(&devices::rtx3090());
        let probes: Vec<Vec<u8>> = keys.iter().take(200).cloned().collect();
        let (results, _) = session.lookup_batch(&probes).unwrap();
        for (key, got) in probes.iter().zip(&results) {
            assert_eq!(
                *got,
                art.get(key).copied().unwrap_or(NOT_FOUND),
                "policy {policy:?}"
            );
        }
    }
}

#[test]
fn agreement_on_range_queries() {
    let keys = uniform_keys(2000, 8, 55);
    let (art, _, cuart) = build_all(&keys, &CuartConfig::for_tests());
    let mut sorted = keys.clone();
    sorted.sort();
    for (lo_i, hi_i) in [(0usize, 1999), (100, 200), (500, 501), (1999, 1999)] {
        let (lo, hi) = (&sorted[lo_i], &sorted[hi_i]);
        let want: Vec<(Vec<u8>, u64)> = art.range(lo, hi).map(|(k, &v)| (k, v)).collect();
        let got = cuart::range::range_query(cuart.buffers(), lo, hi);
        assert_eq!(got, want, "range [{lo_i}, {hi_i}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn engines_agree_on_random_key_sets(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 8), 10..200),
    ) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let (art, grt, cuart) = build_all(&keys, &CuartConfig::for_tests());
        prop_assert_eq!(art.len(), keys.len());
        for key in &keys {
            let want = art.get(key).copied();
            prop_assert_eq!(grt.lookup_cpu(key), want);
            prop_assert_eq!(cuart.lookup_cpu(key), want);
        }
        // A probe that differs in the last byte must agree too (hit or miss).
        let mut probe = keys[0].clone();
        probe[7] ^= 0x55;
        prop_assert_eq!(grt.lookup_cpu(&probe), art.get(&probe).copied());
        prop_assert_eq!(cuart.lookup_cpu(&probe), art.get(&probe).copied());
    }
}
