//! Integration suite for the scheduler's overload-protection subsystem
//! (`cuart-host`): bounded admission, per-op deadline shedding, and the
//! fault circuit breaker.
//!
//! Four contracts are pinned here:
//!
//! 1. **Admission** — with `AdmissionPolicy::Reject` a saturated queue
//!    fails fast with `SchedError::QueueFull` while every *admitted* op
//!    is still answered byte-identically to the CPU engine; with
//!    `AdmissionPolicy::Block` nothing is lost and the resident backlog
//!    never exceeds the cap.
//! 2. **Shedding** — an op whose deadline cannot be met is answered
//!    `SchedError::DeadlineExceeded` at coalesce time (never dispatched)
//!    and counted in the `cuart.sched.shed` telemetry series.
//! 3. **Breaker** — under a deterministic device-fault storm the breaker
//!    walks `Closed → Open → HalfOpen → Closed`, service stays
//!    byte-identical to `lookup_batch_cpu` throughout (CPU-only service
//!    while open), and the walk is visible in the telemetry event ring
//!    in that order. Runs only with the `faults` feature armed.
//! 4. **Shutdown** — racing producers against `join()` always resolves
//!    in a value or a clean `SchedError::Shutdown`, never a hang or a
//!    panic (loom-style repeated interleaving).

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_host::scheduler::{
    AdmissionPolicy, BreakerConfig, SchedError, Scheduler, SchedulerConfig,
};
use cuart_telemetry::{names, Telemetry};
use std::sync::Arc;
use std::time::Duration;

/// Dense 8-byte keyed index: value = key * 3 + 1. Uses the small test
/// LUT so per-test session setup stays cheap.
fn build_index(n: u64) -> Arc<CuartIndex> {
    let mut art = Art::new();
    for i in 0..n {
        art.insert(&i.to_be_bytes(), i * 3 + 1).unwrap();
    }
    Arc::new(CuartIndex::build(&art, &CuartConfig::for_tests()))
}

fn key(i: u64) -> Vec<u8> {
    i.to_be_bytes().to_vec()
}

#[test]
fn reject_saturation_fails_fast_and_serves_admitted_ops_exactly() {
    let index = build_index(4096);
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(2),
        queue_cap: 64,
        admission: AdmissionPolicy::Reject,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let producers = 4u64;
    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched.client().unwrap();
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            let (mut served, mut rejected) = (0u64, 0u64);
            for round in 0..64u64 {
                let keys: Vec<Vec<u8>> = (0..32)
                    .map(|i: u64| {
                        key(p
                            .wrapping_mul(64)
                            .wrapping_add(round)
                            .wrapping_add(i.wrapping_mul(7))
                            % 4096)
                    })
                    .collect();
                match client.lookup(keys.clone()) {
                    Ok(got) => {
                        let expect: Vec<u64> = index
                            .lookup_batch_cpu(&keys)
                            .into_iter()
                            .map(|r| r.unwrap_or(NOT_FOUND))
                            .collect();
                        assert_eq!(got, expect, "producer {p} diverged at round {round}");
                        served += 32;
                    }
                    Err(SchedError::QueueFull) => rejected += 32,
                    Err(e) => panic!("unexpected error under Reject saturation: {e:?}"),
                }
            }
            (served, rejected)
        }));
    }
    let (mut served, mut rejected) = (0u64, 0u64);
    for h in handles {
        let (s, r) = h.join().unwrap();
        served += s;
        rejected += r;
    }
    let stats = sched.join().unwrap();
    assert_eq!(stats.ops_enqueued, served);
    assert_eq!(stats.keys_dispatched, served);
    assert_eq!(stats.rejected_ops, rejected);
    assert_eq!(
        served + rejected,
        producers * 64 * 32,
        "every op accounted for"
    );
    assert!(
        stats.max_resident_ops <= 64,
        "resident ops must never exceed the cap: {stats:?}"
    );
}

#[test]
fn block_saturation_loses_nothing_and_bounds_the_backlog() {
    let index = build_index(4096);
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(1),
        queue_cap: 128,
        admission: AdmissionPolicy::Block,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let producers = 4u64;
    let per_producer_rounds = 32u64;
    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched.client().unwrap();
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            for round in 0..per_producer_rounds {
                // 64-op requests against a 128-op cap: producers serialize
                // at admission (backpressure) instead of failing.
                let keys: Vec<Vec<u8>> = (0..64)
                    .map(|i: u64| {
                        key(p
                            .wrapping_mul(997)
                            .wrapping_add(round.wrapping_mul(131))
                            .wrapping_add(i)
                            % 8192)
                    })
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = client.lookup(keys).expect("Block admission never refuses");
                assert_eq!(got, expect, "producer {p} diverged at round {round}");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = producers * per_producer_rounds * 64;
    let stats = sched.join().unwrap();
    assert_eq!(stats.ops_enqueued, total);
    assert_eq!(stats.keys_dispatched, total);
    assert_eq!(stats.rejected_ops, 0);
    assert_eq!(stats.shed_ops, 0);
    assert!(
        stats.max_resident_ops <= 128,
        "resident ops must never exceed the cap: {stats:?}"
    );
}

#[test]
fn expired_ops_are_shed_not_dispatched_and_counted() {
    let telemetry = Arc::new(Telemetry::new());
    let mut art = Art::new();
    for i in 0..256u64 {
        art.insert(&i.to_be_bytes(), i * 3 + 1).unwrap();
    }
    let index = Arc::new(
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(Arc::clone(&telemetry)),
    );
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(1),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let client = sched.client().unwrap();
    // An already-expired deadline: the coalesce-time shed must answer
    // this before the flush dispatches anything.
    assert_eq!(
        client.lookup_with_deadline(vec![key(1), key(2)], Duration::ZERO),
        Err(SchedError::DeadlineExceeded)
    );
    // A healthy op through the same scheduler still gets a real answer.
    assert_eq!(
        client.lookup_with_deadline(vec![key(3)], Duration::from_secs(10)),
        Ok(vec![10])
    );
    drop(client);
    let stats = sched.join().unwrap();
    assert_eq!(stats.shed_ops, 2);
    assert_eq!(stats.keys_dispatched, 1, "shed keys never reach the device");
    let snap = telemetry.snapshot();
    assert_eq!(snap.counters.get(names::SCHED_SHED), Some(&2));
}

#[test]
fn fault_storm_walks_the_breaker_and_stays_byte_equal_to_cpu() {
    use cuart_gpu_sim::{FaultConfig, FaultInjector};
    use cuart_telemetry::BatchKind;
    if !FaultInjector::is_active() {
        // Without the `faults` feature the injector is compiled out; the
        // storm cannot happen. CI runs this suite both ways.
        return;
    }
    let telemetry = Arc::new(Telemetry::new());
    let mut art = Art::new();
    for i in 0..2048u64 {
        art.insert(&i.to_be_bytes(), i * 3 + 1).unwrap();
    }
    let index = Arc::new(
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(Arc::clone(&telemetry)),
    );
    // Deterministic storm: the first 8 fault-injector checks fail
    // unconditionally, everything after succeeds. Batch 1 burns its whole
    // retry budget (4 checks) and degrades; the recovery attempts of the
    // following batches and the half-open probes burn the rest; once the
    // range drains, a probe re-uploads and the breaker closes. The 20 ms
    // cooldown spans several 6 ms rounds, so some batches are served
    // while the breaker is pinned open (CPU-only) before each probe.
    let injector = FaultInjector::new(FaultConfig::uniform(0xB0BA, 0.0).fail_range(0, 8));
    let cfg = SchedulerConfig {
        batch_target: 1_000_000,
        deadline: Duration::from_millis(1),
        fault_injector: Some(injector),
        breaker: Some(BreakerConfig {
            fault_threshold: 2,
            open_cooldown: Duration::from_millis(20),
            probe_batches: 2,
            ..BreakerConfig::default()
        }),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let client = sched.client().unwrap();
    // 40 rounds of 32 lookups; every answer — device path, degraded CPU
    // path, breaker-open pin, half-open probes — must match the CPU
    // engine bit for bit. Sleeps let the open cooldown elapse so probes
    // actually happen.
    for round in 0..40u64 {
        let keys: Vec<Vec<u8>> = (0..32).map(|i| key((round * 67 + i * 3) % 4096)).collect();
        let expect: Vec<u64> = index
            .lookup_batch_cpu(&keys)
            .into_iter()
            .map(|r| r.unwrap_or(NOT_FOUND))
            .collect();
        let got = client
            .lookup(keys)
            .expect("storm must never fail a request");
        assert_eq!(got, expect, "diverged from the CPU engine at round {round}");
        std::thread::sleep(Duration::from_millis(6));
    }
    drop(client);
    let stats = sched.join().unwrap();
    assert!(stats.breaker_trips >= 1, "the storm must trip: {stats:?}");
    assert!(stats.probe_batches >= 2, "{stats:?}");
    assert!(stats.breaker_open_batches >= 1, "{stats:?}");
    assert_eq!(stats.failed_batches, 0, "degrade/shed absorb every fault");

    let snap = telemetry.snapshot();
    assert!(
        snap.counters
            .get(names::SCHED_BREAKER_TRIPS)
            .copied()
            .unwrap_or(0)
            >= 1
    );
    assert!(
        snap.counters
            .get(names::SCHED_PROBE_BATCHES)
            .copied()
            .unwrap_or(0)
            >= 2
    );
    assert_eq!(
        snap.gauges.get(names::SCHED_BREAKER_STATE),
        Some(&0.0),
        "the breaker must end the run closed"
    );
    // The walk is visible in the event ring, in causal (seq) order:
    // trip → probe window → close, with the session's own recovery
    // (device image re-upload) in between.
    let seq_of = |kind: BatchKind| {
        snap.events
            .iter()
            .find(|ev| ev.kind == kind)
            .map(|ev| ev.seq)
            .unwrap_or_else(|| panic!("missing {kind} event; got {:?}", snap.events))
    };
    let open = seq_of(BatchKind::BreakerOpen);
    let half_open = seq_of(BatchKind::BreakerHalfOpen);
    let closed = seq_of(BatchKind::BreakerClosed);
    let recovered = seq_of(BatchKind::Recovered);
    assert!(open < half_open, "open before half-open");
    assert!(half_open < closed, "half-open before close");
    assert!(
        recovered < closed,
        "the image recovers before the breaker closes"
    );
}

#[test]
fn shutdown_race_always_resolves_to_a_value_or_clean_shutdown() {
    // Loom-style repeated interleaving at the integration level: two
    // producers hammer the scheduler while the main thread joins it at a
    // varying offset. Every in-flight call must resolve — a served value
    // or `SchedError::Shutdown` — never a hang, panic, or internal
    // channel error.
    let index = build_index(64);
    for round in 0..100u64 {
        let cfg = SchedulerConfig {
            batch_target: 16,
            deadline: Duration::from_micros(50),
            ..SchedulerConfig::default()
        };
        let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
        let mut producers = Vec::new();
        for p in 0..2u64 {
            let client = sched.client().unwrap();
            producers.push(std::thread::spawn(move || loop {
                match client.lookup_one(key(p + 3)) {
                    Ok(v) => assert_eq!(v, (p + 3) * 3 + 1),
                    Err(e) => return e,
                }
            }));
        }
        std::thread::sleep(Duration::from_micros(40 * (round % 9)));
        sched.join().unwrap();
        for h in producers {
            assert_eq!(h.join().unwrap(), SchedError::Shutdown, "round {round}");
        }
    }
}
