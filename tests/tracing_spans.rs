//! End-to-end span tracing: every device batch leaves a span tree whose
//! leaf durations reproduce the batch's modeled time exactly, the trees
//! nest, the Chrome-trace exporter round-trips through the bundled JSON
//! parser, and recording spans never changes the modeled results.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_telemetry::tracing::{critical_paths, to_chrome_json, to_folded};
use cuart_telemetry::{names, Span, Telemetry};
use cuart_workloads::uniform_keys;
use std::collections::BTreeMap;
use std::sync::Arc;

fn instrumented_index(n: usize) -> (CuartIndex, Vec<Vec<u8>>, Arc<Telemetry>) {
    let keys = uniform_keys(n, 8, 42);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let telemetry = Arc::new(Telemetry::new());
    let index =
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(telemetry.clone());
    (index, keys, telemetry)
}

/// Leaves of a flattened span list: spans no other span names as parent.
fn leaves(spans: &[Span]) -> Vec<&Span> {
    let parents: Vec<u64> = spans.iter().map(|s| s.parent).collect();
    spans.iter().filter(|s| !parents.contains(&s.id)).collect()
}

#[test]
fn batch_span_trees_sum_to_modeled_batch_time() {
    let (index, keys, telemetry) = instrumented_index(4000);
    let dev = devices::rtx3090();
    let mut session = index.device_session(&dev);
    session.lookup_batch(&keys[..1024]).unwrap();
    let updates: Vec<(Vec<u8>, u64)> = keys[..512].iter().map(|k| (k.clone(), 7)).collect();
    session.update_batch(&updates).unwrap();
    let fresh: Vec<(Vec<u8>, u64)> = uniform_keys(128, 8, 4242)
        .into_iter()
        .map(|k| (k, 9))
        .collect();
    session.insert_batch(&fresh).unwrap();

    let snap = telemetry.snapshot();
    let roots: Vec<&Span> = snap.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(
        roots.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
        vec!["batch.lookup", "batch.update", "batch.insert"]
    );

    // Per tree: every child nests inside its parent, and the leaf
    // durations sum to the root duration — exactly, not approximately:
    // the tree *is* the breakdown of the modeled batch time.
    let by_id: BTreeMap<u64, &Span> = snap.spans.iter().map(|s| (s.id, s)).collect();
    for s in snap.spans.iter().filter(|s| s.parent != 0) {
        let p = by_id[&s.parent];
        assert!(
            s.start_ns >= p.start_ns && s.end_ns <= p.end_ns,
            "span {} [{},{}] escapes parent {} [{},{}]",
            s.name,
            s.start_ns,
            s.end_ns,
            p.name,
            p.start_ns,
            p.end_ns
        );
    }
    for root in &roots {
        let in_tree: Vec<Span> = snap
            .spans
            .iter()
            .filter(|s| {
                let mut cur = s.id;
                loop {
                    if cur == root.id {
                        return true;
                    }
                    match by_id.get(&cur) {
                        Some(s) if s.parent != 0 => cur = s.parent,
                        _ => return false,
                    }
                }
            })
            .cloned()
            .collect();
        let leaf_sum: u64 = leaves(&in_tree).iter().map(|s| s.duration_ns()).sum();
        assert_eq!(
            leaf_sum,
            root.duration_ns(),
            "tree {} leaves must sum to the root",
            root.name
        );
        assert!(root.duration_ns() > 0, "batch trees model nonzero time");
    }

    // Each tree carries the expected pipeline stages.
    let lookup_leaves: Vec<&str> = leaves(&snap.spans)
        .iter()
        .filter(|s| {
            let mut cur = s.parent;
            while cur != 0 {
                let p = by_id[&cur];
                if p.id == roots[0].id {
                    return true;
                }
                cur = p.parent;
            }
            false
        })
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(lookup_leaves, vec!["h2d", "dram", "exec", "d2h"]);
}

#[test]
fn critical_path_counters_and_analyzer_agree() {
    let (index, keys, telemetry) = instrumented_index(3000);
    let dev = devices::gtx1070();
    let mut session = index.device_session(&dev);
    for chunk in keys.chunks(512) {
        session.lookup_batch(chunk).unwrap();
    }
    let snap = telemetry.snapshot();

    // One dominant-stage increment per recorded tree.
    let trees = snap.spans.iter().filter(|s| s.parent == 0).count();
    let critical_total: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with(names::TRACE_CRITICAL_PREFIX))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(critical_total, trees as u64);
    let share = snap.gauges[names::TRACE_CRITICAL_SHARE];
    assert!(share > 0.0 && share <= 1.0, "share {share}");

    // The offline analyzer reconstructs the same dominant stages from the
    // flattened spans.
    let paths = critical_paths(&snap.spans);
    assert_eq!(paths.len(), trees);
    let mut by_stage: BTreeMap<String, u64> = BTreeMap::new();
    for p in &paths {
        assert!(p.root_name == "batch.lookup");
        assert!(p.share > 0.0 && p.share <= 1.0);
        *by_stage.entry(p.stage.clone()).or_default() += 1;
    }
    for (stage, n) in by_stage {
        let counter = format!("{}{stage}", names::TRACE_CRITICAL_PREFIX);
        assert_eq!(snap.counters[&counter], n, "{counter}");
    }
}

#[test]
fn chrome_trace_export_round_trips_and_folded_stacks_cover_all_leaves() {
    let (index, keys, telemetry) = instrumented_index(2000);
    let mut session = index.device_session(&devices::a100());
    session.lookup_batch(&keys[..768]).unwrap();
    let snap = telemetry.snapshot();

    let json = to_chrome_json(&snap.spans);
    let doc = cuart_telemetry::json::parse(&json).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), snap.spans.len());
    for e in events {
        assert_eq!(e.get("ph").and_then(|p| p.as_str()), Some("X"));
        assert!(e.get("args").and_then(|a| a.get("id")).is_some());
    }

    // Folded stacks account for every nanosecond of leaf time.
    let folded = to_folded(&snap.spans);
    let folded_ns: u64 = folded
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    let leaf_ns: u64 = leaves(&snap.spans).iter().map(|s| s.duration_ns()).sum();
    assert_eq!(folded_ns, leaf_ns);
    assert!(folded.contains("batch.lookup;kernel;exec"), "{folded}");
}

#[test]
fn span_recording_never_changes_modeled_results() {
    let (index, keys, telemetry) = instrumented_index(2000);
    let dev = devices::rtx3090();

    let mut traced = index.device_session(&dev);
    let (vals_on, report_on) = traced.lookup_batch(&keys[..512]).unwrap();

    let mut quiet = index.device_session(&dev);
    quiet.set_span_recording(false);
    let before = telemetry.snapshot().spans.len();
    let (vals_off, report_off) = quiet.lookup_batch(&keys[..512]).unwrap();

    // Same answers, identical modeled time: tracing is observation only,
    // so its "overhead" on modeled throughput is exactly zero.
    assert_eq!(vals_on, vals_off);
    assert_eq!(report_on.time_ns, report_off.time_ns);
    assert_eq!(
        telemetry.snapshot().spans.len(),
        before,
        "a muted session must record no spans"
    );
}
