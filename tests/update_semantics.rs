//! Update/delete semantics across engines: the two-stage device kernel
//! must behave exactly like applying the batch in thread-id order to a
//! reference map (§3.4's priority rule), and GRT's host-side updates must
//! converge to the same final state for conflict-free batches.

use cuart::update::status;
use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_grt::GrtIndex;
use cuart_workloads::{uniform_keys, UpdateStream};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn build(keys: &[Vec<u8>]) -> (Art<u64>, CuartIndex) {
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
    (art, cuart)
}

/// Apply a batch to a reference map with the paper's semantics (§3.4):
/// stage 1 resolves every key against the *pre-batch* state, then only the
/// highest-thread-id operation per key performs its write — so per key the
/// **last** op in the batch wins, and ops on keys absent at batch start
/// are no-ops (even if another op in the same batch would have deleted or
/// created them).
fn reference_apply(model: &mut BTreeMap<Vec<u8>, u64>, ops: &[(Vec<u8>, u64)]) {
    let mut winners: BTreeMap<&[u8], u64> = BTreeMap::new();
    for (k, v) in ops {
        winners.insert(k.as_slice(), *v); // later ops overwrite = max tid
    }
    for (k, v) in winners {
        if !model.contains_key(k) {
            continue;
        }
        if v == DELETE {
            model.remove(k);
        } else {
            model.insert(k.to_vec(), v);
        }
    }
}

#[test]
fn batched_updates_match_reference_over_many_rounds() {
    let keys = uniform_keys(2000, 8, 21);
    let (art, cuart) = build(&keys);
    let mut model: BTreeMap<Vec<u8>, u64> = art.iter().map(|(k, v)| (k, *v)).collect();
    let dev = devices::a100();
    let mut session = cuart.device_session_with_table(&dev, 1 << 14);
    let mut us = UpdateStream::new(keys.clone(), 0.2, 0.3, 99);
    for round in 0..5 {
        let ops = us.next_batch(512, DELETE);
        session.update_batch(&ops).unwrap();
        reference_apply(&mut model, &ops);
        // Verify every key's state through the device lookup kernel.
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (k, got) in keys.iter().zip(&results) {
            let want = model.get(k).copied().unwrap_or(NOT_FOUND);
            assert_eq!(*got, want, "round {round}, key {k:x?}");
        }
    }
}

#[test]
fn deleted_keys_free_slots_and_stay_deleted() {
    let keys = uniform_keys(500, 16, 31);
    let (_, cuart) = build(&keys);
    let dev = devices::rtx3090();
    let mut session = cuart.device_session(&dev);
    let victims: Vec<(Vec<u8>, u64)> = keys[..100].iter().map(|k| (k.clone(), DELETE)).collect();
    let (statuses, _) = session.update_batch(&victims).unwrap();
    assert!(statuses.iter().all(|&s| s == status::APPLIED));
    assert_eq!(session.free_count(cuart::link::LinkType::Leaf16), 100);
    // Deleted keys miss; survivors unaffected.
    let (results, _) = session.lookup_batch(&keys).unwrap();
    for (i, r) in results.iter().enumerate() {
        if i < 100 {
            assert_eq!(*r, NOT_FOUND, "victim {i} still visible");
        } else {
            assert_eq!(*r, i as u64 + 1, "survivor {i} damaged");
        }
    }
    // Deleting again is a miss, not a double-free.
    let (statuses, _) = session.update_batch(&victims[..10]).unwrap();
    assert!(statuses.iter().all(|&s| s == status::MISS));
    assert_eq!(session.free_count(cuart::link::LinkType::Leaf16), 100);
}

#[test]
fn grt_and_cuart_converge_on_conflict_free_batches() {
    let keys = uniform_keys(800, 8, 41);
    let (art, cuart) = build(&keys);
    let mut grt = GrtIndex::build(&art);
    let dev = devices::a100();
    let mut session = cuart.device_session(&dev);
    // Conflict-free value updates (each key once).
    let ops: Vec<(Vec<u8>, u64)> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), 10_000 + i as u64))
        .collect();
    session.update_batch(&ops).unwrap();
    grt.update_batch(&ops, &dev);
    let (cu_results, _) = session.lookup_batch(&keys).unwrap();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(cu_results[i], 10_000 + i as u64);
        assert_eq!(grt.lookup_cpu(k), Some(10_000 + i as u64));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn update_kernel_matches_reference_semantics(
        ops_spec in prop::collection::vec((0usize..60, prop::option::of(0u64..1000)), 1..120),
    ) {
        // 60 fixed keys; ops pick (key index, Some(value) | None=delete).
        let keys = uniform_keys(60, 8, 77);
        let (art, cuart) = build(&keys);
        let mut model: BTreeMap<Vec<u8>, u64> = art.iter().map(|(k, v)| (k, *v)).collect();
        let ops: Vec<(Vec<u8>, u64)> = ops_spec
            .iter()
            .map(|(i, v)| (keys[*i].clone(), v.unwrap_or(DELETE)))
            .collect();
        let dev = devices::a100();
        let mut session = cuart.device_session_with_table(&dev, 1 << 10);
        session.update_batch(&ops).unwrap();
        reference_apply(&mut model, &ops);
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (k, got) in keys.iter().zip(&results) {
            prop_assert_eq!(*got, model.get(k).copied().unwrap_or(NOT_FOUND));
        }
    }
}
