//! End-to-end telemetry: a device session doing a lookup + update + insert
//! round-trip must leave the exact expected trail in an attached registry —
//! the right event sequence, consistent counters, and exporters that agree
//! with the snapshot they serialise.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_telemetry::{names, BatchKind, Telemetry};
use cuart_workloads::uniform_keys;
use std::sync::Arc;

fn instrumented_index(n: usize) -> (CuartIndex, Vec<Vec<u8>>, Arc<Telemetry>) {
    let keys = uniform_keys(n, 8, 42);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let telemetry = Arc::new(Telemetry::new());
    let index =
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(telemetry.clone());
    (index, keys, telemetry)
}

#[test]
fn round_trip_emits_expected_event_sequence() {
    let (index, keys, telemetry) = instrumented_index(2000);
    let dev = devices::a100();
    let mut session = index.device_session(&dev);

    // lookup -> update -> lookup -> insert, in this order.
    session.lookup_batch(&keys[..512]).unwrap();
    let updates: Vec<(Vec<u8>, u64)> = keys[..256].iter().map(|k| (k.clone(), 7)).collect();
    session.update_batch(&updates).unwrap();
    session.lookup_batch(&keys[512..768]).unwrap();
    let fresh: Vec<(Vec<u8>, u64)> = uniform_keys(64, 8, 4242)
        .into_iter()
        .map(|k| (k, 9))
        .collect();
    session.insert_batch(&fresh).unwrap();

    let snap = telemetry.snapshot();

    // Event trace: one Build event from attach, then exactly the batch
    // sequence above, with monotonically increasing sequence numbers.
    let kinds: Vec<BatchKind> = snap.events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            BatchKind::Build,
            BatchKind::Lookup,
            BatchKind::Update,
            BatchKind::Lookup,
            BatchKind::Insert,
        ]
    );
    for pair in snap.events.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "event seq must increase");
    }
    assert_eq!(snap.events_dropped, 0);

    // Per-event payloads line up with the batches that produced them.
    assert_eq!(snap.events[1].keys, 512);
    assert_eq!(snap.events[2].keys, 256);
    assert_eq!(snap.events[3].keys, 256);
    assert_eq!(snap.events[4].keys, 64);
    assert!(snap.events[1].kernel_time_ns > 0);
    assert!(snap.events[1].dram_transactions > 0);
    assert!(snap.events[1].raw_accesses >= snap.events[1].coalesced_accesses);

    // Counters agree with the event trace.
    assert_eq!(snap.counters[names::LOOKUP_BATCHES], 2);
    assert_eq!(snap.counters[names::LOOKUP_KEYS], 512 + 256);
    assert_eq!(snap.counters[names::UPDATE_BATCHES], 1);
    assert_eq!(snap.counters[names::UPDATE_KEYS], 256);
    assert_eq!(snap.counters[names::INSERT_BATCHES], 1);
    assert_eq!(snap.counters[names::INSERT_KEYS], 64);

    // Kernel-side aggregates accumulated over all four batches.
    assert!(snap.counters[names::L2_HITS] + snap.counters[names::L2_MISSES] > 0);
    assert!(snap.counters[names::DRAM_TRANSACTIONS] > 0);

    // Build gauges recorded at attach time.
    assert_eq!(
        snap.gauges[names::DEVICE_BYTES],
        index.device_bytes() as f64
    );
    assert!(snap.gauges[names::BUILD_NODES] > 0.0);
    assert!(snap.gauges[names::BUILD_LEAVES] > 0.0);

    // Histograms saw one observation per batch.
    assert_eq!(snap.histograms[names::LOOKUP_KERNEL_NS].count, 2);
    assert_eq!(snap.histograms[names::UPDATE_KERNEL_NS].count, 1);
    assert_eq!(snap.histograms[names::INSERT_KERNEL_NS].count, 1);
}

#[test]
fn session_without_telemetry_stays_silent() {
    let keys = uniform_keys(500, 8, 7);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let index = CuartIndex::build(&art, &CuartConfig::for_tests());
    assert!(index.telemetry().is_none());
    let mut session = index.device_session(&devices::gtx1070());
    let (results, _) = session.lookup_batch(&keys[..32]).unwrap();
    assert_eq!(results.len(), 32);
}

#[test]
fn exporters_agree_with_snapshot() {
    let (index, keys, telemetry) = instrumented_index(1000);
    let mut session = index.device_session(&devices::rtx3090());
    session.lookup_batch(&keys[..128]).unwrap();

    let snap = telemetry.snapshot();
    let json = snap.to_json();
    let prom = snap.to_prometheus();

    // Every counter shows up in both exports, with its exact value.
    for (name, v) in &snap.counters {
        assert!(
            json.contains(&format!("\"{name}\":{v}")),
            "json missing {name}={v}"
        );
        let prom_line = format!("{} {v}", name.replace('.', "_"));
        assert!(prom.contains(&prom_line), "prom missing {prom_line}");
    }
    // The event trace is JSON-only; Prometheus gets the drop summary.
    assert!(json.contains("\"kind\":\"build\""));
    assert!(json.contains("\"kind\":\"lookup\""));
    assert!(prom.contains("cuart_events_dropped 0"));
}

#[test]
fn two_sessions_share_the_index_registry() {
    let (index, keys, telemetry) = instrumented_index(1000);
    let mut a = index.device_session(&devices::a100());
    let mut b = index.device_session(&devices::gtx1070());
    a.lookup_batch(&keys[..64]).unwrap();
    b.lookup_batch(&keys[64..128]).unwrap();
    let snap = telemetry.snapshot();
    assert_eq!(snap.counters[names::LOOKUP_BATCHES], 2);
    assert_eq!(snap.counters[names::LOOKUP_KEYS], 128);
}
