//! The generated name registry (`cuart_telemetry::names`, emitted by
//! `cuart-analyze --emit-registry`) must match what the runtime actually
//! emits: every series and span name in a live snapshot is registered,
//! and the registry itself is well-formed (unique, `cuart.`-prefixed).

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_telemetry::{names, Telemetry};
use cuart_workloads::uniform_keys;
use std::collections::BTreeSet;
use std::sync::Arc;

fn instrumented_index(n: usize) -> (CuartIndex, Vec<Vec<u8>>, Arc<Telemetry>) {
    let keys = uniform_keys(n, 8, 42);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    let telemetry = Arc::new(Telemetry::new());
    let index =
        CuartIndex::build(&art, &CuartConfig::for_tests()).with_telemetry(telemetry.clone());
    (index, keys, telemetry)
}

#[test]
fn registry_is_well_formed() {
    let namespaces = ["cuart.", "grt.", "sched."];
    let mut seen = BTreeSet::new();
    for name in names::ALL_METRICS {
        assert!(
            namespaces.iter().any(|ns| name.starts_with(ns)),
            "registered series `{name}` outside the known namespaces"
        );
        assert!(seen.insert(*name), "duplicate registered series `{name}`");
    }
    let mut seen = BTreeSet::new();
    for span in names::spans::ALL_SPANS {
        assert!(seen.insert(*span), "duplicate registered span `{span}`");
    }
    for prefix in names::METRIC_PREFIXES {
        assert!(
            namespaces.iter().any(|ns| prefix.starts_with(ns)),
            "prefix `{prefix}` unscoped"
        );
        assert!(prefix.ends_with('.'), "prefix `{prefix}` must end in `.`");
        // A prefix alone is not a series name.
        assert!(!names::is_registered(prefix));
    }
}

#[test]
fn live_snapshot_emits_only_registered_names() {
    let (index, keys, telemetry) = instrumented_index(3000);
    let dev = devices::a100();
    let mut session = index.device_session(&dev);
    session.lookup_batch(&keys[..1024]).unwrap();
    let updates: Vec<(Vec<u8>, u64)> = keys[..512].iter().map(|k| (k.clone(), 7)).collect();
    session.update_batch(&updates).unwrap();
    let fresh: Vec<(Vec<u8>, u64)> = uniform_keys(64, 8, 4242)
        .into_iter()
        .map(|k| (k, 9))
        .collect();
    session.insert_batch(&fresh).unwrap();

    let snap = telemetry.snapshot();
    assert!(!snap.counters.is_empty(), "session must emit counters");
    for name in snap.counters.keys() {
        assert!(names::is_registered(name), "unregistered counter `{name}`");
    }
    for name in snap.gauges.keys() {
        assert!(names::is_registered(name), "unregistered gauge `{name}`");
    }
    for name in snap.histograms.keys() {
        assert!(
            names::is_registered(name),
            "unregistered histogram `{name}`"
        );
    }
    assert!(!snap.spans.is_empty(), "session must emit spans");
    for span in &snap.spans {
        assert!(
            names::spans::ALL_SPANS.contains(&span.name.as_str()),
            "unregistered span `{}`",
            span.name
        );
    }
}
