//! Integration suite for the sharded multi-device serving layer
//! (`cuart-host::sharded`).
//!
//! Four contracts are pinned here:
//!
//! 1. **Permutation identity** — the router's split → dispatch → merge
//!    cycle answers every op exactly once, in arrival order, for random
//!    key sets (duplicates included) and any shard count; results are
//!    byte-identical to `CuartIndex::lookup_batch_cpu`.
//! 2. **Last write wins** — duplicate keys inside one routed update
//!    request resolve to the final write (§3.4), because every key maps
//!    to exactly one shard and shards serve their sub-batch in order.
//! 3. **Scale-out** — four homogeneous shards deliver at least 2.5× the
//!    modeled aggregate lookup throughput of one shard on the same
//!    workload (launch-overhead amortisation costs the rest of the 4×).
//! 4. **Telemetry** — per-shard `cuart.sched.shard.<i>.*` counters sum
//!    to the global `cuart.sched.*` totals, and every routed call leaves
//!    a `sched.route` span.

use cuart::{CuartConfig, CuartIndex, ShardRouter};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_host::scheduler::SchedulerConfig;
use cuart_host::sharded::ShardedScheduler;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Golden-ratio stride: `i * GOLDEN` walks the u64 space uniformly, so
/// keys built from it spread across every shard's prefix range.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// splitmix64, for deterministic in-test shuffles and key streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Index over `n` keys spread across the whole u64 prefix space (so a
/// sharded fleet sees balanced traffic); value = i * 3 + 1.
fn build_spread_index(n: u64, cfg: &CuartConfig) -> (CuartIndex, Vec<Vec<u8>>) {
    let mut art = Art::new();
    let keys: Vec<Vec<u8>> = (0..n)
        .map(|i| i.wrapping_mul(GOLDEN).to_be_bytes().to_vec())
        .collect();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 * 3 + 1).unwrap();
    }
    (CuartIndex::build(&art, cfg), keys)
}

fn sharded_cfg(batch_target: usize) -> SchedulerConfig {
    SchedulerConfig {
        batch_target,
        deadline: Duration::from_micros(300),
        sort_batches: true,
        ..SchedulerConfig::default()
    }
}

#[test]
fn mixed_fleet_multi_producer_lookups_match_cpu_engine() {
    let total: u64 = if cfg!(debug_assertions) {
        32 * 1024
    } else {
        256 * 1024
    };
    let producers: u64 = 4;
    let per_producer = total / producers;
    let (index, _) = build_spread_index(64 * 1024, &CuartConfig::default());
    let index = Arc::new(index);
    let devs = [
        devices::rtx3090(),
        devices::rtx3090(),
        devices::gtx1070(),
        devices::gtx1070(),
    ];
    let sharded =
        ShardedScheduler::spawn(Arc::clone(&index), &devs, sharded_cfg(8 * 1024)).unwrap();

    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sharded.client().unwrap();
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            let mut rng = p.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            const CHUNK: usize = 1024;
            let mut done = 0u64;
            while done < per_producer {
                let count = CHUNK.min((per_producer - done) as usize);
                // Mix of hits (stored stride keys) and spread misses.
                let keys: Vec<Vec<u8>> = (0..count)
                    .map(|_| {
                        let r = splitmix(&mut rng);
                        let k = if r.is_multiple_of(2) {
                            (r % (64 * 1024)).wrapping_mul(GOLDEN)
                        } else {
                            r
                        };
                        k.to_be_bytes().to_vec()
                    })
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = client.lookup(keys).expect("fleet alive");
                assert_eq!(got, expect, "producer {p} diverged at op {done}");
                done += count as u64;
            }
            done
        }));
    }
    let checked: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(checked, total);

    let stats = sharded.join().unwrap();
    assert_eq!(stats.routed_keys, total);
    let agg = stats.aggregate();
    assert_eq!(agg.ops_enqueued, total);
    assert_eq!(agg.keys_dispatched, total);
    let busy = stats
        .shards
        .iter()
        .filter(|s| s.stats.keys_dispatched > 0)
        .count();
    assert_eq!(busy, 4, "stride keys must reach every shard: {stats:?}");
}

#[test]
fn duplicate_key_updates_win_last_within_one_request() {
    let (index, keys) = build_spread_index(4096, &CuartConfig::for_tests());
    let index = Arc::new(index);
    let devs = [devices::rtx3090(), devices::gtx1070(), devices::gtx1070()];
    let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, sharded_cfg(4096)).unwrap();
    let client = sharded.client().unwrap();
    // Three duplicate groups, chosen to land on distinct shards, with the
    // writes of each group interleaved across the request.
    let router = ShardRouter::new(devs.len());
    let mut picks: Vec<Vec<u8>> = Vec::new();
    for shard in 0..devs.len() {
        let k = keys
            .iter()
            .find(|k| router.shard_of(k) == shard)
            .expect("stride keys cover every shard");
        picks.push(k.clone());
    }
    let mut ops: Vec<(Vec<u8>, u64)> = Vec::new();
    for round in 1..=3u64 {
        for (g, k) in picks.iter().enumerate() {
            ops.push((k.clone(), round * 100 + g as u64));
        }
    }
    let statuses = client.update(ops).unwrap();
    assert_eq!(statuses.len(), 9, "every op answered exactly once");
    // Last write per key (round 3) must be the one that sticks.
    let got = client.lookup(picks.clone()).unwrap();
    assert_eq!(got, vec![300, 301, 302]);
    sharded.join().unwrap();
}

#[test]
fn four_homogeneous_shards_scale_modeled_throughput() {
    let total: usize = if cfg!(debug_assertions) {
        32 * 1024
    } else {
        256 * 1024
    };
    let (index, stored) = build_spread_index(128 * 1024, &CuartConfig::default());
    let index = Arc::new(index);
    // A shuffled walk over stored keys: all hits, spread over all shards.
    let mut keys: Vec<Vec<u8>> = Vec::with_capacity(total);
    let mut rng = 0xC0FFEE;
    for _ in 0..total {
        keys.push(stored[(splitmix(&mut rng) % stored.len() as u64) as usize].clone());
    }
    let expect: Vec<u64> = index
        .lookup_batch_cpu(&keys)
        .into_iter()
        .map(|r| r.unwrap_or(NOT_FOUND))
        .collect();

    // One giant batch per shard: the request routes each shard its whole
    // sub-batch in one enqueue, so the size target (single-shard run)
    // or the short flush deadline (sub-target sharded runs) dispatches
    // it as exactly one batch — one launch per busy shard, and the
    // comparison isolates the split of modeled kernel time.
    let run = |shards: usize| {
        let devs = vec![devices::rtx3090(); shards];
        let cfg = SchedulerConfig {
            batch_target: total,
            deadline: Duration::from_micros(300),
            sort_batches: true,
            ..SchedulerConfig::default()
        };
        let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg).unwrap();
        let client = sharded.client().unwrap();
        let got = client.lookup(keys.clone()).expect("fleet alive");
        assert_eq!(got, expect, "{shards}-shard results must match CPU");
        drop(client);
        sharded.join().unwrap()
    };
    let one = run(1);
    let four = run(4);

    assert_eq!(one.aggregate().keys_dispatched, total as u64);
    assert_eq!(four.aggregate().keys_dispatched, total as u64);
    assert_eq!(
        four.shards.iter().filter(|s| s.stats.batches > 0).count(),
        4
    );

    let mops_one = one.modeled_aggregate_mops();
    let mops_four = four.modeled_aggregate_mops();
    assert!(
        mops_four >= 2.5 * mops_one,
        "4 shards must deliver >= 2.5x modeled aggregate throughput: \
         1 shard {mops_one:.1} MOps/s, 4 shards {mops_four:.1} MOps/s"
    );
}

#[test]
fn per_shard_counters_sum_to_global_and_route_span_recorded() {
    use cuart_telemetry::{names, Telemetry};
    let telemetry = Arc::new(Telemetry::new());
    let (index, keys) = build_spread_index(8 * 1024, &CuartConfig::for_tests());
    let index = Arc::new(index.with_telemetry(Arc::clone(&telemetry)));
    let devs = [devices::rtx3090(), devices::gtx1070()];
    let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, sharded_cfg(1024)).unwrap();
    let client = sharded.client().unwrap();
    let requests = 8usize;
    let per_request = 512usize;
    for r in 0..requests {
        let batch: Vec<Vec<u8>> = keys[r * per_request..(r + 1) * per_request].to_vec();
        client.lookup(batch).unwrap();
    }
    drop(client);
    let stats = sharded.join().unwrap();

    let snap = telemetry.snapshot();
    let total = (requests * per_request) as u64;
    assert_eq!(
        snap.counters.get(names::SCHED_ROUTED_REQUESTS),
        Some(&(requests as u64))
    );
    assert_eq!(snap.counters.get(names::SCHED_ROUTED_KEYS), Some(&total));

    // Every mirrored counter: the per-shard twins must sum to the global
    // series exactly (the acceptance invariant for shard telemetry).
    for global in [
        names::SCHED_ENQUEUED,
        names::SCHED_BATCHES,
        names::SCHED_SORTED_BATCHES,
        names::SCHED_SIZE_FLUSHES,
        names::SCHED_DEADLINE_FLUSHES,
        names::SCHED_SHED,
        names::SCHED_REJECTED,
    ] {
        let global_total = snap.counters.get(global).copied().unwrap_or(0);
        let shard_sum: u64 = (0..devs.len())
            .map(|i| {
                snap.counters
                    .get(&names::sched_shard(i, global))
                    .copied()
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            shard_sum, global_total,
            "shard twins of {global} must sum to the global total"
        );
    }
    assert_eq!(
        snap.counters.get(names::SCHED_ENQUEUED).copied(),
        Some(total)
    );
    // Both shards saw traffic, so both twin series must exist.
    for i in 0..devs.len() {
        let twin = names::sched_shard(i, names::SCHED_ENQUEUED);
        assert!(
            snap.counters.get(&twin).copied().unwrap_or(0) > 0,
            "shard {i} saw traffic but {twin} is missing: {stats:?}"
        );
    }
    // Every routed call leaves a standalone `sched.route` span.
    let route_spans = snap
        .spans
        .iter()
        .filter(|s| s.name == "sched.route")
        .count();
    assert_eq!(route_spans, requests, "one sched.route span per call");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The router's split is a permutation: every index appears exactly
    /// once across the per-shard lists, each list is stably ordered, and
    /// each listed key really belongs to that shard.
    #[test]
    fn split_indices_is_a_stable_permutation(
        keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..12), 0..200),
        shards in 1usize..=5,
    ) {
        let router = ShardRouter::new(shards);
        let lists = router.split_indices(&keys);
        prop_assert_eq!(lists.len(), shards);
        let mut seen: Vec<usize> = Vec::new();
        for (shard, list) in lists.iter().enumerate() {
            for win in list.windows(2) {
                prop_assert!(win[0] < win[1], "stable split keeps arrival order");
            }
            for &i in list {
                prop_assert_eq!(router.shard_of(&keys[i]), shard);
                seen.push(i);
            }
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..keys.len()).collect::<Vec<_>>());
    }

    /// End to end: routed lookups over random key sets (duplicates and
    /// misses included) answer every op exactly once, in arrival order,
    /// byte-identical to the CPU reference — for any fleet size.
    #[test]
    fn routed_lookups_match_cpu_for_any_fleet_size(
        picks in prop::collection::vec(0usize..512, 1..80),
        misses in prop::collection::vec(any::<u64>(), 0..40),
        shards in 1usize..=4,
    ) {
        let (index, stored) = build_spread_index(512, &CuartConfig::for_tests());
        let index = Arc::new(index);
        let keys: Vec<Vec<u8>> = picks
            .iter()
            .map(|&i| stored[i].clone())
            .chain(misses.iter().map(|m| m.to_be_bytes().to_vec()))
            .collect();
        let expect: Vec<u64> = index
            .lookup_batch_cpu(&keys)
            .into_iter()
            .map(|r| r.unwrap_or(NOT_FOUND))
            .collect();
        let devs = vec![devices::gtx1070(); shards];
        let sharded =
            ShardedScheduler::spawn(Arc::clone(&index), &devs, sharded_cfg(4096)).unwrap();
        let client = sharded.client().unwrap();
        let got = client.lookup(keys).expect("fleet alive");
        prop_assert_eq!(got, expect);
        drop(client);
        let stats = sharded.join().unwrap();
        prop_assert_eq!(stats.aggregate().keys_dispatched, (picks.len() + misses.len()) as u64);
    }
}
