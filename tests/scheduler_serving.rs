//! Integration suite for the concurrent batch scheduler (`cuart-host`).
//!
//! Three contracts are pinned here:
//!
//! 1. **Equivalence** — results served through the scheduler (multiple
//!    producers, adaptive batching, sorted execution, inverse-permutation
//!    return) are byte-identical to `CuartIndex::lookup_batch_cpu`, for a
//!    million-lookup four-producer run (scaled down in debug builds; CI
//!    runs the full size under `--release`).
//! 2. **Locality** — packing a batch in sorted key order must beat the
//!    same workload in arrival order on the simulator's memory model:
//!    strictly fewer DRAM transactions and strictly less modeled kernel
//!    time. This is the measurable §3.1 coalescing win the sorted-batch
//!    path exists for.
//! 3. **Telemetry** — a scheduler run records the `cuart.sched.*` series
//!    into the session's registry.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use cuart_host::scheduler::{Scheduler, SchedulerConfig, SchedulerStats};
use std::sync::Arc;
use std::time::Duration;

/// Dense 8-byte keyed index: value = key * 3 + 1.
fn build_index(n: u64) -> Arc<CuartIndex> {
    let mut art = Art::new();
    for i in 0..n {
        art.insert(&i.to_be_bytes(), i * 3 + 1).unwrap();
    }
    Arc::new(CuartIndex::build(&art, &CuartConfig::default()))
}

/// splitmix64, for deterministic in-test shuffles and key streams.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn four_producers_one_million_lookups_match_cpu_engine() {
    // Full size only in release: the simulator's functional pass is too
    // slow for a million debug-mode lookups. CI runs this suite with
    // `--release` to get the full-size guarantee.
    let total: u64 = if cfg!(debug_assertions) {
        64 * 1024
    } else {
        1024 * 1024
    };
    let producers: u64 = 4;
    let per_producer = total / producers;
    let index = build_index(128 * 1024);
    let cfg = SchedulerConfig {
        batch_target: 16 * 1024,
        deadline: Duration::from_micros(300),
        sort_batches: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);

    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched.client().unwrap();
        let index = Arc::clone(&index);
        handles.push(std::thread::spawn(move || {
            let mut rng = p.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
            let mut checked = 0u64;
            const CHUNK: usize = 1024;
            let mut done = 0u64;
            while done < per_producer {
                let count = CHUNK.min((per_producer - done) as usize);
                // Mix of hits (dense range) and misses (shifted range).
                let keys: Vec<Vec<u8>> = (0..count)
                    .map(|_| (splitmix(&mut rng) % (256 * 1024)).to_be_bytes().to_vec())
                    .collect();
                let expect: Vec<u64> = index
                    .lookup_batch_cpu(&keys)
                    .into_iter()
                    .map(|r| r.unwrap_or(NOT_FOUND))
                    .collect();
                let got = client.lookup(keys).expect("scheduler alive");
                assert_eq!(got, expect, "producer {p} diverged at op {done}");
                checked += count as u64;
                done += count as u64;
            }
            checked
        }));
    }
    let checked: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(checked, total);

    let stats = sched.join().unwrap();
    assert_eq!(stats.ops_enqueued, total);
    assert_eq!(stats.keys_dispatched, total);
    assert!(stats.batches >= 1);
    assert!(
        stats.sorted_batches == stats.batches,
        "every batch takes the sorted path: {stats:?}"
    );
    assert!(
        stats.mean_batch_fill() > 1024.0,
        "four concurrent producers must coalesce beyond one request: {stats:?}"
    );
}

/// Run one scheduler over `keys` as a single giant batch and return stats.
fn one_batch_stats(index: &Arc<CuartIndex>, keys: &[Vec<u8>], sorted: bool) -> SchedulerStats {
    let cfg = SchedulerConfig {
        batch_target: keys.len(), // flush exactly when the request lands
        deadline: Duration::from_secs(3600),
        sort_batches: sorted,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(index), devices::gtx1070(), cfg);
    let client = sched.client().unwrap();
    let expect_some_hits = client.lookup(keys.to_vec()).expect("scheduler alive");
    assert!(expect_some_hits.iter().any(|&r| r != NOT_FOUND));
    drop(client);
    let stats = sched.join().unwrap();
    assert_eq!(stats.batches, 1, "one request, one flush: {stats:?}");
    stats
}

#[test]
fn sorted_batches_beat_arrival_order_on_the_memory_model() {
    // Big enough that the tree does NOT fit the GTX 1070's 2 MiB L2: with
    // capacity pressure, arrival-order batches thrash (large reuse
    // distances) while sorted batches keep each subtree hot. An
    // L2-resident tree would hide the win — every order then pays only
    // compulsory misses.
    let n: u64 = 512 * 1024;
    let index = build_index(n);
    // A shuffled walk over the whole key range: arrival order carries no
    // locality, sorted order recovers all of it.
    let mut keys: Vec<Vec<u8>> = (0..n).map(|i| i.to_be_bytes().to_vec()).collect();
    let mut rng = 0xC0FFEE;
    for i in (1..keys.len()).rev() {
        keys.swap(i, (splitmix(&mut rng) % (i as u64 + 1)) as usize);
    }
    let batch = &keys[..16 * 1024];

    let sorted = one_batch_stats(&index, batch, true);
    let unsorted = one_batch_stats(&index, batch, false);

    assert_eq!(sorted.keys_dispatched, unsorted.keys_dispatched);
    // Identical per-lane work…
    assert_eq!(sorted.raw_accesses, unsorted.raw_accesses);
    // …but sorted packing puts neighboring tree paths in the same warp, so
    // per-warp sector dedup (the §3.1 coalescing model) collapses far more
    // of it. This is the locality win, asserted strictly.
    assert!(
        sorted.sectors < unsorted.sectors,
        "sorted packing must coalesce into fewer memory sectors: \
         sorted {} vs unsorted {}",
        sorted.sectors,
        unsorted.sectors
    );
    assert!(
        sorted.kernel_time_ns < unsorted.kernel_time_ns,
        "sorted packing must be faster on the modeled kernel: \
         sorted {:.0} ns vs unsorted {:.0} ns",
        sorted.kernel_time_ns,
        unsorted.kernel_time_ns
    );
    // Under L2 capacity pressure the coalescing win reaches DRAM too:
    // sorted batches keep subtrees hot, arrival order thrashes.
    assert!(
        sorted.dram_transactions < unsorted.dram_transactions,
        "sorted packing must cut DRAM traffic under L2 pressure: \
         sorted {} vs unsorted {}",
        sorted.dram_transactions,
        unsorted.dram_transactions
    );
}

#[test]
fn scheduler_records_sched_telemetry_series() {
    use cuart_telemetry::{names, Telemetry};
    let telemetry = Arc::new(Telemetry::new());
    let mut art = Art::new();
    for i in 0..4096u64 {
        art.insert(&i.to_be_bytes(), i).unwrap();
    }
    let index = Arc::new(
        CuartIndex::build(&art, &CuartConfig::default()).with_telemetry(Arc::clone(&telemetry)),
    );
    let cfg = SchedulerConfig {
        batch_target: 512,
        deadline: Duration::from_micros(200),
        sort_batches: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let client = sched.client().unwrap();
    let keys: Vec<Vec<u8>> = (0..512u64).map(|i| i.to_be_bytes().to_vec()).collect();
    client.lookup(keys).unwrap();
    drop(client);
    let stats = sched.join().unwrap();

    let snap = telemetry.snapshot();
    assert_eq!(snap.counters.get(names::SCHED_ENQUEUED), Some(&512));
    assert_eq!(
        snap.counters.get(names::SCHED_BATCHES).copied(),
        Some(stats.batches)
    );
    assert_eq!(
        snap.counters.get(names::SCHED_SORTED_BATCHES).copied(),
        Some(stats.sorted_batches)
    );
    assert!(
        snap.counters.contains_key(names::SCHED_SIZE_FLUSHES)
            || snap.counters.contains_key(names::SCHED_DEADLINE_FLUSHES),
        "at least one flush kind must be recorded: {:?}",
        snap.counters
    );
    assert!(
        snap.histograms.contains_key(names::SCHED_BATCH_FILL),
        "batch fill histogram missing: {:?}",
        snap.histograms.keys().collect::<Vec<_>>()
    );
    assert!(
        snap.histograms.contains_key(names::SCHED_QUEUE_LATENCY_NS),
        "queue latency histogram missing"
    );
}

#[test]
fn session_staging_survives_shrinking_batches_through_the_scheduler() {
    // Regression companion to the batch-level staging test in
    // `cuart-gpu-sim`: one executor session serves a large batch and then
    // a much smaller one, reusing its staging buffers. The small batch
    // must see only its own keys and results.
    let index = build_index(8192);
    let cfg = SchedulerConfig {
        batch_target: 1024 * 1024,
        deadline: Duration::from_micros(100),
        sort_batches: true,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(&index), devices::gtx1070(), cfg);
    let client = sched.client().unwrap();
    let big: Vec<Vec<u8>> = (0..4096u64).map(|i| i.to_be_bytes().to_vec()).collect();
    let big_results = client.lookup(big).unwrap();
    assert!(big_results.iter().all(|&r| r != NOT_FOUND));
    // Now a 3-key batch into the same (oversized) staging buffer.
    let small = vec![
        7u64.to_be_bytes().to_vec(),
        999_999u64.to_be_bytes().to_vec(), // miss
        8191u64.to_be_bytes().to_vec(),
    ];
    let small_results = client.lookup(small).unwrap();
    assert_eq!(small_results, vec![7 * 3 + 1, NOT_FOUND, 8191 * 3 + 1]);
    drop(client);
    sched.join().unwrap();
}
