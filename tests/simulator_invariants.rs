//! Simulator-level invariants checked through the real index kernels:
//! transaction accounting, the §3.1 access-pattern claims, and the §4.6
//! memory-architecture ordering.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_grt::GrtIndex;
use cuart_workloads::uniform_keys;
use proptest::prelude::*;

fn build(n: usize, kl: usize) -> (Art<u64>, Vec<Vec<u8>>) {
    let keys = uniform_keys(n, kl, 1234);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    (art, keys)
}

#[test]
fn grt_issues_more_dependent_steps_than_cuart() {
    // §3.1: GRT needs ≥ 2 dependent transactions per node (type inside the
    // node); CuART §3.2.1 needs one known-size read for most node types.
    let (art, keys) = build(20_000, 32);
    let cuart = CuartIndex::build(&art, &CuartConfig::default());
    let grt = GrtIndex::build(&art);
    let dev = devices::a100();
    let probes = keys[..2048].to_vec();
    let (_, cu) = cuart.lookup_batch_device(&dev, &probes, 32);
    let (_, gr) = grt.lookup_batch_device(&dev, &probes, 32);
    assert!(
        gr.max_chain_steps as f64 >= 1.5 * cu.max_chain_steps as f64,
        "GRT chain {} vs CuART chain {}",
        gr.max_chain_steps,
        cu.max_chain_steps
    );
    assert!(gr.sectors > cu.sectors, "GRT must touch more sectors");
}

#[test]
fn transaction_accounting_is_consistent() {
    let (art, keys) = build(5_000, 16);
    let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
    for dev in devices::all() {
        let (_, r) = cuart.lookup_batch_device(&dev, &keys[..512], 16);
        assert_eq!(r.l2_hits + r.dram_transactions, r.sectors, "{}", dev.name);
        assert_eq!(r.dram_bytes, r.dram_transactions * 32, "{}", dev.name);
        assert!(r.time_ns >= r.bandwidth_bound_ns.max(r.compute_bound_ns) - 1e-6);
        assert!(r.threads == 512);
    }
}

#[test]
fn memory_architecture_ordering_for_random_lookups() {
    // §4.6: at equal structure, the GDDR6X 3090 serves this random-access
    // workload fastest, the GTX 1070 slowest — once the tree exceeds L2.
    let (art, keys) = build(120_000, 32);
    let cuart = CuartIndex::build(&art, &CuartConfig::default());
    let mut times = Vec::new();
    for mut dev in devices::all() {
        // Scale L2 like the figure harness so mid-levels miss.
        dev.l2.size_bytes = (dev.l2.size_bytes / 128).max(32 << 10);
        let (_, r) = cuart.lookup_batch_device(&dev, &keys[..8192], 32);
        times.push((dev.name, r.time_ns));
    }
    let a100 = times[0].1;
    let rtx = times[1].1;
    let gtx = times[2].1;
    assert!(rtx < a100, "RTX 3090 must beat the A100: {times:?}");
    assert!(
        gtx > rtx && gtx > a100,
        "GTX 1070 must be slowest: {times:?}"
    );
}

#[test]
fn lut_ablation_reduces_chain_length() {
    // §3.2.2: the compacted root merges the top layers. Disabling it must
    // lengthen the dependent chain and slow the kernel.
    let (art, keys) = build(50_000, 16);
    let with_lut = CuartIndex::build(
        &art,
        &CuartConfig {
            lut_span: 3,
            ..CuartConfig::for_tests()
        },
    );
    let without = CuartIndex::build(
        &art,
        &CuartConfig {
            lut_span: 0,
            ..CuartConfig::for_tests()
        },
    );
    let dev = devices::rtx3090();
    let probes = keys[..4096].to_vec();
    let (r1, with_report) = with_lut.lookup_batch_device(&dev, &probes, 16);
    let (r2, without_report) = without.lookup_batch_device(&dev, &probes, 16);
    assert_eq!(r1, r2, "ablation must not change results");
    assert!(
        with_report.max_chain_steps < without_report.max_chain_steps,
        "LUT {} !< no-LUT {}",
        with_report.max_chain_steps,
        without_report.max_chain_steps
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn kernel_reports_scale_sanely_with_batch(batch in 32usize..2048) {
        let keys = uniform_keys(4096, 8, 5);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let cuart = CuartIndex::build(&art, &CuartConfig::for_tests());
        let dev = devices::gtx1070();
        let (results, r) = cuart.lookup_batch_device(&dev, &keys[..batch], 8);
        prop_assert_eq!(results.len(), batch);
        prop_assert_eq!(r.threads, batch);
        prop_assert!(r.time_ns > 0.0);
        // Every query does at least a LUT/root read + result write.
        prop_assert!(r.steps_total >= 2 * batch as u64);
    }
}
