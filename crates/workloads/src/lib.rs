//! # cuart-workloads — deterministic workload generation
//!
//! The paper's evaluation framework (§4.1) "is capable of generating
//! reproducible trees with data of different characteristics and afterwards
//! generate update, delete, range and exact lookup queries". This crate is
//! that framework:
//!
//! * [`keys`] — unique random keys of any length, dense integer keys,
//!   controlled long-key mixtures for the hybrid experiments (Fig. 13/14),
//! * [`btc`] — a synthetic stand-in for the BTC-2019 dataset (Fig. 12):
//!   32-byte RDF-term keys with long shared URI prefixes, duplicate
//!   segments and skewed fan-out — the properties §4.4 blames for the
//!   lower absolute throughput on real data,
//! * [`queries`] — lookup/update/delete/range query streams with
//!   configurable hit rates, duplicate-key rates and batch shapes.
//!
//! Everything is seeded and deterministic; the same seed reproduces the
//! same tree and query stream on every run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btc;
pub mod keys;
pub mod queries;

pub use btc::btc_keys;
pub use keys::{dense_keys, long_key_mix, uniform_keys};
pub use queries::{QueryStream, UpdateStream, ZipfQueryStream};
