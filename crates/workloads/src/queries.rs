//! Query-stream generation: lookups, updates, deletes, ranges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible stream of point-lookup queries over a key population.
#[derive(Debug)]
pub struct QueryStream {
    keys: Vec<Vec<u8>>,
    hit_rate: f64,
    rng: StdRng,
    miss_counter: u64,
}

impl QueryStream {
    /// Queries drawn uniformly from `keys`; a `hit_rate` fraction are
    /// stored keys, the rest are guaranteed misses.
    pub fn new(keys: Vec<Vec<u8>>, hit_rate: f64, seed: u64) -> Self {
        assert!(!keys.is_empty(), "query population must not be empty");
        assert!((0.0..=1.0).contains(&hit_rate));
        QueryStream {
            keys,
            hit_rate,
            rng: StdRng::seed_from_u64(seed ^ 0x5EED),
            miss_counter: 0,
        }
    }

    /// Produce the next batch of `n` query keys.
    pub fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                if self.rng.gen_bool(self.hit_rate) {
                    let i = self.rng.gen_range(0..self.keys.len());
                    self.keys[i].clone()
                } else {
                    // A guaranteed miss: mangle a stored key's tail with a
                    // counter (stored keys are unique, so the mangled key
                    // collides with none of them except astronomically).
                    self.miss_counter += 1;
                    let i = self.rng.gen_range(0..self.keys.len());
                    let mut k = self.keys[i].clone();
                    let n = k.len();
                    k[n - 1] ^= 0xA5;
                    k[n.saturating_sub(2)] ^= (self.miss_counter & 0xFF) as u8;
                    k
                }
            })
            .collect()
    }
}

/// A reproducible stream of update/delete operations.
#[derive(Debug)]
pub struct UpdateStream {
    keys: Vec<Vec<u8>>,
    delete_rate: f64,
    duplicate_rate: f64,
    rng: StdRng,
    next_value: u64,
}

impl UpdateStream {
    /// Updates drawn from `keys`. `delete_rate` of operations are deletes
    /// (the sentinel value is supplied by the caller); `duplicate_rate`
    /// forces repeated keys *within* a batch to exercise the conflict
    /// resolution of §3.4.
    pub fn new(keys: Vec<Vec<u8>>, delete_rate: f64, duplicate_rate: f64, seed: u64) -> Self {
        assert!(!keys.is_empty());
        UpdateStream {
            keys,
            delete_rate,
            duplicate_rate,
            rng: StdRng::seed_from_u64(seed ^ 0x0BDA7E),
            next_value: 1,
        }
    }

    /// Produce the next batch of `(key, value)` operations;
    /// `delete_sentinel` marks deletions.
    pub fn next_batch(&mut self, n: usize, delete_sentinel: u64) -> Vec<(Vec<u8>, u64)> {
        let mut batch: Vec<(Vec<u8>, u64)> = Vec::with_capacity(n);
        for _ in 0..n {
            let key = if !batch.is_empty() && self.rng.gen_bool(self.duplicate_rate) {
                batch[self.rng.gen_range(0..batch.len())].0.clone()
            } else {
                self.keys[self.rng.gen_range(0..self.keys.len())].clone()
            };
            let value = if self.rng.gen_bool(self.delete_rate) {
                delete_sentinel
            } else {
                self.next_value += 1;
                self.next_value
            };
            batch.push((key, value));
        }
        batch
    }
}

/// Generate `n` inclusive range bounds over a sorted key population, each
/// spanning roughly `span` consecutive stored keys.
pub fn range_queries(
    keys: &[Vec<u8>],
    n: usize,
    span: usize,
    seed: u64,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    assert!(!keys.is_empty());
    let mut sorted: Vec<Vec<u8>> = keys.to_vec();
    sorted.sort();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7A67E5);
    (0..n)
        .map(|_| {
            let i = rng.gen_range(0..sorted.len());
            let j = (i + span).min(sorted.len() - 1);
            (sorted[i].clone(), sorted[j].clone())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::uniform_keys;
    use std::collections::HashSet;

    #[test]
    fn hit_rate_respected() {
        let keys = uniform_keys(1000, 8, 1);
        let stored: HashSet<_> = keys.iter().cloned().collect();
        let mut qs = QueryStream::new(keys, 0.8, 42);
        let batch = qs.next_batch(4000);
        let hits = batch.iter().filter(|k| stored.contains(*k)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.8).abs() < 0.05, "hit rate {rate}");
    }

    #[test]
    fn all_hits_and_all_misses() {
        let keys = uniform_keys(100, 8, 2);
        let stored: HashSet<_> = keys.iter().cloned().collect();
        let mut all_hit = QueryStream::new(keys.clone(), 1.0, 1);
        assert!(all_hit.next_batch(500).iter().all(|k| stored.contains(k)));
        let mut all_miss = QueryStream::new(keys, 0.0, 1);
        assert!(all_miss.next_batch(500).iter().all(|k| !stored.contains(k)));
    }

    #[test]
    fn query_stream_deterministic() {
        let keys = uniform_keys(100, 8, 3);
        let mut a = QueryStream::new(keys.clone(), 0.5, 9);
        let mut b = QueryStream::new(keys, 0.5, 9);
        assert_eq!(a.next_batch(100), b.next_batch(100));
    }

    #[test]
    fn update_stream_duplicates_and_deletes() {
        let keys = uniform_keys(50, 8, 4);
        let mut us = UpdateStream::new(keys, 0.3, 0.5, 7);
        let batch = us.next_batch(2000, u64::MAX);
        let deletes = batch.iter().filter(|(_, v)| *v == u64::MAX).count();
        let rate = deletes as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "delete rate {rate}");
        let distinct: HashSet<_> = batch.iter().map(|(k, _)| k).collect();
        assert!(distinct.len() < 2000, "duplicates must occur");
        // Non-delete values are unique and monotone.
        let values: Vec<u64> = batch
            .iter()
            .map(|(_, v)| *v)
            .filter(|&v| v != u64::MAX)
            .collect();
        let vset: HashSet<_> = values.iter().collect();
        assert_eq!(vset.len(), values.len());
    }

    #[test]
    fn range_queries_are_ordered_pairs() {
        let keys = uniform_keys(500, 8, 5);
        let ranges = range_queries(&keys, 50, 10, 6);
        assert_eq!(ranges.len(), 50);
        assert!(ranges.iter().all(|(lo, hi)| lo <= hi));
    }
}

/// A Zipf-skewed point-lookup stream: rank-1 keys dominate, matching the
/// hot-key behaviour of KV caches and monitoring stores. `s` is the Zipf
/// exponent (≈1.0 for web-like skew).
#[derive(Debug)]
pub struct ZipfQueryStream {
    /// Keys sorted by popularity rank (index 0 = hottest).
    keys: Vec<Vec<u8>>,
    /// Precomputed cumulative distribution over ranks.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfQueryStream {
    /// Build over `keys` with exponent `s > 0`.
    pub fn new(keys: Vec<Vec<u8>>, s: f64, seed: u64) -> Self {
        assert!(!keys.is_empty());
        assert!(s > 0.0);
        let mut cdf = Vec::with_capacity(keys.len());
        let mut acc = 0.0;
        for rank in 1..=keys.len() {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfQueryStream {
            keys,
            cdf,
            rng: StdRng::seed_from_u64(seed ^ 0x21BF),
        }
    }

    /// Next batch of `n` keys drawn by popularity.
    pub fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                let idx = self
                    .cdf
                    .partition_point(|&c| c < u)
                    .min(self.keys.len() - 1);
                self.keys[idx].clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use crate::keys::uniform_keys;

    #[test]
    fn zipf_is_rank_skewed_and_deterministic() {
        let keys = uniform_keys(1000, 8, 9);
        let mut a = ZipfQueryStream::new(keys.clone(), 1.0, 5);
        let mut b = ZipfQueryStream::new(keys.clone(), 1.0, 5);
        let batch = a.next_batch(20_000);
        assert_eq!(batch, b.next_batch(20_000));
        // Rank-0 key dominates any mid-rank key.
        let count = |k: &Vec<u8>| batch.iter().filter(|x| *x == k).count();
        let hot = count(&keys[0]);
        let mid = count(&keys[500]);
        assert!(hot > 10 * mid.max(1), "hot {hot} vs mid {mid}");
        // All drawn keys come from the population.
        assert!(batch.iter().all(|k| keys.contains(k)));
    }

    #[test]
    fn high_exponent_concentrates_harder() {
        let keys = uniform_keys(500, 8, 10);
        let mut soft = ZipfQueryStream::new(keys.clone(), 0.5, 1);
        let mut hard = ZipfQueryStream::new(keys.clone(), 2.0, 1);
        let top_share = |batch: &[Vec<u8>]| {
            batch.iter().filter(|k| **k == keys[0]).count() as f64 / batch.len() as f64
        };
        let soft_share = top_share(&soft.next_batch(10_000));
        let hard_share = top_share(&hard.next_batch(10_000));
        assert!(
            hard_share > 2.0 * soft_share,
            "{hard_share} vs {soft_share}"
        );
    }
}
