//! Key-set generators.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashSet;

/// `n` unique uniformly random keys of exactly `key_len` bytes.
///
/// Fixed-length keys are prefix-free by construction, matching the paper's
/// evaluation (4–32-byte keys, §4.4). Deterministic in `seed`.
pub fn uniform_keys(n: usize, key_len: usize, seed: u64) -> Vec<Vec<u8>> {
    assert!(key_len >= 1, "keys must be non-empty");
    if key_len < 8 {
        let space = 256f64.powi(key_len as i32);
        assert!(
            (n as f64) <= space * 0.8,
            "cannot draw {n} unique keys of {key_len} bytes"
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let mut key = vec![0u8; key_len];
        rng.fill_bytes(&mut key);
        if seen.insert(key.clone()) {
            out.push(key);
        }
    }
    out
}

/// `n` dense big-endian integer keys of `key_len` bytes (≥ 8): the
/// "primary key of a growing table" scenario of §4.4 / Figure 10.
pub fn dense_keys(n: usize, key_len: usize) -> Vec<Vec<u8>> {
    assert!(key_len >= 8, "dense keys need at least 8 bytes");
    (0..n as u64)
        .map(|i| {
            let mut k = vec![0u8; key_len];
            k[key_len - 8..].copy_from_slice(&i.to_be_bytes());
            k
        })
        .collect()
}

/// A key set in which a `long_fraction` of keys exceed the 32-byte device
/// maximum (length `long_len`), the rest being `short_len` bytes — the
/// workload of the hybrid experiments (Fig. 13: "a tree with a controlled
/// percentage of long keys").
pub fn long_key_mix(
    n: usize,
    short_len: usize,
    long_len: usize,
    long_fraction: f64,
    seed: u64,
) -> Vec<Vec<u8>> {
    assert!(
        long_len > short_len,
        "long keys must be longer than short ones"
    );
    assert!((0.0..=1.0).contains(&long_fraction));
    let n_long = (n as f64 * long_fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    // Distinct leading byte spaces keep the mixture prefix-free: short keys
    // start 0x00-0x7F, long keys 0x80-0xFF.
    let mut seen = HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n - n_long {
        let mut key = vec![0u8; short_len];
        rng.fill_bytes(&mut key);
        key[0] &= 0x7F;
        if seen.insert(key.clone()) {
            out.push(key);
        }
    }
    while out.len() < n {
        let mut key = vec![0u8; long_len];
        rng.fill_bytes(&mut key);
        key[0] |= 0x80;
        if seen.insert(key.clone()) {
            out.push(key);
        }
    }
    // Interleave deterministically so batches mix short and long keys.
    let mut mixed = out;
    for i in (1..mixed.len()).rev() {
        let j = rng.gen_range(0..=i);
        mixed.swap(i, j);
    }
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_are_unique_and_sized() {
        let keys = uniform_keys(5000, 16, 1);
        assert_eq!(keys.len(), 5000);
        assert!(keys.iter().all(|k| k.len() == 16));
        let set: HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn uniform_keys_deterministic_in_seed() {
        assert_eq!(uniform_keys(100, 8, 7), uniform_keys(100, 8, 7));
        assert_ne!(uniform_keys(100, 8, 7), uniform_keys(100, 8, 8));
    }

    #[test]
    fn short_keyspace_guard() {
        // 4-byte keys: 2^32 space, drawing 1000 is fine.
        let keys = uniform_keys(1000, 4, 2);
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "unique keys")]
    fn oversubscribed_keyspace_rejected() {
        uniform_keys(300, 1, 3);
    }

    #[test]
    fn dense_keys_are_sorted_and_unique() {
        let keys = dense_keys(1000, 8);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let keys32 = dense_keys(10, 32);
        assert!(keys32.iter().all(|k| k.len() == 32));
        assert_eq!(&keys32[3][24..], &3u64.to_be_bytes());
    }

    #[test]
    fn long_key_mix_fraction() {
        let keys = long_key_mix(2000, 16, 48, 0.25, 42);
        assert_eq!(keys.len(), 2000);
        let long = keys.iter().filter(|k| k.len() == 48).count();
        assert_eq!(long, 500);
        // Prefix-free across the two families.
        assert!(keys
            .iter()
            .filter(|k| k.len() == 48)
            .all(|k| k[0] & 0x80 != 0));
        assert!(keys
            .iter()
            .filter(|k| k.len() == 16)
            .all(|k| k[0] & 0x80 == 0));
    }

    #[test]
    fn long_key_mix_zero_and_full() {
        assert!(long_key_mix(100, 8, 40, 0.0, 1)
            .iter()
            .all(|k| k.len() == 8));
        assert!(long_key_mix(100, 8, 40, 1.0, 1)
            .iter()
            .all(|k| k.len() == 40));
    }
}
