//! Synthetic BTC-2019 stand-in (Figure 12).
//!
//! The real Billion Triple Challenge dataset (Herrera, Hogan, Käfer 2019)
//! is tens of gigabytes of crawled RDF. The paper extracts "all keys of
//! 32 byte length" (15.4 M of them) and observes lower throughput than on
//! synthetic data because "long duplicate segments are quite common, which
//! adds computational overhead during prefix compression and increases the
//! overall tree depth" (§4.4).
//!
//! This generator reproduces exactly those structural properties with RDF
//! term shapes: a Zipf-skewed choice of namespace prefix (long shared
//! byte runs), repeated path segments, and an entity id — truncated or
//! padded to exactly 32 bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Namespace prefixes mimicking common RDF hosts (long shared runs).
const NAMESPACES: &[&str] = &[
    "http://dbpedia.org/resource/",
    "http://dbpedia.org/ontology/",
    "http://www.wikidata.org/entity/",
    "http://xmlns.com/foaf/0.1/per",
    "http://schema.org/Organization/",
    "http://purl.org/dc/terms/subj",
    "http://www.w3.org/2002/07/owl#",
    "https://www.openstreetmap.org/",
];

/// Repeated path segments (the "long duplicate segments" of §4.4).
const SEGMENTS: &[&str] = &[
    "Category:",
    "Person/",
    "Place/",
    "node/",
    "Q",
    "item/",
    "rev/",
];

/// Zipf-ish index: heavy skew toward low indices.
fn zipf_index(rng: &mut StdRng, n: usize) -> usize {
    // Simple inverse-power transform (s ≈ 1): cheap and deterministic.
    let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
    let idx = ((n as f64).powf(u) - 1.0) as usize;
    idx.min(n - 1)
}

/// Hex digits of entity id preserved in every key, so the 32-byte
/// truncation never destroys uniqueness (12 hex chars = 2^48 ids per
/// prefix — ample for any generatable `n`).
const ID_CHARS: usize = 12;

/// `n` unique 32-byte BTC-like keys.
pub fn btc_keys(n: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB7C2019);
    let mut seen = HashSet::with_capacity(n * 2);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let ns = NAMESPACES[zipf_index(&mut rng, NAMESPACES.len())];
        let seg = SEGMENTS[zipf_index(&mut rng, SEGMENTS.len())];
        let id: u64 = rng.gen::<u64>() & 0xFFFF_FFFF_FFFF;
        // Long URI prefix truncated so the id always fits: exactly the
        // "long duplicate segments" shape of §4.4, without losing entropy.
        let mut key = format!("{ns}{seg}").into_bytes();
        key.truncate(32 - ID_CHARS);
        key.extend_from_slice(format!("{id:012x}").as_bytes());
        key.resize(32, b'_');
        if seen.insert(key.clone()) {
            out.push(key);
        }
    }
    out
}

/// Structural summary used by tests and the figure harness to verify the
/// generator has the §4.4 properties.
#[derive(Debug, Clone, Copy)]
pub struct BtcProfile {
    /// Mean length of the longest common prefix between lexicographic
    /// neighbours.
    pub mean_neighbor_lcp: f64,
    /// Fraction of keys sharing the most popular 8-byte prefix.
    pub top_prefix_share: f64,
}

/// Profile a key set.
pub fn profile(keys: &[Vec<u8>]) -> BtcProfile {
    let mut sorted: Vec<&Vec<u8>> = keys.iter().collect();
    sorted.sort();
    let mut total_lcp = 0usize;
    for w in sorted.windows(2) {
        total_lcp += w[0]
            .iter()
            .zip(w[1].iter())
            .take_while(|(a, b)| a == b)
            .count();
    }
    let mean_neighbor_lcp = if sorted.len() > 1 {
        total_lcp as f64 / (sorted.len() - 1) as f64
    } else {
        0.0
    };
    let mut counts = std::collections::HashMap::new();
    for k in keys {
        *counts.entry(&k[..8.min(k.len())]).or_insert(0usize) += 1;
    }
    let top = counts.values().copied().max().unwrap_or(0);
    BtcProfile {
        mean_neighbor_lcp,
        top_prefix_share: top as f64 / keys.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::uniform_keys;

    #[test]
    fn keys_are_unique_32_bytes() {
        let keys = btc_keys(5000, 1);
        assert_eq!(keys.len(), 5000);
        assert!(keys.iter().all(|k| k.len() == 32));
        let set: HashSet<_> = keys.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(btc_keys(500, 9), btc_keys(500, 9));
        assert_ne!(btc_keys(500, 9), btc_keys(500, 10));
    }

    #[test]
    fn much_longer_shared_prefixes_than_uniform() {
        let btc = profile(&btc_keys(4000, 2));
        let uni = profile(&uniform_keys(4000, 32, 2));
        // §4.4: long duplicate segments -> deep shared prefixes.
        assert!(
            btc.mean_neighbor_lcp > uni.mean_neighbor_lcp * 4.0,
            "btc lcp {} vs uniform {}",
            btc.mean_neighbor_lcp,
            uni.mean_neighbor_lcp
        );
        assert!(btc.mean_neighbor_lcp > 10.0);
    }

    #[test]
    fn skewed_namespace_distribution() {
        let p = profile(&btc_keys(4000, 3));
        // The Zipf skew concentrates a visible share on one namespace.
        assert!(p.top_prefix_share > 0.2, "share {}", p.top_prefix_share);
    }

    #[test]
    fn keys_are_prefix_free_by_fixed_length() {
        let keys = btc_keys(1000, 4);
        // Fixed 32-byte length: no key can prefix another.
        let mut art = cuart_art_check(&keys);
        assert_eq!(art.len(), 1000);
        assert!(art.get(&keys[17]).is_some());
        art.remove(&keys[17]);
        assert_eq!(art.len(), 999);
    }

    fn cuart_art_check(keys: &[Vec<u8>]) -> cuart_art::Art<u64> {
        let mut art = cuart_art::Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64)
                .expect("fixed-length keys are prefix-free");
        }
        art
    }
}
