//! Versioned, length-prefixed binary wire protocol.
//!
//! Everything on the wire is little-endian and CRC-guarded:
//!
//! * **Handshake** — each side opens with 8 bytes: the 4-byte magic
//!   `b"CuRT"`, a `u16` protocol version and a reserved `u16` (zero). The
//!   server answers with its own hello; a magic or version mismatch is
//!   answered with a typed error frame and the connection is closed —
//!   never silently dropped.
//! * **Frame** — `u32` payload length, `u32` CRC-32 of the payload (the
//!   same CRC-32/ISO-HDLC the snapshot format uses), then the payload.
//!   Length is capped ([`MAX_FRAME_BYTES`]) so a garbage header cannot
//!   balloon memory.
//! * **Request payload** — `u64` request id (echoed verbatim in the
//!   response, so pipelined responses can return out of order), `u8`
//!   opcode, `u32` per-op deadline in µs (0 = none), then the op body.
//! * **Response payload** — `u64` request id, `u8` status (0 = OK, else
//!   an [`ErrorCode`]), then the result body (or an error message).
//!
//! Key/value encodings mirror the in-process API: keys are
//! `u16`-length-prefixed byte strings, values and statuses are `u64`s,
//! range results are row lists of `(key, value)` pairs.

use cuart::persist::crc32;
use cuart_host::scheduler::RangeRows;
use std::fmt;

/// Leading magic of every handshake hello.
pub const MAGIC: [u8; 4] = *b"CuRT";
/// Protocol version spoken by this build.
pub const VERSION: u16 = 1;
/// Hard cap on a frame's payload length; a header announcing more is a
/// decode error, not an allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;
/// Bytes of a handshake hello (magic + version + reserved).
pub const HELLO_BYTES: usize = 8;
/// Bytes of a frame header (length + CRC).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Request opcodes. Single-op codes carry exactly one operation; `*Batch`
/// codes carry a `u32`-counted list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// One point lookup (one key, one `u64` result).
    Lookup = 1,
    /// One point update (`DELETE` as the value deletes).
    Update = 2,
    /// One point insert.
    Insert = 3,
    /// One inclusive range query (`[lo, hi]`, one row list back).
    Range = 4,
    /// Liveness probe; empty body, empty OK response.
    Ping = 5,
    /// Ask the server to begin its drain-safe shutdown (honored only when
    /// the server was started with remote shutdown allowed).
    Shutdown = 6,
    /// Batched point lookups.
    LookupBatch = 17,
    /// Batched point updates.
    UpdateBatch = 18,
    /// Batched point inserts.
    InsertBatch = 19,
    /// Batched range queries.
    RangeBatch = 20,
}

impl Opcode {
    /// Decode a wire opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            1 => Opcode::Lookup,
            2 => Opcode::Update,
            3 => Opcode::Insert,
            4 => Opcode::Range,
            5 => Opcode::Ping,
            6 => Opcode::Shutdown,
            17 => Opcode::LookupBatch,
            18 => Opcode::UpdateBatch,
            19 => Opcode::InsertBatch,
            20 => Opcode::RangeBatch,
            _ => return None,
        })
    }

    /// Stable lowercase identifier (span/trace attribute).
    pub fn as_str(self) -> &'static str {
        match self {
            Opcode::Lookup => "lookup",
            Opcode::Update => "update",
            Opcode::Insert => "insert",
            Opcode::Range => "range",
            Opcode::Ping => "ping",
            Opcode::Shutdown => "shutdown",
            Opcode::LookupBatch => "lookup_batch",
            Opcode::UpdateBatch => "update_batch",
            Opcode::InsertBatch => "insert_batch",
            Opcode::RangeBatch => "range_batch",
        }
    }
}

/// Typed error codes carried in response frames, mirroring
/// [`SchedError`](cuart_host::SchedError) and the session's
/// [`CuartError`](cuart::CuartError) (rendered into `Session`), plus the
/// wire-level failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed frame or body (truncation, bad counts, trailing bytes).
    Protocol = 1,
    /// Handshake magic/version mismatch.
    BadVersion = 2,
    /// Frame CRC did not match its payload.
    BadCrc = 3,
    /// Frame length over [`MAX_FRAME_BYTES`].
    TooLarge = 4,
    /// Unknown or refused opcode.
    Unsupported = 5,
    /// `SchedError::QueueFull` — admission refused, fail-fast.
    QueueFull = 16,
    /// `SchedError::AdmissionTimeout`.
    AdmissionTimeout = 17,
    /// `SchedError::DeadlineExceeded` — shed at coalesce time.
    DeadlineExceeded = 18,
    /// `SchedError::Shutdown` — the backend is draining.
    Shutdown = 19,
    /// `SchedError::Disconnected` — the executor is gone.
    Disconnected = 20,
    /// `SchedError::ExecutorPanicked`.
    ExecutorPanicked = 21,
    /// `SchedError::Session` — a rendered `CuartError`.
    Session = 22,
    /// `SchedError::NoShards`.
    NoShards = 23,
}

impl ErrorCode {
    /// Decode a wire status byte (0 is OK, not an error code).
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::BadVersion,
            3 => ErrorCode::BadCrc,
            4 => ErrorCode::TooLarge,
            5 => ErrorCode::Unsupported,
            16 => ErrorCode::QueueFull,
            17 => ErrorCode::AdmissionTimeout,
            18 => ErrorCode::DeadlineExceeded,
            19 => ErrorCode::Shutdown,
            20 => ErrorCode::Disconnected,
            21 => ErrorCode::ExecutorPanicked,
            22 => ErrorCode::Session,
            23 => ErrorCode::NoShards,
            _ => return None,
        })
    }

    /// The scheduler error this wire code maps back to client-side.
    pub fn to_sched_error(self, message: &str) -> Option<cuart_host::SchedError> {
        use cuart_host::SchedError;
        Some(match self {
            ErrorCode::QueueFull => SchedError::QueueFull,
            ErrorCode::AdmissionTimeout => SchedError::AdmissionTimeout,
            ErrorCode::DeadlineExceeded => SchedError::DeadlineExceeded,
            ErrorCode::Shutdown => SchedError::Shutdown,
            ErrorCode::Disconnected => SchedError::Disconnected,
            ErrorCode::ExecutorPanicked => SchedError::ExecutorPanicked(message.to_string()),
            ErrorCode::Session => SchedError::Session(message.to_string()),
            ErrorCode::NoShards => SchedError::NoShards,
            _ => return None,
        })
    }
}

/// Map a backend refusal onto its wire code.
pub fn error_code_of(e: &cuart_host::SchedError) -> ErrorCode {
    use cuart_host::SchedError;
    match e {
        SchedError::QueueFull => ErrorCode::QueueFull,
        SchedError::AdmissionTimeout => ErrorCode::AdmissionTimeout,
        SchedError::DeadlineExceeded => ErrorCode::DeadlineExceeded,
        SchedError::Shutdown => ErrorCode::Shutdown,
        SchedError::Disconnected => ErrorCode::Disconnected,
        SchedError::ExecutorPanicked(_) => ErrorCode::ExecutorPanicked,
        SchedError::Session(_) => ErrorCode::Session,
        SchedError::NoShards => ErrorCode::NoShards,
    }
}

/// Why a wire blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes / trailing bytes / impossible counts.
    Truncated,
    /// Handshake magic mismatch.
    BadMagic,
    /// Handshake version this build does not speak.
    BadVersion(u16),
    /// Frame CRC mismatch.
    BadCrc,
    /// Announced frame length over [`MAX_FRAME_BYTES`].
    TooLarge(usize),
    /// Unknown opcode or status byte.
    BadTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated or malformed payload"),
            WireError::BadMagic => write!(f, "bad handshake magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadCrc => write!(f, "frame CRC mismatch"),
            WireError::TooLarge(n) => write!(f, "frame length {n} over cap"),
            WireError::BadTag(b) => write!(f, "unknown opcode/status byte {b}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The wire code a decode failure is answered with.
pub fn wire_error_code(e: &WireError) -> ErrorCode {
    match e {
        WireError::Truncated => ErrorCode::Protocol,
        WireError::BadMagic | WireError::BadVersion(_) => ErrorCode::BadVersion,
        WireError::BadCrc => ErrorCode::BadCrc,
        WireError::TooLarge(_) => ErrorCode::TooLarge,
        WireError::BadTag(_) => ErrorCode::Unsupported,
    }
}

/// One decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    /// Per-op latency budget in microseconds; 0 means none.
    pub deadline_us: u32,
    /// The operation.
    pub op: Op,
}

/// A decoded operation body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Point lookups (one key for `Lookup`, many for `LookupBatch`).
    Lookup(Vec<Vec<u8>>),
    /// Point updates.
    Update(Vec<(Vec<u8>, u64)>),
    /// Point inserts.
    Insert(Vec<(Vec<u8>, u64)>),
    /// Inclusive range queries.
    Range(Vec<(Vec<u8>, Vec<u8>)>),
    /// Liveness probe.
    Ping,
    /// Drain-safe shutdown request.
    Shutdown,
}

impl Op {
    /// Number of point operations this request admits into the scheduler.
    pub fn ops(&self) -> usize {
        match self {
            Op::Lookup(keys) => keys.len(),
            Op::Update(ops) | Op::Insert(ops) => ops.len(),
            Op::Range(ranges) => ranges.len(),
            Op::Ping | Op::Shutdown => 0,
        }
    }

    /// The opcode this op encodes as (batch form for multi-op bodies).
    pub fn opcode(&self) -> Opcode {
        match self {
            Op::Lookup(keys) if keys.len() == 1 => Opcode::Lookup,
            Op::Lookup(_) => Opcode::LookupBatch,
            Op::Update(ops) if ops.len() == 1 => Opcode::Update,
            Op::Update(_) => Opcode::UpdateBatch,
            Op::Insert(ops) if ops.len() == 1 => Opcode::Insert,
            Op::Insert(_) => Opcode::InsertBatch,
            Op::Range(ranges) if ranges.len() == 1 => Opcode::Range,
            Op::Range(_) => Opcode::RangeBatch,
            Op::Ping => Opcode::Ping,
            Op::Shutdown => Opcode::Shutdown,
        }
    }
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Echo of the request id.
    pub id: u64,
    /// The outcome.
    pub body: RespBody,
}

/// A decoded response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespBody {
    /// Lookup results / update statuses / insert statuses, one per op.
    Values(Vec<u64>),
    /// Range rows, one list per queried range.
    Rows(Vec<RangeRows>),
    /// Empty OK (ping, shutdown ack).
    Ok,
    /// Typed failure with a rendered message.
    Error(ErrorCode, String),
}

// ---------------------------------------------------------------------------
// Primitive cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.at.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes16(&mut self) -> Result<Vec<u8>, WireError> {
        let n = self.u16()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Truncated)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes16(out: &mut Vec<u8>, b: &[u8]) -> Result<(), WireError> {
    let n = u16::try_from(b.len()).map_err(|_| WireError::TooLarge(b.len()))?;
    put_u16(out, n);
    out.extend_from_slice(b);
    Ok(())
}

/// A count that must be consistent with at least `min_bytes_per` bytes of
/// remaining payload — rejects absurd counts before allocating.
fn checked_count(c: &Cursor<'_>, count: u32, min_bytes_per: usize) -> Result<usize, WireError> {
    let count = count as usize;
    let need = count
        .checked_mul(min_bytes_per)
        .ok_or(WireError::Truncated)?;
    if c.buf.len().saturating_sub(c.at) < need {
        return Err(WireError::Truncated);
    }
    Ok(count)
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

/// Encode a handshake hello for `version`.
pub fn encode_hello(version: u16) -> [u8; HELLO_BYTES] {
    let mut out = [0u8; HELLO_BYTES];
    out[..4].copy_from_slice(&MAGIC);
    out[4..6].copy_from_slice(&version.to_le_bytes());
    out
}

/// Validate a hello and return the peer's version. Any version other than
/// [`VERSION`] is refused — there is exactly one protocol revision so far,
/// so negotiation is equality.
pub fn decode_hello(buf: &[u8]) -> Result<u16, WireError> {
    if buf.len() != HELLO_BYTES {
        return Err(WireError::Truncated);
    }
    if buf[..4] != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    Ok(version)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Wrap a payload in a frame: length, CRC-32, payload.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(payload));
    out.extend_from_slice(payload);
    out
}

/// Validate a frame header; returns the payload length to read next.
pub fn decode_frame_header(header: &[u8]) -> Result<(usize, u32), WireError> {
    if header.len() != FRAME_HEADER_BYTES {
        return Err(WireError::Truncated);
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_BYTES {
        return Err(WireError::TooLarge(len));
    }
    Ok((len, crc))
}

/// Verify a payload against its header CRC.
pub fn check_frame_crc(payload: &[u8], crc: u32) -> Result<(), WireError> {
    if crc32(payload) != crc {
        return Err(WireError::BadCrc);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Encode a request into a frame payload (not yet framed).
pub fn encode_request(req: &Request) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    put_u64(&mut out, req.id);
    out.push(req.op.opcode() as u8);
    put_u32(&mut out, req.deadline_us);
    match &req.op {
        Op::Lookup(keys) => {
            if keys.len() == 1 {
                put_bytes16(&mut out, &keys[0])?;
            } else {
                put_u32(&mut out, keys.len() as u32);
                for k in keys {
                    put_bytes16(&mut out, k)?;
                }
            }
        }
        Op::Update(ops) | Op::Insert(ops) => {
            if ops.len() != 1 {
                put_u32(&mut out, ops.len() as u32);
            }
            for (k, v) in ops {
                put_bytes16(&mut out, k)?;
                put_u64(&mut out, *v);
            }
        }
        Op::Range(ranges) => {
            if ranges.len() != 1 {
                put_u32(&mut out, ranges.len() as u32);
            }
            for (lo, hi) in ranges {
                put_bytes16(&mut out, lo)?;
                put_bytes16(&mut out, hi)?;
            }
        }
        Op::Ping | Op::Shutdown => {}
    }
    Ok(out)
}

/// Decode a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let opcode = c.u8()?;
    let opcode = Opcode::from_u8(opcode).ok_or(WireError::BadTag(opcode))?;
    let deadline_us = c.u32()?;
    let op = match opcode {
        Opcode::Lookup => Op::Lookup(vec![c.bytes16()?]),
        Opcode::LookupBatch => {
            let n = c.u32()?;
            let n = checked_count(&c, n, 2)?;
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                keys.push(c.bytes16()?);
            }
            Op::Lookup(keys)
        }
        Opcode::Update | Opcode::Insert => {
            let op = vec![(c.bytes16()?, c.u64()?)];
            if opcode == Opcode::Update {
                Op::Update(op)
            } else {
                Op::Insert(op)
            }
        }
        Opcode::UpdateBatch | Opcode::InsertBatch => {
            let n = c.u32()?;
            let n = checked_count(&c, n, 10)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push((c.bytes16()?, c.u64()?));
            }
            if opcode == Opcode::UpdateBatch {
                Op::Update(ops)
            } else {
                Op::Insert(ops)
            }
        }
        Opcode::Range => Op::Range(vec![(c.bytes16()?, c.bytes16()?)]),
        Opcode::RangeBatch => {
            let n = c.u32()?;
            let n = checked_count(&c, n, 4)?;
            let mut ranges = Vec::with_capacity(n);
            for _ in 0..n {
                ranges.push((c.bytes16()?, c.bytes16()?));
            }
            Op::Range(ranges)
        }
        Opcode::Ping => Op::Ping,
        Opcode::Shutdown => Op::Shutdown,
    };
    c.done()?;
    Ok(Request {
        id,
        deadline_us,
        op,
    })
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Response status byte for OK bodies carrying values.
const STATUS_VALUES: u8 = 0;
/// Response status byte for OK bodies carrying range rows.
const STATUS_ROWS: u8 = 200;
/// Response status byte for empty OK bodies.
const STATUS_OK: u8 = 201;

/// Encode a response into a frame payload (not yet framed).
pub fn encode_response(resp: &Response) -> Result<Vec<u8>, WireError> {
    let mut out = Vec::new();
    put_u64(&mut out, resp.id);
    match &resp.body {
        RespBody::Values(vals) => {
            out.push(STATUS_VALUES);
            put_u32(&mut out, vals.len() as u32);
            for v in vals {
                put_u64(&mut out, *v);
            }
        }
        RespBody::Rows(per_range) => {
            out.push(STATUS_ROWS);
            put_u32(&mut out, per_range.len() as u32);
            for rows in per_range {
                put_u32(&mut out, rows.len() as u32);
                for (k, v) in rows {
                    put_bytes16(&mut out, k)?;
                    put_u64(&mut out, *v);
                }
            }
        }
        RespBody::Ok => out.push(STATUS_OK),
        RespBody::Error(code, msg) => {
            out.push(*code as u8);
            let msg = msg.as_bytes();
            let n = msg.len().min(u16::MAX as usize);
            put_u16(&mut out, n as u16);
            out.extend_from_slice(&msg[..n]);
        }
    }
    Ok(out)
}

/// Decode a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let status = c.u8()?;
    let body = match status {
        STATUS_VALUES => {
            let n = c.u32()?;
            let n = checked_count(&c, n, 8)?;
            let mut vals = Vec::with_capacity(n);
            for _ in 0..n {
                vals.push(c.u64()?);
            }
            RespBody::Values(vals)
        }
        STATUS_ROWS => {
            let n = c.u32()?;
            let n = checked_count(&c, n, 4)?;
            let mut per_range = Vec::with_capacity(n);
            for _ in 0..n {
                let rows_n = c.u32()?;
                let rows_n = checked_count(&c, rows_n, 10)?;
                let mut rows = Vec::with_capacity(rows_n);
                for _ in 0..rows_n {
                    rows.push((c.bytes16()?, c.u64()?));
                }
                per_range.push(rows);
            }
            RespBody::Rows(per_range)
        }
        STATUS_OK => RespBody::Ok,
        code => {
            let code = ErrorCode::from_u8(code).ok_or(WireError::BadTag(code))?;
            let msg = c.bytes16()?;
            RespBody::Error(code, String::from_utf8_lossy(&msg).into_owned())
        }
    };
    c.done()?;
    Ok(Response { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn req(op: Op) -> Request {
        Request {
            id: 42,
            deadline_us: 1_000,
            op,
        }
    }

    fn roundtrip_request(r: &Request) {
        let payload = encode_request(r).unwrap();
        let framed = encode_frame(&payload);
        let (len, crc) = decode_frame_header(&framed[..FRAME_HEADER_BYTES]).unwrap();
        assert_eq!(len, payload.len());
        check_frame_crc(&framed[FRAME_HEADER_BYTES..], crc).unwrap();
        assert_eq!(&decode_request(&payload).unwrap(), r);
    }

    fn roundtrip_response(r: &Response) {
        let payload = encode_response(r).unwrap();
        assert_eq!(&decode_response(&payload).unwrap(), r);
    }

    #[test]
    fn hello_roundtrip_and_mismatches() {
        let hello = encode_hello(VERSION);
        assert_eq!(decode_hello(&hello), Ok(VERSION));
        let mut bad_magic = hello;
        bad_magic[0] = b'X';
        assert_eq!(decode_hello(&bad_magic), Err(WireError::BadMagic));
        let wrong = encode_hello(VERSION + 7);
        assert_eq!(
            decode_hello(&wrong),
            Err(WireError::BadVersion(VERSION + 7))
        );
        assert_eq!(decode_hello(&hello[..4]), Err(WireError::Truncated));
    }

    #[test]
    fn every_op_shape_roundtrips() {
        roundtrip_request(&req(Op::Lookup(vec![b"k".to_vec()])));
        roundtrip_request(&req(Op::Lookup(vec![b"a".to_vec(), Vec::new()])));
        roundtrip_request(&req(Op::Update(vec![(b"k".to_vec(), 7)])));
        roundtrip_request(&req(Op::Update(vec![
            (b"a".to_vec(), 1),
            (b"b".to_vec(), 2),
        ])));
        roundtrip_request(&req(Op::Insert(vec![(b"k".to_vec(), u64::MAX)])));
        roundtrip_request(&req(Op::Insert(vec![(Vec::new(), 0), (b"z".to_vec(), 9)])));
        roundtrip_request(&req(Op::Range(vec![(b"a".to_vec(), b"z".to_vec())])));
        roundtrip_request(&req(Op::Range(vec![
            (b"a".to_vec(), b"m".to_vec()),
            (b"n".to_vec(), b"z".to_vec()),
        ])));
        roundtrip_request(&req(Op::Ping));
        roundtrip_request(&req(Op::Shutdown));
    }

    #[test]
    fn every_response_shape_roundtrips() {
        roundtrip_response(&Response {
            id: 1,
            body: RespBody::Values(vec![0, 7, u64::MAX]),
        });
        roundtrip_response(&Response {
            id: 2,
            body: RespBody::Rows(vec![Vec::new(), vec![(b"k".to_vec(), 9)]]),
        });
        roundtrip_response(&Response {
            id: 3,
            body: RespBody::Ok,
        });
        roundtrip_response(&Response {
            id: 4,
            body: RespBody::Error(ErrorCode::QueueFull, "full".into()),
        });
    }

    #[test]
    fn corrupt_frames_are_rejected_not_panicked() {
        let payload = encode_request(&req(Op::Ping)).unwrap();
        let framed = encode_frame(&payload);
        // Flip a payload byte: CRC must catch it.
        let (_, crc) = decode_frame_header(&framed[..FRAME_HEADER_BYTES]).unwrap();
        let mut body = framed[FRAME_HEADER_BYTES..].to_vec();
        body[0] ^= 0xFF;
        assert_eq!(check_frame_crc(&body, crc), Err(WireError::BadCrc));
        // Oversized header length.
        let mut hdr = [0u8; FRAME_HEADER_BYTES];
        hdr[..4].copy_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(
            decode_frame_header(&hdr),
            Err(WireError::TooLarge(_))
        ));
        // Truncated payloads at every length never panic.
        for cut in 0..payload.len() {
            let _ = decode_request(&payload[..cut]);
        }
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocating() {
        // LookupBatch claiming u32::MAX keys with a near-empty body.
        let mut p = Vec::new();
        p.extend_from_slice(&7u64.to_le_bytes());
        p.push(Opcode::LookupBatch as u8);
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&p), Err(WireError::Truncated));
    }

    #[test]
    fn error_codes_map_to_sched_errors_and_back() {
        use cuart_host::SchedError;
        let errs = [
            SchedError::QueueFull,
            SchedError::AdmissionTimeout,
            SchedError::DeadlineExceeded,
            SchedError::Shutdown,
            SchedError::Disconnected,
            SchedError::ExecutorPanicked("boom".into()),
            SchedError::Session("oom".into()),
            SchedError::NoShards,
        ];
        for e in errs {
            let code = error_code_of(&e);
            let back = code.to_sched_error(&e.to_string()).unwrap();
            match (&e, &back) {
                (SchedError::ExecutorPanicked(_), SchedError::ExecutorPanicked(_)) => {}
                (SchedError::Session(_), SchedError::Session(_)) => {}
                _ => assert_eq!(e, back),
            }
        }
    }

    proptest! {
        #[test]
        fn request_roundtrip_property(
            id in any::<u64>(),
            deadline in any::<u32>(),
            keys in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 1..20),
            values in proptest::collection::vec(any::<u64>(), 20),
            kind in 0u8..4,
        ) {
            let op = match kind {
                0 => Op::Lookup(keys.clone()),
                1 => Op::Update(keys.iter().cloned().zip(values.iter().copied()).collect()),
                2 => Op::Insert(keys.iter().cloned().zip(values.iter().copied()).collect()),
                _ => {
                    let mut ranges = Vec::new();
                    for pair in keys.chunks(2) {
                        let lo = pair[0].clone();
                        let hi = pair.get(1).cloned().unwrap_or_default();
                        ranges.push((lo, hi));
                    }
                    Op::Range(ranges)
                }
            };
            let r = Request { id, deadline_us: deadline, op };
            let payload = encode_request(&r).unwrap();
            prop_assert_eq!(decode_request(&payload).unwrap(), r);
        }

        #[test]
        fn response_roundtrip_property(
            id in any::<u64>(),
            vals in proptest::collection::vec(any::<u64>(), 0..50),
        ) {
            let r = Response { id, body: RespBody::Values(vals) };
            let payload = encode_response(&r).unwrap();
            prop_assert_eq!(decode_response(&payload).unwrap(), r);
        }

        #[test]
        fn random_bytes_never_panic_decoders(
            bytes in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
            let _ = decode_hello(&bytes);
            if bytes.len() >= FRAME_HEADER_BYTES {
                let _ = decode_frame_header(&bytes[..FRAME_HEADER_BYTES]);
            }
        }
    }
}
