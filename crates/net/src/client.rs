//! Blocking client: one connection per [`NetClient`], a [`NetPool`] for
//! reuse across threads, and chunked batch helpers.
//!
//! A `NetClient` keeps exactly one request in flight, so responses arrive
//! in order; the request id is still checked defensively. Concurrency
//! comes from holding several pooled clients (one per thread), which is
//! how the bench and the loopback tests drive a server hard.

use crate::proto::{self, Op, RespBody, Response};
use cuart_host::scheduler::RangeRows;
use cuart_host::SchedError;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, EOF mid-frame).
    Io(io::Error),
    /// The peer sent bytes this protocol build cannot decode.
    Wire(proto::WireError),
    /// The server answered with a typed error frame.
    Remote(proto::ErrorCode, String),
}

impl NetError {
    /// If the remote error mirrors a [`SchedError`], recover it — lets
    /// callers match on backend refusals (queue full, shed, breaker)
    /// exactly as they would in-process.
    pub fn as_sched_error(&self) -> Option<SchedError> {
        match self {
            NetError::Remote(code, msg) => code.to_sched_error(msg),
            _ => None,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net io: {e}"),
            NetError::Wire(e) => write!(f, "net wire: {e}"),
            NetError::Remote(code, msg) => write!(f, "server error {code:?}: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

impl From<proto::WireError> for NetError {
    fn from(e: proto::WireError) -> NetError {
        NetError::Wire(e)
    }
}

/// One connected, handshaken client.
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    /// Latency budget attached to every request, in µs (0 = none).
    deadline_us: u32,
}

impl NetClient {
    /// Connect and handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(&proto::encode_hello(proto::VERSION))?;
        let mut hello = [0u8; proto::HELLO_BYTES];
        stream.read_exact(&mut hello)?;
        proto::decode_hello(&hello)?;
        Ok(NetClient {
            stream,
            next_id: 1,
            deadline_us: 0,
        })
    }

    /// Attach a per-op latency budget to every subsequent request (the
    /// server maps it onto the scheduler's deadline shedding). Saturates
    /// at ~71 minutes (`u32` µs).
    pub fn set_deadline(&mut self, budget: Option<Duration>) {
        self.deadline_us = match budget {
            None => 0,
            Some(b) => u32::try_from(b.as_micros()).unwrap_or(u32::MAX).max(1),
        };
    }

    /// Send one op and wait for its response body.
    fn call(&mut self, op: Op) -> Result<RespBody, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let req = proto::Request {
            id,
            deadline_us: self.deadline_us,
            op,
        };
        let payload = proto::encode_request(&req)?;
        self.stream.write_all(&proto::encode_frame(&payload))?;
        let resp = self.read_response()?;
        // One request in flight → ids match unless the stream desynced.
        if resp.id != id && resp.id != 0 {
            return Err(NetError::Wire(proto::WireError::Truncated));
        }
        Ok(resp.body)
    }

    fn read_response(&mut self) -> Result<Response, NetError> {
        let mut header = [0u8; proto::FRAME_HEADER_BYTES];
        self.stream.read_exact(&mut header)?;
        let (len, crc) = proto::decode_frame_header(&header)?;
        let mut payload = vec![0u8; len];
        self.stream.read_exact(&mut payload)?;
        proto::check_frame_crc(&payload, crc)?;
        Ok(proto::decode_response(&payload)?)
    }

    fn values(&mut self, op: Op) -> Result<Vec<u64>, NetError> {
        match self.call(op)? {
            RespBody::Values(v) => Ok(v),
            RespBody::Error(code, msg) => Err(NetError::Remote(code, msg)),
            _ => Err(NetError::Wire(proto::WireError::Truncated)),
        }
    }

    /// Point lookups; one result per key in order.
    pub fn lookup(&mut self, keys: Vec<Vec<u8>>) -> Result<Vec<u64>, NetError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        self.values(Op::Lookup(keys))
    }

    /// One point lookup.
    pub fn lookup_one(&mut self, key: Vec<u8>) -> Result<u64, NetError> {
        let mut v = self.values(Op::Lookup(vec![key]))?;
        v.pop().ok_or(NetError::Wire(proto::WireError::Truncated))
    }

    /// Point updates; one status per op.
    pub fn update(&mut self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, NetError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        self.values(Op::Update(ops))
    }

    /// Point inserts; one status per op.
    pub fn insert(&mut self, ops: Vec<(Vec<u8>, u64)>) -> Result<Vec<u64>, NetError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        self.values(Op::Insert(ops))
    }

    /// Inclusive range queries; one sorted row list per `[lo, hi]` pair.
    pub fn range(&mut self, ranges: Vec<(Vec<u8>, Vec<u8>)>) -> Result<Vec<RangeRows>, NetError> {
        if ranges.is_empty() {
            return Ok(Vec::new());
        }
        match self.call(Op::Range(ranges))? {
            RespBody::Rows(rows) => Ok(rows),
            RespBody::Error(code, msg) => Err(NetError::Remote(code, msg)),
            _ => Err(NetError::Wire(proto::WireError::Truncated)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), NetError> {
        match self.call(Op::Ping)? {
            RespBody::Ok => Ok(()),
            RespBody::Error(code, msg) => Err(NetError::Remote(code, msg)),
            _ => Err(NetError::Wire(proto::WireError::Truncated)),
        }
    }

    /// Ask the server to begin its drain-safe shutdown (the server must
    /// have been started with remote shutdown allowed).
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(Op::Shutdown)? {
            RespBody::Ok => Ok(()),
            RespBody::Error(code, msg) => Err(NetError::Remote(code, msg)),
            _ => Err(NetError::Wire(proto::WireError::Truncated)),
        }
    }

    /// Batch helper: lookups in frames of at most `chunk` keys, results
    /// concatenated in key order. Keeps any single frame (and the
    /// server-side admission burst) bounded while amortizing the
    /// round-trip over large key lists.
    pub fn lookup_chunked(
        &mut self,
        keys: Vec<Vec<u8>>,
        chunk: usize,
    ) -> Result<Vec<u64>, NetError> {
        let chunk = chunk.max(1);
        let mut out = Vec::with_capacity(keys.len());
        let mut keys = keys;
        while !keys.is_empty() {
            let rest = keys.split_off(keys.len().min(chunk));
            out.extend(self.lookup(keys)?);
            keys = rest;
        }
        Ok(out)
    }

    /// Batch helper: updates in frames of at most `chunk` ops.
    pub fn update_chunked(
        &mut self,
        ops: Vec<(Vec<u8>, u64)>,
        chunk: usize,
    ) -> Result<Vec<u64>, NetError> {
        let chunk = chunk.max(1);
        let mut out = Vec::with_capacity(ops.len());
        let mut ops = ops;
        while !ops.is_empty() {
            let rest = ops.split_off(ops.len().min(chunk));
            out.extend(self.update(ops)?);
            ops = rest;
        }
        Ok(out)
    }
}

/// A small connection pool over one server address. `get()` hands out an
/// idle connection or dials a new one; dropping the guard returns it.
pub struct NetPool {
    addr: String,
    idle: Mutex<Vec<NetClient>>,
    max_idle: usize,
}

impl NetPool {
    /// A pool dialing `addr`, keeping up to `max_idle` parked connections.
    pub fn new(addr: impl Into<String>, max_idle: usize) -> NetPool {
        NetPool {
            addr: addr.into(),
            idle: Mutex::new(Vec::new()),
            max_idle: max_idle.max(1),
        }
    }

    /// An idle pooled connection, or a freshly dialed one.
    pub fn get(&self) -> Result<PooledClient<'_>, NetError> {
        let parked = { self.idle.lock().expect("net pool lock").pop() };
        let client = match parked {
            Some(c) => c,
            None => NetClient::connect(self.addr.as_str())?,
        };
        Ok(PooledClient {
            pool: self,
            client: Some(client),
        })
    }

    fn put_back(&self, client: NetClient) {
        let mut idle = self.idle.lock().expect("net pool lock");
        if idle.len() < self.max_idle {
            idle.push(client);
        }
    }
}

/// RAII guard around a pooled [`NetClient`].
pub struct PooledClient<'a> {
    pool: &'a NetPool,
    client: Option<NetClient>,
}

impl Deref for PooledClient<'_> {
    type Target = NetClient;

    fn deref(&self) -> &NetClient {
        self.client.as_ref().expect("pooled client taken")
    }
}

impl DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut NetClient {
        self.client.as_mut().expect("pooled client taken")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(c) = self.client.take() {
            self.pool.put_back(c);
        }
    }
}
