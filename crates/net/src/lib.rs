//! cuart-net: the binary RPC serving subsystem.
//!
//! Puts the scheduler stack behind a TCP socket with the same semantics
//! it has in-process: CRC-guarded, versioned frames ([`proto`]), a
//! backpressure-aware multi-threaded server with drain-safe shutdown
//! ([`server`]), and a blocking pooled client ([`client`]). Overload and
//! faults surface as *typed error frames* mirroring
//! [`SchedError`](cuart_host::SchedError) — a refused request is an
//! answer, never a dropped connection.
//!
//! Std-only by design: the wire format is hand-rolled little-endian with
//! the snapshot CRC-32, and the server is plain `std::net` + threads.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetError, NetPool, PooledClient};
pub use proto::{ErrorCode, Op, Opcode, Request, RespBody, Response, WireError};
pub use server::{NetReport, NetServer, NetServerConfig, SchedReport, ShutdownHandle};
