//! Backpressure-aware multi-threaded TCP server.
//!
//! The server owns a scheduler stack — a plain [`Scheduler`] or a
//! [`ShardedScheduler`] fleet — and serves the wire protocol from
//! [`proto`](crate::proto) over any number of connections:
//!
//! * **Per connection**: a reader thread decodes frames and feeds a
//!   *bounded* in-flight window (a `sync_channel` of
//!   [`NetServerConfig::window`] slots); when the window is full the
//!   reader blocks, which stops draining the socket, which backs the TCP
//!   flow-control window up to the client. Overload never silently drops
//!   a connection — backend refusals ([`SchedError`]) come back as typed
//!   error frames.
//! * A small worker pool per connection executes the blocking scheduler
//!   calls, so responses complete (and are written) out of order; the
//!   client matches them by request id.
//! * A writer thread serializes response frames; it is the only writer,
//!   so frames never interleave.
//! * **Malformed input** (bad magic, wrong version, CRC mismatch,
//!   truncated or oversized frames) is answered with a typed error frame
//!   and *that one connection* is closed; the server survives.
//! * **Drain-safe shutdown** ([`ShutdownHandle::shutdown`] or a remote
//!   [`Op::Shutdown`](crate::proto::Op::Shutdown) frame when enabled):
//!   stop accepting, stop reading new frames, finish every admitted
//!   request, flush writers, then `join()` the scheduler so its own FIFO
//!   drain contract applies. [`names::NET_DRAINED`] flips to 1.0 only
//!   after all of that succeeded.

use crate::proto::{self, ErrorCode, Op, RespBody, Response, WireError};
use cuart_host::scheduler::RangeRows;
use cuart_host::sharded::{ShardedClient, ShardedScheduler, ShardedStats};
use cuart_host::{SchedError, Scheduler, SchedulerClient, SchedulerStats};
use cuart_telemetry::{names, SpanNode, Telemetry};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Per-connection in-flight window: at most this many decoded
    /// requests may be queued or executing at once; beyond it the reader
    /// stops draining the socket (TCP backpressure).
    pub window: usize,
    /// Worker threads per connection executing blocking scheduler calls;
    /// also the maximum out-of-order depth of responses.
    pub workers: usize,
    /// Poll tick for reads and accepts; shutdown latency is bounded by
    /// this (it is a poll interval, not a hard idle cutoff).
    pub tick: Duration,
    /// Close a connection that has sent no frame for this long.
    /// `None` keeps idle connections open until shutdown.
    pub idle_timeout: Option<Duration>,
    /// Honor the wire [`Op::Shutdown`](crate::proto::Op::Shutdown)
    /// opcode. Meant for drills and tests; defaults to off so a stray
    /// client cannot stop a server.
    pub allow_remote_shutdown: bool,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            window: 32,
            workers: 2,
            tick: Duration::from_millis(20),
            idle_timeout: None,
            allow_remote_shutdown: false,
        }
    }
}

/// Counters shared by every thread of one server.
#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    decode_errors: AtomicU64,
    error_frames: AtomicU64,
    window_stalls: AtomicU64,
    served_ops: AtomicU64,
}

/// Final report of a drained server (see [`NetServer::join`]).
#[derive(Debug)]
pub struct NetReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Point/range operations answered with an OK frame.
    pub served_ops: u64,
    /// Frames read (requests decoded or attempted).
    pub frames_in: u64,
    /// Frames written (responses, OK or error).
    pub frames_out: u64,
    /// Wire-level decode failures (each also closed its connection).
    pub decode_errors: u64,
    /// Typed error frames sent (decode failures + backend refusals).
    pub error_frames: u64,
    /// Times a connection's in-flight window was full when a frame
    /// arrived (reader blocked → TCP backpressure).
    pub window_stalls: u64,
    /// The drained scheduler stack's own statistics.
    pub sched: SchedReport,
}

/// Stats of whichever scheduler stack the server owned.
#[derive(Debug)]
pub enum SchedReport {
    /// Single-device scheduler.
    Single(SchedulerStats),
    /// Sharded fleet.
    Sharded(ShardedStats),
}

impl SchedReport {
    /// The stack's aggregate scheduler counters (field-wise sum across
    /// shards for the fleet case).
    pub fn aggregate(&self) -> SchedulerStats {
        match self {
            SchedReport::Single(s) => s.clone(),
            SchedReport::Sharded(s) => s.aggregate(),
        }
    }
}

/// The scheduler stack a server owns until drain.
enum AnySched {
    Single(Scheduler),
    Sharded(ShardedScheduler),
}

/// A per-worker producer handle onto [`AnySched`].
#[derive(Clone)]
enum AnyClient {
    Single(SchedulerClient),
    Sharded(ShardedClient),
}

impl AnyClient {
    fn lookup(&self, keys: Vec<Vec<u8>>, budget: Option<Duration>) -> Result<Vec<u64>, SchedError> {
        match (self, budget) {
            (AnyClient::Single(c), None) => c.lookup(keys),
            (AnyClient::Single(c), Some(b)) => c.lookup_with_deadline(keys, b),
            (AnyClient::Sharded(c), None) => c.lookup(keys),
            (AnyClient::Sharded(c), Some(b)) => c.lookup_with_deadline(keys, b),
        }
    }

    fn update(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: Option<Duration>,
    ) -> Result<Vec<u64>, SchedError> {
        match (self, budget) {
            (AnyClient::Single(c), None) => c.update(ops),
            (AnyClient::Single(c), Some(b)) => c.update_with_deadline(ops, b),
            (AnyClient::Sharded(c), None) => c.update(ops),
            (AnyClient::Sharded(c), Some(b)) => c.update_with_deadline(ops, b),
        }
    }

    fn insert(
        &self,
        ops: Vec<(Vec<u8>, u64)>,
        budget: Option<Duration>,
    ) -> Result<Vec<u64>, SchedError> {
        match (self, budget) {
            (AnyClient::Single(c), None) => c.insert(ops),
            (AnyClient::Single(c), Some(b)) => c.insert_with_deadline(ops, b),
            (AnyClient::Sharded(c), None) => c.insert(ops),
            (AnyClient::Sharded(c), Some(b)) => c.insert_with_deadline(ops, b),
        }
    }

    fn range(
        &self,
        ranges: Vec<(Vec<u8>, Vec<u8>)>,
        budget: Option<Duration>,
    ) -> Result<Vec<RangeRows>, SchedError> {
        match (self, budget) {
            (AnyClient::Single(c), None) => c.range(ranges),
            (AnyClient::Single(c), Some(b)) => c.range_with_deadline(ranges, b),
            (AnyClient::Sharded(c), None) => c.range(ranges),
            (AnyClient::Sharded(c), Some(b)) => c.range_with_deadline(ranges, b),
        }
    }
}

/// Requests the server's drain-safe shutdown from any thread.
#[derive(Clone)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Begin the drain: stop accepting, finish in-flight work, join the
    /// scheduler. Idempotent.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

/// A running server; see the [module docs](self) for the thread layout.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    sched: Arc<Mutex<Option<AnySched>>>,
    counters: Arc<NetCounters>,
    telemetry: Option<Arc<Telemetry>>,
}

impl NetServer {
    /// Serve a single-device [`Scheduler`].
    pub fn serve_single(
        listener: TcpListener,
        sched: Scheduler,
        telemetry: Option<Arc<Telemetry>>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer> {
        let client = sched
            .client()
            .map_err(|e| io::Error::other(e.to_string()))?;
        Self::serve(
            listener,
            AnySched::Single(sched),
            AnyClient::Single(client),
            telemetry,
            cfg,
        )
    }

    /// Serve a [`ShardedScheduler`] fleet.
    pub fn serve_sharded(
        listener: TcpListener,
        sched: ShardedScheduler,
        telemetry: Option<Arc<Telemetry>>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer> {
        let client = sched
            .client()
            .map_err(|e| io::Error::other(e.to_string()))?;
        Self::serve(
            listener,
            AnySched::Sharded(sched),
            AnyClient::Sharded(client),
            telemetry,
            cfg,
        )
    }

    fn serve(
        listener: TcpListener,
        sched: AnySched,
        client: AnyClient,
        telemetry: Option<Arc<Telemetry>>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        if let Some(t) = &telemetry {
            t.gauge_set(names::NET_DRAINED, 0.0);
            t.gauge_set(names::NET_CONNECTIONS, 0.0);
        }
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let telemetry = telemetry.clone();
            std::thread::Builder::new()
                .name("net-accept".into())
                .spawn(move || {
                    accept_loop(listener, stop, client, counters, telemetry, cfg);
                })?
        };
        Ok(NetServer {
            addr,
            stop,
            accept,
            sched: Arc::new(Mutex::new(Some(sched))),
            counters,
            telemetry,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can request shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
        }
    }

    /// Block until a shutdown is requested (via [`Self::shutdown_handle`]
    /// or a remote shutdown frame), drain every connection's in-flight
    /// work, join the scheduler stack, and return the final report.
    pub fn join(self) -> Result<NetReport, SchedError> {
        // The accept thread owns the per-connection threads and joins
        // them before exiting, so this blocks until all in-flight
        // requests have been answered and flushed.
        if self.accept.join().is_err() {
            return Err(SchedError::ExecutorPanicked("net accept thread".into()));
        }
        let sched = { self.sched.lock().expect("net sched lock").take() };
        let sched = match sched {
            Some(AnySched::Single(s)) => SchedReport::Single(s.join()?),
            Some(AnySched::Sharded(s)) => SchedReport::Sharded(s.join()?),
            None => return Err(SchedError::Shutdown),
        };
        if let Some(t) = &self.telemetry {
            t.gauge_set(names::NET_DRAINED, 1.0);
            t.gauge_set(names::NET_CONNECTIONS, 0.0);
        }
        let c = &self.counters;
        Ok(NetReport {
            accepted: c.accepted.load(Ordering::Relaxed),
            served_ops: c.served_ops.load(Ordering::Relaxed),
            frames_in: c.frames_in.load(Ordering::Relaxed),
            frames_out: c.frames_out.load(Ordering::Relaxed),
            decode_errors: c.decode_errors.load(Ordering::Relaxed),
            error_frames: c.error_frames.load(Ordering::Relaxed),
            window_stalls: c.window_stalls.load(Ordering::Relaxed),
            sched,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    client: AnyClient,
    counters: Arc<NetCounters>,
    telemetry: Option<Arc<Telemetry>>,
    cfg: NetServerConfig,
) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                let open = counters.open.fetch_add(1, Ordering::Relaxed) + 1;
                if let Some(t) = &telemetry {
                    t.incr(names::NET_ACCEPTED, 1);
                    t.gauge_set(names::NET_CONNECTIONS, open as f64);
                }
                let ctx = ConnCtx {
                    stop: Arc::clone(&stop),
                    client: client.clone(),
                    counters: Arc::clone(&counters),
                    telemetry: telemetry.clone(),
                    cfg: cfg.clone(),
                };
                let h = std::thread::Builder::new()
                    .name("net-conn".into())
                    .spawn(move || connection(stream, ctx));
                match h {
                    Ok(h) => conns.push(h),
                    Err(_) => {
                        counters.open.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                // Reap finished connections so the handle list stays small.
                conns.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(cfg.tick.min(Duration::from_millis(5)));
            }
            Err(_) => std::thread::sleep(cfg.tick),
        }
    }
    // Drain: every connection finishes its admitted requests and exits.
    for h in conns {
        let _ = h.join();
    }
}

/// Everything a connection's threads need.
struct ConnCtx {
    stop: Arc<AtomicBool>,
    client: AnyClient,
    counters: Arc<NetCounters>,
    telemetry: Option<Arc<Telemetry>>,
    cfg: NetServerConfig,
}

/// Read exactly `buf.len()` bytes, tolerating read-timeout ticks so the
/// stop flag stays responsive. Partial progress is kept across ticks.
/// Returns `Ok(false)` on clean EOF *before any byte* of `buf`.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    idle_timeout: Option<Duration>,
    started: &mut Instant,
) -> io::Result<bool> {
    let mut filled = 0;
    let mut stop_seen: Option<Instant> = None;
    while filled < buf.len() {
        // Once draining, stop reading *new* frames; a frame we are midway
        // through gets a short grace to finish arriving, then the
        // connection closes (its request was never admitted).
        if stop.load(Ordering::SeqCst) {
            if filled == 0 {
                return Ok(false);
            }
            let since = *stop_seen.get_or_insert_with(Instant::now);
            if since.elapsed() > Duration::from_millis(500) {
                return Ok(false);
            }
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::ErrorKind::UnexpectedEof.into())
                };
            }
            Ok(n) => {
                filled += n;
                *started = Instant::now();
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(idle) = idle_timeout {
                    if filled == 0 && started.elapsed() > idle {
                        return Ok(false);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// One admitted unit of work handed to the worker pool.
struct Job {
    req: proto::Request,
    t0: Instant,
}

fn connection(mut stream: TcpStream, ctx: ConnCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ctx.cfg.tick));
    let outcome = connection_inner(&mut stream, &ctx);
    let open = ctx.counters.open.fetch_sub(1, Ordering::Relaxed) - 1;
    if let Some(t) = &ctx.telemetry {
        t.gauge_set(names::NET_CONNECTIONS, open as f64);
    }
    // Socket errors mid-connection (including client disconnects) end
    // that one connection only; nothing to escalate.
    let _ = outcome;
}

fn connection_inner(stream: &mut TcpStream, ctx: &ConnCtx) -> io::Result<()> {
    // --- Handshake: exchange hellos before any frame. -----------------
    let mut started = Instant::now();
    let mut hello = [0u8; proto::HELLO_BYTES];
    if !read_full(
        stream,
        &mut hello,
        &ctx.stop,
        ctx.cfg.idle_timeout,
        &mut started,
    )? {
        return Ok(());
    }
    ctx.counters
        .bytes_in
        .fetch_add(hello.len() as u64, Ordering::Relaxed);
    if let Err(e) = proto::decode_hello(&hello) {
        // Answer with a typed error frame (id 0: no request exists yet)
        // and close; the server survives bad peers.
        note_decode_error(ctx, &e);
        let resp = Response {
            id: 0,
            body: RespBody::Error(proto::wire_error_code(&e), e.to_string()),
        };
        write_response(stream, &resp, ctx)?;
        return Ok(());
    }
    let our_hello = proto::encode_hello(proto::VERSION);
    stream.write_all(&our_hello)?;
    ctx.counters
        .bytes_out
        .fetch_add(our_hello.len() as u64, Ordering::Relaxed);

    // --- Per-connection pipeline: reader (this thread) → bounded window
    // → workers → writer. --------------------------------------------
    let window = ctx.cfg.window.max(1);
    let (work_tx, work_rx) = sync_channel::<Job>(window);
    let work_rx = Arc::new(Mutex::new(work_rx));
    let (resp_tx, resp_rx) = std::sync::mpsc::channel::<Vec<u8>>();

    let writer = {
        let mut out = stream.try_clone()?;
        let counters = Arc::clone(&ctx.counters);
        let telemetry = ctx.telemetry.clone();
        std::thread::Builder::new()
            .name("net-writer".into())
            .spawn(move || writer_loop(&mut out, resp_rx, counters, telemetry))?
    };

    let mut workers = Vec::new();
    for _ in 0..ctx.cfg.workers.max(1) {
        let work_rx = Arc::clone(&work_rx);
        let resp_tx = resp_tx.clone();
        let client = ctx.client.clone();
        let stop = Arc::clone(&ctx.stop);
        let counters = Arc::clone(&ctx.counters);
        let telemetry = ctx.telemetry.clone();
        let allow_shutdown = ctx.cfg.allow_remote_shutdown;
        workers.push(
            std::thread::Builder::new()
                .name("net-worker".into())
                .spawn(move || {
                    worker_loop(
                        work_rx,
                        resp_tx,
                        client,
                        stop,
                        counters,
                        telemetry,
                        allow_shutdown,
                    )
                })?,
        );
    }
    drop(resp_tx);

    let read_outcome = reader_loop(stream, ctx, &work_tx, &mut started);

    // Close the window: workers drain queued jobs, then their response
    // senders drop, then the writer flushes and exits. Every admitted
    // request is answered before the connection tears down.
    drop(work_tx);
    for w in workers {
        let _ = w.join();
    }
    let _ = writer.join();
    read_outcome
}

fn reader_loop(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    work_tx: &SyncSender<Job>,
    started: &mut Instant,
) -> io::Result<()> {
    let mut header = [0u8; proto::FRAME_HEADER_BYTES];
    loop {
        if !read_full(
            stream,
            &mut header,
            &ctx.stop,
            ctx.cfg.idle_timeout,
            started,
        )? {
            return Ok(());
        }
        let t0 = Instant::now();
        ctx.counters
            .bytes_in
            .fetch_add(header.len() as u64, Ordering::Relaxed);
        let decoded = proto::decode_frame_header(&header).and_then(|(len, crc)| {
            let mut payload = vec![0u8; len];
            if !read_full(stream, &mut payload, &ctx.stop, None, started)? {
                // EOF mid-frame: treat as truncation.
                return Err(WireError::Truncated);
            }
            ctx.counters
                .bytes_in
                .fetch_add(len as u64, Ordering::Relaxed);
            proto::check_frame_crc(&payload, crc)?;
            proto::decode_request(&payload)
        });
        ctx.counters.frames_in.fetch_add(1, Ordering::Relaxed);
        if let Some(t) = &ctx.telemetry {
            t.incr(names::NET_FRAMES_IN, 1);
        }
        let req = match decoded {
            Ok(req) => req,
            Err(e) => {
                note_decode_error(ctx, &e);
                let resp = Response {
                    id: 0,
                    body: RespBody::Error(proto::wire_error_code(&e), e.to_string()),
                };
                write_response(stream, &resp, ctx)?;
                // A peer whose framing we cannot trust gets its
                // connection closed; everyone else is unaffected.
                return Ok(());
            }
        };
        // Bounded in-flight window. A full window blocks the reader —
        // that *is* the backpressure (the socket stops draining).
        let job = Job { req, t0 };
        match work_tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                ctx.counters.window_stalls.fetch_add(1, Ordering::Relaxed);
                if let Some(t) = &ctx.telemetry {
                    t.incr(names::NET_WINDOW_STALLS, 1);
                }
                if work_tx.send(job).is_err() {
                    return Ok(());
                }
            }
            Err(TrySendError::Disconnected(_)) => return Ok(()),
        }
    }
}

/// `read_full` for the payload leg, mapped into `WireError` so it can
/// join the decode pipeline.
impl From<io::Error> for WireError {
    fn from(_: io::Error) -> WireError {
        WireError::Truncated
    }
}

fn worker_loop(
    work_rx: Arc<Mutex<Receiver<Job>>>,
    resp_tx: std::sync::mpsc::Sender<Vec<u8>>,
    client: AnyClient,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    telemetry: Option<Arc<Telemetry>>,
    allow_shutdown: bool,
) {
    loop {
        let job = {
            let rx = work_rx.lock().expect("net work queue lock");
            rx.recv()
        };
        let Ok(job) = job else { return };
        let id = job.req.id;
        let ops = job.req.op.ops() as u64;
        let opcode = job.req.op.opcode();
        let body = execute(job.req, &client, &stop, allow_shutdown);
        let ok = !matches!(body, RespBody::Error(..));
        if ok {
            counters.served_ops.fetch_add(ops, Ordering::Relaxed);
        } else {
            counters.error_frames.fetch_add(1, Ordering::Relaxed);
        }
        let wall_ns = job.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(t) = &telemetry {
            if !ok {
                t.incr(names::NET_ERROR_FRAMES, 1);
            }
            t.observe(names::NET_REQUEST_NS, wall_ns);
            let span = SpanNode::leaf(names::spans::NET_REQUEST, wall_ns)
                .with_attr("op", opcode.as_str())
                .with_attr("ops", ops)
                .with_attr("ok", ok);
            t.record_span_tree(&span);
        }
        let resp = Response { id, body };
        let Ok(payload) = proto::encode_response(&resp) else {
            return;
        };
        if resp_tx.send(proto::encode_frame(&payload)).is_err() {
            // Writer is gone (client disconnected): the backend call
            // already completed and released its scheduler slots, so the
            // result is simply dropped.
            return;
        }
    }
}

/// Execute one decoded request against the scheduler stack.
fn execute(
    req: proto::Request,
    client: &AnyClient,
    stop: &AtomicBool,
    allow_shutdown: bool,
) -> RespBody {
    let budget = if req.deadline_us == 0 {
        None
    } else {
        Some(Duration::from_micros(u64::from(req.deadline_us)))
    };
    let sched = |r: Result<Vec<u64>, SchedError>| match r {
        Ok(values) => RespBody::Values(values),
        Err(e) => RespBody::Error(proto::error_code_of(&e), e.to_string()),
    };
    match req.op {
        Op::Lookup(keys) => sched(client.lookup(keys, budget)),
        Op::Update(ops) => sched(client.update(ops, budget)),
        Op::Insert(ops) => sched(client.insert(ops, budget)),
        Op::Range(ranges) => match client.range(ranges, budget) {
            Ok(rows) => RespBody::Rows(rows),
            Err(e) => RespBody::Error(proto::error_code_of(&e), e.to_string()),
        },
        Op::Ping => RespBody::Ok,
        Op::Shutdown => {
            if allow_shutdown {
                stop.store(true, Ordering::SeqCst);
                RespBody::Ok
            } else {
                RespBody::Error(ErrorCode::Unsupported, "remote shutdown disabled".into())
            }
        }
    }
}

fn writer_loop(
    out: &mut TcpStream,
    resp_rx: std::sync::mpsc::Receiver<Vec<u8>>,
    counters: Arc<NetCounters>,
    telemetry: Option<Arc<Telemetry>>,
) {
    while let Ok(frame) = resp_rx.recv() {
        if out.write_all(&frame).is_err() {
            // Client is gone; keep draining so workers never block on a
            // full response channel (it is unbounded, but be tidy).
            continue;
        }
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
        counters
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if let Some(t) = &telemetry {
            t.incr(names::NET_FRAMES_OUT, 1);
            t.incr(names::NET_BYTES_OUT, frame.len() as u64);
        }
    }
    let _ = out.flush();
}

fn note_decode_error(ctx: &ConnCtx, e: &WireError) {
    ctx.counters.decode_errors.fetch_add(1, Ordering::Relaxed);
    let _ = e;
    if let Some(t) = &ctx.telemetry {
        t.incr(names::NET_DECODE_ERRORS, 1);
    }
}

/// Serialize and send one response frame directly from the reader thread
/// (used for handshake/decode failures that bypass the worker pool).
fn write_response(stream: &mut TcpStream, resp: &Response, ctx: &ConnCtx) -> io::Result<()> {
    ctx.counters.error_frames.fetch_add(1, Ordering::Relaxed);
    if let Some(t) = &ctx.telemetry {
        t.incr(names::NET_ERROR_FRAMES, 1);
    }
    let payload = proto::encode_response(resp)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let frame = proto::encode_frame(&payload);
    stream.write_all(&frame)?;
    ctx.counters.frames_out.fetch_add(1, Ordering::Relaxed);
    ctx.counters
        .bytes_out
        .fetch_add(frame.len() as u64, Ordering::Relaxed);
    if let Some(t) = &ctx.telemetry {
        t.incr(names::NET_FRAMES_OUT, 1);
        t.incr(names::NET_BYTES_OUT, frame.len() as u64);
    }
    Ok(())
}
