//! High-level GRT index façade and the CUDA/OpenCL host-API profiles.
//!
//! §4.1 of the paper: "To prove that our improvements are not only caused
//! by using a different API, we compare CuART against both a CUDA and an
//! OpenCL variant of GRT." The two variants run the *same* kernel; they
//! differ in host-side dispatch cost and in how well multiple command
//! streams overlap — which is exactly what [`ApiProfile`] captures.

use crate::kernels::GrtLookupKernel;
use crate::layout::GrtBuffer;
use crate::mapper::map_art;
use crate::update::{apply_batch, UpdateOutcome};
use cuart_art::Art;
use cuart_gpu_sim::batch::{alloc_results, pack_keys, read_results};
use cuart_gpu_sim::{launch, BufferId, DeviceConfig, DeviceMemory, KernelReport};
use cuart_telemetry::{names, BatchEvent, BatchKind, Telemetry};
use std::sync::Arc;

/// Host-API flavour of the GRT baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiProfile {
    /// The CUDA variant: cheap dispatch, streams map efficiently onto the
    /// device ("the inherent asynchronousity of the CUDA API", §4.3).
    Cuda,
    /// The OpenCL variant: heavier dispatch, command queues overlap poorly.
    OpenCl,
}

impl ApiProfile {
    /// Kernel dispatch overhead on `dev`, in nanoseconds.
    pub fn launch_overhead_ns(&self, dev: &DeviceConfig) -> f64 {
        let base = dev.launch_overhead_us * 1000.0;
        match self {
            ApiProfile::Cuda => base,
            ApiProfile::OpenCl => base * 3.5,
        }
    }

    /// Maximum command streams that overlap effectively.
    pub fn stream_cap(&self) -> usize {
        match self {
            ApiProfile::Cuda => usize::MAX,
            ApiProfile::OpenCl => 2,
        }
    }

    /// Display label used by the figure harness.
    pub fn label(&self) -> &'static str {
        match self {
            ApiProfile::Cuda => "GRT-CUDA",
            ApiProfile::OpenCl => "GRT-OpenCL",
        }
    }
}

/// A GRT index: a packed buffer plus the bookkeeping to run lookups on the
/// simulated device or on the host.
#[derive(Debug, Clone)]
pub struct GrtIndex {
    buffer: GrtBuffer,
    telemetry: Option<Arc<Telemetry>>,
}

/// Handle to a GRT index uploaded to device memory.
#[derive(Debug, Clone, Copy)]
pub struct GrtDevice {
    /// Device buffer holding the packed tree.
    pub tree: BufferId,
    /// Root offset.
    pub root: u64,
}

impl GrtIndex {
    /// Map an ART into the packed GRT layout.
    pub fn build(art: &Art<u64>) -> Self {
        GrtIndex {
            buffer: map_art(art),
            telemetry: None,
        }
    }

    /// Attach a telemetry registry; every subsequent device batch records
    /// `grt.*` metrics into it (same event schema as the CuART engine, so
    /// the baseline and the paper's engine can be compared side by side).
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        telemetry.gauge_set(names::GRT_DEVICE_BYTES, self.device_bytes() as f64);
        let mut event = BatchEvent::new(BatchKind::Build, self.buffer.entries as u64);
        event.dram_bytes = self.device_bytes() as u64;
        telemetry.record(event);
        self.telemetry = Some(telemetry);
    }

    /// Builder-style variant of [`attach_telemetry`](Self::attach_telemetry).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.attach_telemetry(telemetry);
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The underlying packed buffer.
    pub fn buffer(&self) -> &GrtBuffer {
        &self.buffer
    }

    /// Mutable access for the host-side update engine.
    pub fn buffer_mut(&mut self) -> &mut GrtBuffer {
        &mut self.buffer
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.buffer.entries
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.buffer.entries == 0
    }

    /// Device memory consumed by the packed tree.
    pub fn device_bytes(&self) -> usize {
        self.buffer.bytes.len()
    }

    /// Host-side lookup (reference path; also the hybrid pipeline's CPU leg).
    pub fn lookup_cpu(&self, key: &[u8]) -> Option<u64> {
        crate::cpu::lookup(&self.buffer, key)
    }

    /// Upload the packed tree into `mem`. GRT guarantees no alignment for
    /// the nodes inside the buffer; the buffer itself gets page alignment.
    pub fn upload(&self, mem: &mut DeviceMemory) -> GrtDevice {
        let tree = mem.alloc_from("grt-tree", &self.buffer.padded_bytes(), 16);
        GrtDevice {
            tree,
            root: self.buffer.root,
        }
    }

    /// Convenience: run one batch of lookups on a fresh simulated device.
    /// Returns the results (one per query, [`NOT_FOUND`] on miss) and the
    /// kernel report. `stride` is the per-record key capacity; queries
    /// longer than the stride saturate to [`NOT_FOUND`] (they cannot be
    /// stored under this stride either) instead of panicking.
    ///
    /// [`NOT_FOUND`]: cuart_gpu_sim::batch::NOT_FOUND
    pub fn lookup_batch_device(
        &self,
        dev: &DeviceConfig,
        queries: &[Vec<u8>],
        stride: usize,
    ) -> (Vec<u64>, KernelReport) {
        use cuart_gpu_sim::batch::{KeyBatchLayout, NOT_FOUND};
        let max = KeyBatchLayout { stride }.max_key_len();
        let oversized = queries.iter().any(|q| q.len() > max);
        let keep: Vec<usize> = (0..queries.len())
            .filter(|&i| queries[i].len() <= max)
            .collect();
        let packable: Vec<Vec<u8>> = if oversized {
            keep.iter().map(|&i| queries[i].clone()).collect()
        } else {
            Vec::new()
        };
        let device_queries: &[Vec<u8>] = if oversized { &packable } else { queries };
        let mut mem = DeviceMemory::new();
        let handle = self.upload(&mut mem);
        let (qbuf, layout) = pack_keys(&mut mem, "queries", device_queries, stride)
            // cuart-allow: panic-path the oversized branch above filtered every key against this stride
            .expect("keys pre-filtered to stride");
        let results = alloc_results(&mut mem, "results", device_queries.len());
        let kernel = GrtLookupKernel {
            tree: handle.tree,
            root: handle.root,
            queries: qbuf,
            layout,
            results,
            count: device_queries.len(),
        };
        let report = launch(dev, &mut mem, &kernel, device_queries.len());
        if let Some(t) = &self.telemetry {
            t.incr(names::GRT_LOOKUP_BATCHES, 1);
            t.incr(names::GRT_LOOKUP_KEYS, queries.len() as u64);
            t.observe(names::GRT_LOOKUP_KERNEL_NS, report.time_ns as u64);
            report.record_into(t);
            t.record(report.to_event(BatchKind::Lookup, queries.len() as u64));
        }
        let device_results = read_results(&mem, results, device_queries.len());
        if !oversized {
            return (device_results, report);
        }
        let mut out = vec![NOT_FOUND; queries.len()];
        for (j, &i) in keep.iter().enumerate() {
            out[i] = device_results[j];
        }
        (out, report)
    }

    /// Apply a host-side update batch (see [`update`](crate::update)).
    pub fn update_batch(
        &mut self,
        updates: &[(Vec<u8>, u64)],
        dev: &DeviceConfig,
    ) -> UpdateOutcome {
        let outcome = apply_batch(&mut self.buffer, updates, &dev.pcie);
        if let Some(t) = &self.telemetry {
            t.incr(names::GRT_UPDATE_BATCHES, 1);
            let mut event = BatchEvent::new(BatchKind::Update, updates.len() as u64);
            event.kernel_time_ns = outcome.modeled_ns as u64;
            event.dram_bytes = outcome.dirty_bytes as u64;
            t.record(event);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_gpu_sim::batch::NOT_FOUND;
    use cuart_gpu_sim::devices;

    fn index(n: u64) -> GrtIndex {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&(i * 7).to_be_bytes(), i).unwrap();
        }
        GrtIndex::build(&art)
    }

    #[test]
    fn facade_roundtrip() {
        let idx = index(200);
        assert_eq!(idx.len(), 200);
        assert!(!idx.is_empty());
        assert!(idx.device_bytes() > 200 * 19);
        assert_eq!(idx.lookup_cpu(&(7u64 * 7).to_be_bytes()), Some(7));
        assert_eq!(idx.lookup_cpu(&3u64.to_be_bytes()), None);
    }

    #[test]
    fn device_lookup_batch() {
        let idx = index(300);
        let queries: Vec<Vec<u8>> = (0..300u64)
            .map(|i| (i * 7).to_be_bytes().to_vec())
            .collect();
        let (results, report) = idx.lookup_batch_device(&devices::rtx3090(), &queries, 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64);
        }
        assert!(report.time_ns > 0.0);
        assert!(report.dram_transactions > 0);
    }

    #[test]
    fn update_then_lookup_on_device() {
        let mut idx = index(100);
        let dev = devices::a100();
        let key = (7u64 * 7).to_be_bytes().to_vec();
        let out = idx.update_batch(&[(key.clone(), 424242)], &dev);
        assert_eq!(out.applied, 1);
        let (results, _) = idx.lookup_batch_device(&dev, &[key], 8);
        assert_eq!(results[0], 424242);
        let (miss, _) = idx.lookup_batch_device(&dev, &[vec![9u8; 8]], 8);
        assert_eq!(miss[0], NOT_FOUND);
    }

    #[test]
    fn opencl_profile_costs_more() {
        let dev = devices::a100();
        assert!(
            ApiProfile::OpenCl.launch_overhead_ns(&dev)
                > 2.0 * ApiProfile::Cuda.launch_overhead_ns(&dev)
        );
        assert!(ApiProfile::OpenCl.stream_cap() < ApiProfile::Cuda.stream_cap());
        assert_eq!(ApiProfile::Cuda.label(), "GRT-CUDA");
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn telemetry_records_device_batches() {
        use cuart_telemetry::names;
        let telemetry = Arc::new(Telemetry::new());
        let mut idx = index(100).with_telemetry(telemetry.clone());
        let dev = devices::a100();
        let queries: Vec<Vec<u8>> = (0..50u64).map(|i| (i * 7).to_be_bytes().to_vec()).collect();
        let _ = idx.lookup_batch_device(&dev, &queries, 8);
        let _ = idx.update_batch(&[((7u64).to_be_bytes().to_vec(), 1)], &dev);

        let snap = telemetry.snapshot();
        assert_eq!(snap.counters[names::GRT_LOOKUP_BATCHES], 1);
        assert_eq!(snap.counters[names::GRT_LOOKUP_KEYS], 50);
        assert_eq!(snap.counters[names::GRT_UPDATE_BATCHES], 1);
        assert_eq!(
            snap.gauges[names::GRT_DEVICE_BYTES],
            idx.device_bytes() as f64
        );
        assert_eq!(snap.histograms[names::GRT_LOOKUP_KERNEL_NS].count, 1);
        let kinds: Vec<BatchKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![BatchKind::Build, BatchKind::Lookup, BatchKind::Update]
        );
        // The shared-schema guarantee: the GRT lookup event carries the same
        // cache/DRAM fields the CuART engine emits.
        let lookup = &snap.events[1];
        assert!(lookup.dram_transactions > 0);
        assert!(lookup.raw_accesses >= lookup.coalesced_accesses);
    }

    #[test]
    fn empty_index() {
        let idx = GrtIndex::build(&Art::new());
        assert!(idx.is_empty());
        assert_eq!(idx.lookup_cpu(b"x"), None);
        let (results, _) = idx.lookup_batch_device(&devices::gtx1070(), &[b"x".to_vec()], 8);
        assert_eq!(results[0], NOT_FOUND);
    }
}
