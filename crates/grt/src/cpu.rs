//! CPU reference lookup over the packed GRT buffer.
//!
//! Functionally identical to the GPU kernel in [`kernels`](crate::kernels);
//! used as the correctness oracle in tests and by the hybrid host pipeline.

use crate::layout::{self, tag, GrtBuffer, EMPTY48, HEADER_BYTES, PREFIX_CAP};

/// Look up `key`; returns its value if present.
pub fn lookup(buf: &GrtBuffer, key: &[u8]) -> Option<u64> {
    lookup_value_offset(buf, key).map(|off| buf.u64_at(off))
}

/// Look up `key`; returns the byte offset of its **value** field inside the
/// buffer. This is what the host-side update engine patches.
pub fn lookup_value_offset(buf: &GrtBuffer, key: &[u8]) -> Option<usize> {
    if buf.is_empty() || key.is_empty() {
        return None;
    }
    let mut off = buf.root as usize;
    let mut depth = 0usize;
    loop {
        let t = buf.u8_at(off);
        if t == tag::LEAF {
            let len = buf.u16_at(off + 1) as usize;
            let stored = buf.slice(off + layout::LEAF_HEADER_BYTES, len);
            return (stored == key).then_some(off + layout::LEAF_HEADER_BYTES + len);
        }
        // Inner node: check the stored prefix bytes, skip the rest
        // optimistically (the leaf verifies the full key).
        let prefix_len = buf.u8_at(off + 2) as usize;
        let stored = prefix_len.min(PREFIX_CAP);
        if key.len() < depth + prefix_len {
            return None;
        }
        if buf.slice(off + 3, stored) != &key[depth..depth + stored] {
            return None;
        }
        depth += prefix_len;
        if depth >= key.len() {
            return None;
        }
        let b = key[depth];
        let next = match t {
            tag::N4 | tag::N16 => {
                let cap = if t == tag::N4 { 4 } else { 16 };
                let count = (buf.u8_at(off + 1) as usize).min(cap);
                let keys = buf.slice(off + HEADER_BYTES, count);
                match keys.iter().position(|&k| k == b) {
                    Some(i) => buf.u64_at(off + layout::offsets_at(t) + i * 8),
                    None => 0,
                }
            }
            tag::N48 => {
                let slot = buf.u8_at(off + HEADER_BYTES + b as usize);
                if slot == EMPTY48 {
                    0
                } else {
                    buf.u64_at(off + layout::offsets_at(t) + slot as usize * 8)
                }
            }
            tag::N256 => buf.u64_at(off + layout::offsets_at(t) + b as usize * 8),
            _ => panic!("corrupt GRT buffer: tag {t} at offset {off}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
        };
        if next == 0 {
            return None;
        }
        off = next as usize;
        depth += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_art;
    use cuart_art::Art;

    #[test]
    fn empty_buffer_misses() {
        assert_eq!(lookup(&GrtBuffer::empty(), b"x"), None);
    }

    #[test]
    fn empty_key_misses() {
        let mut art = Art::new();
        art.insert(b"a", 1u64).unwrap();
        assert_eq!(lookup(&map_art(&art), b""), None);
    }

    #[test]
    fn agrees_with_art_on_random_keys() {
        let mut art = Art::new();
        let mut x = 42u64;
        let mut keys = Vec::new();
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x.to_be_bytes().to_vec();
            art.insert(&key, i).unwrap();
            keys.push(key);
        }
        let buf = map_art(&art);
        for k in &keys {
            assert_eq!(lookup(&buf, k).as_ref(), art.get(k), "key {k:x?}");
        }
        // Misses agree too.
        for i in 0..100u64 {
            let probe = (i | 0xDEAD_0000_0000_0000).to_be_bytes();
            assert_eq!(lookup(&buf, &probe).as_ref(), art.get(&probe));
        }
    }

    #[test]
    fn key_shorter_than_path_misses() {
        let mut art = Art::new();
        art.insert(b"abcdef", 1u64).unwrap();
        art.insert(b"abcxyz", 2).unwrap();
        let buf = map_art(&art);
        assert_eq!(lookup(&buf, b"abc"), None);
        assert_eq!(lookup(&buf, b"ab"), None);
    }
}
