//! The GRT GPU lookup kernel.
//!
//! The traversal issues, per inner node, a **dependent header read** (the
//! node type is inside the node, §3.1) followed by one or more dependent
//! body reads whose size was only known after the header arrived. Nothing
//! is aligned, so reads regularly straddle 32-byte sectors. Key comparison
//! is byte-oriented with early exit (§4.4).

// cuart-allow-file: index-hot-path packed-buffer traversal mirrors the GRT layout contract; offsets come from in-buffer tags validated by the mapper, and the kernel is modeled per-access so checked indexing would distort the cycle counts

use crate::layout::{self, tag, EMPTY48, HEADER_BYTES, PREFIX_CAP};
use cuart_gpu_sim::batch::{KeyBatchLayout, NOT_FOUND};
use cuart_gpu_sim::{BufferId, Kernel, ThreadCtx};

/// Cycles for the branchy per-node bookkeeping (≈ the 20 cycles/node §3.1
/// quotes).
const NODE_OVERHEAD_CYCLES: u32 = 14;
/// Cycles per byte in GRT's byte-oriented compare loop.
const BYTE_CMP_CYCLES: u32 = 3;

/// One lookup per thread over a packed GRT buffer.
pub struct GrtLookupKernel {
    /// The packed tree.
    pub tree: BufferId,
    /// Root node offset.
    pub root: u64,
    /// Packed query keys.
    pub queries: BufferId,
    /// Layout of the query records.
    pub layout: KeyBatchLayout,
    /// One u64 result slot per query.
    pub results: BufferId,
    /// Number of queries; excess threads idle.
    pub count: usize,
}

impl Kernel for GrtLookupKernel {
    fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.count {
            return;
        }
        // Load the query record (coalesced across the warp).
        let rec_off = self.layout.offset(tid);
        let rec = ctx.read_bytes(self.queries, rec_off, self.layout.record_bytes());
        let key_len = rec[0] as usize;
        let key = &rec[1..1 + key_len];

        let value = self.traverse(key, ctx);
        ctx.write_u64(self.results, tid * 8, value);
    }
}

impl GrtLookupKernel {
    fn traverse(&self, key: &[u8], ctx: &mut ThreadCtx<'_>) -> u64 {
        if key.is_empty() || ctx.memory().buffer(self.tree).is_empty() {
            return NOT_FOUND;
        }
        let mut off = self.root as usize;
        let mut depth = 0usize;
        loop {
            // Dependent read #1: the header. Size of the node is unknown
            // until this arrives.
            let header = ctx.read_bytes(self.tree, off, HEADER_BYTES);
            let t = header[0];
            ctx.compute(NODE_OVERHEAD_CYCLES);
            if t == 0 {
                // Null node (empty tree upload slack).
                return NOT_FOUND;
            }
            if t == tag::LEAF {
                let len = u16::from_le_bytes([header[1], header[2]]) as usize;
                // Dependent read #2: the dynamically sized key + value.
                let body = ctx.read_bytes(self.tree, off + layout::LEAF_HEADER_BYTES, len + 8);
                let stored = &body[..len];
                // Byte compare with early exit.
                let agree = stored.iter().zip(key).take_while(|(a, b)| a == b).count();
                ctx.compute(BYTE_CMP_CYCLES * (agree.min(len) as u32 + 1));
                if stored == key {
                    // cuart-allow: panic-path slice indexed to the exact field width on this line
                    return u64::from_le_bytes(body[len..len + 8].try_into().expect("8 bytes"));
                }
                return NOT_FOUND;
            }
            // Inner node: byte-compare the stored prefix.
            let prefix_len = header[2] as usize;
            let stored = prefix_len.min(PREFIX_CAP);
            if key.len() < depth + prefix_len {
                return NOT_FOUND;
            }
            ctx.compute(BYTE_CMP_CYCLES * stored as u32);
            if header[3..3 + stored] != key[depth..depth + stored] {
                return NOT_FOUND;
            }
            depth += prefix_len;
            if depth >= key.len() {
                return NOT_FOUND;
            }
            let b = key[depth];
            // Dependent read #2..: the body, sized per the header's type.
            let next = match t {
                tag::N4 | tag::N16 => {
                    let body =
                        ctx.read_bytes(self.tree, off + HEADER_BYTES, layout::inner_body_bytes(t));
                    let cap = if t == tag::N4 { 4 } else { 16 };
                    let count = (header[1] as usize).min(cap);
                    ctx.compute(count as u32);
                    match body[..count].iter().position(|&k| k == b) {
                        Some(i) => {
                            let at = cap + i * 8;
                            // cuart-allow: panic-path slice indexed to the exact field width on this line
                            u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"))
                        }
                        None => 0,
                    }
                }
                tag::N48 => {
                    // Dependent read: one child-index byte...
                    let slot = ctx.read_u8(self.tree, off + HEADER_BYTES + b as usize);
                    if slot == EMPTY48 {
                        0
                    } else {
                        // ...then (dependent again) the offset it selects.
                        ctx.read_u64(self.tree, off + layout::offsets_at(t) + slot as usize * 8)
                    }
                }
                tag::N256 => ctx.read_u64(self.tree, off + layout::offsets_at(t) + b as usize * 8),
                _ => panic!("corrupt GRT buffer: tag {t} at offset {off}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
            };
            if next == 0 {
                return NOT_FOUND;
            }
            off = next as usize;
            depth += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_art;
    use cuart_art::Art;
    use cuart_gpu_sim::batch::{alloc_results, pack_keys, read_results};
    use cuart_gpu_sim::{devices, launch, DeviceMemory};

    fn build(keys: &[Vec<u8>]) -> (Art<u64>, crate::layout::GrtBuffer) {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let buf = map_art(&art);
        (art, buf)
    }

    fn run_lookups(buf: &crate::layout::GrtBuffer, queries: &[Vec<u8>], stride: usize) -> Vec<u64> {
        let dev = devices::a100();
        let mut mem = DeviceMemory::new();
        let tree = mem.alloc_from("grt", &buf.padded_bytes(), 16);
        let (qbuf, layout) = pack_keys(&mut mem, "queries", queries, stride).unwrap();
        let results = alloc_results(&mut mem, "results", queries.len());
        let kernel = GrtLookupKernel {
            tree,
            root: buf.root,
            queries: qbuf,
            layout,
            results,
            count: queries.len(),
        };
        launch(&dev, &mut mem, &kernel, queries.len());
        read_results(&mem, results, queries.len())
    }

    #[test]
    fn kernel_finds_all_keys() {
        let keys: Vec<Vec<u8>> = (0..500u64)
            .map(|i| (i * 31).to_be_bytes().to_vec())
            .collect();
        let (_, buf) = build(&keys);
        let results = run_lookups(&buf, &keys, 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64 + 1, "query {i}");
        }
    }

    #[test]
    fn kernel_misses_return_sentinel() {
        let keys: Vec<Vec<u8>> = (0..100u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, buf) = build(&keys);
        let probes: Vec<Vec<u8>> = (1000..1010u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let results = run_lookups(&buf, &probes, 8);
        assert!(results.iter().all(|&r| r == NOT_FOUND));
    }

    #[test]
    fn kernel_agrees_with_cpu_reference() {
        let keys: Vec<Vec<u8>> = (0..2000u64)
            .map(|i| {
                let mut k = vec![0u8; 16];
                k[..8].copy_from_slice(&(i.wrapping_mul(0x9E3779B97F4A7C15)).to_be_bytes());
                k[8..].copy_from_slice(&i.to_be_bytes());
                k
            })
            .collect();
        let (_, buf) = build(&keys);
        let mut probes = keys.clone();
        probes.push(vec![9u8; 16]); // a miss
        let results = run_lookups(&buf, &probes, 16);
        for (probe, got) in probes.iter().zip(&results) {
            let want = crate::cpu::lookup(&buf, probe).unwrap_or(NOT_FOUND);
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn traversal_issues_two_plus_dependent_reads_per_node() {
        // A 3-level path: root N4 -> N4 -> leaves. Each lookup must issue
        // header+body per inner node plus record + leaf + result writes.
        let keys: Vec<Vec<u8>> = vec![b"aaaa".to_vec(), b"aabb".to_vec(), b"abcc".to_vec()];
        let (_, buf) = build(&keys);
        let dev = devices::a100();
        let mut mem = DeviceMemory::new();
        let tree = mem.alloc_from("grt", &buf.padded_bytes(), 16);
        let (qbuf, layout) = pack_keys(&mut mem, "q", &keys[..1], 8).unwrap();
        let results = alloc_results(&mut mem, "r", 1);
        let kernel = GrtLookupKernel {
            tree,
            root: buf.root,
            queries: qbuf,
            layout,
            results,
            count: 1,
        };
        let report = launch(&dev, &mut mem, &kernel, 1);
        // Steps: query read, (header, body) x 2 inner nodes, leaf header,
        // leaf body, result write = 8 dependent steps.
        assert_eq!(
            report.max_chain_steps, 8,
            "chain {}",
            report.max_chain_steps
        );
    }

    #[test]
    fn excess_threads_idle() {
        let keys = vec![b"k1".to_vec()];
        let (_, buf) = build(&keys);
        let dev = devices::gtx1070();
        let mut mem = DeviceMemory::new();
        let tree = mem.alloc_from("grt", &buf.padded_bytes(), 16);
        let (qbuf, layout) = pack_keys(&mut mem, "q", &keys, 8).unwrap();
        let results = alloc_results(&mut mem, "r", 1);
        let kernel = GrtLookupKernel {
            tree,
            root: buf.root,
            queries: qbuf,
            layout,
            results,
            count: 1,
        };
        // Launch a full warp; 31 threads must do nothing harmful.
        launch(&dev, &mut mem, &kernel, 32);
        assert_eq!(read_results(&mem, results, 1)[0], 1);
    }
}
