//! Mapping the pointer-based CPU ART into the packed GRT buffer.
//!
//! The original GRT maps the host tree into a single buffer with an
//! in-order traversal (§3.2.1: "a mapping step from the pointer-based ART
//! in main memory towards … a single, tightly packed buffer of nodes
//! utilizing an in-order traversal"). We emit each node before its children
//! (depth-first in ascending key order), which packs every subtree — and
//! all leaves — in lexicographic order.

use crate::layout::{self, tag, GrtBuffer, EMPTY48, HEADER_BYTES, PREFIX_CAP};
use cuart_art::view::NodeView;
use cuart_art::{Art, NodeType};

/// Flatten `art` into a packed GRT buffer.
pub fn map_art(art: &Art<u64>) -> GrtBuffer {
    let Some(root) = art.root_view() else {
        return GrtBuffer::empty();
    };
    let mut bytes = Vec::new();
    let mut max_key_len = 0usize;
    emit(&mut bytes, &root, &mut max_key_len);
    GrtBuffer {
        bytes,
        root: 0,
        entries: art.len(),
        max_key_len,
    }
}

fn type_tag(t: NodeType) -> u8 {
    match t {
        NodeType::N4 => tag::N4,
        NodeType::N16 => tag::N16,
        NodeType::N48 => tag::N48,
        NodeType::N256 => tag::N256,
    }
}

/// Append the subtree rooted at `view`; returns its byte offset.
fn emit(bytes: &mut Vec<u8>, view: &NodeView<'_, u64>, max_key_len: &mut usize) -> u64 {
    match view {
        NodeView::Leaf(leaf) => {
            let off = bytes.len() as u64;
            let key = leaf.key();
            *max_key_len = (*max_key_len).max(key.len());
            assert!(key.len() <= u16::MAX as usize, "key too long for GRT leaf");
            bytes.push(tag::LEAF);
            bytes.extend_from_slice(&(key.len() as u16).to_le_bytes());
            bytes.extend_from_slice(key);
            bytes.extend_from_slice(&leaf.value().to_le_bytes());
            off
        }
        NodeView::Inner(inner) => {
            let t = type_tag(inner.node_type());
            let node_off = bytes.len();
            let size = layout::inner_node_bytes(t);
            bytes.resize(node_off + size, 0);
            // Header.
            let prefix = inner.prefix();
            bytes[node_off] = t;
            bytes[node_off + 1] = inner.child_count() as u8; // 256 wraps to 0; count is advisory
            bytes[node_off + 2] = prefix.len().min(u8::MAX as usize) as u8;
            let stored = prefix.len().min(PREFIX_CAP);
            bytes[node_off + 3..node_off + 3 + stored].copy_from_slice(&prefix[..stored]);
            // Body: children emitted depth-first, then their offsets patched.
            let children = inner.children();
            match t {
                tag::N4 | tag::N16 => {
                    let cap = if t == tag::N4 { 4 } else { 16 };
                    assert!(children.len() <= cap);
                    for (i, (byte, child)) in children.iter().enumerate() {
                        bytes[node_off + HEADER_BYTES + i] = *byte;
                        let child_off = emit(bytes, child, max_key_len);
                        let slot = node_off + layout::offsets_at(t) + i * 8;
                        bytes[slot..slot + 8].copy_from_slice(&child_off.to_le_bytes());
                    }
                }
                tag::N48 => {
                    let index_at = node_off + HEADER_BYTES;
                    bytes[index_at..index_at + 256].fill(EMPTY48);
                    for (i, (byte, child)) in children.iter().enumerate() {
                        bytes[index_at + *byte as usize] = i as u8;
                        let child_off = emit(bytes, child, max_key_len);
                        let slot = node_off + layout::offsets_at(t) + i * 8;
                        bytes[slot..slot + 8].copy_from_slice(&child_off.to_le_bytes());
                    }
                }
                tag::N256 => {
                    for (byte, child) in children.iter() {
                        let child_off = emit(bytes, child, max_key_len);
                        let slot = node_off + layout::offsets_at(t) + *byte as usize * 8;
                        bytes[slot..slot + 8].copy_from_slice(&child_off.to_le_bytes());
                    }
                }
                _ => unreachable!(), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
            }
            node_off as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::lookup;

    fn tree(keys: &[&[u8]]) -> Art<u64> {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        art
    }

    #[test]
    fn empty_tree_maps_to_empty_buffer() {
        let buf = map_art(&Art::new());
        assert!(buf.is_empty());
        assert!(buf.bytes.is_empty());
    }

    #[test]
    fn single_leaf_layout() {
        let buf = map_art(&tree(&[b"abcd"]));
        assert_eq!(buf.entries, 1);
        assert_eq!(buf.u8_at(0), tag::LEAF);
        assert_eq!(buf.u16_at(1), 4);
        assert_eq!(buf.slice(3, 4), b"abcd");
        assert_eq!(buf.u64_at(7), 1);
        assert_eq!(buf.bytes.len(), layout::leaf_bytes(4));
        assert_eq!(buf.max_key_len, 4);
    }

    #[test]
    fn inner_node_header_and_children() {
        let buf = map_art(&tree(&[b"romane", b"romanus", b"romulus"]));
        // Root is an N4 compressing "rom".
        assert_eq!(buf.u8_at(0), tag::N4);
        assert_eq!(buf.u8_at(1), 2);
        assert_eq!(buf.u8_at(2), 3);
        assert_eq!(buf.slice(3, 3), b"rom");
        // Every key must resolve through the CPU reference lookup.
        for (i, k) in [&b"romane"[..], b"romanus", b"romulus"].iter().enumerate() {
            assert_eq!(lookup(&buf, k), Some(i as u64 + 1), "key {k:?}");
        }
        assert_eq!(lookup(&buf, b"romanes"), None);
    }

    #[test]
    fn all_node_types_roundtrip() {
        // Craft fan-outs of 4, 16, 48 and 256 at the root.
        for n in [3usize, 10, 40, 200] {
            let keys: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, 1, 2, 3]).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let buf = map_art(&tree(&refs));
            for (i, k) in refs.iter().enumerate() {
                assert_eq!(lookup(&buf, k), Some(i as u64 + 1), "fanout {n} key {i}");
            }
            assert_eq!(lookup(&buf, &[255, 255, 255, 255]), None);
        }
    }

    #[test]
    fn buffer_is_tightly_packed() {
        // A 2-leaf tree: N4 (52 B) + 2 leaves, no padding between.
        let buf = map_art(&tree(&[b"aa", b"ab"]));
        let expected = layout::inner_node_bytes(tag::N4) + 2 * layout::leaf_bytes(2);
        assert_eq!(buf.bytes.len(), expected);
    }

    #[test]
    fn long_prefixes_are_truncated_optimistically() {
        let long_a = [b"prefix_longer_than_thirteen_bytes_A".as_slice()];
        let mut keys: Vec<&[u8]> = long_a.to_vec();
        let b = b"prefix_longer_than_thirteen_bytes_B";
        keys.push(b);
        let buf = map_art(&tree(&keys));
        // Stored prefix caps at 13, full length recorded.
        assert_eq!(
            buf.u8_at(2) as usize,
            "prefix_longer_than_thirteen_bytes_".len()
        );
        assert_eq!(lookup(&buf, keys[0]), Some(1));
        assert_eq!(lookup(&buf, b), Some(2));
        // A key agreeing on the stored 13 bytes but diverging later must
        // still miss (the leaf verifies).
        assert_eq!(lookup(&buf, b"prefix_longerXthan_thirteen_bytes_A"), None);
    }

    #[test]
    fn leaves_are_in_lexicographic_order() {
        let buf = map_art(&tree(&[b"cc", b"aa", b"bb"]));
        // Scan the buffer for leaf tags and collect keys in buffer order.
        let mut keys = Vec::new();
        let mut off = layout::inner_node_bytes(tag::N4); // skip root
        while off < buf.bytes.len() {
            assert_eq!(buf.u8_at(off), tag::LEAF);
            let len = buf.u16_at(off + 1) as usize;
            keys.push(buf.slice(off + 3, len).to_vec());
            off += layout::leaf_bytes(len);
        }
        assert_eq!(keys, vec![b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()]);
    }
}
