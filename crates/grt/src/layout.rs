//! The packed single-buffer layout of GRT.
//!
//! Every node starts with a 16-byte header whose **first byte is the node
//! type** — the property §3.1 of the CuART paper identifies as the
//! bottleneck, because the size (and meaning) of the rest of the node is
//! unknown until the header has been read. Nodes are tightly packed with no
//! alignment, so headers and bodies routinely straddle 32-byte sectors.
//!
//! ```text
//! header (16 B):  [type u8][child_count u8][prefix_len u8][prefix 13 B]
//! N4   body:      keys[4]          offsets[4]  x u64      (36 B)
//! N16  body:      keys[16]         offsets[16] x u64      (144 B)
//! N48  body:      child_index[256] offsets[48] x u64      (640 B)
//! N256 body:      offsets[256] x u64                      (2048 B)
//! leaf:           [type u8][key_len u16][key ...][value u64]
//! ```
//!
//! Child pointers are absolute byte offsets into the buffer; 0 means null
//! (the root sits at offset 0 but nothing ever points at it).

/// Node-type tags stored in the header's first byte.
pub mod tag {
    /// Inner node with up to 4 children.
    pub const N4: u8 = 1;
    /// Inner node with up to 16 children.
    pub const N16: u8 = 2;
    /// Inner node with up to 48 children.
    pub const N48: u8 = 3;
    /// Inner node with up to 256 children.
    pub const N256: u8 = 4;
    /// Dynamically sized leaf.
    pub const LEAF: u8 = 5;
}

/// Size of the inner-node header.
pub const HEADER_BYTES: usize = 16;
/// Prefix bytes stored inline in the header; longer prefixes are skipped
/// optimistically and verified at the leaf.
pub const PREFIX_CAP: usize = 13;
/// "Empty" marker in an N48 child index.
pub const EMPTY48: u8 = 0xFF;
/// Leaf header: tag byte + u16 key length.
pub const LEAF_HEADER_BYTES: usize = 3;

/// Body size (bytes after the header) for an inner node of type `t`.
pub fn inner_body_bytes(t: u8) -> usize {
    match t {
        tag::N4 => 4 + 4 * 8,
        tag::N16 => 16 + 16 * 8,
        tag::N48 => 256 + 48 * 8,
        tag::N256 => 256 * 8,
        _ => panic!("not an inner node tag: {t}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
    }
}

/// Total size of an inner node of type `t`.
pub fn inner_node_bytes(t: u8) -> usize {
    HEADER_BYTES + inner_body_bytes(t)
}

/// Total size of a leaf holding `key_len` key bytes.
pub fn leaf_bytes(key_len: usize) -> usize {
    LEAF_HEADER_BYTES + key_len + 8
}

/// Byte offset (within the node) of the child-offset array.
pub fn offsets_at(t: u8) -> usize {
    match t {
        tag::N4 => HEADER_BYTES + 4,
        tag::N16 => HEADER_BYTES + 16,
        tag::N48 => HEADER_BYTES + 256,
        tag::N256 => HEADER_BYTES,
        _ => panic!("not an inner node tag: {t}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
    }
}

/// The mapped tree: one tightly packed host-side byte buffer, uploaded
/// verbatim to the device.
#[derive(Debug, Clone)]
pub struct GrtBuffer {
    /// The packed node bytes.
    pub bytes: Vec<u8>,
    /// Offset of the root node (always 0 for non-empty trees).
    pub root: u64,
    /// Number of keys in the tree.
    pub entries: usize,
    /// Length in bytes of the longest stored key.
    pub max_key_len: usize,
}

impl GrtBuffer {
    /// An empty buffer (no keys).
    pub fn empty() -> Self {
        GrtBuffer {
            bytes: Vec::new(),
            root: 0,
            entries: 0,
            max_key_len: 0,
        }
    }

    /// `true` if the tree holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Read helpers used by both the CPU reference lookup and tests.
    pub fn u8_at(&self, off: usize) -> u8 {
        self.bytes[off]
    }

    /// Little-endian u16 at `off`.
    pub fn u16_at(&self, off: usize) -> u16 {
        // cuart-allow: panic-path slice indexed to the exact field width on this line
        u16::from_le_bytes(self.bytes[off..off + 2].try_into().expect("2 bytes"))
    }

    /// Little-endian u64 at `off`.
    pub fn u64_at(&self, off: usize) -> u64 {
        // cuart-allow: panic-path slice indexed to the exact field width on this line
        u64::from_le_bytes(self.bytes[off..off + 8].try_into().expect("8 bytes"))
    }

    /// Slice of `len` bytes at `off`.
    pub fn slice(&self, off: usize, len: usize) -> &[u8] {
        &self.bytes[off..off + len]
    }

    /// The buffer contents padded with one header's worth of zero slack, so
    /// the GPU kernel's fixed 16-byte header reads never run off the end of
    /// the allocation even when the last node is a tiny leaf.
    pub fn padded_bytes(&self) -> Vec<u8> {
        let mut out = self.bytes.clone();
        out.extend_from_slice(&[0u8; HEADER_BYTES]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sizes_match_the_paper() {
        // §3.1 quotes ~650 B for N48 and 2 KB for N256 (header included).
        assert_eq!(inner_node_bytes(tag::N48), 656);
        assert_eq!(inner_node_bytes(tag::N256), 2064);
        assert_eq!(inner_node_bytes(tag::N4), 52);
        assert_eq!(inner_node_bytes(tag::N16), 160);
    }

    #[test]
    fn leaf_size_is_dynamic() {
        assert_eq!(leaf_bytes(4), 15);
        assert_eq!(leaf_bytes(32), 43);
    }

    #[test]
    fn offsets_arrays_positions() {
        assert_eq!(offsets_at(tag::N4), 20);
        assert_eq!(offsets_at(tag::N16), 32);
        assert_eq!(offsets_at(tag::N48), 272);
        assert_eq!(offsets_at(tag::N256), 16);
    }

    #[test]
    #[should_panic]
    fn leaf_tag_has_no_inner_body() {
        inner_body_bytes(tag::LEAF);
    }
}
