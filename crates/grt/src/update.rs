//! GRT's update path: host-side writes + device re-synchronisation.
//!
//! GRT has no device-side update engine. §3.1 of the CuART paper: "for a
//! tree-based index structure to be usable on a GPU, the pointer based
//! objects need to be flattened into one or more buffers … In case of
//! frequent updates, preparing the buffers for the GPU needs to happen for
//! almost every update depending on the consistency guarantees of the
//! DBMS." We therefore model GRT updates as the paper's measurements imply:
//! each update is a **host-side traversal + in-buffer write**, and the
//! dirty buffer regions must be pushed back to the device before the next
//! lookup batch. The cost is host-dominated, which is why Figures 17/18
//! show GRT update throughput near-constant (~13 MOps/s) across GPUs.

use crate::cpu::lookup_value_offset;
use crate::layout::GrtBuffer;
use cuart_gpu_sim::config::PcieConfig;
use std::collections::BTreeSet;

/// Host traversal + write cost per update operation (ns). Dominated by
/// cache misses walking the flat buffer on the host.
const HOST_UPDATE_NS: f64 = 60.0;
/// Granularity at which dirty buffer regions are re-synchronised.
const DIRTY_REGION_BYTES: usize = 128;

/// Result of applying one update batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateOutcome {
    /// Updates whose key was found and value replaced.
    pub applied: usize,
    /// Updates whose key was absent (no-ops).
    pub missed: usize,
    /// Bytes of device buffer that had to be re-synchronised.
    pub dirty_bytes: usize,
    /// Modeled end-to-end time for the batch in nanoseconds.
    pub modeled_ns: f64,
}

impl UpdateOutcome {
    /// Throughput in MOps/s over the whole batch (applied + missed).
    pub fn mops(&self) -> f64 {
        let ops = (self.applied + self.missed) as f64;
        if self.modeled_ns > 0.0 {
            ops / self.modeled_ns * 1000.0
        } else {
            0.0
        }
    }
}

/// Apply a batch of `(key, value)` updates to the mapped buffer. Later
/// updates in the batch win for duplicate keys (they are applied in order).
/// Returns the outcome including the modeled batch time.
pub fn apply_batch(
    buf: &mut GrtBuffer,
    updates: &[(Vec<u8>, u64)],
    pcie: &PcieConfig,
) -> UpdateOutcome {
    let mut applied = 0usize;
    let mut missed = 0usize;
    let mut dirty: BTreeSet<usize> = BTreeSet::new();
    for (key, value) in updates {
        match lookup_value_offset(buf, key) {
            Some(off) => {
                buf.bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
                dirty.insert(off / DIRTY_REGION_BYTES);
                applied += 1;
            }
            None => missed += 1,
        }
    }
    let dirty_bytes = dirty.len() * DIRTY_REGION_BYTES;
    let host_ns = updates.len() as f64 * HOST_UPDATE_NS;
    let sync_ns = if dirty_bytes > 0 {
        pcie.transfer_ns(dirty_bytes)
    } else {
        0.0
    };
    UpdateOutcome {
        applied,
        missed,
        dirty_bytes,
        modeled_ns: host_ns + sync_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::lookup;
    use crate::mapper::map_art;
    use cuart_art::Art;
    use cuart_gpu_sim::devices;

    fn sample(n: u64) -> GrtBuffer {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&i.to_be_bytes(), i).unwrap();
        }
        map_art(&art)
    }

    #[test]
    fn updates_replace_values() {
        let mut buf = sample(100);
        let updates: Vec<(Vec<u8>, u64)> = (0..50u64)
            .map(|i| (i.to_be_bytes().to_vec(), i + 1000))
            .collect();
        let out = apply_batch(&mut buf, &updates, &devices::a100().pcie);
        assert_eq!(out.applied, 50);
        assert_eq!(out.missed, 0);
        for i in 0..50u64 {
            assert_eq!(lookup(&buf, &i.to_be_bytes()), Some(i + 1000));
        }
        for i in 50..100u64 {
            assert_eq!(
                lookup(&buf, &i.to_be_bytes()),
                Some(i),
                "untouched key changed"
            );
        }
    }

    #[test]
    fn missing_keys_are_noops() {
        let mut buf = sample(10);
        let updates = vec![(999u64.to_be_bytes().to_vec(), 1)];
        let out = apply_batch(&mut buf, &updates, &devices::a100().pcie);
        assert_eq!(out.applied, 0);
        assert_eq!(out.missed, 1);
        assert_eq!(out.dirty_bytes, 0);
    }

    #[test]
    fn duplicate_updates_last_wins() {
        let mut buf = sample(10);
        let k = 3u64.to_be_bytes().to_vec();
        let updates = vec![(k.clone(), 111), (k.clone(), 222), (k.clone(), 333)];
        apply_batch(&mut buf, &updates, &devices::a100().pcie);
        assert_eq!(lookup(&buf, &k), Some(333));
    }

    #[test]
    fn modeled_time_is_host_dominated_and_gpu_independent() {
        let updates: Vec<(Vec<u8>, u64)> = (0..4096u64)
            .map(|i| (i.to_be_bytes().to_vec(), i))
            .collect();
        let mut b1 = sample(8192);
        let mut b2 = sample(8192);
        let a100 = apply_batch(&mut b1, &updates, &devices::a100().pcie);
        let gtx = apply_batch(&mut b2, &updates, &devices::gtx1070().pcie);
        // Near-constant across devices (Fig. 17/18's flat GRT bars).
        let ratio = a100.modeled_ns / gtx.modeled_ns;
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
        // And an order of magnitude below CuART's device-side engine:
        // throughput well under 50 MOps/s.
        assert!(a100.mops() < 50.0, "GRT update mops {}", a100.mops());
    }

    #[test]
    fn dirty_tracking_deduplicates_regions() {
        let mut buf = sample(100);
        // Two updates landing in the same 128-byte region.
        let k0 = 0u64.to_be_bytes().to_vec();
        let out = apply_batch(
            &mut buf,
            &[(k0.clone(), 5), (k0.clone(), 6)],
            &devices::a100().pcie,
        );
        assert_eq!(out.dirty_bytes, 128);
    }
}
