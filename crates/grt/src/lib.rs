//! # cuart-grt — the GRT baseline (single packed-buffer GPU radix tree)
//!
//! Reimplementation of the GRT of Alam, Yoginath and Perumalla,
//! *"Performance of Point and Range Queries for In-memory Databases Using
//! Radix Trees on GPUs"* (HPCC 2016), as described in §2.1/§3.1 of the
//! CuART paper. GRT is the baseline CuART is measured against; its defining
//! properties — and the ones this crate reproduces structurally — are:
//!
//! * the whole tree lives in **one untyped, tightly packed buffer**
//!   ([`layout`]); nodes have no alignment guarantee,
//! * the **node type is encoded inside the node header**, so a traversal
//!   step must read the header first and only then knows how much more to
//!   read — at least two *dependent* memory transactions per node (§3.1),
//! * child pointers are **64-bit byte offsets** into the buffer,
//! * leaves are **dynamically sized** (3-byte header + key + value),
//! * key comparison is **byte-oriented** with early exit, which §4.4 credits
//!   for GRT's edge on very short keys (Figure 11),
//! * updates are applied **host-side** into the mapped buffer and the dirty
//!   regions are made visible to the device again — the consistency cost
//!   §3.1 describes ("preparing the buffers for the GPU needs to happen for
//!   almost every update"); this is what keeps GRT's update throughput
//!   around 13 MOps/s regardless of GPU in Figures 17/18.
//!
//! The crate offers both a CPU reference lookup over the packed buffer
//! ([`cpu`]) and the GPU lookup kernel ([`kernels`]) for the
//! `cuart-gpu-sim` simulator, plus the "CUDA vs OpenCL" host-API profiles
//! the paper compares in §4.1 ([`api`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod cpu;
pub mod kernels;
pub mod layout;
pub mod mapper;
pub mod update;

pub use api::{ApiProfile, GrtIndex};
pub use layout::GrtBuffer;
pub use mapper::map_art;
