//! Property tests: the packed GRT buffer must agree with the source ART
//! under arbitrary key sets and update streams.

use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_grt::{map_art, GrtIndex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn art_of(keys: &[Vec<u8>]) -> Art<u64> {
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    art
}

proptest! {
    #[test]
    fn mapped_buffer_agrees_with_art(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 6), 1..150)
    ) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let art = art_of(&keys);
        let buf = map_art(&art);
        prop_assert_eq!(buf.entries, keys.len());
        for k in &keys {
            prop_assert_eq!(cuart_grt::cpu::lookup(&buf, k), art.get(k).copied());
        }
        // Perturbed probes agree on hit/miss.
        for k in keys.iter().take(20) {
            let mut probe = k.clone();
            probe[5] ^= 0x0F;
            prop_assert_eq!(cuart_grt::cpu::lookup(&buf, &probe), art.get(&probe).copied());
        }
    }

    #[test]
    fn update_stream_converges_with_model(
        seed in 0u64..1000,
        rounds in 1usize..4,
    ) {
        let keys: Vec<Vec<u8>> = (0..200u64).map(|i| (i * 3).to_be_bytes().to_vec()).collect();
        let art = art_of(&keys);
        let mut index = GrtIndex::build(&art);
        let mut model: std::collections::HashMap<Vec<u8>, u64> =
            keys.iter().enumerate().map(|(i, k)| (k.clone(), i as u64 + 1)).collect();
        let dev = devices::a100();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            let ops: Vec<(Vec<u8>, u64)> = (0..50)
                .map(|_| {
                    let k = keys[rng.gen_range(0..keys.len())].clone();
                    (k, rng.gen_range(1..1_000_000u64))
                })
                .collect();
            index.update_batch(&ops, &dev);
            for (k, v) in &ops {
                model.insert(k.clone(), *v);
            }
        }
        for k in &keys {
            prop_assert_eq!(index.lookup_cpu(k), model.get(k).copied());
        }
    }

    #[test]
    fn buffer_size_accounting(keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 8), 1..100)) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let buf = map_art(&art_of(&keys));
        // Every key contributes at least its leaf record.
        let min: usize = keys.iter().map(|k| cuart_grt::layout::leaf_bytes(k.len())).sum();
        prop_assert!(buf.bytes.len() >= min);
        // And the buffer is finite/sane: < 3 KB per key for 8-byte keys.
        prop_assert!(buf.bytes.len() <= keys.len() * 3000 + 64);
    }
}
