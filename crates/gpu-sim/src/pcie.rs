//! Host↔device transfer model.
//!
//! The paper measures throughput **end-to-end**, "including CPU overhead for
//! processing the lookups afterwards, PCIe transfer times and pipelining"
//! (§4.1). This module prices the PCIe legs of that pipeline; the
//! [`pipeline`](crate::pipeline) module composes them with kernel execution.

use crate::config::PcieConfig;

/// A host→device or device→host transfer of a query batch.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    /// Payload size in bytes.
    pub bytes: usize,
    /// Modeled duration in nanoseconds.
    pub time_ns: f64,
}

/// Price an upload of `batch_items` keys of `key_bytes` each (host→device).
pub fn upload(pcie: &PcieConfig, batch_items: usize, key_bytes: usize) -> Transfer {
    let bytes = batch_items * key_bytes;
    Transfer {
        bytes,
        time_ns: pcie.transfer_ns(bytes),
    }
}

/// Price a download of `batch_items` results of `result_bytes` each
/// (device→host). Lookups return one 64-bit value per query.
pub fn download(pcie: &PcieConfig, batch_items: usize, result_bytes: usize) -> Transfer {
    let bytes = batch_items * result_bytes;
    Transfer {
        bytes,
        time_ns: pcie.transfer_ns(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn upload_scales_with_batch_and_key_size() {
        let pcie = devices::a100().pcie;
        let small = upload(&pcie, 1024, 8);
        let big = upload(&pcie, 32768, 32);
        assert_eq!(small.bytes, 8192);
        assert_eq!(big.bytes, 1 << 20);
        assert!(big.time_ns > small.time_ns);
    }

    #[test]
    fn tiny_transfers_pay_the_latency_floor() {
        let pcie = devices::gtx1070().pcie;
        let t = upload(&pcie, 1, 8);
        assert!(t.time_ns >= pcie.latency_us * 1000.0);
    }

    #[test]
    fn download_prices_results() {
        let pcie = devices::rtx3090().pcie;
        let d = download(&pcie, 32768, 8);
        assert_eq!(d.bytes, 32768 * 8);
        // A result batch is smaller than its 32-byte-key upload.
        let u = upload(&pcie, 32768, 32);
        assert!(d.time_ns < u.time_ns);
    }
}
