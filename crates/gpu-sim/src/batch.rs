//! Query-batch packing helpers.
//!
//! Both GRT and CuART kernels consume batches of query keys packed at a
//! fixed stride in a device buffer and produce one 64-bit result per query.
//! Keys shorter than the stride are zero-padded; their true length is
//! prepended so kernels can compare exactly.

use crate::memory::{BufferId, DeviceMemory};

/// Sentinel returned for queries whose key is not in the index.
pub const NOT_FOUND: u64 = u64::MAX;

/// Per-key record layout inside a packed batch: one length byte followed by
/// `stride` key bytes (zero-padded).
#[derive(Debug, Clone, Copy)]
pub struct KeyBatchLayout {
    /// Maximum key bytes per record.
    pub stride: usize,
}

impl KeyBatchLayout {
    /// Bytes occupied by one record.
    pub fn record_bytes(&self) -> usize {
        // Length byte + key bytes, rounded to 8 for aligned kernel reads.
        (1 + self.stride).next_multiple_of(8)
    }

    /// Byte offset of record `i`.
    pub fn offset(&self, i: usize) -> usize {
        i * self.record_bytes()
    }
}

/// Pack `keys` into a new device buffer with the given per-record stride.
/// Panics if any key exceeds the stride.
pub fn pack_keys(
    mem: &mut DeviceMemory,
    name: &str,
    keys: &[Vec<u8>],
    stride: usize,
) -> (BufferId, KeyBatchLayout) {
    let layout = KeyBatchLayout { stride };
    let rec = layout.record_bytes();
    let mut data = vec![0u8; keys.len() * rec];
    for (i, key) in keys.iter().enumerate() {
        assert!(
            key.len() <= stride,
            "key of {} bytes exceeds batch stride {}",
            key.len(),
            stride
        );
        assert!(
            key.len() <= u8::MAX as usize,
            "key too long for length byte"
        );
        let off = layout.offset(i);
        data[off] = key.len() as u8;
        data[off + 1..off + 1 + key.len()].copy_from_slice(key);
    }
    let id = mem.alloc_from(name, &data, 32);
    (id, layout)
}

/// Re-pack `keys` into an existing batch buffer (allocated by
/// [`pack_keys`] with at least as many records). The host pipeline reuses
/// one staging buffer per stream instead of allocating per batch.
pub fn pack_keys_into(
    mem: &mut DeviceMemory,
    buf: BufferId,
    layout: &KeyBatchLayout,
    keys: &[Vec<u8>],
) {
    let rec = layout.record_bytes();
    assert!(
        keys.len() * rec <= mem.buffer(buf).len(),
        "batch buffer too small"
    );
    for (i, key) in keys.iter().enumerate() {
        assert!(key.len() <= layout.stride, "key exceeds batch stride");
        let off = layout.offset(i);
        let mut record = vec![0u8; rec];
        record[0] = key.len() as u8;
        record[1..1 + key.len()].copy_from_slice(key);
        mem.write_bytes(buf, off, &record);
    }
}

/// Allocate a result buffer of one u64 per query, initialised to
/// [`NOT_FOUND`].
pub fn alloc_results(mem: &mut DeviceMemory, name: &str, queries: usize) -> BufferId {
    let id = mem.alloc(name, queries * 8, 32);
    for i in 0..queries {
        mem.write_u64(id, i * 8, NOT_FOUND);
    }
    id
}

/// Read back all results.
pub fn read_results(mem: &DeviceMemory, results: BufferId, queries: usize) -> Vec<u64> {
    (0..queries).map(|i| mem.read_u64(results, i * 8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout_is_aligned() {
        let l = KeyBatchLayout { stride: 32 };
        assert_eq!(l.record_bytes(), 40);
        assert_eq!(l.offset(3), 120);
        let l8 = KeyBatchLayout { stride: 8 };
        assert_eq!(l8.record_bytes(), 16);
    }

    #[test]
    fn pack_and_inspect() {
        let mut mem = DeviceMemory::new();
        let keys = vec![b"abc".to_vec(), b"".to_vec(), vec![0xFF; 8]];
        let (buf, layout) = pack_keys(&mut mem, "q", &keys, 8);
        for (i, key) in keys.iter().enumerate() {
            let off = layout.offset(i);
            assert_eq!(mem.read_u8(buf, off) as usize, key.len());
            assert_eq!(mem.read_bytes(buf, off + 1, key.len()), &key[..]);
        }
        // Padding is zeroed.
        assert_eq!(mem.read_u8(buf, layout.offset(0) + 1 + 3), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds batch stride")]
    fn oversized_key_rejected() {
        let mut mem = DeviceMemory::new();
        pack_keys(&mut mem, "q", &[vec![0u8; 9]], 8);
    }

    #[test]
    fn results_roundtrip() {
        let mut mem = DeviceMemory::new();
        let res = alloc_results(&mut mem, "r", 4);
        assert_eq!(read_results(&mem, res, 4), vec![NOT_FOUND; 4]);
        mem.write_u64(res, 8, 42);
        assert_eq!(read_results(&mem, res, 4)[1], 42);
    }
}
