//! Query-batch packing helpers.
//!
//! Both GRT and CuART kernels consume batches of query keys packed at a
//! fixed stride in a device buffer and produce one 64-bit result per query.
//! Keys shorter than the stride are zero-padded; their true length is
//! prepended so kernels can compare exactly.
//!
//! Packing is fallible from the caller's point of view: a key longer than
//! the batch stride (or than the 255-byte length field) cannot be
//! represented, and a reused staging buffer may be smaller than the batch.
//! Both conditions surface as [`PackError`] instead of a panic so service
//! layers (sessions, schedulers) can route the offending key elsewhere.
//!
//! The module also hosts the **sorted-batch** helpers ([`sort_permutation`],
//! [`gather`], [`scatter_inverse`]): packing a batch in key order makes
//! adjacent kernel threads traverse neighboring tree paths, which the
//! coalescing and cache models reward (§3.1 of the paper). The permutation
//! is inverted on result return so callers still see results in submission
//! order.

use crate::memory::{BufferId, DeviceMemory};
use std::fmt;

/// Sentinel returned for queries whose key is not in the index.
pub const NOT_FOUND: u64 = u64::MAX;

/// Why a batch of keys could not be packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// A key does not fit the per-record stride (or the one-byte length
    /// field). The index identifies the offending key within the batch.
    KeyTooLong {
        /// Position of the key inside the batch.
        index: usize,
        /// Length of the offending key in bytes.
        len: usize,
        /// Largest representable key length for this layout.
        max: usize,
    },
    /// The destination buffer cannot hold the batch.
    BufferTooSmall {
        /// Bytes required by the batch.
        needed: usize,
        /// Bytes available in the buffer.
        available: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::KeyTooLong { index, len, max } => {
                write!(f, "key {index} of {len} bytes exceeds batch stride {max}")
            }
            PackError::BufferTooSmall { needed, available } => write!(
                f,
                "batch buffer too small: need {needed} bytes, have {available}"
            ),
        }
    }
}

impl std::error::Error for PackError {}

/// Per-key record layout inside a packed batch: one length byte followed by
/// `stride` key bytes (zero-padded).
#[derive(Debug, Clone, Copy)]
pub struct KeyBatchLayout {
    /// Maximum key bytes per record.
    pub stride: usize,
}

impl KeyBatchLayout {
    /// Bytes occupied by one record.
    pub fn record_bytes(&self) -> usize {
        // Length byte + key bytes, rounded to 8 for aligned kernel reads.
        (1 + self.stride).next_multiple_of(8)
    }

    /// Byte offset of record `i`.
    pub fn offset(&self, i: usize) -> usize {
        i * self.record_bytes()
    }

    /// Largest key length this layout can represent: bounded by the stride
    /// and by the one-byte length field.
    pub fn max_key_len(&self) -> usize {
        self.stride.min(u8::MAX as usize)
    }

    /// Check every key fits the layout; identifies the first that does not.
    pub fn check_keys(&self, keys: &[Vec<u8>]) -> Result<(), PackError> {
        let max = self.max_key_len();
        for (index, key) in keys.iter().enumerate() {
            if key.len() > max {
                return Err(PackError::KeyTooLong {
                    index,
                    len: key.len(),
                    max,
                });
            }
        }
        Ok(())
    }
}

/// Pack `keys` into a new device buffer with the given per-record stride.
/// Fails with [`PackError::KeyTooLong`] if any key exceeds the stride (or
/// the 255-byte length field).
pub fn pack_keys(
    mem: &mut DeviceMemory,
    name: &str,
    keys: &[Vec<u8>],
    stride: usize,
) -> Result<(BufferId, KeyBatchLayout), PackError> {
    let layout = KeyBatchLayout { stride };
    layout.check_keys(keys)?;
    let rec = layout.record_bytes();
    let mut data = vec![0u8; keys.len() * rec];
    for (i, key) in keys.iter().enumerate() {
        let off = layout.offset(i);
        data[off] = key.len() as u8;
        data[off + 1..off + 1 + key.len()].copy_from_slice(key);
    }
    let id = mem.alloc_from(name, &data, 32);
    Ok((id, layout))
}

/// Re-pack `keys` into an existing batch buffer (allocated by
/// [`pack_keys`] with at least as many records). The host pipeline reuses
/// one staging buffer per stream instead of allocating per batch.
///
/// Every record in the live region `[0, keys.len())` is written in full —
/// length byte, key bytes **and** zero padding up to the record stride — so
/// a reused buffer cannot leak key bytes or length fields from a previous,
/// larger batch into the records a kernel will read. (Records past
/// `keys.len()` may still hold stale data; kernels are bounded by the batch
/// `count` and never read them.)
pub fn pack_keys_into(
    mem: &mut DeviceMemory,
    buf: BufferId,
    layout: &KeyBatchLayout,
    keys: &[Vec<u8>],
) -> Result<(), PackError> {
    let rec = layout.record_bytes();
    let needed = keys.len() * rec;
    let available = mem.buffer(buf).len();
    if needed > available {
        return Err(PackError::BufferTooSmall { needed, available });
    }
    layout.check_keys(keys)?;
    for (i, key) in keys.iter().enumerate() {
        let off = layout.offset(i);
        let mut record = vec![0u8; rec];
        record[0] = key.len() as u8;
        record[1..1 + key.len()].copy_from_slice(key);
        mem.write_bytes(buf, off, &record);
    }
    Ok(())
}

/// Allocate a result buffer of one u64 per query, initialised to
/// [`NOT_FOUND`].
pub fn alloc_results(mem: &mut DeviceMemory, name: &str, queries: usize) -> BufferId {
    let id = mem.alloc(name, queries * 8, 32);
    for i in 0..queries {
        mem.write_u64(id, i * 8, NOT_FOUND);
    }
    id
}

/// Read back all results.
pub fn read_results(mem: &DeviceMemory, results: BufferId, queries: usize) -> Vec<u64> {
    (0..queries).map(|i| mem.read_u64(results, i * 8)).collect()
}

// ---------------------------------------------------------------------------
// Sorted-batch composition
// ---------------------------------------------------------------------------

/// Compute the permutation that **stably** sorts `keys` ascending:
/// `perm[i]` is the original index of the key placed at sorted position
/// `i`. Stability matters for update batches — duplicate keys keep their
/// submission order, so "last write wins" semantics survive sorting.
pub fn sort_permutation(keys: &[Vec<u8>]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    perm.sort_by(|&a, &b| keys[a].cmp(&keys[b]));
    perm
}

/// Gather `items` into permutation order: `out[i] = items[perm[i]]`.
/// Used to build the sorted batch that is handed to the device.
pub fn gather<T: Clone>(items: &[T], perm: &[usize]) -> Vec<T> {
    perm.iter().map(|&i| items[i].clone()).collect()
}

/// Scatter `results` (in sorted/batch order) back to submission order by
/// applying the **inverse** permutation: `out[perm[i]] = results[i]`.
pub fn scatter_inverse<T: Clone + Default>(results: &[T], perm: &[usize]) -> Vec<T> {
    debug_assert_eq!(results.len(), perm.len());
    let mut out = vec![T::default(); results.len()];
    for (i, &orig) in perm.iter().enumerate() {
        out[orig] = results[i].clone();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout_is_aligned() {
        let l = KeyBatchLayout { stride: 32 };
        assert_eq!(l.record_bytes(), 40);
        assert_eq!(l.offset(3), 120);
        let l8 = KeyBatchLayout { stride: 8 };
        assert_eq!(l8.record_bytes(), 16);
    }

    #[test]
    fn pack_and_inspect() {
        let mut mem = DeviceMemory::new();
        let keys = vec![b"abc".to_vec(), b"".to_vec(), vec![0xFF; 8]];
        let (buf, layout) = pack_keys(&mut mem, "q", &keys, 8).unwrap();
        for (i, key) in keys.iter().enumerate() {
            let off = layout.offset(i);
            assert_eq!(mem.read_u8(buf, off) as usize, key.len());
            assert_eq!(mem.read_bytes(buf, off + 1, key.len()), &key[..]);
        }
        // Padding is zeroed.
        assert_eq!(mem.read_u8(buf, layout.offset(0) + 1 + 3), 0);
    }

    #[test]
    fn oversized_key_is_an_error_not_a_panic() {
        let mut mem = DeviceMemory::new();
        let err = pack_keys(&mut mem, "q", &[vec![0u8; 4], vec![0u8; 9]], 8).unwrap_err();
        assert_eq!(
            err,
            PackError::KeyTooLong {
                index: 1,
                len: 9,
                max: 8
            }
        );
        // The length byte caps representable keys at 255 even for huge
        // strides.
        let err = pack_keys(&mut mem, "q", &[vec![0u8; 300]], 512).unwrap_err();
        assert_eq!(
            err,
            PackError::KeyTooLong {
                index: 0,
                len: 300,
                max: 255
            }
        );
    }

    #[test]
    fn undersized_buffer_is_an_error() {
        let mut mem = DeviceMemory::new();
        let (buf, layout) = pack_keys(&mut mem, "q", &vec![vec![1u8; 8]; 2], 8).unwrap();
        let err = pack_keys_into(&mut mem, buf, &layout, &vec![vec![1u8; 8]; 3]).unwrap_err();
        assert_eq!(
            err,
            PackError::BufferTooSmall {
                needed: 48,
                available: 32
            }
        );
    }

    #[test]
    fn repack_overwrites_full_live_region() {
        // Regression for staging reuse: a smaller batch re-packed into a
        // buffer that previously held longer keys must not leave stale key
        // bytes or length fields inside its live records.
        let mut mem = DeviceMemory::new();
        let big = vec![vec![0xAAu8; 8], vec![0xBBu8; 8], vec![0xCCu8; 8]];
        let (buf, layout) = pack_keys(&mut mem, "q", &big, 8).unwrap();
        let small = vec![vec![0x11u8; 2]];
        pack_keys_into(&mut mem, buf, &layout, &small).unwrap();
        let off = layout.offset(0);
        assert_eq!(mem.read_u8(buf, off), 2);
        assert_eq!(mem.read_bytes(buf, off + 1, 2), vec![0x11, 0x11]);
        // Bytes 3..8 of record 0 must be zero, not stale 0xAA.
        assert_eq!(mem.read_bytes(buf, off + 3, 6), vec![0u8; 6]);
    }

    #[test]
    fn results_roundtrip() {
        let mut mem = DeviceMemory::new();
        let res = alloc_results(&mut mem, "r", 4);
        assert_eq!(read_results(&mem, res, 4), vec![NOT_FOUND; 4]);
        mem.write_u64(res, 8, 42);
        assert_eq!(read_results(&mem, res, 4)[1], 42);
    }

    #[test]
    fn sort_permutation_roundtrips() {
        let keys = vec![
            b"delta".to_vec(),
            b"alpha".to_vec(),
            b"charlie".to_vec(),
            b"bravo".to_vec(),
        ];
        let perm = sort_permutation(&keys);
        let sorted = gather(&keys, &perm);
        let mut expect = keys.clone();
        expect.sort();
        assert_eq!(sorted, expect);
        // Results computed in sorted order come back in submission order.
        let sorted_results: Vec<u64> = perm.iter().map(|&i| i as u64 * 10).collect();
        let restored = scatter_inverse(&sorted_results, &perm);
        assert_eq!(restored, vec![0, 10, 20, 30]);
    }

    #[test]
    fn sort_permutation_is_stable_for_duplicates() {
        let keys = vec![b"same".to_vec(), b"aaa".to_vec(), b"same".to_vec()];
        let perm = sort_permutation(&keys);
        // Duplicates keep submission order: index 0 before index 2.
        assert_eq!(perm, vec![1, 0, 2]);
    }
}
