//! DRAM channel model.
//!
//! Device addresses are interleaved across channels at 256-byte granularity
//! (NVIDIA's partition stride). Every L2 miss becomes a transaction on one
//! channel; the channel is busy for a command-overhead term plus the data
//! burst. The command term — `random_overhead_cycles / command_clock` — is
//! what the paper's §4.6 analysis is about: HBM2's wide channel finishes the
//! burst in one clock, so the fixed command sequence at the *low* HBM clock
//! dominates, while GDDR6X pays the same command sequence at twice the
//! clock.

use crate::config::MemConfig;

/// Address-interleaving stride across channels, in bytes.
pub const CHANNEL_STRIDE: u64 = 256;

/// Accumulates busy time per channel.
#[derive(Debug)]
pub struct DramModel {
    cfg: MemConfig,
    busy_ns: Vec<f64>,
    transactions: u64,
    bytes: u64,
}

impl DramModel {
    /// New idle DRAM model.
    pub fn new(cfg: MemConfig) -> Self {
        DramModel {
            busy_ns: vec![0.0; cfg.channels],
            cfg,
            transactions: 0,
            bytes: 0,
        }
    }

    /// Channel serving byte address `addr`.
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / CHANNEL_STRIDE) % self.cfg.channels as u64) as usize
    }

    /// Issue one transaction of `bytes` at `addr`; returns the service time
    /// (the channel's busy-time contribution) in nanoseconds.
    pub fn issue(&mut self, addr: u64, bytes: usize) -> f64 {
        let t = self.cfg.transaction_ns(bytes);
        let ch = self.channel_of(addr);
        self.busy_ns[ch] += t; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        self.transactions = self.transactions.saturating_add(1);
        self.bytes = self.bytes.saturating_add(bytes as u64);
        t
    }

    /// Busy time of the most-loaded channel: the bandwidth-bound lower
    /// limit on kernel time.
    pub fn max_channel_busy_ns(&self) -> f64 {
        self.busy_ns.iter().copied().fold(0.0, f64::max)
    }

    /// Mean channel busy time.
    pub fn mean_channel_busy_ns(&self) -> f64 {
        self.busy_ns.iter().sum::<f64>() / self.busy_ns.len() as f64
    }

    /// Channel-load imbalance: max/mean busy (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_channel_busy_ns();
        if mean == 0.0 {
            1.0
        } else {
            self.max_channel_busy_ns() / mean
        }
    }

    /// Total transactions issued.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The *loaded* latency of one access: unloaded latency inflated by
    /// queueing once channels approach saturation. `elapsed_ns` is the
    /// wall-clock window over which the recorded traffic was generated.
    pub fn loaded_latency_ns(&self, elapsed_ns: f64) -> f64 {
        let util = if elapsed_ns > 0.0 {
            (self.mean_channel_busy_ns() / elapsed_ns).min(0.97)
        } else {
            0.0
        };
        // M/D/1-style inflation: latency grows as channels saturate.
        self.cfg.access_latency_ns * (1.0 + util / (1.0 - util))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn interleaving_spreads_uniform_traffic() {
        let mut dram = DramModel::new(devices::a100().mem);
        for i in 0..40 * 16u64 {
            dram.issue(i * CHANNEL_STRIDE, 32);
        }
        assert!(dram.imbalance() < 1.01, "imbalance {}", dram.imbalance());
        assert_eq!(dram.transactions(), 640);
    }

    #[test]
    fn hot_channel_shows_imbalance() {
        let mut dram = DramModel::new(devices::a100().mem);
        for _ in 0..100 {
            dram.issue(0, 32); // all on channel 0
        }
        assert!(dram.imbalance() > 10.0);
        assert!(dram.max_channel_busy_ns() > 0.0);
    }

    #[test]
    fn bytes_and_service_time_accumulate() {
        let mut dram = DramModel::new(devices::rtx3090().mem);
        let t1 = dram.issue(0, 32);
        let t2 = dram.issue(4096, 128);
        assert!(t2 > t1);
        assert_eq!(dram.bytes(), 160);
    }

    #[test]
    fn loaded_latency_grows_with_utilization() {
        let mut dram = DramModel::new(devices::a100().mem);
        let unloaded = dram.loaded_latency_ns(1e9);
        for i in 0..100_000u64 {
            dram.issue(i * 64, 32);
        }
        // Same traffic, shrinking window -> rising utilisation -> more latency.
        let light = dram.loaded_latency_ns(1e9);
        let heavy = dram.loaded_latency_ns(dram.mean_channel_busy_ns() * 1.1);
        assert!(light >= unloaded);
        assert!(heavy > light * 2.0, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn channel_of_is_stable_and_in_range() {
        let dram = DramModel::new(devices::gtx1070().mem);
        for addr in [0u64, 255, 256, 511, 1 << 30] {
            let ch = dram.channel_of(addr);
            assert!(ch < 8);
            assert_eq!(ch, dram.channel_of(addr));
        }
        assert_ne!(dram.channel_of(0), dram.channel_of(CHANNEL_STRIDE));
    }
}
