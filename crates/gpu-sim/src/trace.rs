//! Per-thread execution traces: the raw material of the timing model.
//!
//! A thread's trace is a sequence of [`Step`]s. One step bundles the memory
//! accesses a thread can have in flight simultaneously (memory-level
//! parallelism); consecutive steps are **dependent** — the address of step
//! *n+1* was computed from data loaded in step *n*. Pointer chasing through
//! a radix tree is exactly a chain of dependent steps, which is why latency,
//! not bandwidth, bounds tree traversal on GPUs (§3.1 of the paper).

/// Dependency marker for an access issued through
/// [`ThreadCtx`](crate::ThreadCtx).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dep {
    /// Opens a new step: the address depends on previously loaded data.
    Dependent,
    /// Joins the current step: the address was independently computable, so
    /// the hardware can overlap it with the other accesses of the step.
    Independent,
}

/// Kind of memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Global-memory read.
    Read,
    /// Global-memory write.
    Write,
    /// Read-modify-write with conflict serialisation.
    Atomic,
}

/// One memory access: device address range + kind.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// Flat device address of the first byte.
    pub addr: u64,
    /// Length in bytes.
    pub len: u32,
    /// Read / write / atomic.
    pub kind: AccessKind,
}

/// A group of accesses a thread has in flight at once, plus the compute
/// cycles spent before issuing the *next* step.
#[derive(Debug, Clone, Default)]
pub struct Step {
    /// Concurrent accesses of this step.
    pub accesses: Vec<Access>,
    /// Compute cycles attributed after this step's data arrived.
    pub compute_cycles: u32,
}

/// The full trace of one simulated thread.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Dependent steps in program order.
    pub steps: Vec<Step>,
    /// Compute cycles before the first memory access.
    pub lead_compute_cycles: u32,
}

impl ThreadTrace {
    /// Record an access.
    pub fn record(&mut self, access: Access, dep: Dep) {
        match dep {
            Dep::Dependent => self.steps.push(Step {
                accesses: vec![access],
                compute_cycles: 0,
            }),
            Dep::Independent => match self.steps.last_mut() {
                Some(step) => step.accesses.push(access),
                None => self.steps.push(Step {
                    accesses: vec![access],
                    compute_cycles: 0,
                }),
            },
        }
    }

    /// Attribute compute cycles at the current position.
    pub fn record_compute(&mut self, cycles: u32) {
        match self.steps.last_mut() {
            Some(step) => step.compute_cycles += cycles,
            None => self.lead_compute_cycles += cycles,
        }
    }

    /// Total compute cycles in the trace.
    pub fn total_compute(&self) -> u64 {
        self.lead_compute_cycles as u64
            + self
                .steps
                .iter()
                .map(|s| s.compute_cycles as u64)
                .sum::<u64>()
    }

    /// Number of dependent steps (the pointer-chase depth).
    pub fn depth(&self) -> usize {
        self.steps.len()
    }

    /// Total bytes touched.
    pub fn bytes(&self) -> u64 {
        self.steps
            .iter()
            .flat_map(|s| &s.accesses)
            .map(|a| a.len as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(addr: u64, len: u32) -> Access {
        Access {
            addr,
            len,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn dependent_accesses_open_steps() {
        let mut t = ThreadTrace::default();
        t.record(read(0, 8), Dep::Dependent);
        t.record(read(100, 8), Dep::Dependent);
        t.record(read(200, 8), Dep::Dependent);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.bytes(), 24);
    }

    #[test]
    fn independent_accesses_share_a_step() {
        let mut t = ThreadTrace::default();
        t.record(read(0, 16), Dep::Dependent);
        t.record(read(64, 8), Dep::Independent);
        t.record(read(128, 8), Dep::Independent);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.steps[0].accesses.len(), 3);
    }

    #[test]
    fn leading_independent_access_still_creates_step() {
        let mut t = ThreadTrace::default();
        t.record(read(0, 8), Dep::Independent);
        assert_eq!(t.depth(), 1);
    }

    #[test]
    fn compute_attribution() {
        let mut t = ThreadTrace::default();
        t.record_compute(10); // before any access
        t.record(read(0, 8), Dep::Dependent);
        t.record_compute(20);
        t.record_compute(5);
        assert_eq!(t.lead_compute_cycles, 10);
        assert_eq!(t.steps[0].compute_cycles, 25);
        assert_eq!(t.total_compute(), 35);
    }
}
