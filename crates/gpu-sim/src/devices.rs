//! Preset device models for the three machines of the paper's §4.1.
//!
//! * **Server** — 2× AMD Epyc 7752, NVIDIA **A100** 40 GB HBM2
//! * **Workstation** — AMD Ryzen 5800X, NVIDIA **RTX 3090** 24 GB GDDR6X
//! * **Notebook** — Intel i7-8750H, NVIDIA **GTX 1070** 8 GB GDDR5
//!
//! Channel counts and clocks are the ones §4.6 quotes: 40 × 128-bit HBM2
//! channels at 1215 MHz on the A100 vs 24 × 16-bit GDDR6X channels at
//! 2500 MHz on the RTX 3090.

use crate::config::{CacheConfig, DeviceConfig, MemConfig, MemKind, PcieConfig};

/// NVIDIA A100 40 GB (HBM2) — the paper's "server" GPU.
pub fn a100() -> DeviceConfig {
    DeviceConfig {
        name: "NVIDIA A100 (HBM2)",
        sm_count: 108,
        warps_per_sm: 64,
        warp_size: 32,
        core_clock_mhz: 1410.0,
        issue_per_cycle: 1.0,
        launch_overhead_us: 5.0,
        mem: MemConfig {
            kind: MemKind::Hbm2,
            channels: 40,
            channel_width_bits: 128,
            command_clock_mhz: 1215.0,
            data_rate: 2.0,
            // Wide channel finishes a 32 B sector in a single clock, so the
            // fixed command sequence dominates — the "increased command
            // overhead" §4.6 describes.
            random_overhead_cycles: 42.0,
            access_latency_ns: 404.0,
        },
        l2: CacheConfig {
            size_bytes: 40 << 20,
            line_bytes: 128,
            ways: 16,
            hit_latency_ns: 140.0,
        },
        pcie: PcieConfig {
            bandwidth_gbps: 24.0,
            latency_us: 8.0,
        },
    }
}

/// NVIDIA RTX 3090 24 GB (GDDR6X) — the paper's "workstation" GPU.
pub fn rtx3090() -> DeviceConfig {
    DeviceConfig {
        name: "NVIDIA RTX 3090 (GDDR6X)",
        sm_count: 82,
        warps_per_sm: 48,
        warp_size: 32,
        core_clock_mhz: 1695.0,
        issue_per_cycle: 1.0,
        launch_overhead_us: 5.0,
        mem: MemConfig {
            kind: MemKind::Gddr6x,
            channels: 24,
            channel_width_bits: 16,
            command_clock_mhz: 2500.0,
            data_rate: 7.8,
            random_overhead_cycles: 42.0,
            access_latency_ns: 380.0,
        },
        l2: CacheConfig {
            size_bytes: 6 << 20,
            line_bytes: 128,
            ways: 16,
            hit_latency_ns: 120.0,
        },
        pcie: PcieConfig {
            bandwidth_gbps: 24.0,
            latency_us: 8.0,
        },
    }
}

/// NVIDIA GTX 1070 8 GB (GDDR5) — the paper's "notebook" GPU.
pub fn gtx1070() -> DeviceConfig {
    DeviceConfig {
        name: "NVIDIA GTX 1070 (GDDR5)",
        sm_count: 15,
        warps_per_sm: 64,
        warp_size: 32,
        core_clock_mhz: 1645.0,
        issue_per_cycle: 1.0,
        launch_overhead_us: 6.0,
        mem: MemConfig {
            kind: MemKind::Gddr5,
            channels: 8,
            channel_width_bits: 32,
            command_clock_mhz: 2002.0,
            data_rate: 4.0,
            random_overhead_cycles: 46.0,
            access_latency_ns: 430.0,
        },
        l2: CacheConfig {
            size_bytes: 2 << 20,
            line_bytes: 128,
            ways: 16,
            hit_latency_ns: 110.0,
        },
        pcie: PcieConfig {
            bandwidth_gbps: 12.0,
            latency_us: 10.0,
        },
    }
}

/// All three paper devices, in the order of Figure 18.
pub fn all() -> Vec<DeviceConfig> {
    vec![a100(), rtx3090(), gtx1070()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        for dev in all() {
            assert!(dev.sm_count > 0);
            assert!(dev.resident_warps() >= dev.sm_count);
            assert!(dev.mem.channels > 0);
            assert!(dev.mem.peak_bandwidth_gbps() > 100.0);
            assert!(dev.l2.size_bytes >= 1 << 20);
        }
        assert_eq!(all().len(), 3);
    }

    #[test]
    fn a100_has_most_channels_1070_fewest() {
        assert!(a100().mem.channels > rtx3090().mem.channels);
        assert!(rtx3090().mem.channels > gtx1070().mem.channels);
    }
}
