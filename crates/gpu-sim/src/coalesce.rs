//! Warp-level memory coalescing.
//!
//! When a warp executes a load, the 32 lane addresses are merged by the
//! memory subsystem into **32-byte sectors** (the granularity at which
//! NVIDIA L2/DRAM move data). 32 lanes reading consecutive u64s touch 8
//! sectors; 32 lanes chasing random tree pointers touch up to 32 (or more,
//! if an access straddles sector boundaries — GRT's unaligned packed nodes
//! regularly do, which is one of the two costs §3.1 identifies).

/// Size of one memory sector in bytes.
pub const SECTOR_BYTES: u64 = 32;

/// The set of distinct sectors touched by a group of accesses, as sector
/// indices (address / 32), sorted and deduplicated.
pub fn sectors(accesses: impl IntoIterator<Item = (u64, u32)>) -> Vec<u64> {
    let mut out = Vec::new();
    for (addr, len) in accesses {
        if len == 0 {
            continue;
        }
        let first = addr / SECTOR_BYTES;
        let last = (addr + len as u64 - 1) / SECTOR_BYTES;
        for s in first..=last {
            out.push(s);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Number of sectors a single access of `len` bytes at `addr` touches.
pub fn sectors_of_access(addr: u64, len: u32) -> u64 {
    if len == 0 {
        return 0;
    }
    (addr + len as u64 - 1) / SECTOR_BYTES - addr / SECTOR_BYTES + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_u64s_coalesce() {
        // 32 lanes × 8 B contiguous = 256 B = 8 sectors.
        let accesses = (0..32u64).map(|i| (i * 8, 8u32));
        assert_eq!(sectors(accesses).len(), 8);
    }

    #[test]
    fn scattered_reads_do_not_coalesce() {
        // 32 lanes, each in its own 4 KiB page.
        let accesses = (0..32u64).map(|i| (i * 4096, 8u32));
        assert_eq!(sectors(accesses).len(), 32);
    }

    #[test]
    fn aligned_access_spans_minimal_sectors() {
        assert_eq!(sectors_of_access(0, 32), 1);
        assert_eq!(sectors_of_access(32, 32), 1);
        assert_eq!(sectors_of_access(0, 64), 2);
    }

    #[test]
    fn unaligned_access_spans_extra_sector() {
        // A 16-byte read at offset 24 crosses a sector boundary: 2 sectors
        // where an aligned read needs 1. This is the GRT penalty.
        assert_eq!(sectors_of_access(24, 16), 2);
        assert_eq!(sectors_of_access(16, 16), 1);
    }

    #[test]
    fn duplicate_addresses_dedupe() {
        // All 32 lanes read the same header (broadcast) = 1 sector.
        let accesses = (0..32).map(|_| (64u64, 8u32));
        assert_eq!(sectors(accesses).len(), 1);
    }

    #[test]
    fn zero_length_access_touches_nothing() {
        assert_eq!(sectors_of_access(10, 0), 0);
        assert!(sectors([(10u64, 0u32)]).is_empty());
    }
}
