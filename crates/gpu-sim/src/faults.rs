//! Deterministic device fault injection.
//!
//! Real GPU services treat transfer failures, kernel aborts and device
//! allocation failure as *recoverable batch outcomes*, not process aborts.
//! This module gives the simulator the same failure surface: a seedable
//! [`FaultInjector`] that engines consult at every operation boundary
//! (before a transfer, before a launch, before an arena grow). When the
//! `faults` cargo feature is **off** the check body compiles away to
//! `Ok(())`, so production builds pay nothing.
//!
//! Determinism: the injector is a pure function of its
//! [`FaultConfig`] (seed, per-site probabilities, explicit fail-Nth
//! schedule) and the sequence of `check` calls — replaying the same batch
//! sequence reproduces the same faults, which is what the recovery
//! proptests rely on.

use std::fmt;

/// Where in the device pipeline a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultSite {
    /// A host↔device transfer (upload of keys/values, download of results).
    Transfer,
    /// A kernel launch (the launch aborts before any device write lands).
    Kernel,
    /// A device memory allocation / arena growth request.
    Alloc,
}

impl FaultSite {
    /// Stable lowercase identifier for logs and telemetry labels.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultSite::Transfer => "transfer",
            FaultSite::Kernel => "kernel",
            FaultSite::Alloc => "alloc",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single injected device fault, reported back to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// The pipeline stage that failed.
    pub site: FaultSite,
    /// Global index of the failed operation (0-based, counts every
    /// `check` call on this injector).
    pub op_index: u64,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected {} fault at op #{}", self.site, self.op_index)
    }
}

impl std::error::Error for DeviceFault {}

/// Configuration of a [`FaultInjector`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultConfig {
    /// RNG seed; the same seed and call sequence reproduce the same faults.
    pub seed: u64,
    /// Probability in `[0, 1]` that a transfer op faults.
    pub transfer_rate: f64,
    /// Probability in `[0, 1]` that a kernel launch faults.
    pub kernel_rate: f64,
    /// Probability in `[0, 1]` that an allocation faults.
    pub alloc_rate: f64,
    /// Explicit schedule: global op indices that fault unconditionally,
    /// regardless of site and rate. Used to force deterministic failure
    /// bursts (e.g. "ops 10..20 all fail" to exhaust a retry budget).
    pub fail_ops: Vec<u64>,
}

impl FaultConfig {
    /// Uniform configuration: every site faults with probability `rate`.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            transfer_rate: rate,
            kernel_rate: rate,
            alloc_rate: rate,
            fail_ops: Vec::new(),
        }
    }

    /// Schedule the half-open global op range `[start, end)` to fault
    /// unconditionally. Chainable.
    pub fn fail_range(mut self, start: u64, end: u64) -> Self {
        self.fail_ops.extend(start..end);
        self
    }

    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    fn rate_for(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Transfer => self.transfer_rate,
            FaultSite::Kernel => self.kernel_rate,
            FaultSite::Alloc => self.alloc_rate,
        }
    }
}

/// Deterministic, seedable fault source consulted at device op boundaries.
///
/// Engines call [`check`](FaultInjector::check) before each transfer,
/// launch or allocation; `Err(DeviceFault)` means the op failed *before*
/// performing any device write, so retrying it is always safe.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    state: u64,
    ops: u64,
    injected: u64,
}

impl FaultInjector {
    /// Build an injector from a full config.
    pub fn new(cfg: FaultConfig) -> Self {
        // SplitMix64 seeding: avalanche the seed so that seed=0 and
        // seed=1 produce unrelated streams.
        let state = splitmix64(cfg.seed ^ 0x9e37_79b9_7f4a_7c15);
        FaultInjector {
            cfg,
            state,
            ops: 0,
            injected: 0,
        }
    }

    /// Uniform-rate injector (every site faults with probability `rate`).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        Self::new(FaultConfig::uniform(seed, rate))
    }

    /// `true` when the crate was compiled with the `faults` feature and
    /// the injector can actually fire. When `false`, `check` always
    /// returns `Ok`, regardless of configuration.
    pub const fn is_active() -> bool {
        cfg!(feature = "faults")
    }

    /// Total `check` calls made on this injector.
    pub fn ops_checked(&self) -> u64 {
        self.ops
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Consult the injector at an op boundary of kind `site`.
    ///
    /// Returns `Err(DeviceFault)` when the op should fail. The op index
    /// advances on every call (also with the feature off, so op-indexed
    /// schedules line up across builds — they just never fire).
    pub fn check(&mut self, site: FaultSite) -> Result<(), DeviceFault> {
        let op_index = self.ops;
        self.ops = self.ops.saturating_add(1);
        #[cfg(feature = "faults")]
        {
            let scheduled = self.cfg.fail_ops.contains(&op_index);
            let rate = self.cfg.rate_for(site);
            let rolled = if rate > 0.0 {
                // Advance the RNG only when a rate is configured so that
                // pure-schedule configs are insensitive to rate changes.
                let r = self.next_u64();
                (r >> 11) as f64 / (1u64 << 53) as f64 <= rate
            } else {
                false
            };
            if scheduled || rolled {
                self.injected += 1;
                return Err(DeviceFault { site, op_index });
            }
        }
        #[cfg(not(feature = "faults"))]
        {
            let _ = (site, op_index);
        }
        Ok(())
    }

    #[cfg(feature = "faults")]
    fn next_u64(&mut self) -> u64 {
        self.state = splitmix64(self.state);
        self.state
    }
}

/// SplitMix64 step — the same mixer the in-tree `rand` shim uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let mut inj = FaultInjector::uniform(42, 0.0);
        for _ in 0..10_000 {
            assert!(inj.check(FaultSite::Transfer).is_ok());
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.ops_checked(), 10_000);
    }

    #[test]
    #[cfg(feature = "faults")]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut inj = FaultInjector::uniform(seed, 0.05);
            (0..1000)
                .map(|_| inj.check(FaultSite::Kernel).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[cfg(feature = "faults")]
    fn rate_is_roughly_respected() {
        let mut inj = FaultInjector::uniform(1, 0.05);
        let n = 20_000;
        let mut faults = 0;
        for _ in 0..n {
            if inj.check(FaultSite::Transfer).is_err() {
                faults += 1;
            }
        }
        let observed = faults as f64 / n as f64;
        assert!(
            (0.03..=0.07).contains(&observed),
            "5% rate produced {observed}"
        );
    }

    #[test]
    #[cfg(feature = "faults")]
    fn fail_nth_schedule_fires_exactly_there() {
        let mut inj = FaultInjector::new(FaultConfig::default().fail_range(3, 5));
        let results: Vec<bool> = (0..8)
            .map(|_| inj.check(FaultSite::Alloc).is_err())
            .collect();
        assert_eq!(
            results,
            [false, false, false, true, true, false, false, false]
        );
        assert_eq!(inj.faults_injected(), 2);
    }

    #[test]
    #[cfg(feature = "faults")]
    fn fault_carries_site_and_op_index() {
        let mut inj = FaultInjector::new(FaultConfig::default().fail_range(1, 2));
        assert!(inj.check(FaultSite::Transfer).is_ok());
        let err = inj.check(FaultSite::Kernel).unwrap_err();
        assert_eq!(err.site, FaultSite::Kernel);
        assert_eq!(err.op_index, 1);
        assert!(err.to_string().contains("kernel"));
    }

    #[test]
    #[cfg(not(feature = "faults"))]
    fn without_feature_even_scheduled_faults_are_noops() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(0, 1.0).fail_range(0, 100));
        for _ in 0..100 {
            assert!(inj.check(FaultSite::Transfer).is_ok());
        }
        assert_eq!(inj.faults_injected(), 0);
        assert!(!FaultInjector::is_active());
    }
}
