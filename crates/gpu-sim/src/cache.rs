//! Set-associative L2 cache model with LRU replacement.
//!
//! The L2 is shared by all SMs and is probed at sector granularity (a line
//! holds 4 sectors of 32 B; we track whole 128 B lines, which matches how
//! NVIDIA's L2 allocates). The tree-size sweeps of Figures 7/10/15/16 get
//! their small-tree/large-tree regimes from this model: a 64 Ki-entry tree
//! fits in L2, a 16 Mi-entry tree does not.

use crate::config::CacheConfig;

/// A set-associative, LRU, write-allocate cache.
#[derive(Debug)]
pub struct Cache {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` = line tag, or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// Monotone use-counter per slot for LRU.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> Self {
        let lines = (cfg.size_bytes / cfg.line_bytes).max(1);
        let ways = cfg.ways.min(lines).max(1);
        let sets = (lines / ways).max(1);
        Cache {
            line_bytes: cfg.line_bytes as u64,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Probe the line containing byte address `addr`; allocate on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        let slots = &mut self.tags[base..base + self.ways];
        if let Some(way) = slots.iter().position(|&t| t == line) {
            self.stamps[base + way] = self.clock;
            self.hits = self.hits.saturating_add(1);
            return true;
        }
        // Miss: evict LRU way of the set.
        self.misses = self.misses.saturating_add(1);
        let lru = (0..self.ways)
            .min_by_key(|&w| self.stamps[base + w])
            .unwrap_or(0);
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in [0, 1]; 0 if no accesses yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn small() -> Cache {
        Cache::new(&CacheConfig {
            size_bytes: 1024, // 8 lines of 128 B
            line_bytes: 128,
            ways: 2,
            hit_latency_ns: 10.0,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(64)); // same 128 B line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn working_set_within_capacity_all_hits_on_second_pass() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 128);
        }
        let misses_before = c.misses();
        for i in 0..8u64 {
            assert!(c.access(i * 128), "line {i} should hit");
        }
        assert_eq!(c.misses(), misses_before);
    }

    #[test]
    fn thrashing_beyond_capacity_misses() {
        let mut c = small();
        // 32 lines > 8-line capacity, cyclic access = ~0% hit rate with LRU.
        for _pass in 0..3 {
            for i in 0..32u64 {
                c.access(i * 128);
            }
        }
        assert!(c.hit_rate() < 0.05, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn lru_keeps_hot_line() {
        let mut c = small();
        // Two lines mapping to the same set (set = line % 4 sets).
        let a = 0u64; // line 0, set 0
        let b = 4 * 128; // line 4, set 0
        let d = 8 * 128; // line 8, set 0
        c.access(a);
        c.access(b);
        c.access(a); // a is now MRU
        c.access(d); // evicts b (LRU)
        assert!(c.access(a), "hot line evicted");
        assert!(!c.access(b), "cold line should have been evicted");
    }

    #[test]
    fn hit_rate_zero_without_accesses() {
        assert_eq!(small().hit_rate(), 0.0);
    }
}
