//! Kernels and the per-thread execution context.
//!
//! A [`Kernel`] is executed once per thread id, like a CUDA `__global__`
//! function over a one-dimensional grid (§3.4 of the paper uses exactly such
//! a grid for its update engine). All device-memory traffic flows through
//! [`ThreadCtx`], which performs the access *and* records it for the timing
//! model.
//!
//! [`PhasedKernel`] adds grid-wide synchronisation between phases — the
//! cooperative-groups `grid.sync()` the two-stage update engine needs
//! between publishing claims to the hash table and applying the winning
//! writes.

use crate::memory::{BufferId, DeviceMemory};
use crate::trace::{Access, AccessKind, Dep, ThreadTrace};

/// Per-thread execution context: performs device-memory accesses and
/// records them for the timing model.
pub struct ThreadCtx<'a> {
    mem: &'a mut DeviceMemory,
    trace: ThreadTrace,
}

impl<'a> ThreadCtx<'a> {
    pub(crate) fn new(mem: &'a mut DeviceMemory) -> Self {
        ThreadCtx {
            mem,
            trace: ThreadTrace::default(),
        }
    }

    pub(crate) fn into_trace(self) -> ThreadTrace {
        self.trace
    }

    fn log(&mut self, id: BufferId, offset: usize, len: usize, kind: AccessKind, dep: Dep) {
        let addr = self.mem.address(id, offset);
        self.trace.record(
            Access {
                addr,
                len: len as u32,
                kind,
            },
            dep,
        );
    }

    /// Read raw bytes (dependent access — opens a new step).
    pub fn read_bytes(&mut self, id: BufferId, offset: usize, len: usize) -> Vec<u8> {
        self.read_bytes_dep(id, offset, len, Dep::Dependent)
    }

    /// Read raw bytes with an explicit dependency marker.
    pub fn read_bytes_dep(&mut self, id: BufferId, offset: usize, len: usize, dep: Dep) -> Vec<u8> {
        self.log(id, offset, len, AccessKind::Read, dep);
        self.mem.read_bytes(id, offset, len).to_vec()
    }

    /// Read a u64 (dependent).
    pub fn read_u64(&mut self, id: BufferId, offset: usize) -> u64 {
        self.read_u64_dep(id, offset, Dep::Dependent)
    }

    /// Read a u64 with an explicit dependency marker.
    pub fn read_u64_dep(&mut self, id: BufferId, offset: usize, dep: Dep) -> u64 {
        self.log(id, offset, 8, AccessKind::Read, dep);
        self.mem.read_u64(id, offset)
    }

    /// Read a u32 (dependent).
    pub fn read_u32(&mut self, id: BufferId, offset: usize) -> u32 {
        self.log(id, offset, 4, AccessKind::Read, Dep::Dependent);
        self.mem.read_u32(id, offset)
    }

    /// Read one byte (dependent).
    pub fn read_u8(&mut self, id: BufferId, offset: usize) -> u8 {
        self.read_u8_dep(id, offset, Dep::Dependent)
    }

    /// Read one byte with an explicit dependency marker.
    pub fn read_u8_dep(&mut self, id: BufferId, offset: usize, dep: Dep) -> u8 {
        self.log(id, offset, 1, AccessKind::Read, dep);
        self.mem.read_u8(id, offset)
    }

    /// Write raw bytes (dependent).
    pub fn write_bytes(&mut self, id: BufferId, offset: usize, bytes: &[u8]) {
        self.log(id, offset, bytes.len(), AccessKind::Write, Dep::Dependent);
        self.mem.write_bytes(id, offset, bytes);
    }

    /// Write a u64 (dependent).
    pub fn write_u64(&mut self, id: BufferId, offset: usize, value: u64) {
        self.log(id, offset, 8, AccessKind::Write, Dep::Dependent);
        self.mem.write_u64(id, offset, value);
    }

    /// Atomic compare-and-swap on a u64; returns the previous value.
    pub fn atomic_cas_u64(&mut self, id: BufferId, offset: usize, expected: u64, new: u64) -> u64 {
        self.log(id, offset, 8, AccessKind::Atomic, Dep::Dependent);
        self.mem.atomic_cas_u64(id, offset, expected, new)
    }

    /// Atomic max on a u64; returns the previous value.
    pub fn atomic_max_u64(&mut self, id: BufferId, offset: usize, value: u64) -> u64 {
        self.log(id, offset, 8, AccessKind::Atomic, Dep::Dependent);
        self.mem.atomic_max_u64(id, offset, value)
    }

    /// Atomic add on a u64; returns the previous value.
    pub fn atomic_add_u64(&mut self, id: BufferId, offset: usize, value: u64) -> u64 {
        self.log(id, offset, 8, AccessKind::Atomic, Dep::Dependent);
        self.mem.atomic_add_u64(id, offset, value)
    }

    /// Attribute `cycles` of arithmetic/control work at the current point
    /// (e.g. the key-comparison loops whose byte-vs-word orientation drives
    /// the Figure 11 crossover).
    pub fn compute(&mut self, cycles: u32) {
        self.trace.record_compute(cycles);
    }

    /// Immutable access to device memory for address arithmetic (not
    /// recorded — use the `read_*` methods for actual data access).
    pub fn memory(&self) -> &DeviceMemory {
        self.mem
    }
}

/// A single-phase device kernel over a 1-D grid.
pub trait Kernel {
    /// Execute the kernel body for thread `tid`.
    fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>);
}

/// A kernel with grid-wide barriers between phases (cooperative launch).
pub trait PhasedKernel {
    /// Number of phases (≥ 1); a grid-wide sync separates consecutive phases.
    fn phases(&self) -> usize;
    /// Execute `phase` for thread `tid`.
    fn execute_phase(&self, phase: usize, tid: usize, ctx: &mut ThreadCtx<'_>);
}

impl<K: Kernel> PhasedKernel for K {
    fn phases(&self) -> usize {
        1
    }

    fn execute_phase(&self, _phase: usize, tid: usize, ctx: &mut ThreadCtx<'_>) {
        self.execute(tid, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DeviceMemory;

    #[test]
    fn ctx_reads_are_functional_and_traced() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 64, 16);
        mem.write_u64(buf, 8, 777);
        let mut ctx = ThreadCtx::new(&mut mem);
        assert_eq!(ctx.read_u64(buf, 8), 777);
        ctx.compute(12);
        let trace = ctx.into_trace();
        assert_eq!(trace.depth(), 1);
        assert_eq!(trace.total_compute(), 12);
    }

    #[test]
    fn ctx_writes_mutate_memory() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 64, 16);
        {
            let mut ctx = ThreadCtx::new(&mut mem);
            ctx.write_u64(buf, 0, 123);
            ctx.write_bytes(buf, 8, b"xyz");
        }
        assert_eq!(mem.read_u64(buf, 0), 123);
        assert_eq!(mem.read_bytes(buf, 8, 3), b"xyz");
    }

    #[test]
    fn independent_reads_share_step() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 64, 16);
        let mut ctx = ThreadCtx::new(&mut mem);
        ctx.read_u64_dep(buf, 0, Dep::Dependent);
        ctx.read_u64_dep(buf, 16, Dep::Independent);
        ctx.read_u64_dep(buf, 32, Dep::Dependent);
        let trace = ctx.into_trace();
        assert_eq!(trace.depth(), 2);
        assert_eq!(trace.steps[0].accesses.len(), 2);
    }

    #[test]
    fn atomics_work_through_ctx() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 8, 16);
        {
            let mut ctx = ThreadCtx::new(&mut mem);
            assert_eq!(ctx.atomic_max_u64(buf, 0, 9), 0);
            assert_eq!(ctx.atomic_add_u64(buf, 0, 1), 9);
            assert_eq!(ctx.atomic_cas_u64(buf, 0, 10, 20), 10);
        }
        assert_eq!(mem.read_u64(buf, 0), 20);
    }

    struct TouchKernel(BufferId);
    impl Kernel for TouchKernel {
        fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
            ctx.write_u64(self.0, tid * 8, tid as u64);
        }
    }

    #[test]
    fn single_phase_kernel_is_a_phased_kernel() {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 8, 16);
        let k = TouchKernel(buf);
        assert_eq!(PhasedKernel::phases(&k), 1);
        let mut ctx = ThreadCtx::new(&mut mem);
        k.execute_phase(0, 0, &mut ctx);
        drop(ctx);
        assert_eq!(mem.read_u64(buf, 0), 0);
    }
}
