//! Device configuration: compute, memory system, cache and PCIe parameters.
//!
//! The presets in [`devices`](crate::devices) instantiate these for the three
//! machines of the paper's §4.1. All timing in the simulator derives from
//! these numbers, so a "what if" experiment (e.g. HBM2 with a faster command
//! clock) is a one-field change — see the `device_explorer` example.

/// Memory technology, determining how the per-channel data rate relates to
/// the command clock. §4.6 of the paper builds its HBM2-vs-GDDR6X argument
/// on exactly this distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemKind {
    /// High Bandwidth Memory 2: very wide (128-bit) channels, low clock.
    Hbm2,
    /// GDDR6X: narrow (16-bit) channels, PAM4 signalling, high clock.
    Gddr6x,
    /// GDDR5: 32-bit channels, DDR signalling.
    Gddr5,
}

/// DRAM subsystem parameters.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Memory technology.
    pub kind: MemKind,
    /// Number of independent channels (A100: 40, RTX 3090: 24, GTX 1070: 8).
    pub channels: usize,
    /// Width of one channel in bits (HBM2: 128, GDDR6X: 16, GDDR5: 32).
    pub channel_width_bits: usize,
    /// Command clock in MHz. The paper quotes 1215 MHz for the A100's HBM2
    /// and 2500 MHz for the RTX 3090's GDDR6X.
    pub command_clock_mhz: f64,
    /// Data transfers per command clock (DDR = 2, GDDR5 quad = 4,
    /// GDDR6X PAM4 ≈ 8). `channels × width/8 × data_rate × clock` gives the
    /// peak bandwidth.
    pub data_rate: f64,
    /// Command/row overhead per random transaction, in command-clock cycles
    /// (ACT + RD + PRE on a row miss). This is the term that makes a high
    /// command clock win for random access.
    pub random_overhead_cycles: f64,
    /// Unloaded DRAM access latency seen by a warp, in nanoseconds.
    pub access_latency_ns: f64,
}

impl MemConfig {
    /// Peak sequential bandwidth in bytes per nanosecond (== GB/s).
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.channels as f64
            * (self.channel_width_bits as f64 / 8.0)
            * self.data_rate
            * self.command_clock_mhz
            / 1000.0
    }

    /// Time one channel is busy serving a random transaction of `bytes`, in
    /// nanoseconds: command overhead plus the data burst.
    pub fn transaction_ns(&self, bytes: usize) -> f64 {
        let clock_ghz = self.command_clock_mhz / 1000.0;
        let overhead = self.random_overhead_cycles / clock_ghz;
        let bytes_per_cycle = (self.channel_width_bits as f64 / 8.0) * self.data_rate;
        let burst = bytes as f64 / bytes_per_cycle / clock_ghz;
        overhead + burst
    }

    /// Aggregate random-transaction throughput (transactions per ns) for
    /// sector-sized (32 B) accesses across all channels.
    pub fn random_rate_per_ns(&self) -> f64 {
        self.channels as f64 / self.transaction_ns(32)
    }
}

/// L2 cache parameters (sectored, set-associative, shared by all SMs).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (128 on all modeled devices).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency in nanoseconds.
    pub hit_latency_ns: f64,
}

/// PCIe link parameters for host↔device transfers.
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// Effective unidirectional bandwidth in GB/s (gen3 x16 ≈ 12, gen4 x16 ≈ 24).
    pub bandwidth_gbps: f64,
    /// Per-transfer latency (driver + DMA setup) in microseconds.
    pub latency_us: f64,
}

impl PcieConfig {
    /// Time to move `bytes` across the link, in nanoseconds.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        self.latency_us * 1000.0 + bytes as f64 / self.bandwidth_gbps
    }
}

/// A complete device model.
#[derive(Debug, Clone, Copy)]
pub struct DeviceConfig {
    /// Marketing name, e.g. `"NVIDIA A100"`.
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident warps per SM (occupancy ceiling).
    pub warps_per_sm: usize,
    /// Threads per warp (32 on all NVIDIA hardware).
    pub warp_size: usize,
    /// Core clock in MHz (used to convert compute cycles to time).
    pub core_clock_mhz: f64,
    /// Instructions issued per SM per core cycle (rough IPC for the integer
    /// /control-flow mix of tree traversal).
    pub issue_per_cycle: f64,
    /// Kernel launch overhead in microseconds (CUDA ≈ 5 µs; the OpenCL GRT
    /// variant uses a larger value, see §4.1's API comparison).
    pub launch_overhead_us: f64,
    /// DRAM subsystem.
    pub mem: MemConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// PCIe link.
    pub pcie: PcieConfig,
}

impl DeviceConfig {
    /// Maximum concurrently resident warps on the whole device.
    pub fn resident_warps(&self) -> usize {
        self.sm_count * self.warps_per_sm
    }

    /// Convert core cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / (self.core_clock_mhz / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::devices;

    #[test]
    fn peak_bandwidths_match_spec_sheets() {
        // A100 40 GB: 1555 GB/s; RTX 3090: ~936 GB/s; GTX 1070: 256 GB/s.
        let a100 = devices::a100().mem.peak_bandwidth_gbps();
        assert!((a100 - 1555.0).abs() < 50.0, "A100 bw {a100}");
        let rtx = devices::rtx3090().mem.peak_bandwidth_gbps();
        assert!((rtx - 936.0).abs() < 80.0, "3090 bw {rtx}");
        let gtx = devices::gtx1070().mem.peak_bandwidth_gbps();
        assert!((gtx - 256.0).abs() < 20.0, "1070 bw {gtx}");
    }

    #[test]
    fn gddr6x_beats_hbm2_for_random_sectors() {
        // The paper's §4.6 claim: for small random transactions the RTX 3090
        // outperforms the A100 despite lower peak bandwidth, because command
        // overhead at the higher clock is cheaper.
        let a100 = devices::a100().mem;
        let rtx = devices::rtx3090().mem;
        assert!(a100.peak_bandwidth_gbps() > rtx.peak_bandwidth_gbps());
        assert!(rtx.random_rate_per_ns() > a100.random_rate_per_ns());
    }

    #[test]
    fn gtx1070_is_slowest_for_random_access() {
        let gtx = devices::gtx1070().mem;
        assert!(gtx.random_rate_per_ns() < devices::a100().mem.random_rate_per_ns());
        assert!(gtx.random_rate_per_ns() < devices::rtx3090().mem.random_rate_per_ns());
    }

    #[test]
    fn transaction_time_grows_with_size() {
        let mem = devices::a100().mem;
        assert!(mem.transaction_ns(128) > mem.transaction_ns(32));
        // But sub-linearly: the overhead dominates small transactions.
        assert!(mem.transaction_ns(128) < 4.0 * mem.transaction_ns(32));
    }

    #[test]
    fn pcie_transfer_time() {
        let pcie = devices::a100().pcie;
        let one_mb = pcie.transfer_ns(1 << 20);
        // 1 MB at 24 GB/s ≈ 43.7 µs + latency.
        assert!(
            one_mb > 40_000.0 && one_mb < 80_000.0,
            "1MB transfer {one_mb} ns"
        );
        // Latency floor for tiny transfers.
        assert!(pcie.transfer_ns(64) >= pcie.latency_us * 1000.0);
    }

    #[test]
    fn cycles_to_ns() {
        let dev = devices::rtx3090();
        let ns = dev.cycles_to_ns(dev.core_clock_mhz); // 1e6 cycles... no: MHz cycles
        assert!((ns - 1000.0).abs() < 1e-6); // clock MHz cycles == 1000 ns worth
    }
}
