//! Kernel launch: functional execution + timing aggregation.
//!
//! Execution proceeds in two passes per phase:
//!
//! 1. **Functional pass** — every thread runs to completion against real
//!    device memory, producing a [`ThreadTrace`](crate::trace::ThreadTrace).
//! 2. **Timing pass** — threads are grouped into warps of 32; warp steps are
//!    processed round-robin (approximating the interleaved execution of
//!    resident warps), coalesced into sectors, filtered through the L2 and
//!    issued to the DRAM channels. Three bounds emerge:
//!
//!    * **latency bound** — dependent-step chains per warp, overlapped
//!      across at most [`DeviceConfig::resident_warps`] warps (this is what
//!      limits pointer chasing; §3.1: "the computational effort … is
//!      typically small, whereas a global memory access requires 50 clock
//!      cycles at best"),
//!    * **bandwidth bound** — busy time of the most-loaded DRAM channel,
//!    * **compute bound** — total compute cycles over the device's issue
//!      throughput.
//!
//!    Loaded memory latency is resolved by a short fixed-point iteration
//!    (latency inflates as channel utilisation rises, which lengthens the
//!    kernel, which lowers utilisation).
//!
//! The reported `time_ns` excludes the kernel-launch overhead; the
//! [`pipeline`](crate::pipeline) model adds it per dispatch.

// cuart-allow-file: index-hot-path the SIMT interpreter's per-lane loops index warp/lane vectors sized at construction (lanes == warp_size, buffers sized by BufferId registration); checked indexing in the innermost replay loop is measurable overhead

use crate::cache::Cache;
use crate::coalesce::{sectors, SECTOR_BYTES};
use crate::config::DeviceConfig;
use crate::dram::DramModel;
use crate::kernel::{PhasedKernel, ThreadCtx};
use crate::memory::DeviceMemory;
use crate::trace::{AccessKind, ThreadTrace};
use std::collections::HashMap;

/// Cost, in nanoseconds, of one serialized same-address atomic at the L2.
const ATOMIC_SERIALIZE_NS: f64 = 8.0;

/// Overhead of a grid-wide synchronisation between kernel phases.
const GRID_SYNC_NS: f64 = 2_000.0;

/// Result of a kernel launch: modeled time and transaction statistics.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Modeled kernel execution time (without launch overhead).
    pub time_ns: f64,
    /// Threads launched.
    pub threads: usize,
    /// Warps formed.
    pub warps: usize,
    /// Total dependent steps across all threads.
    pub steps_total: u64,
    /// Longest dependent chain of any warp, in steps.
    pub max_chain_steps: usize,
    /// Raw per-lane memory requests, before warp coalescing. The ratio
    /// `sectors / raw_accesses` is the coalescing win §3.1 argues for.
    pub raw_accesses: u64,
    /// Sectors requested after coalescing.
    pub sectors: u64,
    /// Sectors served by the L2.
    pub l2_hits: u64,
    /// Transactions that reached DRAM.
    pub dram_transactions: u64,
    /// Bytes moved from/to DRAM.
    pub dram_bytes: u64,
    /// DRAM channel-load imbalance (max/mean busy; 1.0 = balanced, 0.0
    /// when the kernel never touched DRAM).
    pub dram_imbalance: f64,
    /// Total compute cycles attributed by kernels.
    pub compute_cycles: u64,
    /// Same-address atomic conflicts encountered.
    pub atomic_conflicts: u64,
    /// Active lane-steps (lanes that executed something in a warp step).
    pub active_lane_steps: u64,
    /// Issued lane-step slots (warp steps × warp size): the denominator of
    /// [`warp_efficiency`](Self::warp_efficiency). Divergence — threads of
    /// one warp finishing at different depths — shows up as idle slots.
    pub issued_lane_steps: u64,
    /// The three bounds; `time_ns` is their maximum.
    pub latency_bound_ns: f64,
    /// Bandwidth bound (most-loaded DRAM channel busy time).
    pub bandwidth_bound_ns: f64,
    /// Compute bound.
    pub compute_bound_ns: f64,
}

impl KernelReport {
    /// Fraction of warp-step lane slots that did useful work (1.0 = no
    /// divergence; tree traversals over mixed-depth keys sit below it).
    pub fn warp_efficiency(&self) -> f64 {
        if self.issued_lane_steps == 0 {
            1.0
        } else {
            self.active_lane_steps as f64 / self.issued_lane_steps as f64
        }
    }

    /// Merge another report (e.g. a later phase) into this one, summing
    /// times and statistics.
    pub fn accumulate(&mut self, other: &KernelReport) {
        self.time_ns += other.time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        self.threads = self.threads.max(other.threads);
        self.warps = self.warps.max(other.warps);
        self.steps_total = self.steps_total.saturating_add(other.steps_total);
        self.max_chain_steps = self.max_chain_steps.max(other.max_chain_steps);
        self.raw_accesses = self.raw_accesses.saturating_add(other.raw_accesses);
        self.sectors = self.sectors.saturating_add(other.sectors);
        self.l2_hits = self.l2_hits.saturating_add(other.l2_hits);
        self.dram_transactions = self
            .dram_transactions
            .saturating_add(other.dram_transactions);
        self.dram_bytes = self.dram_bytes.saturating_add(other.dram_bytes);
        self.dram_imbalance = self.dram_imbalance.max(other.dram_imbalance);
        self.compute_cycles += other.compute_cycles;
        self.atomic_conflicts = self.atomic_conflicts.saturating_add(other.atomic_conflicts);
        self.active_lane_steps += other.active_lane_steps;
        self.issued_lane_steps += other.issued_lane_steps;
        self.latency_bound_ns += other.latency_bound_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        self.bandwidth_bound_ns += other.bandwidth_bound_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        self.compute_bound_ns += other.compute_bound_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
    }

    /// Sectors that missed the L2 (each miss issues one DRAM transaction).
    pub fn l2_misses(&self) -> u64 {
        self.sectors.saturating_sub(self.l2_hits)
    }

    /// L2 hit rate of this report (1.0 for a kernel with no sectors).
    pub fn l2_hit_rate(&self) -> f64 {
        if self.sectors == 0 {
            1.0
        } else {
            self.l2_hits as f64 / self.sectors as f64
        }
    }

    /// Record this kernel's transaction statistics into a telemetry
    /// registry: running totals as counters, the latest hit rate and
    /// channel imbalance as gauges, DRAM transactions as a histogram.
    pub fn record_into(&self, t: &cuart_telemetry::Telemetry) {
        use cuart_telemetry::names;
        t.incr(names::L2_HITS, self.l2_hits);
        t.incr(names::L2_MISSES, self.l2_misses());
        t.incr(names::DRAM_TRANSACTIONS, self.dram_transactions);
        t.incr(names::DRAM_BYTES, self.dram_bytes);
        t.incr(names::COALESCED_ACCESSES, self.sectors);
        t.incr(names::RAW_ACCESSES, self.raw_accesses);
        t.gauge_set(names::L2_HIT_RATE, self.l2_hit_rate());
        t.gauge_set(names::DRAM_IMBALANCE, self.dram_imbalance);
        t.observe(names::DRAM_TX_PER_BATCH, self.dram_transactions);
    }

    /// Seed a [`BatchEvent`] with everything this report knows; callers
    /// fill in engine-level fields (spills, conflicts, refills) on top.
    pub fn to_event(
        &self,
        kind: cuart_telemetry::BatchKind,
        keys: u64,
    ) -> cuart_telemetry::BatchEvent {
        let mut e = cuart_telemetry::BatchEvent::new(kind, keys);
        e.kernel_time_ns = self.time_ns as u64;
        e.l2_hits = self.l2_hits;
        e.l2_misses = self.l2_misses();
        e.dram_transactions = self.dram_transactions;
        e.dram_bytes = self.dram_bytes;
        e.coalesced_accesses = self.sectors;
        e.raw_accesses = self.raw_accesses;
        e
    }

    /// Decompose this kernel into a span subtree: a `kernel` node whose
    /// two leaves tile its modeled time exactly — `dram` is the share
    /// covered by the bandwidth bound (the most-loaded channel's busy
    /// time, capped at the kernel time) and `exec` is the rest (latency
    /// chains, compute issue, sync and atomic serialisation).
    pub fn to_span(&self) -> cuart_telemetry::SpanNode {
        let total = self.time_ns.max(0.0) as u64;
        let dram = (self.bandwidth_bound_ns.max(0.0) as u64).min(total);
        let exec = total - dram;
        use cuart_telemetry::names::spans;
        cuart_telemetry::SpanNode::node(
            spans::KERNEL,
            vec![
                cuart_telemetry::SpanNode::leaf(spans::DRAM, dram)
                    .with_attr("transactions", self.dram_transactions)
                    .with_attr("bytes", self.dram_bytes),
                cuart_telemetry::SpanNode::leaf(spans::EXEC, exec)
                    .with_attr("latency_bound_ns", self.latency_bound_ns as u64)
                    .with_attr("compute_bound_ns", self.compute_bound_ns as u64),
            ],
        )
        .with_attr("l2_hit_rate", format!("{:.3}", self.l2_hit_rate()))
        .with_attr("warps", self.warps)
    }
}

impl std::fmt::Display for KernelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel {:.1} µs ({} threads / {} warps): {} steps (chain {}), \
             {} raw → {} sectors, L2 {:.1}% hit, {} DRAM tx / {} B (imb {:.2}), \
             {} conflicts, warp eff {:.2}, bounds lat {:.1}/bw {:.1}/cmp {:.1} µs",
            self.time_ns / 1e3,
            self.threads,
            self.warps,
            self.steps_total,
            self.max_chain_steps,
            self.raw_accesses,
            self.sectors,
            self.l2_hit_rate() * 100.0,
            self.dram_transactions,
            self.dram_bytes,
            self.dram_imbalance,
            self.atomic_conflicts,
            self.warp_efficiency(),
            self.latency_bound_ns / 1e3,
            self.bandwidth_bound_ns / 1e3,
            self.compute_bound_ns / 1e3,
        )
    }
}

/// Launch a single-phase kernel with a cold L2.
pub fn launch<K: PhasedKernel>(
    dev: &DeviceConfig,
    mem: &mut DeviceMemory,
    kernel: &K,
    threads: usize,
) -> KernelReport {
    let mut l2 = Cache::new(&dev.l2);
    launch_with_cache(dev, mem, kernel, threads, &mut l2)
}

/// Launch a (possibly multi-phase) kernel with a cold L2.
pub fn launch_phased<K: PhasedKernel>(
    dev: &DeviceConfig,
    mem: &mut DeviceMemory,
    kernel: &K,
    threads: usize,
) -> KernelReport {
    launch(dev, mem, kernel, threads)
}

/// Launch with a caller-owned L2, so cache state persists across batches
/// (the host pipeline reuses one cache for a whole query stream).
pub fn launch_with_cache<K: PhasedKernel>(
    dev: &DeviceConfig,
    mem: &mut DeviceMemory,
    kernel: &K,
    threads: usize,
    l2: &mut Cache,
) -> KernelReport {
    let phases = kernel.phases();
    let mut total = KernelReport::default();
    for phase in 0..phases {
        // Functional pass.
        let mut traces: Vec<ThreadTrace> = Vec::with_capacity(threads);
        for tid in 0..threads {
            let mut ctx = ThreadCtx::new(mem);
            kernel.execute_phase(phase, tid, &mut ctx);
            traces.push(ctx.into_trace());
        }
        // Timing pass.
        let report = time_phase(dev, &traces, l2);
        total.accumulate(&report);
        if phase + 1 < phases {
            total.time_ns += GRID_SYNC_NS; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        }
    }
    total
}

/// Per-warp timing summary extracted during the sector walk.
#[derive(Debug, Clone, Copy, Default)]
struct WarpChain {
    miss_steps: u32,
    hit_steps: u32,
    compute_cycles: u64,
    atomic_extra_ns: f64,
}

fn time_phase(dev: &DeviceConfig, traces: &[ThreadTrace], l2: &mut Cache) -> KernelReport {
    let warp_size = dev.warp_size.max(1);
    let warps: Vec<&[ThreadTrace]> = traces.chunks(warp_size).collect();
    let mut dram = DramModel::new(dev.mem);
    let mut chains = vec![WarpChain::default(); warps.len()];

    let mut report = KernelReport {
        threads: traces.len(),
        warps: warps.len(),
        ..KernelReport::default()
    };

    let max_steps = traces.iter().map(|t| t.depth()).max().unwrap_or(0);
    let mut addr_counts: HashMap<u64, u32> = HashMap::new();

    // Round-robin over warps per step index: approximates the temporal
    // interleaving of resident warps for L2 purposes.
    for s in 0..max_steps {
        for (w, lanes) in warps.iter().enumerate() {
            let mut step_accesses: Vec<(u64, u32)> = Vec::new();
            let mut step_compute_max = 0u32;
            let mut any_access = false;
            let mut active_lanes = 0u64;
            addr_counts.clear();
            for lane in lanes.iter() {
                if let Some(step) = lane.steps.get(s) {
                    report.steps_total = report.steps_total.saturating_add(1);
                    active_lanes += 1;
                    step_compute_max = step_compute_max.max(step.compute_cycles);
                    report.compute_cycles += step.compute_cycles as u64;
                    for acc in &step.accesses {
                        any_access = true;
                        step_accesses.push((acc.addr, acc.len));
                        if acc.kind == AccessKind::Atomic {
                            *addr_counts.entry(acc.addr).or_insert(0) += 1;
                        }
                    }
                }
            }
            if !any_access && step_compute_max == 0 {
                continue;
            }
            // Warp-level occupancy of this step: lanes past their last
            // dependent step idle while the stragglers finish.
            report.active_lane_steps += active_lanes;
            report.issued_lane_steps += warp_size as u64;
            // Atomic conflicts: lanes hitting the same address serialize.
            let mut conflict_extra = 0u32;
            for (&_addr, &count) in addr_counts.iter() {
                if count > 1 {
                    conflict_extra = conflict_extra.max(count - 1);
                    report.atomic_conflicts =
                        report.atomic_conflicts.saturating_add((count - 1) as u64);
                }
            }
            chains[w].atomic_extra_ns += conflict_extra as f64 * ATOMIC_SERIALIZE_NS; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
                                                                                      // Coalesce and serve.
            report.raw_accesses = report
                .raw_accesses
                .saturating_add(step_accesses.len() as u64);
            let secs = sectors(step_accesses.iter().copied());
            report.sectors = report.sectors.saturating_add(secs.len() as u64);
            let mut missed = false;
            for &sec in &secs {
                let addr = sec * SECTOR_BYTES;
                if l2.access(addr) {
                    report.l2_hits = report.l2_hits.saturating_add(1);
                } else {
                    dram.issue(addr, SECTOR_BYTES as usize);
                    missed = true;
                }
            }
            if missed {
                chains[w].miss_steps += 1;
            } else if !secs.is_empty() {
                chains[w].hit_steps += 1;
            }
            chains[w].compute_cycles += step_compute_max as u64;
        }
    }
    // Lead compute (before first access).
    for (w, lanes) in warps.iter().enumerate() {
        let lead = lanes
            .iter()
            .map(|t| t.lead_compute_cycles)
            .max()
            .unwrap_or(0);
        chains[w].compute_cycles += lead as u64;
        report.compute_cycles += lanes
            .iter()
            .map(|t| t.lead_compute_cycles as u64)
            .sum::<u64>();
    }

    report.dram_transactions = dram.transactions();
    report.dram_bytes = dram.bytes();
    report.dram_imbalance = if dram.transactions() == 0 {
        0.0
    } else {
        dram.imbalance()
    };
    report.max_chain_steps = traces.iter().map(|t| t.depth()).max().unwrap_or(0);

    // Bounds. Loaded latency is a fixed point: start unloaded, iterate.
    let resident = dev.resident_warps().max(1) as f64;
    let bw_bound = dram.max_channel_busy_ns();
    let compute_bound = dev.cycles_to_ns(report.compute_cycles as f64)
        / (dev.sm_count as f64 * dev.issue_per_cycle);

    let chain_ns = |miss_lat: f64| -> (f64, f64) {
        let mut max_chain = 0.0f64;
        let mut sum_chain = 0.0f64;
        for c in &chains {
            let t = c.miss_steps as f64 * miss_lat
                + c.hit_steps as f64 * dev.l2.hit_latency_ns
                + dev.cycles_to_ns(c.compute_cycles as f64)
                + c.atomic_extra_ns;
            max_chain = max_chain.max(t);
            sum_chain += t; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
        }
        (max_chain, sum_chain)
    };

    let mut miss_lat = dev.mem.access_latency_ns;
    let mut time = 0.0f64;
    for _ in 0..3 {
        let (max_chain, sum_chain) = chain_ns(miss_lat);
        let latency_bound = max_chain.max(sum_chain / resident);
        time = latency_bound.max(bw_bound).max(compute_bound);
        miss_lat = dram.loaded_latency_ns(time.max(1.0));
        report.latency_bound_ns = latency_bound;
    }
    report.bandwidth_bound_ns = bw_bound;
    report.compute_bound_ns = compute_bound;
    report.time_ns = time;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;
    use crate::kernel::Kernel;
    use crate::memory::BufferId;

    /// Streams through a buffer with perfectly coalesced reads.
    struct StreamKernel {
        src: BufferId,
        reads_per_thread: usize,
    }
    impl Kernel for StreamKernel {
        fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
            for i in 0..self.reads_per_thread {
                ctx.read_u64(self.src, (tid * self.reads_per_thread + i) * 8);
            }
        }
    }

    /// Chases a chain of pointers (serial, random) in a buffer of u64
    /// indices.
    struct ChaseKernel {
        src: BufferId,
        hops: usize,
        slots: usize,
    }
    impl Kernel for ChaseKernel {
        fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
            let mut idx = tid.wrapping_mul(2654435761) % self.slots;
            for _ in 0..self.hops {
                idx = ctx.read_u64(self.src, idx * 8) as usize % self.slots;
            }
        }
    }

    fn chase_memory(slots: usize) -> (DeviceMemory, BufferId) {
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("chase", slots * 8, 32);
        for i in 0..slots {
            // A scrambled permutation so hops are random-ish.
            let next = (i.wrapping_mul(2654435761).wrapping_add(12345)) % slots;
            mem.write_u64(buf, i * 8, next as u64);
        }
        (mem, buf)
    }

    #[test]
    fn report_counts_are_consistent() {
        let dev = devices::a100();
        let (mut mem, buf) = chase_memory(1 << 16);
        let k = ChaseKernel {
            src: buf,
            hops: 4,
            slots: 1 << 16,
        };
        let r = launch(&dev, &mut mem, &k, 256);
        assert_eq!(r.threads, 256);
        assert_eq!(r.warps, 8);
        assert_eq!(r.steps_total, 256 * 4);
        assert_eq!(r.max_chain_steps, 4);
        assert_eq!(r.l2_hits + r.dram_transactions, r.sectors);
        assert!(r.time_ns > 0.0);
        assert!(
            (r.time_ns
                - r.latency_bound_ns
                    .max(r.bandwidth_bound_ns)
                    .max(r.compute_bound_ns))
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn coalesced_streaming_beats_random_chasing() {
        let dev = devices::a100();
        // Same number of 8-byte reads per thread, wildly different pattern.
        let slots = 1 << 20; // 8 MiB buffer
        let threads = 4096;
        let (mut mem, buf) = chase_memory(slots);
        let chase = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 8,
                slots,
            },
            threads,
        );
        let (mut mem2, buf2) = chase_memory(slots);
        let stream = launch(
            &dev,
            &mut mem2,
            &StreamKernel {
                src: buf2,
                reads_per_thread: 8,
            },
            threads,
        );
        assert!(
            chase.time_ns > 3.0 * stream.time_ns,
            "chase {} ns vs stream {} ns",
            chase.time_ns,
            stream.time_ns
        );
        // Streaming re-touches its sectors (4 u64s each): far fewer DRAM
        // transactions for the same number of reads.
        assert!(stream.dram_transactions < chase.dram_transactions / 2);
    }

    #[test]
    fn longer_chains_take_proportionally_longer() {
        let dev = devices::rtx3090();
        let slots = 1 << 20;
        let (mut mem, buf) = chase_memory(slots);
        let t4 = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 4,
                slots,
            },
            1024,
        )
        .time_ns;
        let t8 = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 8,
                slots,
            },
            1024,
        )
        .time_ns;
        let ratio = t8 / t4;
        assert!(ratio > 1.5 && ratio < 2.6, "ratio {ratio}");
    }

    #[test]
    fn small_working_set_is_cache_resident_and_faster() {
        let dev = devices::rtx3090(); // 6 MiB L2
        let small_slots = 1 << 14; // 128 KiB << L2
        let large_slots = 1 << 22; // 32 MiB >> L2
        let (mut mem_s, buf_s) = chase_memory(small_slots);
        let (mut mem_l, buf_l) = chase_memory(large_slots);
        let ts = launch(
            &dev,
            &mut mem_s,
            &ChaseKernel {
                src: buf_s,
                hops: 8,
                slots: small_slots,
            },
            8192,
        );
        let tl = launch(
            &dev,
            &mut mem_l,
            &ChaseKernel {
                src: buf_l,
                hops: 8,
                slots: large_slots,
            },
            8192,
        );
        assert!(
            ts.l2_hits as f64 / ts.sectors as f64 > 0.5,
            "small tree should mostly hit L2"
        );
        assert!(ts.time_ns < tl.time_ns);
    }

    #[test]
    fn more_threads_hide_latency_until_bandwidth_binds() {
        let dev = devices::a100();
        let slots = 1 << 22;
        let (mut mem, buf) = chase_memory(slots);
        let k1 = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 4,
                slots,
            },
            128,
        );
        let k2 = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 4,
                slots,
            },
            2048,
        );
        // 16x the work must cost far less than 16x the time (latency
        // hiding), until the DRAM command rate binds.
        assert!(
            k2.time_ns < 8.0 * k1.time_ns,
            "k1 {} k2 {}",
            k1.time_ns,
            k2.time_ns
        );
        // At very large thread counts the kernel is bandwidth/command-rate
        // bound: time grows ~linearly with threads from here on.
        let k3 = launch(
            &dev,
            &mut mem,
            &ChaseKernel {
                src: buf,
                hops: 4,
                slots,
            },
            32768,
        );
        assert!(
            (k3.bandwidth_bound_ns - k3.time_ns).abs() / k3.time_ns < 0.35,
            "expected ~bandwidth-bound: bw {} vs time {}",
            k3.bandwidth_bound_ns,
            k3.time_ns
        );
    }

    /// All threads atomically add to one counter — worst-case conflicts.
    struct AtomicStormKernel {
        buf: BufferId,
    }
    impl Kernel for AtomicStormKernel {
        fn execute(&self, _tid: usize, ctx: &mut ThreadCtx<'_>) {
            ctx.atomic_add_u64(self.buf, 0, 1);
        }
    }

    #[test]
    fn atomic_conflicts_are_detected_and_costed() {
        let dev = devices::a100();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("ctr", 8, 16);
        let r = launch(&dev, &mut mem, &AtomicStormKernel { buf }, 1024);
        // Functional: the counter holds the exact thread count.
        assert_eq!(mem.read_u64(buf, 0), 1024);
        // 31 conflicts per full warp.
        assert_eq!(r.atomic_conflicts, (1024 / 32) * 31);
        // Conflict-free atomics for comparison.
        struct Spread(BufferId);
        impl Kernel for Spread {
            fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
                ctx.atomic_add_u64(self.0, tid * 8, 1);
            }
        }
        let mut mem2 = DeviceMemory::new();
        let buf2 = mem2.alloc("ctrs", 1024 * 8, 16);
        let r2 = launch(&dev, &mut mem2, &Spread(buf2), 1024);
        assert_eq!(r2.atomic_conflicts, 0);
        assert!(r.time_ns > r2.time_ns);
    }

    /// Phase 0 writes, phase 1 reads what phase 0 of *other* threads wrote.
    struct TwoPhase {
        buf: BufferId,
        n: usize,
    }
    impl PhasedKernel for TwoPhase {
        fn phases(&self) -> usize {
            2
        }
        fn execute_phase(&self, phase: usize, tid: usize, ctx: &mut ThreadCtx<'_>) {
            if phase == 0 {
                ctx.write_u64(self.buf, tid * 8, (tid * 10) as u64);
            } else {
                // Read the value written by the "opposite" thread.
                let other = self.n - 1 - tid;
                let v = ctx.read_u64(self.buf, other * 8);
                assert_eq!(v, (other * 10) as u64, "grid sync must order phases");
            }
        }
    }

    #[test]
    fn phased_kernel_sees_grid_sync_semantics() {
        let dev = devices::gtx1070();
        let mut mem = DeviceMemory::new();
        let n = 512;
        let buf = mem.alloc("b", n * 8, 16);
        let r = launch_with_cache(
            &dev,
            &mut mem,
            &TwoPhase { buf, n },
            n,
            &mut Cache::new(&dev.l2),
        );
        assert!(r.time_ns > GRID_SYNC_NS);
        assert_eq!(r.threads, n);
    }

    #[test]
    fn warm_cache_speeds_up_second_launch() {
        let dev = devices::rtx3090();
        let slots = 1 << 15; // fits L2
        let (mut mem, buf) = chase_memory(slots);
        let k = ChaseKernel {
            src: buf,
            hops: 6,
            slots,
        };
        let mut l2 = Cache::new(&dev.l2);
        let cold = launch_with_cache(&dev, &mut mem, &k, 4096, &mut l2);
        let warm = launch_with_cache(&dev, &mut mem, &k, 4096, &mut l2);
        assert!(warm.time_ns <= cold.time_ns);
        assert!(warm.l2_hits > cold.l2_hits);
    }

    #[test]
    fn zero_threads_is_a_noop() {
        let dev = devices::a100();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 8, 16);
        let r = launch(&dev, &mut mem, &AtomicStormKernel { buf }, 0);
        assert_eq!(r.threads, 0);
        assert_eq!(r.time_ns, 0.0);
    }
}

#[cfg(test)]
mod divergence_tests {
    use super::*;
    use crate::devices;
    use crate::kernel::Kernel;
    use crate::memory::BufferId;

    /// Every lane does the same number of steps: zero divergence.
    struct Uniform(BufferId);
    impl Kernel for Uniform {
        fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
            for i in 0..4 {
                ctx.read_u64(self.0, ((tid * 4 + i) * 8) % 4096);
            }
        }
    }

    /// Lane depth varies with lane id inside each warp: heavy divergence.
    struct Ragged(BufferId);
    impl Kernel for Ragged {
        fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
            let depth = 1 + (tid % 32) / 4; // 1..=8 steps per warp
            for i in 0..depth {
                ctx.read_u64(self.0, ((tid * 8 + i) * 8) % 4096);
            }
        }
    }

    #[test]
    fn warp_efficiency_separates_uniform_from_ragged() {
        let dev = devices::a100();
        let mut mem = DeviceMemory::new();
        let buf = mem.alloc("b", 4096, 32);
        let uni = launch(&dev, &mut mem, &Uniform(buf), 256);
        let rag = launch(&dev, &mut mem, &Ragged(buf), 256);
        assert!(
            (uni.warp_efficiency() - 1.0).abs() < 1e-9,
            "{}",
            uni.warp_efficiency()
        );
        // Ragged: mean depth 4.5 of max 8 -> efficiency ≈ 0.56.
        assert!(
            rag.warp_efficiency() > 0.4 && rag.warp_efficiency() < 0.7,
            "{}",
            rag.warp_efficiency()
        );
        // Accounting is internally consistent.
        assert_eq!(rag.active_lane_steps, rag.steps_total);
        assert!(rag.issued_lane_steps >= rag.active_lane_steps);
    }

    #[test]
    fn empty_launch_reports_full_efficiency() {
        let r = KernelReport::default();
        assert_eq!(r.warp_efficiency(), 1.0);
    }
}

#[cfg(test)]
mod accumulate_tests {
    use super::*;

    fn sample(scale: u64) -> KernelReport {
        KernelReport {
            time_ns: 100.0 * scale as f64,
            threads: 128 * scale as usize,
            warps: 4 * scale as usize,
            steps_total: 10 * scale,
            max_chain_steps: 3 * scale as usize,
            raw_accesses: 40 * scale,
            sectors: 20 * scale,
            l2_hits: 15 * scale,
            dram_transactions: 5 * scale,
            dram_bytes: 160 * scale,
            dram_imbalance: scale as f64,
            compute_cycles: 50 * scale,
            atomic_conflicts: 2 * scale,
            active_lane_steps: 9 * scale,
            issued_lane_steps: 12 * scale,
            latency_bound_ns: 80.0 * scale as f64,
            bandwidth_bound_ns: 60.0 * scale as f64,
            compute_bound_ns: 10.0 * scale as f64,
        }
    }

    #[test]
    fn accumulating_default_is_identity() {
        let mut r = sample(2);
        let before = r.clone();
        r.accumulate(&KernelReport::default());
        assert_eq!(format!("{before:?}"), format!("{r:?}"));
    }

    #[test]
    fn summed_fields_are_additive() {
        let mut r = sample(1);
        r.accumulate(&sample(2));
        assert_eq!(r.time_ns, 300.0);
        assert_eq!(r.steps_total, 30);
        assert_eq!(r.raw_accesses, 120);
        assert_eq!(r.sectors, 60);
        assert_eq!(r.l2_hits, 45);
        assert_eq!(r.dram_transactions, 15);
        assert_eq!(r.dram_bytes, 480);
        assert_eq!(r.compute_cycles, 150);
        assert_eq!(r.atomic_conflicts, 6);
        assert_eq!(r.active_lane_steps, 27);
        assert_eq!(r.issued_lane_steps, 36);
        assert_eq!(r.latency_bound_ns, 240.0);
        assert_eq!(r.bandwidth_bound_ns, 180.0);
        assert_eq!(r.compute_bound_ns, 30.0);
    }

    #[test]
    fn max_fields_take_the_max_not_the_sum() {
        // threads/warps/max_chain_steps/dram_imbalance describe the widest
        // phase, not a total: accumulating a smaller report keeps the max.
        let mut r = sample(3);
        r.accumulate(&sample(1));
        assert_eq!(r.threads, 384);
        assert_eq!(r.warps, 12);
        assert_eq!(r.max_chain_steps, 9);
        assert_eq!(r.dram_imbalance, 3.0);
        // And the other direction widens.
        let mut r = sample(1);
        r.accumulate(&sample(3));
        assert_eq!(r.threads, 384);
        assert_eq!(r.max_chain_steps, 9);
    }

    #[test]
    fn derived_ratios_and_display() {
        let r = sample(1);
        assert_eq!(r.l2_misses(), 5);
        assert!((r.l2_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(KernelReport::default().l2_misses(), 0);
        assert_eq!(KernelReport::default().l2_hit_rate(), 1.0);
        let s = r.to_string();
        assert!(s.contains("128 threads"), "{s}");
        assert!(s.contains("75.0% hit"), "{s}");
        assert!(s.contains("5 DRAM tx"), "{s}");
    }

    #[test]
    fn report_converts_to_batch_event() {
        let r = sample(1);
        let e = r.to_event(cuart_telemetry::BatchKind::Lookup, 42);
        assert_eq!(e.keys, 42);
        assert_eq!(e.kernel_time_ns, 100);
        assert_eq!(e.l2_hits, 15);
        assert_eq!(e.l2_misses, 5);
        assert_eq!(e.coalesced_accesses, 20);
        assert_eq!(e.raw_accesses, 40);
        assert_eq!(e.host_spills, 0);
    }
}
