//! Device memory: named, aligned buffers in one flat device address space.
//!
//! The CuART layout is a *structure of buffers* — one buffer per node type —
//! while GRT packs everything into a single buffer. Both are [`DeviceBuffer`]s
//! here. Each buffer receives a base address in a flat 64-bit device address
//! space so that the cache and DRAM-channel models can hash real addresses.

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

/// One allocation in device memory.
#[derive(Debug, Clone)]
pub struct DeviceBuffer {
    /// Debug name (shown in reports).
    pub name: String,
    /// Base address in the flat device address space.
    pub base: u64,
    /// Guaranteed alignment of `base` in bytes.
    pub align: usize,
    data: Vec<u8>,
}

impl DeviceBuffer {
    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw contents.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }
}

/// The device's global memory: a set of buffers with stable base addresses.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    buffers: Vec<DeviceBuffer>,
    next_base: u64,
}

/// Buffers are spaced out so that channel interleaving sees distinct
/// address regions (mirrors a real allocator's page granularity).
const BASE_ALIGN: u64 = 4096;

impl DeviceMemory {
    /// Empty device memory.
    pub fn new() -> Self {
        DeviceMemory {
            buffers: Vec::new(),
            // Non-zero so address 0 never aliases a valid access.
            next_base: BASE_ALIGN,
        }
    }

    /// Allocate a zero-initialised buffer of `len` bytes aligned to `align`.
    ///
    /// `align` must be a power of two. CuART guarantees ≥16-byte alignment
    /// for all node buffers (§3.2.1); GRT's single buffer has no such
    /// guarantee for the nodes *inside* it.
    pub fn alloc(&mut self, name: &str, len: usize, align: usize) -> BufferId {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align64 = (align as u64).max(1);
        let base = self.next_base.next_multiple_of(align64.max(BASE_ALIGN));
        self.next_base = (base + len as u64).next_multiple_of(BASE_ALIGN) + BASE_ALIGN;
        self.buffers.push(DeviceBuffer {
            name: name.to_string(),
            base,
            align,
            data: vec![0; len],
        });
        BufferId(self.buffers.len() - 1)
    }

    /// Allocate and fill from `data`.
    pub fn alloc_from(&mut self, name: &str, data: &[u8], align: usize) -> BufferId {
        let id = self.alloc(name, data.len(), align);
        self.buffers[id.0].data.copy_from_slice(data);
        id
    }

    /// Look up a buffer.
    pub fn buffer(&self, id: BufferId) -> &DeviceBuffer {
        &self.buffers[id.0]
    }

    /// Total allocated bytes.
    pub fn total_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Number of buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// The flat device address of `(buffer, offset)`.
    pub fn address(&self, id: BufferId, offset: usize) -> u64 {
        let buf = &self.buffers[id.0];
        debug_assert!(offset <= buf.len());
        buf.base + offset as u64
    }

    /// Read `len` bytes.
    pub fn read_bytes(&self, id: BufferId, offset: usize, len: usize) -> &[u8] {
        &self.buffers[id.0].data[offset..offset + len]
    }

    /// Read a little-endian u64.
    pub fn read_u64(&self, id: BufferId, offset: usize) -> u64 {
        // cuart-allow: panic-path read_bytes returns exactly 8 bytes
        u64::from_le_bytes(self.read_bytes(id, offset, 8).try_into().expect("8 bytes"))
    }

    /// Read a little-endian u32.
    pub fn read_u32(&self, id: BufferId, offset: usize) -> u32 {
        // cuart-allow: panic-path read_bytes returns exactly 4 bytes
        u32::from_le_bytes(self.read_bytes(id, offset, 4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian u16.
    pub fn read_u16(&self, id: BufferId, offset: usize) -> u16 {
        // cuart-allow: panic-path read_bytes returns exactly 2 bytes
        u16::from_le_bytes(self.read_bytes(id, offset, 2).try_into().expect("2 bytes"))
    }

    /// Read one byte.
    pub fn read_u8(&self, id: BufferId, offset: usize) -> u8 {
        self.buffers[id.0].data[offset]
    }

    /// Write raw bytes.
    pub fn write_bytes(&mut self, id: BufferId, offset: usize, bytes: &[u8]) {
        self.buffers[id.0].data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, id: BufferId, offset: usize, value: u64) {
        self.write_bytes(id, offset, &value.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, id: BufferId, offset: usize, value: u32) {
        self.write_bytes(id, offset, &value.to_le_bytes());
    }

    /// Write one byte.
    pub fn write_u8(&mut self, id: BufferId, offset: usize, value: u8) {
        self.buffers[id.0].data[offset] = value;
    }

    /// Atomic compare-and-swap on a u64 (the simulator executes threads
    /// sequentially, so device atomicity is trivially preserved). Returns
    /// the previous value.
    pub fn atomic_cas_u64(&mut self, id: BufferId, offset: usize, expected: u64, new: u64) -> u64 {
        let old = self.read_u64(id, offset);
        if old == expected {
            self.write_u64(id, offset, new);
        }
        old
    }

    /// Atomic max on a u64; returns the previous value.
    pub fn atomic_max_u64(&mut self, id: BufferId, offset: usize, value: u64) -> u64 {
        let old = self.read_u64(id, offset);
        if value > old {
            self.write_u64(id, offset, value);
        }
        old
    }

    /// Atomic add on a u64; returns the previous value.
    pub fn atomic_add_u64(&mut self, id: BufferId, offset: usize, value: u64) -> u64 {
        let old = self.read_u64(id, offset);
        self.write_u64(id, offset, old.wrapping_add(value));
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment() {
        let mut mem = DeviceMemory::new();
        for (i, align) in [16usize, 32, 4096, 64].into_iter().enumerate() {
            let id = mem.alloc(&format!("b{i}"), 100, align);
            assert_eq!(mem.buffer(id).base % align as u64, 0);
        }
    }

    #[test]
    fn buffers_do_not_overlap() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc("a", 1000, 16);
        let b = mem.alloc("b", 1000, 16);
        let (abase, bbase) = (mem.buffer(a).base, mem.buffer(b).base);
        assert!(abase + 1000 <= bbase || bbase + 1000 <= abase);
    }

    #[test]
    fn rw_roundtrip_all_widths() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc("x", 64, 16);
        mem.write_u64(id, 0, 0x1122334455667788);
        mem.write_u32(id, 8, 0xAABBCCDD);
        mem.write_u8(id, 12, 0x7F);
        mem.write_bytes(id, 16, b"hello");
        assert_eq!(mem.read_u64(id, 0), 0x1122334455667788);
        assert_eq!(mem.read_u32(id, 8), 0xAABBCCDD);
        assert_eq!(mem.read_u16(id, 8), 0xCCDD);
        assert_eq!(mem.read_u8(id, 12), 0x7F);
        assert_eq!(mem.read_bytes(id, 16, 5), b"hello");
    }

    #[test]
    fn zero_initialised() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc("z", 256, 16);
        assert!(mem.buffer(id).bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn alloc_from_copies_data() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc_from("f", &[1, 2, 3, 4], 16);
        assert_eq!(mem.read_bytes(id, 0, 4), &[1, 2, 3, 4]);
        assert_eq!(mem.total_bytes(), 4);
    }

    #[test]
    fn atomics() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc("a", 8, 16);
        assert_eq!(mem.atomic_cas_u64(id, 0, 0, 42), 0);
        assert_eq!(mem.read_u64(id, 0), 42);
        // Failed CAS leaves the value untouched.
        assert_eq!(mem.atomic_cas_u64(id, 0, 0, 99), 42);
        assert_eq!(mem.read_u64(id, 0), 42);
        assert_eq!(mem.atomic_max_u64(id, 0, 10), 42);
        assert_eq!(mem.read_u64(id, 0), 42);
        assert_eq!(mem.atomic_max_u64(id, 0, 100), 42);
        assert_eq!(mem.read_u64(id, 0), 100);
        assert_eq!(mem.atomic_add_u64(id, 0, 5), 100);
        assert_eq!(mem.read_u64(id, 0), 105);
    }

    #[test]
    fn address_is_base_plus_offset() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc("a", 128, 16);
        assert_eq!(mem.address(id, 40), mem.buffer(id).base + 40);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut mem = DeviceMemory::new();
        let id = mem.alloc("a", 8, 16);
        mem.read_u64(id, 4);
    }
}
