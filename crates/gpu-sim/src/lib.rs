//! # cuart-gpu-sim — a functional + timing SIMT GPU simulator
//!
//! The CuART paper (ICPP 2021) evaluates GPU radix-tree kernels on real
//! NVIDIA hardware (A100, RTX 3090, GTX 1070). This reproduction has no GPU,
//! so this crate provides the substrate the paper's argument actually rests
//! on: a **memory-transaction-accurate** model of a CUDA device.
//!
//! Two things are simulated at once:
//!
//! 1. **Function** — kernels are ordinary Rust routines executed once per
//!    thread against real [`DeviceBuffer`]s through a [`ThreadCtx`]. Lookups
//!    really find values; updates really mutate the buffers. Correctness is
//!    therefore testable independent of timing.
//! 2. **Timing** — every access a thread makes is recorded. Threads are
//!    grouped into warps of 32 executing in lockstep; each warp step's
//!    accesses are coalesced into 32-byte sectors ([`coalesce`]), filtered
//!    through a set-associative L2 model ([`cache`]), and the misses are
//!    serviced by a per-channel DRAM model ([`dram`]) parameterised with each
//!    device's real channel count, width, data rate and command clock — the
//!    quantities §4.6 of the paper uses to explain why GDDR6X beats HBM2 for
//!    pointer chasing.
//!
//! The [`launch`](exec::launch) entry point returns a [`KernelReport`] with
//! the modeled kernel time and full transaction statistics. [`pcie`] models
//! host↔device transfers and [`pipeline`] models multi-stream software
//! pipelining, so an end-to-end throughput in the paper's sense (§4.1:
//! including PCIe and pipelining) can be computed.
//!
//! ```
//! use cuart_gpu_sim::{devices, DeviceMemory, Kernel, ThreadCtx, exec};
//!
//! // A kernel that sums 8 u64s from a buffer, strided by thread id.
//! struct SumKernel { src: cuart_gpu_sim::BufferId, dst: cuart_gpu_sim::BufferId }
//! impl Kernel for SumKernel {
//!     fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
//!         let mut acc = 0u64;
//!         for i in 0..8 {
//!             acc = acc.wrapping_add(ctx.read_u64(self.src, (tid * 8 + i) * 8));
//!         }
//!         ctx.write_u64(self.dst, tid * 8, acc);
//!     }
//! }
//!
//! let mut mem = DeviceMemory::new();
//! let src = mem.alloc("src", 1024 * 64, 16);
//! let dst = mem.alloc("dst", 1024 * 8, 16);
//! for i in 0..1024 * 8 {
//!     mem.write_u64(src, i * 8, i as u64);
//! }
//! let report = exec::launch(&devices::rtx3090(), &mut mem, &SumKernel { src, dst }, 1024);
//! assert!(report.time_ns > 0.0);
//! assert_eq!(mem.read_u64(dst, 0), (0u64..8).sum());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cache;
pub mod coalesce;
pub mod config;
pub mod devices;
pub mod dram;
pub mod exec;
pub mod faults;
pub mod kernel;
pub mod memory;
pub mod pcie;
pub mod pipeline;
pub mod trace;

pub use config::{CacheConfig, DeviceConfig, MemConfig, MemKind, PcieConfig};
pub use exec::{launch, launch_phased, KernelReport};
pub use faults::{DeviceFault, FaultConfig, FaultInjector, FaultSite};
pub use kernel::{Kernel, PhasedKernel, ThreadCtx};
pub use memory::{BufferId, DeviceBuffer, DeviceMemory};
pub use trace::Dep;
