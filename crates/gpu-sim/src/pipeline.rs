//! Multi-stream software-pipelining model.
//!
//! The host code of both GRT and CuART (§4.1/§4.3) dispatches query batches
//! from several host threads over several command streams, so host
//! preparation, the host→device copy, kernel execution and the device→host
//! copy of different batches overlap. This module computes the resulting
//! makespan with a small deterministic event model:
//!
//! * each **host thread** prepares (and post-processes) its batches
//!   serially,
//! * one **copy-up engine** and one **copy-down engine** serve transfers
//!   FCFS (discrete GPUs have independent DMA engines per direction),
//! * the **compute engine** runs kernels FCFS, paying the launch overhead
//!   per dispatch,
//! * a batch occupies its **stream slot** from upload start to download
//!   end, so at most `streams` batches are in flight on the device.
//!
//! The figures 8 (batch-size sweep) and 9 (host-thread sweep) come directly
//! out of this model combined with per-batch kernel times from
//! [`exec`](crate::exec).

/// Input to the pipeline model; all per-batch times in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Queries per batch.
    pub items_per_batch: usize,
    /// Host threads feeding the GPU. Saturates to 1 if zero.
    pub host_threads: usize,
    /// Command streams (in-flight batches on the device). Saturates to 1
    /// if zero.
    pub streams: usize,
    /// Host CPU time spent **preparing** a batch before submit (batch
    /// assembly, packing, sorting).
    pub host_prepare_ns: f64,
    /// Host CPU time spent **post-processing** a batch after its results
    /// copy down (unpacking, scatter to callers). Charged back to the
    /// owning host thread — a thread cannot prepare its next batch while
    /// it is still digesting the previous one.
    pub host_post_ns: f64,
    /// Host→device transfer time per batch.
    pub h2d_ns: f64,
    /// Kernel execution time per batch.
    pub kernel_ns: f64,
    /// Device→host transfer time per batch.
    pub d2h_ns: f64,
    /// Driver launch overhead per kernel dispatch.
    pub launch_overhead_ns: f64,
}

impl PipelineParams {
    /// Split a single per-batch host cost into equal prepare/post halves —
    /// the common case when the caller only knows the total host time.
    pub fn split_host_ns(total_host_ns: f64) -> (f64, f64) {
        (total_host_ns * 0.5, total_host_ns * 0.5)
    }

    /// Total host CPU time per batch (prepare + post).
    pub fn host_ns_per_batch(&self) -> f64 {
        self.host_prepare_ns + self.host_post_ns
    }
}

/// Pipeline stage names, for bottleneck reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Host-side batch preparation / result processing.
    Host,
    /// Host→device DMA.
    CopyUp,
    /// Kernel execution (incl. launch overhead).
    Compute,
    /// Device→host DMA.
    CopyDown,
}

/// Result of the pipeline simulation.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// End-to-end time for all batches.
    pub makespan_ns: f64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// The stage with the largest aggregate demand.
    pub bottleneck: Stage,
}

/// How many leading batches a traced simulation records span trees for —
/// enough to see the ramp-up and the steady state without flooding the
/// span ring on large sweeps.
pub const TRACED_BATCHES: usize = 32;

/// Run the event model.
///
/// `host_threads` / `streams` of zero saturate to 1 instead of panicking —
/// a degenerate configuration still produces a (serial) schedule, so
/// callers sweeping parameter grids need no special-casing.
pub fn simulate(p: &PipelineParams) -> PipelineReport {
    simulate_traced(p, None)
}

/// Per-batch absolute timestamps collected while tracing.
#[derive(Debug, Clone, Copy)]
struct BatchTimes {
    prepare_start: f64,
    submit: f64,
    h2d_start: f64,
    h2d_end: f64,
    k_start: f64,
    k_end: f64,
    d_start: f64,
    d_end: f64,
    post_start: f64,
    post_end: f64,
}

/// Run the event model and, when a registry is supplied, commit one
/// `pipeline` span tree covering the first [`TRACED_BATCHES`] batches.
///
/// Each `pipeline.batch` subtree pins its stages (`prepare`, `h2d`,
/// `launch`, `kernel`, `d2h`, `post`) at their absolute modeled offsets,
/// so the overlap across streams and engines is visible in the trace; the
/// root spans the whole makespan. The schedule itself is identical with
/// tracing on or off — tracing only observes.
pub fn simulate_traced(
    p: &PipelineParams,
    telemetry: Option<&cuart_telemetry::Telemetry>,
) -> PipelineReport {
    let host_threads = p.host_threads.max(1);
    let streams = p.streams.max(1);
    let mut host_avail = vec![0.0f64; host_threads];
    let mut stream_avail = vec![0.0f64; streams];
    let mut copy_up_avail = 0.0f64;
    let mut compute_avail = 0.0f64;
    let mut copy_down_avail = 0.0f64;
    let mut makespan = 0.0f64;
    let mut traced: Vec<BatchTimes> = Vec::new();

    for b in 0..p.batches {
        let t = b % host_threads;
        let s = b % streams;
        // Host prepares the batch (serial per thread).
        let prepare_start = host_avail[t];
        let submit = host_avail[t] + p.host_prepare_ns;
        host_avail[t] = submit;
        // Wait for the stream slot, then the copy-up engine.
        let ready = submit.max(stream_avail[s]);
        let h2d_start = ready.max(copy_up_avail);
        let h2d_end = h2d_start + p.h2d_ns;
        copy_up_avail = h2d_end;
        // Kernel on the compute engine.
        let k_start = h2d_end.max(compute_avail);
        let k_end = k_start + p.launch_overhead_ns + p.kernel_ns;
        compute_avail = k_end;
        // Results home on the copy-down engine.
        let d_start = k_end.max(copy_down_avail);
        let d_end = d_start + p.d2h_ns;
        copy_down_avail = d_end;
        stream_avail[s] = d_end;
        // The owning host thread post-processes the results serially: it
        // is busy from copy-down end for `host_post_ns`, and cannot start
        // preparing its next batch before that. (Leaving this out models
        // host threads as free after submit and overstates Fig. 9
        // host-thread scaling.)
        let post_start = host_avail[t].max(d_end);
        host_avail[t] = post_start + p.host_post_ns;
        makespan = makespan.max(host_avail[t]);
        if telemetry.is_some() && b < TRACED_BATCHES {
            traced.push(BatchTimes {
                prepare_start,
                submit,
                h2d_start,
                h2d_end,
                k_start,
                k_end,
                d_start,
                d_end,
                post_start,
                post_end: host_avail[t],
            });
        }
    }

    if let Some(t) = telemetry {
        use cuart_telemetry::names::spans;
        use cuart_telemetry::SpanNode;
        let ns = |x: f64| x.max(0.0).round() as u64;
        let batches = traced
            .iter()
            .enumerate()
            .map(|(i, bt)| {
                let rel = |x: f64| ns(x - bt.prepare_start);
                SpanNode::node(
                    spans::PIPELINE_BATCH,
                    vec![
                        SpanNode::leaf(spans::PREPARE, ns(bt.submit - bt.prepare_start)).at(0),
                        SpanNode::leaf(spans::H2D, ns(bt.h2d_end - bt.h2d_start))
                            .at(rel(bt.h2d_start)),
                        SpanNode::leaf(spans::LAUNCH, ns(p.launch_overhead_ns)).at(rel(bt.k_start)),
                        SpanNode::leaf(
                            spans::KERNEL,
                            ns(bt.k_end - bt.k_start - p.launch_overhead_ns),
                        )
                        .at(rel(bt.k_start + p.launch_overhead_ns)),
                        SpanNode::leaf(spans::D2H, ns(bt.d_end - bt.d_start)).at(rel(bt.d_start)),
                        SpanNode::leaf(spans::POST, ns(bt.post_end - bt.post_start))
                            .at(rel(bt.post_start)),
                    ],
                )
                .with_attr("batch", i)
                .at(ns(bt.prepare_start))
            })
            .collect();
        let mut root = SpanNode::node(spans::PIPELINE, batches)
            .with_attr("batches", p.batches)
            .with_attr("host_threads", host_threads)
            .with_attr("streams", streams);
        root.duration_ns = ns(makespan);
        t.record_span_tree(&root);
    }

    let total_items = (p.batches * p.items_per_batch) as f64;
    let mops = if makespan > 0.0 {
        total_items / makespan * 1000.0
    } else {
        0.0
    };

    // Aggregate demand per stage determines the nominal bottleneck.
    let n = p.batches as f64;
    let demands = [
        (
            Stage::Host,
            n * (p.host_prepare_ns + p.host_post_ns) / host_threads as f64,
        ),
        (Stage::CopyUp, n * p.h2d_ns),
        (Stage::Compute, n * (p.kernel_ns + p.launch_overhead_ns)),
        (Stage::CopyDown, n * p.d2h_ns),
    ];
    let bottleneck = demands
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|d| d.0)
        .unwrap_or(Stage::Compute);

    PipelineReport {
        makespan_ns: makespan,
        mops,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineParams {
        PipelineParams {
            batches: 64,
            items_per_batch: 32768,
            host_threads: 8,
            streams: 4,
            host_prepare_ns: 25_000.0,
            host_post_ns: 25_000.0,
            h2d_ns: 45_000.0,
            kernel_ns: 100_000.0,
            d2h_ns: 12_000.0,
            launch_overhead_ns: 5_000.0,
        }
    }

    #[test]
    fn steady_state_is_bounded_by_slowest_stage() {
        let p = base();
        let r = simulate(&p);
        // Compute dominates: makespan ≈ batches * (kernel + launch) + ramp.
        let compute_total = p.batches as f64 * (p.kernel_ns + p.launch_overhead_ns);
        assert!(r.makespan_ns >= compute_total);
        assert!(
            r.makespan_ns < compute_total * 1.3,
            "too much pipeline bubble"
        );
        assert_eq!(r.bottleneck, Stage::Compute);
    }

    #[test]
    fn more_host_threads_help_when_host_bound() {
        let mut p = base();
        // Host dominates.
        p.host_prepare_ns = 250_000.0;
        p.host_post_ns = 250_000.0;
        p.host_threads = 1;
        let one = simulate(&p);
        assert_eq!(one.bottleneck, Stage::Host);
        p.host_threads = 8;
        let eight = simulate(&p);
        assert!(
            eight.mops > 4.0 * one.mops,
            "1t {} vs 8t {}",
            one.mops,
            eight.mops
        );
    }

    #[test]
    fn extra_host_threads_plateau_when_gpu_bound() {
        let p8 = PipelineParams {
            host_threads: 8,
            ..base()
        };
        let p32 = PipelineParams {
            host_threads: 32,
            ..base()
        };
        let r8 = simulate(&p8);
        let r32 = simulate(&p32);
        assert!(
            (r32.mops - r8.mops) / r8.mops < 0.1,
            "GPU-bound pipeline should plateau"
        );
    }

    #[test]
    fn single_stream_serializes_copies_and_compute() {
        let mut p = base();
        p.streams = 1;
        p.host_threads = 16;
        let serial = simulate(&p);
        p.streams = 8;
        let parallel = simulate(&p);
        assert!(parallel.mops > serial.mops);
        // With one stream each batch is h2d + kernel + d2h end to end.
        let per_batch = p.h2d_ns + p.launch_overhead_ns + p.kernel_ns + p.d2h_ns;
        assert!(serial.makespan_ns >= p.batches as f64 * per_batch * 0.99);
    }

    #[test]
    fn launch_overhead_dominates_tiny_batches() {
        let mut p = base();
        p.items_per_batch = 128;
        p.host_prepare_ns = 500.0;
        p.host_post_ns = 500.0;
        p.h2d_ns = 10_100.0; // latency floor
        p.kernel_ns = 1_500.0;
        p.d2h_ns = 10_000.0;
        let tiny = simulate(&p);
        let big = simulate(&base());
        assert!(
            big.mops > 20.0 * tiny.mops,
            "big batches must amortize overhead"
        );
    }

    #[test]
    fn throughput_is_items_over_makespan() {
        let p = base();
        let r = simulate(&p);
        let expect = (p.batches * p.items_per_batch) as f64 / r.makespan_ns * 1000.0;
        assert!((r.mops - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_and_streams_saturate_to_one() {
        // Degenerate configurations produce a (serial) schedule rather
        // than panicking on caller-supplied sizes.
        let mut p = base();
        p.host_threads = 0;
        p.streams = 0;
        let degen = simulate(&p);
        p.host_threads = 1;
        p.streams = 1;
        let one = simulate(&p);
        assert!(degen.makespan_ns > 0.0);
        assert_eq!(degen.makespan_ns, one.makespan_ns);
        assert_eq!(degen.mops, one.mops);
    }

    #[test]
    fn host_post_processing_is_charged() {
        // Regression: post-processing must occupy the owning host thread.
        // With a single host thread, every batch costs at least
        // prepare + post of serial host work, so the makespan has a hard
        // host-side floor — before the fix, the model only charged
        // prepare and the post-heavy makespan collapsed to device time.
        let p = PipelineParams {
            batches: 32,
            items_per_batch: 1024,
            host_threads: 1,
            streams: 8,
            host_prepare_ns: 10_000.0,
            host_post_ns: 400_000.0,
            h2d_ns: 1_000.0,
            kernel_ns: 2_000.0,
            d2h_ns: 1_000.0,
            launch_overhead_ns: 500.0,
        };
        let r = simulate(&p);
        let host_floor = p.batches as f64 * (p.host_prepare_ns + p.host_post_ns);
        assert!(
            r.makespan_ns >= host_floor,
            "post-processing not charged: makespan {} < host floor {}",
            r.makespan_ns,
            host_floor
        );
        assert_eq!(r.bottleneck, Stage::Host);
    }

    #[test]
    fn traced_simulation_matches_untraced_and_records_spans() {
        let p = base();
        let plain = simulate(&p);
        let t = cuart_telemetry::Telemetry::new();
        let traced = simulate_traced(&p, Some(&t));
        // Tracing only observes; the schedule is bit-identical.
        assert_eq!(plain.makespan_ns, traced.makespan_ns);
        assert_eq!(plain.mops, traced.mops);
        let s = t.snapshot();
        if t.is_enabled() {
            // Root + TRACED_BATCHES subtrees × (1 node + 6 leaves).
            assert_eq!(s.spans.len(), 1 + TRACED_BATCHES * 7);
            let root = &s.spans[0];
            assert_eq!(root.name, "pipeline");
            assert_eq!(root.duration_ns(), plain.makespan_ns.round() as u64);
            // Every batch span nests inside the root envelope.
            for sp in &s.spans[1..] {
                assert!(sp.end_ns <= root.end_ns, "{sp:?}");
            }
        } else {
            assert!(s.spans.is_empty());
        }
    }

    #[test]
    fn host_post_processing_bottleneck_limits_thread_scaling() {
        // Fig. 9 regression: when host post-processing is the bottleneck,
        // doubling streams buys nothing — only more host threads do, and
        // throughput stays pinned to aggregate host demand.
        let p = PipelineParams {
            batches: 64,
            items_per_batch: 32768,
            host_threads: 4,
            streams: 4,
            host_prepare_ns: 50_000.0,
            host_post_ns: 450_000.0,
            h2d_ns: 5_000.0,
            kernel_ns: 10_000.0,
            d2h_ns: 2_000.0,
            launch_overhead_ns: 1_000.0,
        };
        let r = simulate(&p);
        assert_eq!(r.bottleneck, Stage::Host);
        let more_streams = simulate(&PipelineParams { streams: 16, ..p });
        assert!(
            (more_streams.mops - r.mops).abs() / r.mops < 0.05,
            "streams must not relieve a host-post bottleneck"
        );
        let more_threads = simulate(&PipelineParams {
            host_threads: 16,
            ..p
        });
        assert!(
            more_threads.mops > 2.0 * r.mops,
            "host threads must relieve a host-post bottleneck: {} vs {}",
            more_threads.mops,
            r.mops
        );
    }
}
