//! Multi-stream software-pipelining model.
//!
//! The host code of both GRT and CuART (§4.1/§4.3) dispatches query batches
//! from several host threads over several command streams, so host
//! preparation, the host→device copy, kernel execution and the device→host
//! copy of different batches overlap. This module computes the resulting
//! makespan with a small deterministic event model:
//!
//! * each **host thread** prepares (and post-processes) its batches
//!   serially,
//! * one **copy-up engine** and one **copy-down engine** serve transfers
//!   FCFS (discrete GPUs have independent DMA engines per direction),
//! * the **compute engine** runs kernels FCFS, paying the launch overhead
//!   per dispatch,
//! * a batch occupies its **stream slot** from upload start to download
//!   end, so at most `streams` batches are in flight on the device.
//!
//! The figures 8 (batch-size sweep) and 9 (host-thread sweep) come directly
//! out of this model combined with per-batch kernel times from
//! [`exec`](crate::exec).

/// Input to the pipeline model; all per-batch times in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Queries per batch.
    pub items_per_batch: usize,
    /// Host threads feeding the GPU.
    pub host_threads: usize,
    /// Command streams (in-flight batches on the device).
    pub streams: usize,
    /// Host CPU time per batch (batch assembly + result handling).
    pub host_ns_per_batch: f64,
    /// Host→device transfer time per batch.
    pub h2d_ns: f64,
    /// Kernel execution time per batch.
    pub kernel_ns: f64,
    /// Device→host transfer time per batch.
    pub d2h_ns: f64,
    /// Driver launch overhead per kernel dispatch.
    pub launch_overhead_ns: f64,
}

/// Pipeline stage names, for bottleneck reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Host-side batch preparation / result processing.
    Host,
    /// Host→device DMA.
    CopyUp,
    /// Kernel execution (incl. launch overhead).
    Compute,
    /// Device→host DMA.
    CopyDown,
}

/// Result of the pipeline simulation.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// End-to-end time for all batches.
    pub makespan_ns: f64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// The stage with the largest aggregate demand.
    pub bottleneck: Stage,
}

/// Run the event model.
pub fn simulate(p: &PipelineParams) -> PipelineReport {
    assert!(p.host_threads > 0 && p.streams > 0);
    let mut host_avail = vec![0.0f64; p.host_threads];
    let mut stream_avail = vec![0.0f64; p.streams];
    let mut copy_up_avail = 0.0f64;
    let mut compute_avail = 0.0f64;
    let mut copy_down_avail = 0.0f64;
    let mut makespan = 0.0f64;

    for b in 0..p.batches {
        let t = b % p.host_threads;
        let s = b % p.streams;
        // Host prepares the batch (serial per thread).
        let submit = host_avail[t] + p.host_ns_per_batch;
        host_avail[t] = submit;
        // Wait for the stream slot, then the copy-up engine.
        let ready = submit.max(stream_avail[s]);
        let h2d_start = ready.max(copy_up_avail);
        let h2d_end = h2d_start + p.h2d_ns;
        copy_up_avail = h2d_end;
        // Kernel on the compute engine.
        let k_start = h2d_end.max(compute_avail);
        let k_end = k_start + p.launch_overhead_ns + p.kernel_ns;
        compute_avail = k_end;
        // Results home on the copy-down engine.
        let d_start = k_end.max(copy_down_avail);
        let d_end = d_start + p.d2h_ns;
        copy_down_avail = d_end;
        stream_avail[s] = d_end;
        makespan = makespan.max(d_end);
    }

    let total_items = (p.batches * p.items_per_batch) as f64;
    let mops = if makespan > 0.0 {
        total_items / makespan * 1000.0
    } else {
        0.0
    };

    // Aggregate demand per stage determines the nominal bottleneck.
    let n = p.batches as f64;
    let demands = [
        (Stage::Host, n * p.host_ns_per_batch / p.host_threads as f64),
        (Stage::CopyUp, n * p.h2d_ns),
        (Stage::Compute, n * (p.kernel_ns + p.launch_overhead_ns)),
        (Stage::CopyDown, n * p.d2h_ns),
    ];
    let bottleneck = demands
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
        .0;

    PipelineReport {
        makespan_ns: makespan,
        mops,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineParams {
        PipelineParams {
            batches: 64,
            items_per_batch: 32768,
            host_threads: 8,
            streams: 4,
            host_ns_per_batch: 50_000.0,
            h2d_ns: 45_000.0,
            kernel_ns: 100_000.0,
            d2h_ns: 12_000.0,
            launch_overhead_ns: 5_000.0,
        }
    }

    #[test]
    fn steady_state_is_bounded_by_slowest_stage() {
        let p = base();
        let r = simulate(&p);
        // Compute dominates: makespan ≈ batches * (kernel + launch) + ramp.
        let compute_total = p.batches as f64 * (p.kernel_ns + p.launch_overhead_ns);
        assert!(r.makespan_ns >= compute_total);
        assert!(
            r.makespan_ns < compute_total * 1.3,
            "too much pipeline bubble"
        );
        assert_eq!(r.bottleneck, Stage::Compute);
    }

    #[test]
    fn more_host_threads_help_when_host_bound() {
        let mut p = base();
        p.host_ns_per_batch = 500_000.0; // host dominates
        p.host_threads = 1;
        let one = simulate(&p);
        assert_eq!(one.bottleneck, Stage::Host);
        p.host_threads = 8;
        let eight = simulate(&p);
        assert!(
            eight.mops > 4.0 * one.mops,
            "1t {} vs 8t {}",
            one.mops,
            eight.mops
        );
    }

    #[test]
    fn extra_host_threads_plateau_when_gpu_bound() {
        let p8 = PipelineParams {
            host_threads: 8,
            ..base()
        };
        let p32 = PipelineParams {
            host_threads: 32,
            ..base()
        };
        let r8 = simulate(&p8);
        let r32 = simulate(&p32);
        assert!(
            (r32.mops - r8.mops) / r8.mops < 0.1,
            "GPU-bound pipeline should plateau"
        );
    }

    #[test]
    fn single_stream_serializes_copies_and_compute() {
        let mut p = base();
        p.streams = 1;
        p.host_threads = 16;
        let serial = simulate(&p);
        p.streams = 8;
        let parallel = simulate(&p);
        assert!(parallel.mops > serial.mops);
        // With one stream each batch is h2d + kernel + d2h end to end.
        let per_batch = p.h2d_ns + p.launch_overhead_ns + p.kernel_ns + p.d2h_ns;
        assert!(serial.makespan_ns >= p.batches as f64 * per_batch * 0.99);
    }

    #[test]
    fn launch_overhead_dominates_tiny_batches() {
        let mut p = base();
        p.items_per_batch = 128;
        p.host_ns_per_batch = 1_000.0;
        p.h2d_ns = 10_100.0; // latency floor
        p.kernel_ns = 1_500.0;
        p.d2h_ns = 10_000.0;
        let tiny = simulate(&p);
        let big = simulate(&base());
        assert!(
            big.mops > 20.0 * tiny.mops,
            "big batches must amortize overhead"
        );
    }

    #[test]
    fn throughput_is_items_over_makespan() {
        let p = base();
        let r = simulate(&p);
        let expect = (p.batches * p.items_per_batch) as f64 / r.makespan_ns * 1000.0;
        assert!((r.mops - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let mut p = base();
        p.host_threads = 0;
        simulate(&p);
    }
}
