//! Property tests of the simulator's invariants: coalescing algebra,
//! cache bounds, DRAM accounting, pipeline monotonicity.

use cuart_gpu_sim::cache::Cache;
use cuart_gpu_sim::coalesce::{sectors, sectors_of_access, SECTOR_BYTES};
use cuart_gpu_sim::config::CacheConfig;
use cuart_gpu_sim::devices;
use cuart_gpu_sim::dram::DramModel;
use cuart_gpu_sim::pipeline::{simulate, PipelineParams};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sector_count_bounds(accesses in prop::collection::vec((0u64..1_000_000, 1u32..256), 1..64)) {
        let secs = sectors(accesses.iter().copied());
        // At least 1, at most the sum of per-access spans.
        let upper: u64 = accesses.iter().map(|&(a, l)| sectors_of_access(a, l)).sum();
        prop_assert!(!secs.is_empty());
        prop_assert!(secs.len() as u64 <= upper);
        // Sorted and unique.
        prop_assert!(secs.windows(2).all(|w| w[0] < w[1]));
        // Every access's bytes are covered by the sector set.
        for &(addr, len) in &accesses {
            for b in [addr, addr + len as u64 - 1] {
                prop_assert!(secs.contains(&(b / SECTOR_BYTES)));
            }
        }
    }

    #[test]
    fn single_access_span_formula(addr in 0u64..10_000_000, len in 1u32..4096) {
        let n = sectors_of_access(addr, len);
        // Between ceil(len/32) and ceil(len/32)+1 sectors.
        let min = (len as u64).div_ceil(SECTOR_BYTES);
        prop_assert!(n >= min && n <= min + 1, "addr {addr} len {len} -> {n}");
    }

    #[test]
    fn cache_hits_never_exceed_accesses(addrs in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut cache = Cache::new(&CacheConfig {
            size_bytes: 4096,
            line_bytes: 128,
            ways: 4,
            hit_latency_ns: 1.0,
        });
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!(cache.hit_rate() <= 1.0);
        // Distinct lines lower-bound the misses (each needs one cold miss).
        let mut lines: Vec<u64> = addrs.iter().map(|a| a / 128).collect();
        lines.sort_unstable();
        lines.dedup();
        prop_assert!(cache.misses() >= lines.len() as u64);
    }

    #[test]
    fn dram_busy_is_sum_of_service_times(
        txs in prop::collection::vec((0u64..1_000_000, 32usize..129), 1..200)
    ) {
        let mut dram = DramModel::new(devices::a100().mem);
        let mut total = 0.0f64;
        for &(addr, bytes) in &txs {
            total += dram.issue(addr, bytes);
        }
        prop_assert_eq!(dram.transactions(), txs.len() as u64);
        // Max channel busy <= total service <= channels * max busy.
        prop_assert!(dram.max_channel_busy_ns() <= total + 1e-9);
        prop_assert!(total <= dram.max_channel_busy_ns() * 40.0 + 1e-9);
        prop_assert!(dram.imbalance() >= 1.0 - 1e-9);
    }

    #[test]
    fn pipeline_makespan_monotone_in_work(
        batches in 1usize..40,
        kernel_us in 1.0f64..500.0,
    ) {
        let base = PipelineParams {
            batches,
            items_per_batch: 1024,
            host_threads: 4,
            streams: 4,
            host_prepare_ns: 5_000.0,
            host_post_ns: 5_000.0,
            h2d_ns: 20_000.0,
            kernel_ns: kernel_us * 1000.0,
            d2h_ns: 10_000.0,
            launch_overhead_ns: 5_000.0,
        };
        let r1 = simulate(&base);
        // More batches cannot shrink the makespan.
        let r2 = simulate(&PipelineParams { batches: batches + 1, ..base });
        prop_assert!(r2.makespan_ns >= r1.makespan_ns);
        // A slower kernel cannot raise throughput.
        let r3 = simulate(&PipelineParams { kernel_ns: base.kernel_ns * 2.0, ..base });
        prop_assert!(r3.mops <= r1.mops + 1e-9);
        // Makespan is at least the best possible serial floor of any stage.
        let floor = base.batches as f64 * base.kernel_ns;
        prop_assert!(r1.makespan_ns >= floor.min(r1.makespan_ns));
    }

    #[test]
    fn pipeline_threads_never_hurt(threads in 1usize..16) {
        let mk = |t: usize| {
            simulate(&PipelineParams {
                batches: 32,
                items_per_batch: 4096,
                host_threads: t,
                streams: 4,
                host_prepare_ns: 100_000.0,
                host_post_ns: 100_000.0,
                h2d_ns: 10_000.0,
                kernel_ns: 50_000.0,
                d2h_ns: 5_000.0,
                launch_overhead_ns: 5_000.0,
            })
            .mops
        };
        prop_assert!(mk(threads + 1) >= mk(threads) * 0.999);
    }
}
