//! Session-wide telemetry for the CuART engines.
//!
//! One [`Telemetry`] registry per device session (shared as
//! `Option<Arc<Telemetry>>`) collects:
//!
//! * **counters** — monotonic totals (batches served, keys looked up,
//!   host spills, claim conflicts, free-list refills, …),
//! * **gauges** — last-write-wins readings (node/leaf occupancy, L2 hit
//!   rate, DRAM channel imbalance, device bytes, …),
//! * **histograms** — log2-bucketed distributions (kernel ns per batch,
//!   DRAM transactions per batch, bytes moved, …),
//! * **a bounded event ring** — one structured [`BatchEvent`] per device
//!   batch and hybrid routing decision, with session-monotonic `seq`.
//!
//! Snapshots ([`Telemetry::snapshot`]) are fully owned and export to JSON
//! ([`Snapshot::to_json`]) or the Prometheus text format
//! ([`Snapshot::to_prometheus`]).
//!
//! # Cost model
//!
//! With the default `enabled` feature, recording through a handle is one
//! relaxed atomic op; the registry locks are touched only on name
//! resolution and the event ring takes one short mutex per *batch*.
//! Compiled with `--no-default-features`, every type here becomes an
//! API-identical zero-sized no-op, so the only residual cost in the
//! engines is the `Option` branch at each recording site.

#![forbid(unsafe_code)]

mod event;
pub mod json;
mod snapshot;
pub mod tracing;

pub use event::{BatchEvent, BatchKind};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use tracing::{Span, SpanNode, DEFAULT_SPAN_CAPACITY};

#[cfg(feature = "enabled")]
mod real;
#[cfg(feature = "enabled")]
pub use real::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, Telemetry,
    DEFAULT_EVENT_CAPACITY,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, Telemetry,
    DEFAULT_EVENT_CAPACITY,
};

/// Canonical metric names shared by producers and consumers, so the CLI,
/// the bench harness and the tests never drift on spelling.
pub mod names {
    /// Lookup batches served on the device path.
    pub const LOOKUP_BATCHES: &str = "cuart.lookup.batches";
    /// Keys submitted to device lookups.
    pub const LOOKUP_KEYS: &str = "cuart.lookup.keys";
    /// Lookup keys resolved on the host (HOST_SIGNAL / overflow).
    pub const LOOKUP_HOST_SPILLS: &str = "cuart.lookup.host_spills";
    /// Histogram: modeled kernel ns per lookup batch.
    pub const LOOKUP_KERNEL_NS: &str = "cuart.lookup.kernel_ns";
    /// Update batches served on the device path.
    pub const UPDATE_BATCHES: &str = "cuart.update.batches";
    /// Keys submitted to device updates.
    pub const UPDATE_KEYS: &str = "cuart.update.keys";
    /// Histogram: modeled kernel ns per update batch.
    pub const UPDATE_KERNEL_NS: &str = "cuart.update.kernel_ns";
    /// Update/insert slot-claim conflicts (atomic CAS retries).
    pub const CLAIM_CONFLICTS: &str = "cuart.update.claim_conflicts";
    /// Insert batches served on the device path.
    pub const INSERT_BATCHES: &str = "cuart.insert.batches";
    /// Keys submitted to device inserts.
    pub const INSERT_KEYS: &str = "cuart.insert.keys";
    /// Inserts spilled to the host overflow table.
    pub const INSERT_HOST_SPILLS: &str = "cuart.insert.host_spills";
    /// Free-list refills triggered by inserts.
    pub const FREELIST_REFILLS: &str = "cuart.insert.freelist_refills";
    /// Histogram: modeled kernel ns per insert batch.
    pub const INSERT_KERNEL_NS: &str = "cuart.insert.kernel_ns";
    /// L2 hits across all kernels.
    pub const L2_HITS: &str = "cuart.kernel.l2_hits";
    /// L2 misses across all kernels.
    pub const L2_MISSES: &str = "cuart.kernel.l2_misses";
    /// Gauge: L2 hit rate of the most recent kernel.
    pub const L2_HIT_RATE: &str = "cuart.kernel.l2_hit_rate";
    /// DRAM sector transactions across all kernels.
    pub const DRAM_TRANSACTIONS: &str = "cuart.kernel.dram_transactions";
    /// DRAM bytes moved across all kernels.
    pub const DRAM_BYTES: &str = "cuart.kernel.dram_bytes";
    /// Gauge: DRAM channel imbalance of the most recent kernel.
    pub const DRAM_IMBALANCE: &str = "cuart.kernel.dram_imbalance";
    /// Coalesced memory requests across all kernels.
    pub const COALESCED_ACCESSES: &str = "cuart.kernel.coalesced_accesses";
    /// Raw per-lane memory requests across all kernels.
    pub const RAW_ACCESSES: &str = "cuart.kernel.raw_accesses";
    /// Histogram: DRAM transactions per batch.
    pub const DRAM_TX_PER_BATCH: &str = "cuart.kernel.dram_tx_per_batch";
    /// Gauge: device-resident bytes of the built index.
    pub const DEVICE_BYTES: &str = "cuart.build.device_bytes";
    /// Gauge: number of inner nodes in the built index.
    pub const BUILD_NODES: &str = "cuart.build.nodes";
    /// Gauge: number of leaves in the built index.
    pub const BUILD_LEAVES: &str = "cuart.build.leaves";
    /// Hybrid batches routed to the GPU.
    pub const HYBRID_GPU_BATCHES: &str = "cuart.hybrid.gpu_batches";
    /// Hybrid keys routed to the CPU (long-key / HOST_SIGNAL path).
    pub const HYBRID_CPU_KEYS: &str = "cuart.hybrid.cpu_keys";
    /// Hybrid keys routed to the GPU.
    pub const HYBRID_GPU_KEYS: &str = "cuart.hybrid.gpu_keys";
    /// Gauge: fraction of keys routed to the CPU in the last hybrid run.
    pub const HYBRID_CPU_FRACTION: &str = "cuart.hybrid.cpu_fraction";
    /// Device faults injected (or observed) across the session.
    pub const FAULTS_INJECTED: &str = "cuart.faults.injected";
    /// Batch retries after a device fault.
    pub const FAULT_RETRIES: &str = "cuart.faults.retries";
    /// Histogram: modeled retry backoff ns per attempt.
    pub const FAULT_BACKOFF_NS: &str = "cuart.faults.backoff_ns";
    /// Times the session degraded to the CPU path.
    pub const FAULT_DEGRADATIONS: &str = "cuart.faults.degradations";
    /// Times a degraded session recovered its device image.
    pub const FAULT_RECOVERIES: &str = "cuart.faults.recoveries";
    /// Batches served entirely by the CPU fallback while degraded.
    pub const FAULT_CPU_FALLBACK_BATCHES: &str = "cuart.faults.cpu_fallback_batches";
    /// Keys served by the CPU fallback while degraded.
    pub const FAULT_CPU_FALLBACK_KEYS: &str = "cuart.faults.cpu_fallback_keys";
    /// Gauge: 1 while the session is degraded, 0 otherwise.
    pub const FAULT_DEGRADED: &str = "cuart.faults.degraded";
    /// GRT lookup batches.
    pub const GRT_LOOKUP_BATCHES: &str = "grt.lookup.batches";
    /// GRT keys submitted to lookups.
    pub const GRT_LOOKUP_KEYS: &str = "grt.lookup.keys";
    /// Histogram: modeled kernel ns per GRT lookup batch.
    pub const GRT_LOOKUP_KERNEL_NS: &str = "grt.lookup.kernel_ns";
    /// GRT update batches.
    pub const GRT_UPDATE_BATCHES: &str = "grt.update.batches";
    /// Gauge: device-resident bytes of the built GRT.
    pub const GRT_DEVICE_BYTES: &str = "grt.build.device_bytes";
    /// Operations accepted by the batch scheduler's submission queue.
    pub const SCHED_ENQUEUED: &str = "cuart.sched.enqueued";
    /// Batches the scheduler dispatched to the session.
    pub const SCHED_BATCHES: &str = "cuart.sched.batches";
    /// Batches flushed because the size target was reached.
    pub const SCHED_SIZE_FLUSHES: &str = "cuart.sched.size_flushes";
    /// Batches flushed because the oldest queued op hit its deadline.
    pub const SCHED_DEADLINE_FLUSHES: &str = "cuart.sched.deadline_flushes";
    /// Gauge: ops waiting in the scheduler queue at the last flush.
    pub const SCHED_QUEUE_DEPTH: &str = "cuart.sched.queue_depth";
    /// Histogram: per-batch queueing latency (enqueue of the oldest op to
    /// dispatch), nanoseconds.
    pub const SCHED_QUEUE_LATENCY_NS: &str = "cuart.sched.queue_latency_ns";
    /// Histogram: keys per dispatched scheduler batch.
    pub const SCHED_BATCH_FILL: &str = "cuart.sched.batch_fill";
    /// Batches packed in sorted key order (the locality path).
    pub const SCHED_SORTED_BATCHES: &str = "cuart.sched.sorted_batches";
    /// Ops shed at coalesce time because their deadline had already passed.
    pub const SCHED_SHED: &str = "cuart.sched.shed";
    /// Ops refused at admission (queue full under the `Reject` policy).
    pub const SCHED_REJECTED: &str = "cuart.sched.rejected";
    /// Circuit-breaker trips (`Closed`/`HalfOpen` → `Open`).
    pub const SCHED_BREAKER_TRIPS: &str = "cuart.sched.breaker_trips";
    /// Half-open probe batches dispatched to the device while recovering.
    pub const SCHED_PROBE_BATCHES: &str = "cuart.sched.probe_batches";
    /// Gauge: breaker state (0 = Closed, 1 = HalfOpen, 2 = Open).
    pub const SCHED_BREAKER_STATE: &str = "cuart.sched.breaker_state";
    /// Common prefix of every scheduler series above.
    pub const SCHED_PREFIX: &str = "cuart.sched.";
    /// Prefix of the per-shard scheduler twins: a scheduler running as
    /// shard `i` of a `ShardedScheduler` mirrors each of its counters and
    /// gauges to `cuart.sched.shard.<i>.<suffix>`, so per-shard counters
    /// sum to the global `cuart.sched.*` totals by construction.
    pub const SCHED_SHARD_PREFIX: &str = "cuart.sched.shard.";
    /// Requests routed through a sharded scheduler's split/merge router.
    pub const SCHED_ROUTED_REQUESTS: &str = "cuart.sched.routed_requests";
    /// Keys routed through a sharded scheduler's split/merge router.
    pub const SCHED_ROUTED_KEYS: &str = "cuart.sched.routed_keys";

    /// Per-shard twin of a global `cuart.sched.*` series name:
    /// `sched_shard(3, SCHED_SHED)` → `"cuart.sched.shard.3.shed"`.
    pub fn sched_shard(shard: usize, global: &str) -> String {
        let suffix = global.strip_prefix(SCHED_PREFIX).unwrap_or(global);
        format!("{SCHED_SHARD_PREFIX}{shard}.{suffix}")
    }
    /// Events evicted from the bounded batch-event ring (overflow is
    /// surfaced, not silent).
    pub const EVENTS_DROPPED: &str = "cuart.telemetry.events_dropped";
    /// Spans evicted from the bounded span ring.
    pub const SPANS_DROPPED: &str = "cuart.telemetry.spans_dropped";
    /// Prefix of the critical-path counters: committing a span tree bumps
    /// `cuart.trace.critical.<stage>` for its dominant leaf stage.
    pub const TRACE_CRITICAL_PREFIX: &str = "cuart.trace.critical.";
    /// Gauge: dominant stage's share of leaf time in the last committed
    /// span tree.
    pub const TRACE_CRITICAL_SHARE: &str = "cuart.trace.critical_share";
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The surface every build must expose identically.
    #[test]
    fn api_surface_compiles_and_snapshots() {
        let t = Telemetry::new();
        t.incr(names::LOOKUP_BATCHES, 1);
        t.gauge_set(names::L2_HIT_RATE, 0.5);
        t.observe(names::LOOKUP_KERNEL_NS, 1234);
        t.record(BatchEvent::new(BatchKind::Lookup, 16));
        let s = t.snapshot();
        let json = s.to_json();
        let prom = s.to_prometheus();
        if t.is_enabled() {
            assert_eq!(s.counters.get(names::LOOKUP_BATCHES), Some(&1));
            assert!(json.contains("cuart.lookup.batches"));
            assert!(prom.contains("cuart_lookup_batches 1"));
        } else {
            assert!(s.counters.is_empty());
        }
    }
}
