//! Session-wide telemetry for the CuART engines.
//!
//! One [`Telemetry`] registry per device session (shared as
//! `Option<Arc<Telemetry>>`) collects:
//!
//! * **counters** — monotonic totals (batches served, keys looked up,
//!   host spills, claim conflicts, free-list refills, …),
//! * **gauges** — last-write-wins readings (node/leaf occupancy, L2 hit
//!   rate, DRAM channel imbalance, device bytes, …),
//! * **histograms** — log2-bucketed distributions (kernel ns per batch,
//!   DRAM transactions per batch, bytes moved, …),
//! * **a bounded event ring** — one structured [`BatchEvent`] per device
//!   batch and hybrid routing decision, with session-monotonic `seq`.
//!
//! Snapshots ([`Telemetry::snapshot`]) are fully owned and export to JSON
//! ([`Snapshot::to_json`]) or the Prometheus text format
//! ([`Snapshot::to_prometheus`]).
//!
//! # Cost model
//!
//! With the default `enabled` feature, recording through a handle is one
//! relaxed atomic op; the registry locks are touched only on name
//! resolution and the event ring takes one short mutex per *batch*.
//! Compiled with `--no-default-features`, every type here becomes an
//! API-identical zero-sized no-op, so the only residual cost in the
//! engines is the `Option` branch at each recording site.

#![forbid(unsafe_code)]

mod event;
pub mod json;
mod snapshot;
pub mod tracing;

pub use event::{BatchEvent, BatchKind};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use tracing::{Span, SpanNode, DEFAULT_SPAN_CAPACITY};

#[cfg(feature = "enabled")]
mod real;
#[cfg(feature = "enabled")]
pub use real::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, Telemetry,
    DEFAULT_EVENT_CAPACITY,
};

#[cfg(not(feature = "enabled"))]
mod noop;
#[cfg(not(feature = "enabled"))]
pub use noop::{
    Counter, CounterHandle, Gauge, GaugeHandle, Histogram, HistogramHandle, Telemetry,
    DEFAULT_EVENT_CAPACITY,
};

pub mod names;

#[cfg(test)]
mod tests {
    use super::*;

    /// The surface every build must expose identically.
    #[test]
    fn api_surface_compiles_and_snapshots() {
        let t = Telemetry::new();
        t.incr(names::LOOKUP_BATCHES, 1);
        t.gauge_set(names::L2_HIT_RATE, 0.5);
        t.observe(names::LOOKUP_KERNEL_NS, 1234);
        t.record(BatchEvent::new(BatchKind::Lookup, 16));
        let s = t.snapshot();
        let json = s.to_json();
        let prom = s.to_prometheus();
        if t.is_enabled() {
            assert_eq!(s.counters.get(names::LOOKUP_BATCHES), Some(&1));
            assert!(json.contains("cuart.lookup.batches"));
            assert!(prom.contains("cuart_lookup_batches 1"));
        } else {
            assert!(s.counters.is_empty());
        }
    }
}
