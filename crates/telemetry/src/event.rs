//! Structured per-batch trace records.
//!
//! Every device batch (lookup / update / insert), hybrid routing decision
//! and index build emits one [`BatchEvent`] into the session's bounded
//! ring buffer. The fields are the union of what the engines can report;
//! producers fill in what they know and leave the rest at zero.

/// What kind of batch produced an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BatchKind {
    /// Index construction (ART → CuART buffers, or GRT build).
    Build,
    /// A device lookup batch.
    Lookup,
    /// A device update batch.
    Update,
    /// A device insert batch.
    Insert,
    /// A device range-query batch (§3.2.1 span kernel).
    Range,
    /// A hybrid CPU/GPU routing decision over one batch.
    HybridRoute,
    /// The session lost its device image and fell back to the CPU path.
    Degraded,
    /// A degraded session re-uploaded the tree and resumed device service.
    Recovered,
    /// The scheduler's circuit breaker tripped open (CPU-only service).
    BreakerOpen,
    /// The breaker entered its half-open probing window.
    BreakerHalfOpen,
    /// The breaker closed again after clean probe batches.
    BreakerClosed,
}

impl BatchKind {
    /// Stable lowercase identifier used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            BatchKind::Build => "build",
            BatchKind::Lookup => "lookup",
            BatchKind::Update => "update",
            BatchKind::Insert => "insert",
            BatchKind::Range => "range",
            BatchKind::HybridRoute => "hybrid_route",
            BatchKind::Degraded => "degraded",
            BatchKind::Recovered => "recovered",
            BatchKind::BreakerOpen => "breaker_open",
            BatchKind::BreakerHalfOpen => "breaker_half_open",
            BatchKind::BreakerClosed => "breaker_closed",
        }
    }
}

impl std::fmt::Display for BatchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One per-batch trace record.
///
/// `seq` is assigned by the ring at record time and is monotonically
/// increasing across the session, so gaps reveal dropped events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchEvent {
    /// Session-monotonic sequence number (assigned on record).
    pub seq: u64,
    /// Producer of the event.
    pub kind: BatchKind,
    /// Keys in the batch.
    pub keys: u64,
    /// Modeled kernel time in nanoseconds.
    pub kernel_time_ns: u64,
    /// L2 cache hits during the batch.
    pub l2_hits: u64,
    /// L2 cache misses during the batch.
    pub l2_misses: u64,
    /// 32-byte DRAM sector transactions issued.
    pub dram_transactions: u64,
    /// Bytes moved from DRAM.
    pub dram_bytes: u64,
    /// Memory requests after warp coalescing.
    pub coalesced_accesses: u64,
    /// Raw per-lane memory requests before coalescing.
    pub raw_accesses: u64,
    /// Keys spilled to the host side (HOST_SIGNAL / overflow path).
    pub host_spills: u64,
    /// Insert/update slot-claim conflicts (atomic CAS retries).
    pub claim_conflicts: u64,
    /// Free-list refills triggered while serving the batch.
    pub freelist_refills: u64,
}

impl BatchEvent {
    /// New event of `kind` covering `keys` keys, all other fields zero.
    pub fn new(kind: BatchKind, keys: u64) -> Self {
        BatchEvent {
            seq: 0,
            kind,
            keys,
            kernel_time_ns: 0,
            l2_hits: 0,
            l2_misses: 0,
            dram_transactions: 0,
            dram_bytes: 0,
            coalesced_accesses: 0,
            raw_accesses: 0,
            host_spills: 0,
            claim_conflicts: 0,
            freelist_refills: 0,
        }
    }

    /// The non-`seq`/`kind`/`keys` payload as `(name, value)` pairs, in
    /// export order. Shared by the JSON exporter and pretty-printers.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("kernel_time_ns", self.kernel_time_ns),
            ("l2_hits", self.l2_hits),
            ("l2_misses", self.l2_misses),
            ("dram_transactions", self.dram_transactions),
            ("dram_bytes", self.dram_bytes),
            ("coalesced_accesses", self.coalesced_accesses),
            ("raw_accesses", self.raw_accesses),
            ("host_spills", self.host_spills),
            ("claim_conflicts", self.claim_conflicts),
            ("freelist_refills", self.freelist_refills),
        ]
    }
}
