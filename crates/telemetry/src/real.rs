//! The live registry, compiled when the `enabled` feature is on.
//!
//! Hot paths are lock-light: metric handles are `Arc`s of atomics, so the
//! registry's `RwLock`s are only taken when a metric name is first (or
//! repeatedly, read-locked) resolved — never while bumping a counter
//! through a held handle. The event ring takes a short `Mutex` per batch,
//! which is amortised across the whole batch, not per key.

use crate::event::BatchEvent;
use crate::names;
use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::tracing::{Span, SpanNode, DEFAULT_SPAN_CAPACITY};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Default bound of the batch event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn incr(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge storing an `f64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: one for zero plus one per bit position.
const BUCKETS: usize = 65;

/// Log-scale histogram for ns latencies, bytes, transactions-per-key.
///
/// Bucket 0 holds exactly the value 0; bucket `i ≥ 1` holds the range
/// `[2^(i-1), 2^i - 1]`, i.e. values with bit length `i`.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 for 0, else its bit length.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `i`.
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze into a snapshot.
    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets: (0..BUCKETS)
                .filter_map(|i| {
                    let n = self.counts[i].load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_upper(i), n))
                })
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct RingInner {
    buf: VecDeque<BatchEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring of [`BatchEvent`]s with session-monotonic sequencing.
#[derive(Debug)]
struct EventRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl EventRing {
    fn new(capacity: usize) -> Self {
        EventRing {
            capacity: capacity.max(1),
            inner: Mutex::new(RingInner::default()),
        }
    }

    fn record(&self, mut event: BatchEvent) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() == self.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(event);
        event.seq
    }

    fn snapshot(&self) -> (Vec<BatchEvent>, u64) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (inner.buf.iter().copied().collect(), inner.dropped)
    }
}

#[derive(Debug)]
struct SpanInner {
    buf: VecDeque<Span>,
    /// Next span id; starts at 1 so 0 can mean "no parent".
    next_id: u64,
    /// Modeled session clock: committed trees are laid out back to back.
    clock_ns: u64,
    dropped: u64,
}

/// Bounded ring of flattened [`Span`]s plus the modeled session clock.
///
/// Eviction is per span, oldest first — a very long session can shed the
/// head of an old tree while keeping its tail; `dropped` counts what went
/// missing and the consumers ([`crate::tracing::critical_paths`], the
/// folded exporter) treat orphaned spans as their own roots.
#[derive(Debug)]
struct SpanRing {
    capacity: usize,
    inner: Mutex<SpanInner>,
}

impl SpanRing {
    fn new(capacity: usize) -> Self {
        SpanRing {
            capacity: capacity.max(1),
            inner: Mutex::new(SpanInner {
                buf: VecDeque::new(),
                next_id: 1,
                clock_ns: 0,
                dropped: 0,
            }),
        }
    }

    /// Lay `root` out at the current modeled clock, advance the clock to
    /// the tree's end and retain the flattened spans. Returns the root id.
    fn record_tree(&self, root: &SpanNode) -> u64 {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut flat = Vec::new();
        let start = inner.clock_ns;
        let mut next_id = inner.next_id;
        let end = root.layout(0, start, &mut next_id, &mut flat);
        inner.next_id = next_id;
        inner.clock_ns = end.max(start);
        let root_id = flat.first().map(|s| s.id).unwrap_or(0);
        for span in flat {
            if inner.buf.len() == self.capacity {
                inner.buf.pop_front();
                inner.dropped += 1;
            }
            inner.buf.push_back(span);
        }
        root_id
    }

    fn snapshot(&self) -> (Vec<Span>, u64) {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        (inner.buf.iter().cloned().collect(), inner.dropped)
    }
}

/// Handle type returned by [`Telemetry::counter`]; derefs to [`Counter`].
pub type CounterHandle = Arc<Counter>;
/// Handle type returned by [`Telemetry::gauge`]; derefs to [`Gauge`].
pub type GaugeHandle = Arc<Gauge>;
/// Handle type returned by [`Telemetry::histogram`]; derefs to [`Histogram`].
pub type HistogramHandle = Arc<Histogram>;

/// The session-wide metrics registry.
///
/// Shared as `Option<Arc<Telemetry>>` by everything that records: the
/// disabled path is a single branch on the `Option` with no allocation
/// and no locking.
#[derive(Debug)]
pub struct Telemetry {
    counters: RwLock<BTreeMap<String, CounterHandle>>,
    gauges: RwLock<BTreeMap<String, GaugeHandle>>,
    histograms: RwLock<BTreeMap<String, HistogramHandle>>,
    events: EventRing,
    spans: SpanRing,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// New registry with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// New registry retaining at most `capacity` trace events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Self::with_capacities(capacity, DEFAULT_SPAN_CAPACITY)
    }

    /// New registry retaining at most `event_capacity` trace events and
    /// `span_capacity` spans.
    pub fn with_capacities(event_capacity: usize, span_capacity: usize) -> Self {
        Telemetry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            events: EventRing::new(event_capacity),
            spans: SpanRing::new(span_capacity),
        }
    }

    fn resolve<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(m) = map.read().unwrap_or_else(PoisonError::into_inner).get(name) {
            return Arc::clone(m);
        }
        let mut w = map.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// Handle to the counter `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> CounterHandle {
        Self::resolve(&self.counters, name)
    }

    /// Handle to the gauge `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        Self::resolve(&self.gauges, name)
    }

    /// Handle to the histogram `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        Self::resolve(&self.histograms, name)
    }

    /// Convenience: bump counter `name` by `n`.
    pub fn incr(&self, name: &str, n: u64) {
        self.counter(name).incr(n);
    }

    /// Convenience: set gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Convenience: record `v` into histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).observe(v);
    }

    /// Append a batch event to the trace ring; returns its sequence number.
    pub fn record(&self, event: BatchEvent) -> u64 {
        self.events.record(event)
    }

    /// Commit a whole span tree to the bounded span store and attribute
    /// its critical path; returns the root span's id.
    ///
    /// The tree is laid out on the modeled session clock (trees are
    /// placed back to back, children within a tree per
    /// [`SpanNode::layout`]). The dominant *leaf* stage bumps
    /// `cuart.trace.critical.<stage>` and its share of total leaf time is
    /// published on the `cuart.trace.critical_share` gauge.
    pub fn record_span_tree(&self, root: &SpanNode) -> u64 {
        let id = self.spans.record_tree(root);
        if let Some((stage, _ns, share)) = root.dominant_leaf() {
            self.incr(&format!("{}{stage}", names::TRACE_CRITICAL_PREFIX), 1);
            self.gauge_set(names::TRACE_CRITICAL_SHARE, share);
        }
        id
    }

    /// Whether recording is compiled in (always `true` here; the no-op
    /// build returns `false`).
    pub fn is_enabled(&self) -> bool {
        true
    }

    /// Freeze the whole registry into an owned [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let (events, events_dropped) = self.events.snapshot();
        let (spans, spans_dropped) = self.spans.snapshot();
        let mut snap = Snapshot {
            counters,
            gauges,
            histograms,
            events,
            events_dropped,
            spans,
            spans_dropped,
        };
        // Ring overflow is surfaced as first-class counters so exporters
        // and dashboards see it without special-casing the snapshot
        // fields (satellite: no silent event drops).
        snap.counters
            .insert(names::EVENTS_DROPPED.to_string(), events_dropped);
        snap.counters
            .insert(names::SPANS_DROPPED.to_string(), spans_dropped);
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BatchKind;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in the bucket whose bound brackets it.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX - 1] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above bucket {i}");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn histogram_stats_and_snapshot() {
        let h = Histogram::default();
        for v in [0u64, 1, 5, 5, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → le=1; 5,5 → le=7; 1000 → le=1023.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (7, 2), (1023, 1)]);
        assert!((s.mean() - 202.2).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_min_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.min, s.max), (0, 0, 0));
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_tail_and_counts_drops() {
        let t = Telemetry::with_event_capacity(4);
        for i in 0..10u64 {
            t.record(BatchEvent::new(BatchKind::Lookup, i));
        }
        let s = t.snapshot();
        assert_eq!(s.events.len(), 4);
        assert_eq!(s.events_dropped, 6);
        // The tail is retained, with monotone seq numbers 6..=9.
        let seqs: Vec<u64> = s.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(s.events[0].keys, 6);
    }

    #[test]
    fn handles_alias_the_registry() {
        let t = Telemetry::new();
        let c = t.counter("x");
        c.incr(2);
        t.incr("x", 3);
        assert_eq!(t.counter("x").get(), 5);
        t.gauge_set("g", 1.5);
        assert_eq!(t.gauge("g").get(), 1.5);
        t.observe("h", 9);
        assert_eq!(t.histogram("h").count(), 1);
    }

    #[test]
    fn span_trees_lay_out_on_the_session_clock() {
        let t = Telemetry::new();
        let batch = SpanNode::node(
            "batch.lookup",
            vec![
                SpanNode::leaf("h2d", 100),
                SpanNode::leaf("kernel", 300),
                SpanNode::leaf("d2h", 50),
            ],
        );
        let id1 = t.record_span_tree(&batch);
        let id2 = t.record_span_tree(&batch);
        assert!(id1 >= 1 && id2 > id1);
        let s = t.snapshot();
        assert_eq!(s.spans.len(), 8);
        assert_eq!(s.spans_dropped, 0);
        // First tree occupies [0, 450), second starts where it ended.
        assert_eq!((s.spans[0].start_ns, s.spans[0].end_ns), (0, 450));
        assert_eq!((s.spans[4].start_ns, s.spans[4].end_ns), (450, 900));
        // Children point at their root and tile it exactly.
        let kids: Vec<&Span> = s.spans.iter().filter(|x| x.parent == id1).collect();
        assert_eq!(kids.len(), 3);
        assert_eq!(kids.iter().map(|x| x.duration_ns()).sum::<u64>(), 450);
    }

    #[test]
    fn span_ring_evicts_oldest_and_counts_drops() {
        let t = Telemetry::with_capacities(DEFAULT_EVENT_CAPACITY, 3);
        let tree = SpanNode::node("root", vec![SpanNode::leaf("leaf", 10)]);
        for _ in 0..3 {
            t.record_span_tree(&tree);
        }
        let s = t.snapshot();
        assert_eq!(s.spans.len(), 3);
        assert_eq!(s.spans_dropped, 3);
        assert_eq!(s.counters.get(names::SPANS_DROPPED), Some(&3));
    }

    #[test]
    fn critical_path_counters_name_the_dominant_stage() {
        let t = Telemetry::new();
        let tree = SpanNode::node(
            "sched.batch.lookup",
            vec![
                SpanNode::leaf("sort", 100),
                SpanNode::node(
                    "kernel",
                    vec![SpanNode::leaf("dram", 600), SpanNode::leaf("exec", 200)],
                ),
                SpanNode::leaf("d2h", 100),
            ],
        );
        t.record_span_tree(&tree);
        let s = t.snapshot();
        assert_eq!(s.counters.get("cuart.trace.critical.dram"), Some(&1));
        let share = s.gauges.get(names::TRACE_CRITICAL_SHARE).copied().unwrap();
        assert!((share - 0.6).abs() < 1e-9, "share {share}");
    }

    #[test]
    fn dropped_event_counter_lands_in_the_counter_map() {
        let t = Telemetry::with_event_capacity(2);
        for i in 0..5u64 {
            t.record(BatchEvent::new(BatchKind::Lookup, i));
        }
        let s = t.snapshot();
        assert_eq!(s.counters.get(names::EVENTS_DROPPED), Some(&3));
        assert_eq!(s.counters.get(names::SPANS_DROPPED), Some(&0));
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let t = Arc::new(Telemetry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    let c = t.counter("n");
                    for _ in 0..1000 {
                        c.incr(1);
                        t.observe("lat", 42);
                    }
                });
            }
        });
        assert_eq!(t.counter("n").get(), 8000);
        assert_eq!(t.histogram("lat").count(), 8000);
    }
}
