//! Point-in-time snapshots and the JSON / Prometheus text exporters.
//!
//! A [`Snapshot`] is a plain, fully-owned copy of the registry taken under
//! short read locks; exporting it never touches the live metrics again.
//! Both exporters emit keys in deterministic (BTreeMap) order so snapshots
//! of identical sessions are byte-identical — the golden tests rely on it.

// cuart-allow-file: panic-path every `.expect("string write")` here is `fmt::Write` into a `String`, which is infallible; threading a `fmt::Error` out of the exporters would be dead code

use crate::event::BatchEvent;
use crate::tracing::Span;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty log2 buckets as `(inclusive upper bound, count)`,
    /// ascending. Bucket bounds are `0, 1, 3, 7, …, 2^k - 1, …, u64::MAX`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Frozen state of a whole [`Telemetry`](crate::Telemetry) registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (last-write-wins) by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// The retained tail of the batch event trace, oldest first.
    pub events: Vec<BatchEvent>,
    /// Events evicted from the bounded ring before this snapshot.
    pub events_dropped: u64,
    /// The retained tail of the hierarchical span store, oldest first.
    pub spans: Vec<Span>,
    /// Spans evicted from the bounded span store before this snapshot.
    pub spans_dropped: u64,
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as JSON (finite → shortest round-trip form, non-finite
/// → `null`, integral values keep a trailing `.0`).
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Sanitize a metric name for the Prometheus text format:
/// `[a-zA-Z0-9_:]` pass through, everything else becomes `_`.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl Snapshot {
    /// Serialize the snapshot as a single JSON object.
    ///
    /// Layout: `{"counters":{...},"gauges":{...},"histograms":{...},`
    /// `"events":[...],"events_dropped":N,"spans":[...],`
    /// `"spans_dropped":N}` with keys in sorted order, so identical
    /// sessions export byte-identical documents.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{v}", json_escape(name)).expect("string write");
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "\"{}\":{}", json_escape(name), json_f64(*v)).expect("string write");
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                json_f64(h.mean()),
            )
            .expect("string write");
            for (j, (le, n)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "{{\"le\":{le},\"count\":{n}}}").expect("string write");
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"seq\":{},\"kind\":\"{}\",\"keys\":{}",
                e.seq,
                e.kind.as_str(),
                e.keys
            )
            .expect("string write");
            for (name, v) in e.fields() {
                write!(out, ",\"{name}\":{v}").expect("string write");
            }
            out.push('}');
        }
        write!(out, "],\"events_dropped\":{}", self.events_dropped).expect("string write");
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"attrs\":{{",
                s.id,
                s.parent,
                json_escape(&s.name),
                s.start_ns,
                s.end_ns,
            )
            .expect("string write");
            for (j, (k, v)) in s.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v)).expect("string write");
            }
            out.push_str("}}");
        }
        write!(out, "],\"spans_dropped\":{}}}", self.spans_dropped).expect("string write");
        out
    }

    /// Serialize counters, gauges and histograms in the Prometheus text
    /// exposition format. Events are summarised (`cuart_events_dropped`),
    /// not dumped — traces do not fit the format.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            writeln!(out, "# TYPE {n} counter").expect("string write");
            writeln!(out, "{n} {v}").expect("string write");
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            writeln!(out, "# TYPE {n} gauge").expect("string write");
            writeln!(out, "{n} {v}").expect("string write");
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            writeln!(out, "# TYPE {n} histogram").expect("string write");
            let mut cumulative = 0u64;
            for (le, count) in &h.buckets {
                cumulative += count;
                if *le == u64::MAX {
                    writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}").expect("string write");
                } else {
                    writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cumulative}").expect("string write");
                }
            }
            if h.buckets.last().map(|(le, _)| *le) != Some(u64::MAX) {
                writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cumulative}").expect("string write");
            }
            writeln!(out, "{n}_sum {}", h.sum).expect("string write");
            writeln!(out, "{n}_count {}", h.count).expect("string write");
        }
        writeln!(out, "# TYPE cuart_events_dropped counter").expect("string write");
        writeln!(out, "cuart_events_dropped {}", self.events_dropped).expect("string write");
        writeln!(out, "# TYPE cuart_spans_dropped counter").expect("string write");
        writeln!(out, "cuart_spans_dropped {}", self.spans_dropped).expect("string write");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BatchKind;

    #[test]
    fn json_escaping_and_floats() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prom_name("cuart.lookup.batches"), "cuart_lookup_batches");
        assert_eq!(prom_name("ok_name:x9"), "ok_name:x9");
    }

    #[test]
    fn empty_snapshot_exports() {
        let s = Snapshot::default();
        assert_eq!(
            s.to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"events\":[],\
             \"events_dropped\":0,\"spans\":[],\"spans_dropped\":0}"
        );
        let prom = s.to_prometheus();
        assert!(prom.contains("cuart_events_dropped 0"));
        assert!(prom.contains("cuart_spans_dropped 0"));
        // An empty registry exposes exactly the two overflow counters.
        assert_eq!(prom.lines().count(), 4);
        assert!(prom.lines().all(|l| !l.is_empty()));
    }

    #[test]
    fn exports_are_deterministic_regardless_of_insert_order() {
        let build = |order: &[&str]| {
            let mut s = Snapshot::default();
            for (i, name) in order.iter().enumerate() {
                s.counters.insert(name.to_string(), i as u64 + 1);
                s.gauges.insert(format!("g.{name}"), i as f64);
            }
            s
        };
        let mut a = build(&["zeta", "alpha", "mid"]);
        let mut b = build(&["alpha", "mid", "zeta"]);
        // Same final contents regardless of insertion order…
        for s in [&mut a, &mut b] {
            for (i, name) in ["zeta", "alpha", "mid"].iter().enumerate() {
                s.counters.insert(name.to_string(), i as u64 + 1);
                s.gauges.insert(format!("g.{name}"), i as f64);
            }
        }
        // …exports byte-identical text.
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        // Keys come out sorted.
        let json = a.to_json();
        let alpha = json.find("\"alpha\"").unwrap();
        let mid = json.find("\"mid\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < mid && mid < zeta);
    }

    #[test]
    fn prometheus_escapes_hostile_metric_names() {
        let mut s = Snapshot::default();
        s.counters.insert("weird name{with}\"chars\"".into(), 7);
        let prom = s.to_prometheus();
        assert!(prom.contains("weird_name_with__chars_ 7"));
        assert!(!prom
            .lines()
            .any(|l| !l.starts_with('#') && l.contains('{') && !l.contains("le=")));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_with_inf() {
        let mut s = Snapshot::default();
        s.histograms.insert(
            "cuart.lookup.kernel_ns".into(),
            HistogramSnapshot {
                count: 4,
                sum: 1040,
                min: 1,
                max: 1000,
                buckets: vec![(1, 1), (31, 2), (1023, 1)],
            },
        );
        let prom = s.to_prometheus();
        let lines: Vec<&str> = prom
            .lines()
            .filter(|l| l.starts_with("cuart_lookup_kernel_ns"))
            .collect();
        assert_eq!(
            lines,
            vec![
                "cuart_lookup_kernel_ns_bucket{le=\"1\"} 1",
                "cuart_lookup_kernel_ns_bucket{le=\"31\"} 3",
                "cuart_lookup_kernel_ns_bucket{le=\"1023\"} 4",
                "cuart_lookup_kernel_ns_bucket{le=\"+Inf\"} 4",
                "cuart_lookup_kernel_ns_sum 1040",
                "cuart_lookup_kernel_ns_count 4",
            ]
        );
    }

    #[test]
    fn spans_serialize_with_escaped_attrs() {
        let mut s = Snapshot::default();
        s.spans.push(Span {
            id: 1,
            parent: 0,
            name: "batch.lookup".into(),
            start_ns: 0,
            end_ns: 450,
            attrs: vec![
                ("keys".into(), "16".into()),
                ("q\"uote".into(), "a\nb".into()),
            ],
        });
        s.spans_dropped = 2;
        let json = s.to_json();
        assert!(json.contains("\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"batch.lookup\""));
        assert!(json.contains("\"q\\\"uote\":\"a\\nb\""));
        assert!(json.contains("\"spans_dropped\":2"));
        let v = crate::json::parse(&json).expect("snapshot JSON parses");
        let spans = v.get("spans").and_then(|x| x.as_array()).unwrap();
        assert_eq!(spans[0].get("end_ns").and_then(|n| n.as_u64()), Some(450));
    }

    #[test]
    fn event_serializes_all_fields() {
        let mut s = Snapshot::default();
        let mut e = BatchEvent::new(BatchKind::Lookup, 4);
        e.seq = 9;
        e.l2_hits = 3;
        s.events.push(e);
        let json = s.to_json();
        assert!(json.contains("\"seq\":9"));
        assert!(json.contains("\"kind\":\"lookup\""));
        assert!(json.contains("\"l2_hits\":3"));
        assert!(json.contains("\"freelist_refills\":0"));
    }
}
