//! No-op stand-ins, compiled when the `enabled` feature is off.
//!
//! Every public item mirrors the signatures in [`crate::real`] so
//! dependents compile unchanged; all recording collapses to nothing and
//! `snapshot()` returns an empty [`Snapshot`]. The types are ZSTs, so a
//! feature-off build pays no storage either.

use crate::event::BatchEvent;
use crate::snapshot::Snapshot;
use crate::tracing::SpanNode;

/// Default bound of the batch event ring (unused; kept for API parity).
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// No-op counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter;

impl Counter {
    /// Discarded.
    pub fn incr(&self, _n: u64) {}

    /// Always 0.
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge.
#[derive(Debug, Default, Clone, Copy)]
pub struct Gauge;

impl Gauge {
    /// Discarded.
    pub fn set(&self, _v: f64) {}

    /// Always 0.0.
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram.
#[derive(Debug, Default, Clone, Copy)]
pub struct Histogram;

impl Histogram {
    /// Discarded.
    pub fn observe(&self, _v: u64) {}

    /// Always 0.
    pub fn count(&self) -> u64 {
        0
    }
}

/// Handle type returned by [`Telemetry::counter`].
pub type CounterHandle = Counter;
/// Handle type returned by [`Telemetry::gauge`].
pub type GaugeHandle = Gauge;
/// Handle type returned by [`Telemetry::histogram`].
pub type HistogramHandle = Histogram;

/// No-op registry with the same surface as the real one.
#[derive(Debug, Default)]
pub struct Telemetry;

impl Telemetry {
    /// New no-op registry.
    pub fn new() -> Self {
        Telemetry
    }

    /// Capacity is ignored.
    pub fn with_event_capacity(_capacity: usize) -> Self {
        Telemetry
    }

    /// Capacities are ignored.
    pub fn with_capacities(_event_capacity: usize, _span_capacity: usize) -> Self {
        Telemetry
    }

    /// A fresh no-op counter handle.
    pub fn counter(&self, _name: &str) -> CounterHandle {
        Counter
    }

    /// A fresh no-op gauge handle.
    pub fn gauge(&self, _name: &str) -> GaugeHandle {
        Gauge
    }

    /// A fresh no-op histogram handle.
    pub fn histogram(&self, _name: &str) -> HistogramHandle {
        Histogram
    }

    /// Discarded.
    pub fn incr(&self, _name: &str, _n: u64) {}

    /// Discarded.
    pub fn gauge_set(&self, _name: &str, _v: f64) {}

    /// Discarded.
    pub fn observe(&self, _name: &str, _v: u64) {}

    /// Discarded; always returns sequence 0.
    pub fn record(&self, _event: BatchEvent) -> u64 {
        0
    }

    /// Discarded; always returns span id 0.
    pub fn record_span_tree(&self, _root: &SpanNode) -> u64 {
        0
    }

    /// Always `false` in the no-op build.
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Always empty.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::BatchKind;

    #[test]
    fn everything_is_inert() {
        let t = Telemetry::new();
        t.incr("x", 5);
        t.gauge_set("g", 2.0);
        t.observe("h", 7);
        t.record(BatchEvent::new(BatchKind::Lookup, 3));
        let tree = SpanNode::node("root", vec![SpanNode::leaf("leaf", 5)]);
        assert_eq!(t.record_span_tree(&tree), 0);
        assert!(!t.is_enabled());
        let s = t.snapshot();
        assert!(s.counters.is_empty());
        assert!(s.events.is_empty());
        assert!(s.spans.is_empty());
        assert_eq!(s.spans_dropped, 0);
        assert_eq!(std::mem::size_of::<Telemetry>(), 0);
    }
}
