//! A minimal JSON reader for the repo's own exports.
//!
//! The workspace is offline-only (no serde), but three consumers need to
//! read JSON back: the CLI's `verify-trace` command (Chrome-trace
//! validation), the bench harness's `fig-regress` gate
//! (`results/baseline.json`) and the exporter tests. This parser covers
//! exactly RFC 8259 — objects, arrays, strings with escapes, numbers,
//! booleans, null — with no extensions; it is not a streaming parser and
//! keeps the whole value in memory, which is fine for snapshot-sized
//! inputs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`, like browsers do).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is not preserved (sorted).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Why parsing failed, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable reason.
    pub msg: String,
    /// Byte offset of the failure.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn ws(&mut self) {
        while self
            .b
            .get(self.i)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '{'
        let mut m = BTreeMap::new();
        self.ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(m));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            if !self.eat(b':') {
                return Err(self.err("expected ':'"));
            }
            self.ws();
            m.insert(key, self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Value::Obj(m));
            }
            return Err(self.err("expected ',' or '}'"));
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.i += 1; // '['
        let mut v = Vec::new();
        self.ws();
        if self.eat(b']') {
            return Ok(Value::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Value::Arr(v));
            }
            return Err(self.err("expected ',' or ']'"));
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected '\"'"));
        }
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates degrade to U+FFFD; the repo's own
                            // exporters never emit them.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim.
                    let start = self.i;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|c| *c != b'"' && *c != b'\\')
                    {
                        self.i += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    if chunk.chars().any(|c| (c as u32) < 0x20) {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        let _ = self.eat(b'-');
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if self.b.get(self.i).is_some_and(|c| matches!(c, b'e' | b'E')) {
            self.i += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while self.b.get(self.i).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_round_trip() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(|b| b.as_str()), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Obj(BTreeMap::new())));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"open",
            "01a",
            "true false",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn u64_extraction_guards_fractions_and_sign() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn parses_own_snapshot_export() {
        let mut snap = crate::Snapshot::default();
        snap.counters.insert("cuart.lookup.batches".into(), 3);
        snap.gauges.insert("g\"uote".into(), 1.5);
        let v = parse(&snap.to_json()).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("cuart.lookup.batches"))
                .and_then(|n| n.as_u64()),
            Some(3)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("g\"uote"))
                .and_then(|n| n.as_f64()),
            Some(1.5)
        );
    }
}
