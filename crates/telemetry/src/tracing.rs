//! Hierarchical span tracing over the **modeled** timeline.
//!
//! The engines know exactly where modeled time goes — sort vs. transfer
//! vs. kernel vs. DRAM — but counters flatten that structure away. This
//! module keeps it: producers build a [`SpanNode`] tree per batch (leaf
//! durations are modeled nanoseconds) and commit it with
//! [`Telemetry::record_span_tree`](crate::Telemetry::record_span_tree),
//! which lays the tree out on a session-monotonic modeled clock, assigns
//! ids, stores the flattened [`Span`]s in a bounded ring and attributes
//! the tree's time to its dominant leaf stage
//! (`cuart.trace.critical.<stage>` counters).
//!
//! Invariant the producers uphold (and the exporter checks verify): for a
//! per-batch tree (`batch.*` / `sched.batch.*` roots) the children run
//! sequentially, so the **leaf durations sum to the root duration** — the
//! batch's modeled time. Trees with overlapping children (the hybrid
//! CPU/GPU split, the multi-stream pipeline) use explicit start offsets
//! instead, and their root spans the envelope.
//!
//! Two render targets, both plain functions over `&[Span]` so they work
//! on snapshots from any build:
//!
//! * [`to_chrome_json`] — Chrome-trace / Perfetto "X" (complete) events,
//!   microsecond timestamps with nanosecond precision,
//! * [`to_folded`] — flamegraph folded stacks (`a;b;c <self-ns>`).

// cuart-allow-file: panic-path every `.expect("string write")` here is `fmt::Write` into a `String`, which is infallible; threading a `fmt::Error` out of the exporters would be dead code

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default bound of the span ring (whole spans, not trees).
pub const DEFAULT_SPAN_CAPACITY: usize = 16 * 1024;

/// One recorded span: a named interval on the modeled timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Session-unique id (assigned at commit; never 0).
    pub id: u64,
    /// Parent span id; 0 marks a root.
    pub parent: u64,
    /// Stage name (`sched.batch.lookup`, `kernel`, `dram`, `h2d`, …).
    pub name: String,
    /// Modeled start, nanoseconds since session open.
    pub start_ns: u64,
    /// Modeled end, nanoseconds since session open.
    pub end_ns: u64,
    /// Free-form key/value attributes (batch size, bounds, …).
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Modeled duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A span tree under construction, before ids and absolute times exist.
///
/// Leaves carry modeled durations; interior nodes span their children.
/// Children are laid out back to back unless [`SpanNode::at`] pins one to
/// an explicit offset from the parent's start (overlap, pipelines).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Stage name.
    pub name: String,
    /// Own duration: the full duration for leaves; for interior nodes a
    /// floor that children may extend past.
    pub duration_ns: u64,
    /// Explicit start offset from the parent's start; `None` means
    /// "directly after the previous sibling".
    pub start_rel_ns: Option<u64>,
    /// Free-form key/value attributes.
    pub attrs: Vec<(String, String)>,
    /// Child stages.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// A leaf stage of `duration_ns` modeled nanoseconds.
    pub fn leaf(name: impl Into<String>, duration_ns: u64) -> SpanNode {
        SpanNode {
            name: name.into(),
            duration_ns,
            ..SpanNode::default()
        }
    }

    /// An interior node spanning `children` (laid out sequentially).
    pub fn node(name: impl Into<String>, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            children,
            ..SpanNode::default()
        }
    }

    /// Attach an attribute (builder style).
    pub fn with_attr(mut self, key: impl Into<String>, value: impl ToString) -> SpanNode {
        self.attrs.push((key.into(), value.to_string()));
        self
    }

    /// Pin this node to start `offset_ns` after its parent's start
    /// instead of after the previous sibling.
    pub fn at(mut self, offset_ns: u64) -> SpanNode {
        self.start_rel_ns = Some(offset_ns);
        self
    }

    /// Append a child (builder style).
    pub fn with_child(mut self, child: SpanNode) -> SpanNode {
        self.children.push(child);
        self
    }

    /// Sum leaf durations into `totals`, keyed by leaf name.
    pub fn leaf_totals(&self, totals: &mut BTreeMap<String, u64>) {
        if self.children.is_empty() {
            *totals.entry(self.name.clone()).or_insert(0) += self.duration_ns;
        } else {
            for c in &self.children {
                c.leaf_totals(totals);
            }
        }
    }

    /// The dominant leaf stage `(name, duration, share-of-leaf-time)`, or
    /// `None` for an empty tree. Ties resolve to the lexicographically
    /// first name, so attribution is deterministic.
    pub fn dominant_leaf(&self) -> Option<(String, u64, f64)> {
        let mut totals = BTreeMap::new();
        self.leaf_totals(&mut totals);
        let total: u64 = totals.values().sum();
        let (name, ns) = totals.into_iter().max_by_key(|(_, ns)| *ns)?;
        let share = if total == 0 {
            0.0
        } else {
            ns as f64 / total as f64
        };
        Some((name, ns, share))
    }

    /// Flatten this tree into [`Span`]s starting at `start_ns`, assigning
    /// ids from `next_id` (pre-increment). Returns the root's end time.
    /// Children without an explicit offset run back to back; the root's
    /// end is the later of its own duration and its last-ending child.
    pub fn layout(
        &self,
        parent: u64,
        start_ns: u64,
        next_id: &mut u64,
        out: &mut Vec<Span>,
    ) -> u64 {
        let id = *next_id;
        *next_id += 1;
        // Reserve the slot so parents precede children in store order.
        let slot = out.len();
        out.push(Span {
            id,
            parent,
            name: self.name.clone(),
            start_ns,
            end_ns: start_ns,
            attrs: self.attrs.clone(),
        });
        let mut cursor = start_ns;
        let mut end = start_ns.saturating_add(self.duration_ns);
        for child in &self.children {
            let child_start = match child.start_rel_ns {
                Some(rel) => start_ns.saturating_add(rel),
                None => cursor,
            };
            let child_end = child.layout(id, child_start, next_id, out);
            cursor = child_end;
            end = end.max(child_end);
        }
        out[slot].end_ns = end;
        end
    }
}

/// Critical-path attribution of one committed tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Root span id.
    pub root: u64,
    /// Root span name.
    pub root_name: String,
    /// Dominant leaf stage name.
    pub stage: String,
    /// Leaf time attributed to the dominant stage, nanoseconds.
    pub stage_ns: u64,
    /// Dominant stage's share of the tree's total leaf time, `0.0..=1.0`.
    pub share: f64,
}

/// Recompute critical paths from flattened spans (one entry per root that
/// has at least one leaf). The inverse of what
/// [`record_span_tree`](crate::Telemetry::record_span_tree) feeds the
/// `cuart.trace.critical.*` counters — useful on exported snapshots.
pub fn critical_paths(spans: &[Span]) -> Vec<CriticalPath> {
    let mut has_children: BTreeMap<u64, bool> = BTreeMap::new();
    let mut root_of: BTreeMap<u64, u64> = BTreeMap::new();
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    for s in spans {
        has_children.entry(s.id).or_insert(false);
        if s.parent != 0 && by_id.contains_key(&s.parent) {
            has_children.insert(s.parent, true);
        }
    }
    for s in spans {
        let mut cur = s;
        // Walk to the root; orphans (parent evicted from the ring) count
        // as their own root.
        while cur.parent != 0 {
            match by_id.get(&cur.parent) {
                Some(p) => cur = p,
                None => break,
            }
        }
        root_of.insert(s.id, cur.id);
    }
    let mut per_root: BTreeMap<u64, BTreeMap<String, u64>> = BTreeMap::new();
    for s in spans {
        if !has_children[&s.id] {
            *per_root
                .entry(root_of[&s.id])
                .or_default()
                .entry(s.name.clone())
                .or_insert(0) += s.duration_ns();
        }
    }
    per_root
        .into_iter()
        .filter_map(|(root, totals)| {
            let total: u64 = totals.values().sum();
            let (stage, stage_ns) = totals.into_iter().max_by_key(|(_, ns)| *ns)?;
            Some(CriticalPath {
                root,
                root_name: by_id.get(&root).map(|s| s.name.clone()).unwrap_or_default(),
                stage,
                stage_ns,
                share: if total == 0 {
                    0.0
                } else {
                    stage_ns as f64 / total as f64
                },
            })
        })
        .collect()
}

/// Escape for a JSON string literal (local copy; the snapshot module's
/// helper is private to it).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with nanosecond precision, without float round-trip
/// surprises: `1234` ns → `"1.234"`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render spans as Chrome-trace / Perfetto JSON (`chrome://tracing`,
/// <https://ui.perfetto.dev>). One complete ("X") event per span on a
/// single modeled timeline; `args` carries the span ids so tooling can
/// rebuild the tree exactly.
pub fn to_chrome_json(spans: &[Span]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":{},\"dur\":{},\
             \"args\":{{\"id\":{},\"parent\":{}",
            esc(&s.name),
            us(s.start_ns),
            us(s.duration_ns()),
            s.id,
            s.parent,
        )
        .expect("string write");
        for (k, v) in &s.attrs {
            write!(out, ",\"{}\":\"{}\"", esc(k), esc(v)).expect("string write");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Render spans as flamegraph folded stacks: one
/// `root;child;…;leaf <self-ns>` line per stack with non-zero self time
/// (duration minus child time), aggregated and sorted — ready for
/// `flamegraph.pl` or speedscope.
pub fn to_folded(spans: &[Span]) -> String {
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in spans {
        if s.parent != 0 && by_id.contains_key(&s.parent) {
            *child_ns.entry(s.parent).or_insert(0) += s.duration_ns();
        }
    }
    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let self_ns = s
            .duration_ns()
            .saturating_sub(child_ns.get(&s.id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        let mut path = vec![s.name.as_str()];
        let mut cur = s;
        while cur.parent != 0 {
            match by_id.get(&cur.parent) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        *stacks.entry(path.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in stacks {
        writeln!(out, "{stack} {ns}").expect("string write");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_tree() -> SpanNode {
        SpanNode::node(
            "sched.batch.lookup",
            vec![
                SpanNode::leaf("sort", 300),
                SpanNode::leaf("h2d", 200),
                SpanNode::node(
                    "kernel",
                    vec![SpanNode::leaf("dram", 600), SpanNode::leaf("exec", 400)],
                ),
                SpanNode::leaf("d2h", 100),
            ],
        )
        .with_attr("keys", 1024)
    }

    #[test]
    fn sequential_layout_sums_leaves_to_root() {
        let mut out = Vec::new();
        let mut next = 1;
        let end = batch_tree().layout(0, 1_000, &mut next, &mut out);
        assert_eq!(end, 1_000 + 1_600);
        let root = &out[0];
        assert_eq!(root.parent, 0);
        assert_eq!(root.duration_ns(), 1_600);
        let leaf_sum: u64 = out
            .iter()
            .filter(|s| out.iter().all(|c| c.parent != s.id))
            .map(|s| s.duration_ns())
            .sum();
        assert_eq!(leaf_sum, root.duration_ns());
        // Children nest inside their parents.
        let by_id: BTreeMap<u64, &Span> = out.iter().map(|s| (s.id, s)).collect();
        for s in &out {
            if s.parent != 0 {
                let p = by_id[&s.parent];
                assert!(p.start_ns <= s.start_ns && s.end_ns <= p.end_ns, "{s:?}");
            }
        }
        // Sequential siblings do not overlap.
        assert_eq!(out[1].name, "sort");
        assert_eq!(out[2].name, "h2d");
        assert_eq!(out[1].end_ns, out[2].start_ns);
    }

    #[test]
    fn explicit_offsets_allow_overlap() {
        // Hybrid split: both legs start at 0, root spans the envelope.
        let tree = SpanNode::node(
            "hybrid.route",
            vec![
                SpanNode::leaf("gpu", 500).at(0),
                SpanNode::leaf("cpu", 900).at(0),
            ],
        );
        let mut out = Vec::new();
        let mut next = 1;
        let end = tree.layout(0, 0, &mut next, &mut out);
        assert_eq!(end, 900);
        assert_eq!(out[0].duration_ns(), 900);
        assert_eq!(out[1].start_ns, 0);
        assert_eq!(out[2].start_ns, 0);
    }

    #[test]
    fn dominant_leaf_attribution() {
        let (stage, ns, share) = batch_tree().dominant_leaf().unwrap();
        assert_eq!(stage, "dram");
        assert_eq!(ns, 600);
        assert!((share - 600.0 / 1_600.0).abs() < 1e-12);
        // Recomputation from flattened spans agrees.
        let mut out = Vec::new();
        let mut next = 1;
        batch_tree().layout(0, 0, &mut next, &mut out);
        let cps = critical_paths(&out);
        assert_eq!(cps.len(), 1);
        assert_eq!(cps[0].stage, "dram");
        assert_eq!(cps[0].root_name, "sched.batch.lookup");
        assert!((cps[0].share - share).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_is_parseable_and_ns_exact() {
        let mut out = Vec::new();
        let mut next = 1;
        batch_tree().layout(0, 1_234, &mut next, &mut out);
        let json = to_chrome_json(&out);
        let v = crate::json::parse(&json).expect("chrome trace parses");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), out.len());
        let first = &events[0];
        assert_eq!(first.get("ph").and_then(|p| p.as_str()), Some("X"));
        // 1234 ns → 1.234 µs, exactly.
        assert_eq!(first.get("ts").and_then(|t| t.as_f64()), Some(1.234));
        assert_eq!(
            first
                .get("args")
                .and_then(|a| a.get("keys"))
                .and_then(|k| k.as_str()),
            Some("1024")
        );
    }

    #[test]
    fn folded_stacks_aggregate_self_time() {
        let mut out = Vec::new();
        let mut next = 1;
        batch_tree().layout(0, 0, &mut next, &mut out);
        batch_tree().layout(0, 2_000, &mut next, &mut out);
        let folded = to_folded(&out);
        // Leaves carry all the time; two identical trees double it.
        assert!(
            folded.contains("sched.batch.lookup;kernel;dram 1200"),
            "{folded}"
        );
        assert!(folded.contains("sched.batch.lookup;sort 600"), "{folded}");
        // Interior nodes have zero self time, so no bare kernel line.
        assert!(!folded.contains(";kernel "), "{folded}");
        // Deterministic: sorted, repeatable.
        assert_eq!(folded, to_folded(&out));
    }

    #[test]
    fn microsecond_rendering_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(7), "0.007");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }
}
