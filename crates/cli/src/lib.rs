//! # cuart-cli — build, persist and query CuART indexes from the shell
//!
//! ```text
//! cuart build  --keys keys.txt --out idx.cuart [--hex] [--lut-span 3]
//! cuart info   idx.cuart
//! cuart get    idx.cuart <key> [--hex]
//! cuart range  idx.cuart <lo> <hi> [--hex] [--limit 20]
//! cuart query  idx.cuart --keys probes.txt [--hex] [--device rtx3090] [--metrics-out m.json]
//!              [--fault-seed N] [--fault-rate P]
//! cuart bench  idx.cuart [--device a100] [--batch 32768] [--batches 8] [--metrics-out m.json]
//!              [--fault-seed N] [--fault-rate P]
//! cuart metrics idx.cuart [--keys probes.txt] [--hex] [--device NAME]
//!               [--batch N] [--batches N] [--format json|prom] [--metrics-out FILE]
//! cuart serve-sim idx.cuart [--producers 4] [--deadline-us 200] [--batch 32768]
//!                 [--ops 65536] [--unsorted] [--smoke] [--device NAME] [--metrics-out FILE]
//!                 [--shards N] [--shard-devices NAME,NAME,...]
//!                 [--trace-out FILE] [--folded-out FILE] [--fault-seed N] [--fault-rate P]
//!                 [--admission block|reject] [--admission-timeout-us N]
//!                 [--queue-cap N] [--op-deadline-us N]
//! cuart serve  idx.cuart --listen 127.0.0.1:7070 [--device NAME] [--batch N]
//!              [--deadline-us N] [--unsorted] [--shards N] [--shard-devices ...]
//!              [--window 32] [--workers 2] [--idle-timeout-ms N]
//!              [--allow-shutdown] [--metrics-out FILE] [overload/fault knobs]
//! cuart bench-net idx.cuart [--connect ADDR] [--clients 4] [--ops 65536]
//!              [--req-keys 256] [--smoke] [--shutdown] [--metrics-out FILE]
//! cuart trace  idx.cuart [--device NAME] [--batch N] [--batches N]
//!              [--out trace.json] [--folded out.txt]
//! cuart verify-trace trace.json
//! cuart verify-snapshot idx.cuart
//! ```
//!
//! Key files hold one key per line — raw text by default, or hex pairs
//! with `--hex`. `build` assigns each key its (1-based) line number as the
//! value unless a tab-separated `key<TAB>value` format is used.
//!
//! All command logic lives in this library (unit-tested); the binary is a
//! thin argument parser.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use cuart::{CuartConfig, CuartIndex, CuartSession};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::{devices, DeviceConfig, FaultConfig, FaultInjector};
pub use cuart_host::scheduler::AdmissionPolicy;
use cuart_host::scheduler::{BreakerConfig, SchedError, Scheduler, SchedulerConfig};
use cuart_host::sharded::ShardedScheduler;
use cuart_telemetry::tracing::{critical_paths, to_chrome_json, to_folded};
use cuart_telemetry::{Snapshot, Telemetry};
use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// I/O failure (file missing, unreadable, …).
    Io(std::io::Error),
    /// Malformed input (bad hex, bad value, prefix violation, …).
    Input(String),
    /// Engine failure surfaced by the CuART core (device fault, corrupt
    /// snapshot, …).
    Engine(cuart::CuartError),
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<cuart::CuartError> for CliError {
    fn from(e: cuart::CuartError) -> Self {
        CliError::Engine(e)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Input(msg) => write!(f, "{msg}"),
            CliError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

/// Parse one key: raw bytes, or hex when `hex` is set.
pub fn parse_key(s: &str, hex: bool) -> Result<Vec<u8>, CliError> {
    if !hex {
        return Ok(s.as_bytes().to_vec());
    }
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(CliError::Input(format!("odd-length hex key {s:?}")));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| CliError::Input(format!("bad hex key {s:?}")))
        })
        .collect()
}

/// Load `key` or `key<TAB>value` lines.
pub fn load_key_file(path: &Path, hex: bool) -> Result<Vec<(Vec<u8>, u64)>, CliError> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (key_part, value) = match line.split_once('\t') {
            Some((k, v)) => {
                let value = v
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| CliError::Input(format!("line {}: bad value {v:?}", i + 1)))?;
                (k, value)
            }
            None => (line, i as u64 + 1),
        };
        out.push((parse_key(key_part, hex)?, value));
    }
    if out.is_empty() {
        return Err(CliError::Input(format!("{}: no keys", path.display())));
    }
    Ok(out)
}

/// Build an index from a key file and save it.
pub fn cmd_build(
    keys_path: &Path,
    out_path: &Path,
    hex: bool,
    lut_span: usize,
) -> Result<String, CliError> {
    let pairs = load_key_file(keys_path, hex)?;
    let mut art = Art::new();
    for (k, v) in &pairs {
        art.insert(k, *v)
            .map_err(|e| CliError::Input(format!("key {:?}: {e}", preview(k))))?;
    }
    let cfg = CuartConfig {
        lut_span,
        ..CuartConfig::default()
    };
    let index = CuartIndex::build(&art, &cfg);
    index.save(out_path)?;
    Ok(format!(
        "built {} keys -> {} ({:.1} MiB device image)",
        index.len(),
        out_path.display(),
        index.device_bytes() as f64 / (1 << 20) as f64
    ))
}

/// Describe a saved index.
pub fn cmd_info(path: &Path) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let b = index.buffers();
    let mut out = String::new();
    writeln!(out, "{}:", path.display()).expect("write");
    writeln!(out, "  keys:            {}", index.len()).expect("write");
    writeln!(out, "  max key length:  {} bytes", b.max_key_len).expect("write");
    writeln!(out, "  lut span:        {} bytes", b.config.lut_span).expect("write");
    writeln!(out, "  long-key policy: {:?}", b.config.long_key_policy).expect("write");
    writeln!(
        out,
        "  device image:    {:.1} MiB",
        index.device_bytes() as f64 / (1 << 20) as f64
    )
    .expect("write");
    for (label, ty) in [
        ("N4", cuart::link::LinkType::N4),
        ("N16", cuart::link::LinkType::N16),
        ("N48", cuart::link::LinkType::N48),
        ("N256", cuart::link::LinkType::N256),
        ("N2L", cuart::link::LinkType::N2L),
        ("leaf8", cuart::link::LinkType::Leaf8),
        ("leaf16", cuart::link::LinkType::Leaf16),
        ("leaf32", cuart::link::LinkType::Leaf32),
    ] {
        let n = b.record_count(ty);
        if n > 0 {
            writeln!(out, "  {label:<6} records:  {n}").expect("write");
        }
    }
    if b.host_entries() > 0 {
        writeln!(out, "  host-side keys:  {}", b.host_entries()).expect("write");
    }
    Ok(out.trim_end().to_string())
}

/// Point lookup through the CPU engine.
pub fn cmd_get(path: &Path, key: &str, hex: bool) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let key = parse_key(key, hex)?;
    Ok(match index.lookup_cpu(&key) {
        Some(v) => format!("{v}"),
        None => "(not found)".to_string(),
    })
}

/// Inclusive range query; prints up to `limit` rows plus the span sizes.
pub fn cmd_range(
    path: &Path,
    lo: &str,
    hi: &str,
    hex: bool,
    limit: usize,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let lo = parse_key(lo, hex)?;
    let hi = parse_key(hi, hex)?;
    let rows = cuart::range::range_query(index.buffers(), &lo, &hi);
    let mut out = String::new();
    for (k, v) in rows.iter().take(limit) {
        writeln!(out, "{}\t{v}", render(k, hex)).expect("write");
    }
    writeln!(out, "({} rows total)", rows.len()).expect("write");
    Ok(out.trim_end().to_string())
}

/// Resolve a device name.
pub fn device_by_name(name: &str) -> Result<DeviceConfig, CliError> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "a100" | "server" => devices::a100(),
        "rtx3090" | "3090" | "workstation" => devices::rtx3090(),
        "gtx1070" | "1070" | "notebook" => devices::gtx1070(),
        other => {
            return Err(CliError::Input(format!(
                "unknown device {other:?} (a100 | rtx3090 | gtx1070)"
            )))
        }
    })
}

/// Render a telemetry snapshot in the requested format (`json` or `prom`).
pub fn render_metrics(snapshot: &Snapshot, format: &str) -> Result<String, CliError> {
    match format {
        "json" => Ok(snapshot.to_json()),
        "prom" | "prometheus" | "text" => Ok(snapshot.to_prometheus()),
        other => Err(CliError::Input(format!(
            "unknown metrics format {other:?} (json | prom)"
        ))),
    }
}

/// Write a JSON metrics snapshot to `out`; returns the trailing status line.
fn spill_metrics(telemetry: &Telemetry, out: &Path) -> Result<String, CliError> {
    std::fs::write(out, telemetry.snapshot().to_json())?;
    Ok(format!("\nmetrics -> {}", out.display()))
}

/// Fault-injection options for the device-session commands
/// (`--fault-seed` / `--fault-rate`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultOptions {
    /// Seed of the deterministic injector RNG.
    pub seed: u64,
    /// Per-site fault probability in `0.0..=1.0`.
    pub rate: f64,
}

/// Overload-protection options for `serve-sim` (`--admission`,
/// `--admission-timeout-us`, `--queue-cap`, `--op-deadline-us`).
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadOptions {
    /// What producers experience when the bounded queue is full.
    pub admission: AdmissionPolicy,
    /// Resident-op cap of the submission queue; 0 = unbounded.
    pub queue_cap: usize,
    /// Default per-op latency budget in microseconds; expired ops are
    /// shed with `DeadlineExceeded` before dispatch.
    pub op_deadline_us: Option<u64>,
}

/// Scale-out options for `serve-sim` (`--shards`, `--shard-devices`).
#[derive(Debug, Clone, Default)]
pub struct ShardOptions {
    /// Number of shards; `0` or `1` selects the single-device path.
    pub shards: usize,
    /// Comma-separated device names, one per shard (e.g.
    /// `rtx3090,rtx3090,gtx1070,gtx1070`). Overrides `--device`; when
    /// `--shards` is also given the counts must agree.
    pub devices: Option<String>,
}

impl ShardOptions {
    /// Resolve the shard device list: `--shard-devices` names, or
    /// `--shards` copies of the `--device` default.
    fn resolve(&self, default_dev: DeviceConfig) -> Result<Vec<DeviceConfig>, CliError> {
        match &self.devices {
            Some(list) => {
                let devs: Vec<DeviceConfig> = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(device_by_name)
                    .collect::<Result<_, _>>()?;
                if devs.is_empty() {
                    return Err(CliError::Input("--shard-devices names no device".into()));
                }
                if self.shards > 1 && devs.len() != self.shards {
                    return Err(CliError::Input(format!(
                        "--shards {} disagrees with --shard-devices ({} devices)",
                        self.shards,
                        devs.len()
                    )));
                }
                Ok(devs)
            }
            None => Ok(vec![default_dev; self.shards.max(1)]),
        }
    }
}

/// Open a device session, attaching a [`FaultInjector`] when fault
/// options were given. Warns on stderr when the binary was built without
/// the `faults` feature (the injector then never fires).
fn open_session<'a>(
    index: &'a CuartIndex,
    dev: &DeviceConfig,
    faults: Option<FaultOptions>,
) -> CuartSession<'a> {
    match faults {
        Some(f) => {
            if !FaultInjector::is_active() {
                eprintln!(
                    "warning: built without the `faults` feature; \
                     --fault-seed/--fault-rate have no effect"
                );
            }
            index.device_session_with_faults(dev, FaultInjector::uniform(f.seed, f.rate))
        }
        None => index.device_session(dev),
    }
}

/// One-line fault summary appended to command output when injection is on.
fn fault_summary(session: &CuartSession<'_>) -> String {
    let s = session.fault_stats();
    format!(
        "\nfaults: {} injected, {} retries, {} degradations, {} recoveries{}",
        s.injected,
        s.retries,
        s.degradations,
        s.recoveries,
        if s.degraded {
            " — session still degraded (CPU path)"
        } else {
            ""
        }
    )
}

/// Validate a saved snapshot: header, per-section CRCs and a structural
/// parse — without keeping the index in memory.
pub fn cmd_verify_snapshot(path: &Path) -> Result<String, CliError> {
    let info = cuart::persist::verify_snapshot(path)?;
    Ok(format!(
        "{}: OK — format v{}, {} sections CRC-verified, {} bytes, {} keys",
        path.display(),
        info.version,
        info.sections,
        info.file_bytes,
        info.entries
    ))
}

/// Batch lookups on the simulated device; prints hit statistics.
/// With `metrics_out`, a JSON telemetry snapshot of the run is written
/// too; with `faults`, a seeded injector shadows every device leg and a
/// fault summary is appended.
pub fn cmd_query(
    path: &Path,
    keys_path: &Path,
    hex: bool,
    device: &str,
    metrics_out: Option<&Path>,
    faults: Option<FaultOptions>,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = index.with_telemetry(telemetry.clone());
    let probes: Vec<Vec<u8>> = load_key_file(keys_path, hex)?
        .into_iter()
        .map(|(k, _)| k)
        .collect();
    let mut session = open_session(&index, &dev, faults);
    let (results, report) = session.lookup_batch(&probes)?;
    let hits = results.iter().filter(|&&r| r != NOT_FOUND).count();
    let mut out = format!(
        "{hits}/{} hits on {} — modeled kernel {:.1} µs ({} DRAM transactions, {:.0}% L2 hits)",
        probes.len(),
        dev.name,
        report.time_ns / 1e3,
        report.dram_transactions,
        100.0 * report.l2_hits as f64 / report.sectors.max(1) as f64
    );
    if faults.is_some() {
        out.push_str(&fault_summary(&session));
    }
    if let Some(path) = metrics_out {
        out.push_str(&spill_metrics(&telemetry, path)?);
    }
    Ok(out)
}

/// End-to-end throughput bench against the saved index.
/// With `metrics_out`, a JSON telemetry snapshot of the run is written
/// too; with `faults`, a seeded injector shadows every device leg and a
/// fault summary is appended.
pub fn cmd_bench(
    path: &Path,
    device: &str,
    batch: usize,
    batches: usize,
    metrics_out: Option<&Path>,
    faults: Option<FaultOptions>,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = index.with_telemetry(telemetry.clone());
    // Query the stored keys themselves (all hits), round-robin.
    let stored = cuart::range::range_query(
        index.buffers(),
        &[0u8],
        &vec![0xFFu8; index.buffers().max_key_len.max(1)],
    );
    if stored.is_empty() {
        return Err(CliError::Input("index is empty".into()));
    }
    let mut session = open_session(&index, &dev, faults);
    let mut total_ns = 0.0;
    for b in 0..batches {
        let queries: Vec<Vec<u8>> = (0..batch)
            .map(|i| stored[(b * batch + i * 7) % stored.len()].0.clone())
            .collect();
        let (_, report) = session.lookup_batch(&queries)?;
        total_ns += report.time_ns;
    }
    let mut out = if total_ns > 0.0 {
        let mops = (batch * batches) as f64 / total_ns * 1000.0;
        format!(
            "{} lookups in {batches} batches of {batch} on {}: {:.1} MOps/s (kernel-side, modeled)",
            batch * batches,
            dev.name,
            mops
        )
    } else {
        // Every batch ran on the CPU fallback (degraded session): there
        // is no modeled device time to rate.
        format!(
            "{} lookups in {batches} batches of {batch} on {}: no device batches completed \
             (CPU fallback served the run)",
            batch * batches,
            dev.name
        )
    };
    if faults.is_some() {
        out.push_str(&fault_summary(&session));
    }
    if let Some(path) = metrics_out {
        out.push_str(&spill_metrics(&telemetry, path)?);
    }
    Ok(out)
}

/// Run an instrumented lookup workload and dump the full telemetry
/// snapshot (counters, gauges, histograms, and the per-batch event trace).
///
/// Probes come from `--keys` when given, otherwise the stored keys are
/// replayed round-robin. Output goes to stdout, or to `--metrics-out`.
#[allow(clippy::too_many_arguments)]
pub fn cmd_metrics(
    path: &Path,
    keys_path: Option<&Path>,
    hex: bool,
    device: &str,
    batch: usize,
    batches: usize,
    format: &str,
    metrics_out: Option<&Path>,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = index.with_telemetry(telemetry.clone());
    let probes: Vec<Vec<u8>> = match keys_path {
        Some(p) => load_key_file(p, hex)?.into_iter().map(|(k, _)| k).collect(),
        None => {
            let stored = cuart::range::range_query(
                index.buffers(),
                &[0u8],
                &vec![0xFFu8; index.buffers().max_key_len.max(1)],
            );
            if stored.is_empty() {
                return Err(CliError::Input("index is empty".into()));
            }
            stored.into_iter().map(|(k, _)| k).collect()
        }
    };
    let mut session = index.device_session(&dev);
    for b in 0..batches {
        let queries: Vec<Vec<u8>> = (0..batch)
            .map(|i| probes[(b * batch + i * 7) % probes.len()].clone())
            .collect();
        session.lookup_batch(&queries)?;
    }
    let rendered = render_metrics(&telemetry.snapshot(), format)?;
    if !telemetry.is_enabled() {
        eprintln!("warning: built without the `telemetry` feature; snapshot is empty");
    }
    match metrics_out {
        Some(out) => {
            std::fs::write(out, &rendered)?;
            Ok(format!("metrics -> {}", out.display()))
        }
        None => Ok(rendered),
    }
}

/// Drive the concurrent serving layer against a saved index: N producer
/// threads submit point lookups through the
/// [`scheduler`](cuart_host::scheduler), whose executor coalesces them
/// into adaptive batches (size target `batch`, flush deadline
/// `deadline_us`), sorted for locality unless `unsorted` is set.
///
/// Probes replay the stored keys round-robin (all hits) in shuffled
/// order. With `metrics_out`, a JSON telemetry snapshot of the run —
/// including the `cuart.sched.*` series — is written too. `smoke` pins
/// the workload shape (8192 ops in batches of 1024) so CI runs are
/// comparable; `trace_out` / `folded_out` export the recorded
/// `sched.batch.*` span trees as Chrome-trace JSON / folded stacks.
///
/// Producers tolerate overload refusals (`QueueFull`, `AdmissionTimeout`,
/// `DeadlineExceeded` are counted, not fatal); any other scheduler error
/// still fails the command. Under `smoke` with faults armed the random
/// rate is replaced by a pinned deterministic fault storm and the run is
/// extended until the circuit breaker demonstrably walks
/// `Open → HalfOpen → Closed` (a 5 % random rate cannot reliably produce
/// a full trip-and-recover inside 8192 ops), so the CI overload drill can
/// assert a clean `recovered` event in the metrics spill.
///
/// With `shard` asking for more than one device (`--shards N`,
/// `--shard-devices`), the run switches to the
/// [`sharded`](cuart_host::sharded) scale-out layer: one scheduler per
/// device, key space split by the §3.3 LUT prefix, per-shard breakers and
/// `cuart.sched.shard.<i>.*` telemetry, and a modeled aggregate
/// throughput line (total keys over the slowest shard).
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve_sim(
    path: &Path,
    device: &str,
    producers: usize,
    deadline_us: u64,
    batch: usize,
    ops: usize,
    unsorted: bool,
    smoke: bool,
    metrics_out: Option<&Path>,
    trace_out: Option<&Path>,
    folded_out: Option<&Path>,
    faults: Option<FaultOptions>,
    overload: OverloadOptions,
    shard: ShardOptions,
) -> Result<String, CliError> {
    let producers = producers.max(1);
    let (ops, batch) = if smoke { (8192, 1024) } else { (ops, batch) };
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let devs = shard.resolve(dev)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = Arc::new(index.with_telemetry(telemetry.clone()));
    let stored = cuart::range::range_query(
        index.buffers(),
        &[0u8],
        &vec![0xFFu8; index.buffers().max_key_len.max(1)],
    );
    if stored.is_empty() {
        return Err(CliError::Input("index is empty".into()));
    }
    if faults.is_some() && !FaultInjector::is_active() {
        eprintln!(
            "warning: built without the `faults` feature; \
             --fault-seed/--fault-rate have no effect"
        );
    }
    // The deterministic smoke storm: a pinned run of early device-op
    // faults (degrade + breaker trip), clean afterwards (half-open probes
    // recover). Only meaningful when the injector can actually fire, and
    // only driven on the single-device path (the sharded path re-seeds
    // injectors per shard, so the pinned schedule would not line up).
    let smoke_storm = smoke && faults.is_some() && FaultInjector::is_active() && devs.len() == 1;
    let injector = faults.map(|f| {
        if smoke_storm {
            FaultInjector::new(FaultConfig::uniform(f.seed, 0.0).fail_range(0, 8))
        } else {
            FaultInjector::uniform(f.seed, f.rate)
        }
    });
    let breaker = if smoke_storm {
        // Short cooldown so the Open → HalfOpen → Closed walk completes
        // inside the pinned smoke workload.
        Some(BreakerConfig {
            open_cooldown: std::time::Duration::from_millis(2),
            probe_batches: 1,
            ..BreakerConfig::default()
        })
    } else {
        Some(BreakerConfig::default())
    };
    let cfg = SchedulerConfig {
        batch_target: batch.max(1),
        deadline: std::time::Duration::from_micros(deadline_us),
        sort_batches: !unsorted,
        fault_injector: injector,
        queue_cap: overload.queue_cap,
        admission: overload.admission,
        op_deadline: overload
            .op_deadline_us
            .map(std::time::Duration::from_micros),
        breaker,
        shard: None,
    };
    if devs.len() > 1 {
        return serve_sim_sharded(ShardRun {
            index,
            telemetry,
            stored,
            cfg,
            devs,
            producers,
            ops,
            smoke,
            queue_cap: overload.queue_cap,
            op_deadline_us: overload.op_deadline_us,
            metrics_out,
            trace_out,
            folded_out,
        });
    }
    let sched = Scheduler::spawn(Arc::clone(&index), dev, cfg);
    let per_producer = ops.div_ceil(producers).max(1);
    const REQUEST_KEYS: usize = 256;
    /// Per-producer outcome tally: hits plus refused-op counts.
    #[derive(Default)]
    struct Tally {
        hits: u64,
        shed: u64,
        rejected: u64,
        timed_out: u64,
    }
    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched
            .client()
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        // Each producer strides through the stored keys from its own
        // offset, so arrival order at the executor is interleaved and
        // unsorted.
        let probes: Vec<Vec<u8>> = (0..per_producer)
            .map(|i| {
                stored[p.wrapping_mul(131).wrapping_add(i.wrapping_mul(7)) % stored.len()]
                    .0
                    .clone()
            })
            .collect();
        handles.push(std::thread::spawn(move || -> Result<Tally, SchedError> {
            let mut tally = Tally::default();
            for chunk in probes.chunks(REQUEST_KEYS) {
                match client.lookup(chunk.to_vec()) {
                    Ok(results) => {
                        tally.hits += results.iter().filter(|&&r| r != NOT_FOUND).count() as u64;
                    }
                    // Overload refusals are expected outcomes of an
                    // overload drill, not failures.
                    Err(SchedError::DeadlineExceeded) => tally.shed += chunk.len() as u64,
                    Err(SchedError::QueueFull) => tally.rejected += chunk.len() as u64,
                    Err(SchedError::AdmissionTimeout) => tally.timed_out += chunk.len() as u64,
                    Err(e) => return Err(e),
                }
            }
            Ok(tally)
        }));
    }
    let mut tally = Tally::default();
    for h in handles {
        let t = h
            .join()
            .map_err(|_| CliError::Input("producer thread panicked".into()))?
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        tally.hits += t.hits;
        tally.shed += t.shed;
        tally.rejected += t.rejected;
        tally.timed_out += t.timed_out;
    }
    if smoke_storm {
        drive_breaker_recovery(&sched, &telemetry, &stored)?;
    }
    if smoke && overload.op_deadline_us.is_some() {
        // Deterministic shed probe: a zero-budget lookup is expired by the
        // time the executor coalesces it, so the drill always exercises
        // (and the CI assertion always sees) the shedding path.
        let client = sched
            .client()
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        match client.lookup_with_deadline(vec![stored[0].0.clone()], std::time::Duration::ZERO) {
            Err(SchedError::DeadlineExceeded) => tally.shed += 1,
            other => {
                return Err(CliError::Input(format!(
                    "shed probe: expected DeadlineExceeded, got {other:?}"
                )))
            }
        }
    }
    let stats = sched
        .join()
        .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
    let mut out = format!(
        "{} lookups from {producers} producers on {} — {} batches \
         (mean fill {:.0}, {} size / {} deadline / {} final flushes)\n\
         modeled kernel {:.1} µs total, {:.2} ns/key, L2 hit rate {:.0}%, {} hits",
        stats.ops_enqueued,
        dev.name,
        stats.batches,
        stats.mean_batch_fill(),
        stats.size_flushes,
        stats.deadline_flushes,
        stats.final_flushes,
        stats.kernel_time_ns / 1e3,
        stats.kernel_ns_per_key(),
        100.0 * stats.l2_hit_rate(),
        tally.hits,
    );
    let _ = write!(
        out,
        "\noverload: {} shed / {} rejected / {} admission timeouts, \
         max resident {} (cap {})\nbreaker: {} trips, {} probe batches, \
         {} cpu-only batches",
        stats.shed_ops,
        stats.rejected_ops,
        stats.admission_timeout_ops,
        stats.max_resident_ops,
        overload.queue_cap,
        stats.breaker_trips,
        stats.probe_batches,
        stats.breaker_open_batches,
    );
    spill_serving_outputs(&mut out, &telemetry, metrics_out, trace_out, folded_out)?;
    Ok(out)
}

/// Everything the sharded serve-sim branch needs, bundled to stay under
/// clippy's argument limit.
struct ShardRun<'a> {
    index: Arc<CuartIndex>,
    telemetry: Arc<Telemetry>,
    stored: Vec<(Vec<u8>, u64)>,
    cfg: SchedulerConfig,
    devs: Vec<DeviceConfig>,
    producers: usize,
    ops: usize,
    smoke: bool,
    queue_cap: usize,
    op_deadline_us: Option<u64>,
    metrics_out: Option<&'a Path>,
    trace_out: Option<&'a Path>,
    folded_out: Option<&'a Path>,
}

/// The `--shards N` / `--shard-devices` serve-sim path: one scheduler per
/// device, key space split by the §3.3 LUT prefix, producers submitting
/// through the fleet router. Prints the aggregate summary, the modeled
/// scale-out throughput (total keys over the slowest shard) and one line
/// per shard.
fn serve_sim_sharded(run: ShardRun<'_>) -> Result<String, CliError> {
    const REQUEST_KEYS: usize = 256;
    let sharded = ShardedScheduler::spawn(Arc::clone(&run.index), &run.devs, run.cfg)
        .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
    let per_producer = run.ops.div_ceil(run.producers).max(1);
    #[derive(Default)]
    struct Tally {
        hits: u64,
        shed: u64,
        rejected: u64,
        timed_out: u64,
    }
    let mut handles = Vec::new();
    for p in 0..run.producers {
        let client = sharded
            .client()
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        let probes: Vec<Vec<u8>> = (0..per_producer)
            .map(|i| {
                run.stored[p.wrapping_mul(131).wrapping_add(i.wrapping_mul(7)) % run.stored.len()]
                    .0
                    .clone()
            })
            .collect();
        handles.push(std::thread::spawn(move || -> Result<Tally, SchedError> {
            let mut tally = Tally::default();
            for chunk in probes.chunks(REQUEST_KEYS) {
                match client.lookup(chunk.to_vec()) {
                    Ok(results) => {
                        tally.hits += results.iter().filter(|&&r| r != NOT_FOUND).count() as u64;
                    }
                    Err(SchedError::DeadlineExceeded) => tally.shed += chunk.len() as u64,
                    Err(SchedError::QueueFull) => tally.rejected += chunk.len() as u64,
                    Err(SchedError::AdmissionTimeout) => tally.timed_out += chunk.len() as u64,
                    Err(e) => return Err(e),
                }
            }
            Ok(tally)
        }));
    }
    let mut tally = Tally::default();
    for h in handles {
        let t = h
            .join()
            .map_err(|_| CliError::Input("producer thread panicked".into()))?
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        tally.hits += t.hits;
        tally.shed += t.shed;
        tally.rejected += t.rejected;
        tally.timed_out += t.timed_out;
    }
    if run.smoke && run.op_deadline_us.is_some() {
        // Same deterministic shed probe as the single-device drill.
        let client = sharded
            .client()
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        match client.lookup_with_deadline(vec![run.stored[0].0.clone()], std::time::Duration::ZERO)
        {
            Err(SchedError::DeadlineExceeded) => tally.shed += 1,
            other => {
                return Err(CliError::Input(format!(
                    "shed probe: expected DeadlineExceeded, got {other:?}"
                )))
            }
        }
    }
    let stats = sharded
        .join()
        .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
    let agg = stats.aggregate();
    let mut out = format!(
        "{} lookups from {} producers over {} shards — {} batches \
         (mean fill {:.0}), {} routed requests\n\
         modeled scale-out {:.1} MOps/s (slowest shard {:.1} µs busy), {} hits",
        agg.ops_enqueued,
        run.producers,
        stats.shards.len(),
        agg.batches,
        agg.mean_batch_fill(),
        stats.routed_requests,
        stats.modeled_aggregate_mops(),
        stats.modeled_time_ns() / 1e3,
        tally.hits,
    );
    let _ = write!(
        out,
        "\noverload: {} shed / {} rejected / {} admission timeouts \
         (per-shard cap {}), breaker: {} trips",
        agg.shed_ops, agg.rejected_ops, agg.admission_timeout_ops, run.queue_cap, agg.breaker_trips,
    );
    for s in &stats.shards {
        let _ = write!(
            out,
            "\nshard {} ({}): {} ops, {} batches, kernel {:.1} µs, \
             {} shed / {} rejected, {} breaker trips",
            s.shard,
            s.device.name,
            s.stats.ops_enqueued,
            s.stats.batches,
            s.stats.kernel_time_ns / 1e3,
            s.stats.shed_ops,
            s.stats.rejected_ops,
            s.stats.breaker_trips,
        );
    }
    spill_serving_outputs(
        &mut out,
        &run.telemetry,
        run.metrics_out,
        run.trace_out,
        run.folded_out,
    )?;
    Ok(out)
}

/// Shared serve-sim output tail: the telemetry-feature warning, the JSON
/// metrics spill and the Chrome-trace / folded-stack exports.
fn spill_serving_outputs(
    out: &mut String,
    telemetry: &Arc<Telemetry>,
    metrics_out: Option<&Path>,
    trace_out: Option<&Path>,
    folded_out: Option<&Path>,
) -> Result<(), CliError> {
    if !cfg!(feature = "telemetry") {
        eprintln!("warning: built without the `telemetry` feature; metrics will be empty");
    }
    if let Some(path) = metrics_out {
        out.push_str(&spill_metrics(telemetry, path)?);
    }
    if trace_out.is_some() || folded_out.is_some() {
        let snap = telemetry.snapshot();
        if let Some(p) = trace_out {
            std::fs::write(p, to_chrome_json(&snap.spans))?;
            let _ = write!(
                out,
                "\ntrace -> {} ({} spans)",
                p.display(),
                snap.spans.len()
            );
        }
        if let Some(p) = folded_out {
            std::fs::write(p, to_folded(&snap.spans))?;
            let _ = write!(out, "\nfolded -> {}", p.display());
        }
    }
    Ok(())
}

/// Keep trickling probe lookups through the scheduler until the circuit
/// breaker's recovery is visible in telemetry (a `recovered` session
/// event — the half-open probe re-uploaded the device image), or a
/// bounded number of rounds elapses. Used by the smoke fault drill, where
/// the pinned workload may drain before the breaker cooldown does.
fn drive_breaker_recovery(
    sched: &Scheduler,
    telemetry: &Arc<Telemetry>,
    stored: &[(Vec<u8>, u64)],
) -> Result<(), CliError> {
    use cuart_telemetry::BatchKind;
    if !telemetry.is_enabled() {
        // Without the `telemetry` feature there are no events to wait on.
        return Ok(());
    }
    let client = sched
        .client()
        .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
    for _ in 0..500 {
        let recovered = telemetry
            .snapshot()
            .events
            .iter()
            .any(|ev| ev.kind == BatchKind::Recovered);
        if recovered {
            return Ok(());
        }
        // A generous explicit deadline: the drill's tight `--op-deadline-us`
        // default would shed this drive traffic before it reaches the
        // device and the probe window would never see a batch.
        match client
            .lookup_with_deadline(vec![stored[0].0.clone()], std::time::Duration::from_secs(5))
        {
            Ok(_) | Err(SchedError::DeadlineExceeded) => {}
            Err(e) => return Err(CliError::Input(format!("recovery drive: {e}"))),
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    Err(CliError::Input(
        "breaker never recovered within the drill budget".into(),
    ))
}

/// Run an instrumented lookup workload and export the recorded span trees
/// as Chrome-trace / Perfetto JSON (`out`) and, optionally, flamegraph
/// folded stacks (`folded_out`). With `out` unset the Chrome-trace JSON
/// goes to stdout. The returned summary names each batch tree's dominant
/// (critical-path) stage.
pub fn cmd_trace(
    path: &Path,
    device: &str,
    batch: usize,
    batches: usize,
    out: Option<&Path>,
    folded_out: Option<&Path>,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = index.with_telemetry(telemetry.clone());
    let stored = cuart::range::range_query(
        index.buffers(),
        &[0u8],
        &vec![0xFFu8; index.buffers().max_key_len.max(1)],
    );
    if stored.is_empty() {
        return Err(CliError::Input("index is empty".into()));
    }
    let mut session = index.device_session(&dev);
    for b in 0..batches {
        let queries: Vec<Vec<u8>> = (0..batch)
            .map(|i| stored[(b * batch + i * 7) % stored.len()].0.clone())
            .collect();
        session.lookup_batch(&queries)?;
    }
    if !telemetry.is_enabled() {
        eprintln!("warning: built without the `telemetry` feature; trace is empty");
    }
    let snap = telemetry.snapshot();
    let json = to_chrome_json(&snap.spans);
    let mut msg = match out {
        Some(p) => {
            std::fs::write(p, &json)?;
            format!(
                "{} spans from {batches} batches of {batch} on {} -> {}",
                snap.spans.len(),
                dev.name,
                p.display()
            )
        }
        None => json,
    };
    if let Some(p) = folded_out {
        std::fs::write(p, to_folded(&snap.spans))?;
        let _ = write!(msg, "\nfolded -> {}", p.display());
    }
    if out.is_some() {
        for cp in critical_paths(&snap.spans) {
            let _ = write!(
                msg,
                "\n{}: critical path {} ({:.0}% of leaf time, {:.1} µs)",
                cp.root_name,
                cp.stage,
                cp.share * 100.0,
                cp.stage_ns as f64 / 1e3
            );
        }
    }
    Ok(msg)
}

/// One parsed Chrome-trace event, microsecond timestamps.
struct TraceEvent {
    id: u64,
    parent: u64,
    name: String,
    ts: f64,
    dur: f64,
}

/// Validate an exported Chrome-trace file: the JSON parses, every event
/// is a complete ("X") event with `ts`/`dur` and span ids, children nest
/// inside their parents, and for every sequential batch tree (`batch.*` /
/// `sched.batch.*` roots) the leaf durations sum to the root duration
/// within 1 % — the invariant that makes the traces trustworthy as a
/// breakdown of modeled batch time.
pub fn cmd_verify_trace(path: &Path) -> Result<String, CliError> {
    let text = std::fs::read_to_string(path)?;
    let doc = cuart_telemetry::json::parse(&text)
        .map_err(|e| CliError::Input(format!("{}: invalid JSON: {e}", path.display())))?;
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| CliError::Input(format!("{}: no traceEvents array", path.display())))?;
    let mut evs: Vec<TraceEvent> = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        let field = |k: &str| {
            e.get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| CliError::Input(format!("event {i}: missing number {k:?}")))
        };
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap_or("");
        if ph != "X" {
            return Err(CliError::Input(format!(
                "event {i}: ph {ph:?}, expected complete event \"X\""
            )));
        }
        let args = e
            .get("args")
            .ok_or_else(|| CliError::Input(format!("event {i}: missing args")))?;
        let id_of = |k: &str| {
            args.get(k)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| CliError::Input(format!("event {i}: missing span id args.{k}")))
        };
        evs.push(TraceEvent {
            id: id_of("id")?,
            parent: id_of("parent")?,
            name: e
                .get("name")
                .and_then(|n| n.as_str())
                .unwrap_or_default()
                .to_string(),
            ts: field("ts")?,
            dur: field("dur")?,
        });
    }
    let by_id: std::collections::BTreeMap<u64, &TraceEvent> =
        evs.iter().map(|e| (e.id, e)).collect();
    let mut children: std::collections::BTreeMap<u64, Vec<&TraceEvent>> = Default::default();
    // Sub-microsecond slack: spans are ns-exact, rendered at µs scale.
    const EPS: f64 = 0.002;
    let mut nested = 0usize;
    for e in &evs {
        if e.parent == 0 {
            continue;
        }
        let p = by_id.get(&e.parent).ok_or_else(|| {
            CliError::Input(format!(
                "span {} ({}): unknown parent {}",
                e.id, e.name, e.parent
            ))
        })?;
        if e.ts < p.ts - EPS || e.ts + e.dur > p.ts + p.dur + EPS {
            return Err(CliError::Input(format!(
                "span {} ({}) [{} +{}] escapes parent {} ({}) [{} +{}]",
                e.id, e.name, e.ts, e.dur, p.id, p.name, p.ts, p.dur
            )));
        }
        nested += 1;
        children.entry(e.parent).or_default().push(e);
    }
    let mut batch_trees = 0usize;
    for root in evs.iter().filter(|e| {
        e.parent == 0 && (e.name.starts_with("batch.") || e.name.starts_with("sched.batch."))
    }) {
        // Leaf durations of the subtree must reproduce the root duration.
        let mut leaf_sum = 0.0f64;
        let mut stack = vec![root];
        while let Some(e) = stack.pop() {
            match children.get(&e.id) {
                Some(kids) => stack.extend(kids.iter().copied()),
                None => leaf_sum += e.dur,
            }
        }
        if (leaf_sum - root.dur).abs() > root.dur * 0.01 + EPS {
            return Err(CliError::Input(format!(
                "batch tree {} ({}): leaf durations sum to {leaf_sum} µs, root spans {} µs",
                root.id, root.name, root.dur
            )));
        }
        batch_trees += 1;
    }
    Ok(format!(
        "{}: OK — {} spans, {} nested, {} batch trees leaf-sum-verified (±1%)",
        path.display(),
        evs.len(),
        nested,
        batch_trees
    ))
}

/// Network-serving options for `cuart serve` (`--window`, `--workers`,
/// `--idle-timeout-ms`, `--allow-shutdown`).
#[derive(Debug, Clone, Copy)]
pub struct NetOptions {
    /// Per-connection in-flight request window (TCP backpressure beyond).
    pub window: usize,
    /// Worker threads per connection.
    pub workers: usize,
    /// Close connections idle for this many milliseconds; 0 = never.
    pub idle_timeout_ms: u64,
    /// Honor the wire shutdown opcode (drills/tests).
    pub allow_shutdown: bool,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            window: 32,
            workers: 2,
            idle_timeout_ms: 0,
            allow_shutdown: false,
        }
    }
}

impl NetOptions {
    fn server_config(&self) -> cuart_net::NetServerConfig {
        cuart_net::NetServerConfig {
            window: self.window.max(1),
            workers: self.workers.max(1),
            idle_timeout: match self.idle_timeout_ms {
                0 => None,
                ms => Some(std::time::Duration::from_millis(ms)),
            },
            allow_remote_shutdown: self.allow_shutdown,
            ..cuart_net::NetServerConfig::default()
        }
    }
}

/// Serve a saved index over TCP (`cuart serve INDEX --listen ADDR`): the
/// binary RPC protocol of [`cuart_net`], backed by the coalescing
/// scheduler — or, with `--shards`/`--shard-devices`, the sharded fleet.
/// Blocks until a remote shutdown frame arrives (requires
/// `--allow-shutdown`) or the process is killed; on a clean drain the
/// final summary (and `--metrics-out` spill, including the
/// `cuart.net.*` series and the `cuart.net.drained` gauge) is emitted.
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve(
    path: &Path,
    listen: &str,
    device: &str,
    deadline_us: u64,
    batch: usize,
    unsorted: bool,
    metrics_out: Option<&Path>,
    trace_out: Option<&Path>,
    folded_out: Option<&Path>,
    faults: Option<FaultOptions>,
    overload: OverloadOptions,
    shard: ShardOptions,
    net: NetOptions,
) -> Result<String, CliError> {
    let index = CuartIndex::load(path)?;
    let dev = device_by_name(device)?;
    let devs = shard.resolve(dev)?;
    let telemetry = Arc::new(Telemetry::new());
    let index = Arc::new(index.with_telemetry(telemetry.clone()));
    if faults.is_some() && !FaultInjector::is_active() {
        eprintln!(
            "warning: built without the `faults` feature; \
             --fault-seed/--fault-rate have no effect"
        );
    }
    let cfg = SchedulerConfig {
        batch_target: batch.max(1),
        deadline: std::time::Duration::from_micros(deadline_us),
        sort_batches: !unsorted,
        fault_injector: faults.map(|f| FaultInjector::uniform(f.seed, f.rate)),
        queue_cap: overload.queue_cap,
        admission: overload.admission,
        op_deadline: overload
            .op_deadline_us
            .map(std::time::Duration::from_micros),
        breaker: Some(BreakerConfig::default()),
        shard: None,
    };
    let listener = std::net::TcpListener::bind(listen)
        .map_err(|e| CliError::Input(format!("cannot listen on {listen}: {e}")))?;
    let net_cfg = net.server_config();
    let server = if devs.len() > 1 {
        let sharded = ShardedScheduler::spawn(Arc::clone(&index), &devs, cfg)
            .map_err(|e| CliError::Input(format!("scheduler: {e}")))?;
        cuart_net::NetServer::serve_sharded(listener, sharded, Some(telemetry.clone()), net_cfg)
    } else {
        let sched = Scheduler::spawn(Arc::clone(&index), devs[0], cfg);
        cuart_net::NetServer::serve_single(listener, sched, Some(telemetry.clone()), net_cfg)
    }
    .map_err(CliError::Io)?;
    let addr = server.local_addr();
    // Liveness line on stderr before blocking, so scripts (and the CI
    // drill) know the listener is up even when stdout is buffered.
    eprintln!(
        "serving {} on {addr} ({} shard(s), window {}, workers {}/conn{})",
        path.display(),
        devs.len(),
        net.window,
        net.workers,
        if net.allow_shutdown {
            ", remote shutdown armed"
        } else {
            ""
        }
    );
    let report = server
        .join()
        .map_err(|e| CliError::Input(format!("serve: {e}")))?;
    let mut out = render_net_report(&report, &addr.to_string());
    spill_serving_outputs(&mut out, &telemetry, metrics_out, trace_out, folded_out)?;
    Ok(out)
}

fn render_net_report(report: &cuart_net::NetReport, addr: &str) -> String {
    let agg = report.sched.aggregate();
    let mut out = format!(
        "drained {addr} cleanly — {} connection(s), {} ops served\n\
         frames {} in / {} out, {} decode errors, {} error frames, \
         {} window stalls\nscheduler: {} batches (mean fill {:.0}), \
         {} shed / {} rejected, {} breaker trips",
        report.accepted,
        report.served_ops,
        report.frames_in,
        report.frames_out,
        report.decode_errors,
        report.error_frames,
        report.window_stalls,
        agg.batches,
        agg.mean_batch_fill(),
        agg.shed_ops,
        agg.rejected_ops,
        agg.breaker_trips,
    );
    if let cuart_net::SchedReport::Sharded(s) = &report.sched {
        let _ = write!(
            out,
            "\nsharded: {} requests routed over {} shard(s)",
            s.routed_requests,
            s.shards.len()
        );
    }
    out
}

/// Loopback/remote serving drill (`cuart bench-net`): N client threads
/// spray point lookups at a [`cuart_net`] server and the goodput is
/// reported. With `--connect ADDR` the drill drives an external
/// `cuart serve` process (retrying the dial until the listener is up);
/// otherwise it self-hosts a server on an ephemeral loopback port.
/// `--smoke` pins the workload (4 clients × 8192 ops in 256-key frames)
/// for comparable CI runs; `--shutdown` sends the remote-shutdown frame
/// when done (self-hosted drills always drain their own server).
#[allow(clippy::too_many_arguments)]
pub fn cmd_bench_net(
    path: &Path,
    connect: Option<&str>,
    clients: usize,
    ops: usize,
    req_keys: usize,
    smoke: bool,
    shutdown: bool,
    device: &str,
    metrics_out: Option<&Path>,
) -> Result<String, CliError> {
    let (clients, ops, req_keys) = if smoke {
        (4, 8192, 256)
    } else {
        (clients.max(1), ops.max(1), req_keys.max(1))
    };
    let index = CuartIndex::load(path)?;
    let stored = cuart::range::range_query(
        index.buffers(),
        &[0u8],
        &vec![0xFFu8; index.buffers().max_key_len.max(1)],
    );
    if stored.is_empty() {
        return Err(CliError::Input("index is empty".into()));
    }

    // Self-hosted server unless --connect points at an external one.
    let telemetry = Arc::new(Telemetry::new());
    let mut hosted = None;
    let addr = match connect {
        Some(a) => a.to_string(),
        None => {
            let dev = device_by_name(device)?;
            let index = Arc::new(index.with_telemetry(telemetry.clone()));
            let cfg = SchedulerConfig {
                batch_target: req_keys * clients,
                deadline: std::time::Duration::from_micros(200),
                sort_batches: true,
                breaker: Some(BreakerConfig::default()),
                ..SchedulerConfig::default()
            };
            let sched = Scheduler::spawn(index, dev, cfg);
            let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
            let server = cuart_net::NetServer::serve_single(
                listener,
                sched,
                Some(telemetry.clone()),
                cuart_net::NetServerConfig {
                    allow_remote_shutdown: true,
                    ..cuart_net::NetServerConfig::default()
                },
            )?;
            let addr = server.local_addr().to_string();
            hosted = Some(server);
            addr
        }
    };

    // An external listener may still be binding; retry the dial briefly.
    let dial = |what: &str| -> Result<cuart_net::NetClient, CliError> {
        let mut last = None;
        for _ in 0..100 {
            match cuart_net::NetClient::connect(&addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
            }
        }
        Err(CliError::Input(format!(
            "{what}: cannot reach {addr}: {}",
            last.map(|e| e.to_string()).unwrap_or_default()
        )))
    };
    dial("probe")?.ping().map_err(net_err)?;

    let per_client = ops.div_ceil(clients).max(1);
    let t0 = std::time::Instant::now();
    let mut handles = Vec::new();
    for p in 0..clients {
        let mut conn = dial("client")?;
        let probes: Vec<Vec<u8>> = (0..per_client)
            .map(|i| {
                stored[p.wrapping_mul(131).wrapping_add(i.wrapping_mul(7)) % stored.len()]
                    .0
                    .clone()
            })
            .collect();
        handles.push(std::thread::spawn(
            move || -> Result<u64, cuart_net::NetError> {
                let mut hits = 0u64;
                for chunk in probes.chunks(req_keys) {
                    let results = conn.lookup(chunk.to_vec())?;
                    hits += results.iter().filter(|&&r| r != NOT_FOUND).count() as u64;
                }
                Ok(hits)
            },
        ));
    }
    let mut hits = 0u64;
    for h in handles {
        hits += h
            .join()
            .map_err(|_| CliError::Input("client thread panicked".into()))?
            .map_err(net_err)?;
    }
    let wall = t0.elapsed();
    let sent = per_client * clients;
    let mut out = format!(
        "{sent} lookups from {clients} client(s) over TCP to {addr} — \
         {hits} hits, {:.1} ms wall, {:.0} ops/s goodput",
        wall.as_secs_f64() * 1e3,
        sent as f64 / wall.as_secs_f64().max(1e-9),
    );
    if shutdown || hosted.is_some() {
        dial("shutdown")?.shutdown_server().map_err(net_err)?;
    }
    if let Some(server) = hosted {
        let report = server
            .join()
            .map_err(|e| CliError::Input(format!("drain: {e}")))?;
        let _ = write!(out, "\n{}", render_net_report(&report, &addr));
        if let Some(p) = metrics_out {
            out.push_str(&spill_metrics(&telemetry, p)?);
        }
    } else if let Some(p) = metrics_out {
        // Connected mode: the server owns the telemetry; nothing useful
        // to spill client-side.
        eprintln!(
            "warning: --metrics-out {} ignored with --connect (the server spills its own)",
            p.display()
        );
    }
    Ok(out)
}

fn net_err(e: cuart_net::NetError) -> CliError {
    CliError::Input(format!("net: {e}"))
}

fn preview(key: &[u8]) -> String {
    String::from_utf8_lossy(&key[..key.len().min(24)]).into_owned()
}

fn render(key: &[u8], hex: bool) -> String {
    if hex {
        key.iter().map(|b| format!("{b:02x}")).collect()
    } else {
        String::from_utf8_lossy(key).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cuart-cli-{name}-{}", std::process::id()))
    }

    fn write_keys(name: &str, lines: &[&str]) -> std::path::PathBuf {
        let p = tmp(name);
        std::fs::write(&p, lines.join("\n")).unwrap();
        p
    }

    #[test]
    fn parse_keys_raw_and_hex() {
        assert_eq!(parse_key("abc", false).unwrap(), b"abc");
        assert_eq!(parse_key("00ff10", true).unwrap(), vec![0, 255, 16]);
        assert!(parse_key("0f0", true).is_err());
        assert!(parse_key("zz", true).is_err());
    }

    #[test]
    fn key_file_with_and_without_values() {
        let p = write_keys("kv", &["alpha\t100", "beta", "gamma\t7"]);
        let pairs = load_key_file(&p, false).unwrap();
        assert_eq!(pairs[0], (b"alpha".to_vec(), 100));
        assert_eq!(pairs[1], (b"beta".to_vec(), 2)); // line number
        assert_eq!(pairs[2], (b"gamma".to_vec(), 7));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn build_info_get_roundtrip() {
        let keys = write_keys("build", &["key-alpha\t11", "key-beta\t22", "key-gamma\t33"]);
        let idx = tmp("build-idx");
        let msg = cmd_build(&keys, &idx, false, 2).unwrap();
        assert!(msg.contains("built 3 keys"), "{msg}");
        let info = cmd_info(&idx).unwrap();
        assert!(info.contains("keys:            3"), "{info}");
        assert_eq!(cmd_get(&idx, "key-beta", false).unwrap(), "22");
        assert_eq!(cmd_get(&idx, "key-nope", false).unwrap(), "(not found)");
        std::fs::remove_file(keys).ok();
        std::fs::remove_file(idx).ok();
    }

    #[test]
    fn range_and_query_and_bench() {
        let lines: Vec<String> = (0..500u64)
            .map(|i| format!("{:08}\t{}", i * 3, i))
            .collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("range", &refs);
        let idx = tmp("range-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();

        let out = cmd_range(&idx, "00000030", "00000060", false, 100).unwrap();
        assert!(out.contains("(11 rows total)"), "{out}");

        let probes = write_keys("probes", &["00000030", "00000031", "00000033"]);
        let out = cmd_query(&idx, &probes, false, "rtx3090", None, None).unwrap();
        assert!(out.starts_with("2/3 hits"), "{out}");

        let out = cmd_bench(&idx, "a100", 256, 2, None, None).unwrap();
        assert!(out.contains("MOps/s"), "{out}");

        for p in [keys, idx, probes] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn metrics_command_renders_and_spills() {
        let lines: Vec<String> = (0..200u64).map(|i| format!("{:08}\t{}", i, i)).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("metrics", &refs);
        let idx = tmp("metrics-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();

        // JSON to stdout.
        let json = cmd_metrics(&idx, None, false, "a100", 64, 2, "json", None).unwrap();
        assert!(json.starts_with('{'), "{json}");
        // Prometheus text to stdout.
        let prom = cmd_metrics(&idx, None, false, "a100", 64, 2, "prom", None).unwrap();
        assert!(prom.contains("cuart_events_dropped"), "{prom}");
        #[cfg(feature = "telemetry")]
        {
            assert!(json.contains("\"cuart.lookup.batches\":2"), "{json}");
            assert!(json.contains("\"kind\":\"lookup\""), "{json}");
            assert!(prom.contains("cuart_lookup_batches 2"), "{prom}");
        }
        // Spill to a file via --metrics-out.
        let out_file = tmp("metrics-out");
        let msg = cmd_metrics(&idx, None, false, "a100", 64, 1, "json", Some(&out_file)).unwrap();
        assert!(msg.contains("metrics ->"), "{msg}");
        let written = std::fs::read_to_string(&out_file).unwrap();
        assert!(written.starts_with('{'), "{written}");
        // Bad format is rejected.
        assert!(cmd_metrics(&idx, None, false, "a100", 64, 1, "xml", None).is_err());

        // query/bench accept --metrics-out too.
        let probes = write_keys("metrics-probes", &["00000030"]);
        let q = cmd_query(&idx, &probes, false, "rtx3090", Some(&out_file), None).unwrap();
        assert!(q.contains("metrics ->"), "{q}");

        for p in [keys, idx, probes, out_file] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn bad_inputs_are_reported() {
        assert!(cmd_info(Path::new("/nonexistent.cuart")).is_err());
        assert!(device_by_name("tpu").is_err());
        let empty = tmp("empty");
        std::fs::write(&empty, "").unwrap();
        assert!(load_key_file(&empty, false).is_err());
        std::fs::remove_file(empty).ok();
        // Prefix-violating key set is rejected with a clear message.
        let bad = write_keys("bad", &["ab", "abc"]);
        let idx = tmp("bad-idx");
        let err = cmd_build(&bad, &idx, false, 0).unwrap_err();
        assert!(format!("{err}").contains("prefix"), "{err}");
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn verify_snapshot_accepts_good_and_rejects_corrupt() {
        let keys = write_keys("verify", &["key-a\t1", "key-b\t2"]);
        let idx = tmp("verify-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let ok = cmd_verify_snapshot(&idx).unwrap();
        assert!(ok.contains("OK"), "{ok}");
        assert!(ok.contains("2 keys"), "{ok}");
        // Bit-flip the tail and watch it bounce.
        let mut bytes = std::fs::read(&idx).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let bad = tmp("verify-bad");
        std::fs::write(&bad, &bytes).unwrap();
        let err = cmd_verify_snapshot(&bad).unwrap_err();
        assert!(format!("{err}").contains("snapshot corrupt"), "{err}");
        for p in [keys, idx, bad] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn fault_flags_run_and_report() {
        let lines: Vec<String> = (0..300u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("faultopts", &refs);
        let idx = tmp("faultopts-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let opts = Some(FaultOptions {
            seed: 7,
            rate: 0.05,
        });
        let q = cmd_query(&idx, &keys, false, "rtx3090", None, opts).unwrap();
        assert!(q.contains("faults:"), "{q}");
        let b = cmd_bench(&idx, "rtx3090", 64, 3, None, opts).unwrap();
        assert!(b.contains("faults:"), "{b}");
        // Whatever the injector did, results must still be correct: every
        // stored key hits.
        assert!(q.starts_with("300/300 hits"), "{q}");
        std::fs::remove_file(keys).ok();
        std::fs::remove_file(idx).ok();
    }

    #[test]
    fn serve_sim_runs_producers_and_reports() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("serve", &refs);
        let idx = tmp("serve-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let out_file = tmp("serve-metrics");
        let out = cmd_serve_sim(
            &idx,
            "gtx1070",
            2,
            200,
            512,
            1024,
            false,
            false,
            Some(&out_file),
            None,
            None,
            None,
            OverloadOptions::default(),
            ShardOptions::default(),
        )
        .unwrap();
        assert!(out.contains("1024 lookups from 2 producers"), "{out}");
        assert!(out.contains("1024 hits"), "{out}");
        assert!(out.contains("metrics ->"), "{out}");
        #[cfg(feature = "telemetry")]
        {
            let written = std::fs::read_to_string(&out_file).unwrap();
            assert!(written.contains("cuart.sched.batches"), "{written}");
            assert!(written.contains("cuart.sched.enqueued"), "{written}");
        }
        // The unsorted control also runs.
        let out = cmd_serve_sim(
            &idx,
            "gtx1070",
            1,
            100,
            256,
            256,
            true,
            false,
            None,
            None,
            None,
            None,
            OverloadOptions::default(),
            ShardOptions::default(),
        )
        .unwrap();
        assert!(out.contains("256 lookups from 1 producers"), "{out}");
        for p in [keys, idx, out_file] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_sim_sharded_routes_and_reports_per_shard() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("sharded", &refs);
        let idx = tmp("sharded-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let out_file = tmp("sharded-metrics");
        let out = cmd_serve_sim(
            &idx,
            "gtx1070",
            2,
            200,
            512,
            2048,
            false,
            false,
            Some(&out_file),
            None,
            None,
            None,
            OverloadOptions::default(),
            ShardOptions {
                shards: 2,
                devices: Some("rtx3090, gtx1070".into()),
            },
        )
        .unwrap();
        assert!(
            out.contains("2048 lookups from 2 producers over 2 shards"),
            "{out}"
        );
        assert!(out.contains("modeled scale-out"), "{out}");
        assert!(out.contains("shard 0 (NVIDIA RTX 3090"), "{out}");
        assert!(out.contains("shard 1 (NVIDIA GTX 1070"), "{out}");
        #[cfg(feature = "telemetry")]
        {
            let written = std::fs::read_to_string(&out_file).unwrap();
            assert!(written.contains("cuart.sched.routed_requests"), "{written}");
            assert!(written.contains("cuart.sched.shard.0."), "{written}");
        }
        // Count mismatch between --shards and --shard-devices is refused.
        let err = cmd_serve_sim(
            &idx,
            "gtx1070",
            1,
            200,
            512,
            256,
            false,
            false,
            None,
            None,
            None,
            None,
            OverloadOptions::default(),
            ShardOptions {
                shards: 3,
                devices: Some("rtx3090,gtx1070".into()),
            },
        );
        assert!(
            matches!(err, Err(CliError::Input(ref m)) if m.contains("disagrees")),
            "{err:?}"
        );
        for p in [keys, idx, out_file] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_sim_overload_drill_sheds_and_recovers() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("overload", &refs);
        let idx = tmp("overload-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let out_file = tmp("overload-metrics");
        let overload = OverloadOptions {
            admission: AdmissionPolicy::Reject,
            queue_cap: 4096,
            op_deadline_us: Some(500),
        };
        let faults = Some(FaultOptions {
            seed: 7,
            rate: 0.05,
        });
        let out = cmd_serve_sim(
            &idx,
            "gtx1070",
            4,
            200,
            1024,
            8192,
            false,
            true, // smoke: pinned workload + deterministic fault storm
            Some(&out_file),
            None,
            None,
            faults,
            overload,
            ShardOptions::default(),
        )
        .unwrap();
        // The deterministic shed probe guarantees a non-zero shed count.
        assert!(out.contains("overload:"), "{out}");
        assert!(!out.contains("overload: 0 shed"), "{out}");
        assert!(out.contains("cap 4096"), "{out}");
        #[cfg(all(feature = "telemetry", feature = "faults"))]
        {
            // The storm tripped the breaker and the drill drove it back to
            // recovery: both ends of the walk land in the metrics spill.
            let written = std::fs::read_to_string(&out_file).unwrap();
            assert!(written.contains("cuart.sched.breaker_trips"), "{written}");
            assert!(written.contains("cuart.sched.shed"), "{written}");
            assert!(written.contains("\"breaker_open\""), "{written}");
            assert!(written.contains("\"recovered\""), "{written}");
        }
        for p in [keys, idx, out_file] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn trace_exports_verify_clean() {
        let lines: Vec<String> = (0..300u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("trace", &refs);
        let idx = tmp("trace-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let trace = tmp("trace-json");
        let folded = tmp("trace-folded");
        let out = cmd_trace(&idx, "rtx3090", 128, 4, Some(&trace), Some(&folded)).unwrap();
        #[cfg(feature = "telemetry")]
        {
            assert!(out.contains("spans from 4 batches of 128"), "{out}");
            assert!(out.contains("critical path"), "{out}");
            let verdict = cmd_verify_trace(&trace).unwrap();
            assert!(verdict.contains("OK"), "{verdict}");
            assert!(verdict.contains("4 batch trees"), "{verdict}");
            let stacks = std::fs::read_to_string(&folded).unwrap();
            assert!(stacks.contains("batch.lookup;"), "{stacks}");
        }
        #[cfg(not(feature = "telemetry"))]
        assert!(out.contains("0 spans"), "{out}");
        for p in [keys, idx, trace, folded] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_sim_smoke_writes_verifiable_trace() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("smoke", &refs);
        let idx = tmp("smoke-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let trace = tmp("smoke-trace");
        let out = cmd_serve_sim(
            &idx,
            "gtx1070",
            2,
            200,
            64, // smoke overrides the batch/ops knobs
            128,
            false,
            true,
            None,
            Some(&trace),
            None,
            None,
            OverloadOptions::default(),
            ShardOptions::default(),
        )
        .unwrap();
        // Smoke mode pins the workload shape regardless of the flags.
        assert!(out.contains("8192 lookups from 2 producers"), "{out}");
        assert!(out.contains("trace ->"), "{out}");
        #[cfg(feature = "telemetry")]
        {
            let verdict = cmd_verify_trace(&trace).unwrap();
            assert!(verdict.contains("OK"), "{verdict}");
            let text = std::fs::read_to_string(&trace).unwrap();
            assert!(text.contains("sched.batch.lookup"), "{text}");
        }
        for p in [keys, idx, trace] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn verify_trace_rejects_malformed_files() {
        let bad = tmp("bad-trace");
        std::fs::write(&bad, "{not json").unwrap();
        assert!(matches!(cmd_verify_trace(&bad), Err(CliError::Input(_))));
        // Parses, but a child escapes its parent's interval.
        std::fs::write(
            &bad,
            r#"{"traceEvents":[
                {"name":"batch.lookup","ph":"X","pid":1,"tid":1,"ts":0,"dur":10,"args":{"id":1,"parent":0}},
                {"name":"kernel","ph":"X","pid":1,"tid":1,"ts":5,"dur":10,"args":{"id":2,"parent":1}}
            ]}"#,
        )
        .unwrap();
        let err = cmd_verify_trace(&bad).unwrap_err();
        assert!(err.to_string().contains("escapes parent"), "{err}");
        // Nests fine, but the leaves don't sum to the root.
        std::fs::write(
            &bad,
            r#"{"traceEvents":[
                {"name":"batch.lookup","ph":"X","pid":1,"tid":1,"ts":0,"dur":10,"args":{"id":1,"parent":0}},
                {"name":"kernel","ph":"X","pid":1,"tid":1,"ts":0,"dur":4,"args":{"id":2,"parent":1}}
            ]}"#,
        )
        .unwrap();
        let err = cmd_verify_trace(&bad).unwrap_err();
        assert!(err.to_string().contains("leaf durations"), "{err}");
        std::fs::remove_file(bad).ok();
    }

    #[test]
    fn bench_net_self_hosted_drill_drains_cleanly() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("bench-net", &refs);
        let idx = tmp("bench-net-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        let spill = tmp("bench-net-metrics");
        let out = cmd_bench_net(
            &idx,
            None,
            2,
            512,
            64,
            false,
            false,
            "gtx1070",
            Some(&spill),
        )
        .unwrap();
        assert!(out.contains("512 lookups from 2 client(s)"), "{out}");
        assert!(out.contains("512 hits"), "{out}");
        assert!(out.contains("ops/s goodput"), "{out}");
        assert!(out.contains("drained"), "{out}");
        assert!(out.contains("512 ops served"), "{out}");
        #[cfg(feature = "telemetry")]
        {
            let written = std::fs::read_to_string(&spill).unwrap();
            assert!(written.contains("cuart.net.frames_out"), "{written}");
            assert!(written.contains("cuart.net.drained"), "{written}");
        }
        for p in [keys, idx, spill] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_and_bench_net_pair_over_a_real_socket() {
        let lines: Vec<String> = (0..400u64).map(|i| format!("{i:08}\t{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(|s| s.as_str()).collect();
        let keys = write_keys("serve-net", &refs);
        let idx = tmp("serve-net-idx");
        cmd_build(&keys, &idx, false, 2).unwrap();
        // Grab an ephemeral port, free it, and hand it to `cuart serve`
        // (bench-net's dial loop retries while the server binds).
        let port = std::net::TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
            .port();
        let addr = format!("127.0.0.1:{port}");
        let spill = tmp("serve-net-metrics");
        let server = {
            let idx = idx.clone();
            let addr = addr.clone();
            let spill = spill.clone();
            std::thread::spawn(move || {
                cmd_serve(
                    &idx,
                    &addr,
                    "gtx1070",
                    200,
                    512,
                    false,
                    Some(&spill),
                    None,
                    None,
                    None,
                    OverloadOptions::default(),
                    ShardOptions::default(),
                    NetOptions {
                        allow_shutdown: true,
                        ..NetOptions::default()
                    },
                )
            })
        };
        let out = cmd_bench_net(
            &idx,
            Some(&addr),
            2,
            256,
            64,
            false,
            true, // --shutdown drains the serve thread
            "gtx1070",
            None,
        )
        .unwrap();
        assert!(out.contains("256 hits"), "{out}");
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("drained"), "{served}");
        assert!(served.contains("ops served"), "{served}");
        #[cfg(feature = "telemetry")]
        {
            let written = std::fs::read_to_string(&spill).unwrap();
            assert!(written.contains("cuart.net.drained"), "{written}");
        }
        for p in [keys, idx, spill] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn hex_mode_end_to_end() {
        let keys = write_keys("hex", &["00010203\t5", "00010204\t6"]);
        let idx = tmp("hex-idx");
        cmd_build(&keys, &idx, true, 2).unwrap();
        assert_eq!(cmd_get(&idx, "00010204", true).unwrap(), "6");
        let out = cmd_range(&idx, "00010203", "00010204", true, 10).unwrap();
        assert!(out.contains("00010203\t5"), "{out}");
        std::fs::remove_file(keys).ok();
        std::fs::remove_file(idx).ok();
    }
}
