//! The `cuart` command-line tool. See the `cuart-cli` crate docs.

use cuart_cli::*;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
cuart — build, persist and query CuART indexes

USAGE:
  cuart build  --keys FILE --out FILE [--hex] [--lut-span N]
  cuart info   INDEX
  cuart get    INDEX KEY [--hex]
  cuart range  INDEX LO HI [--hex] [--limit N]
  cuart query  INDEX --keys FILE [--hex] [--device NAME] [--metrics-out FILE]
               [--fault-seed N] [--fault-rate P]
  cuart bench  INDEX [--device NAME] [--batch N] [--batches N] [--metrics-out FILE]
               [--fault-seed N] [--fault-rate P]
  cuart metrics INDEX [--keys FILE] [--hex] [--device NAME] [--batch N]
                [--batches N] [--format json|prom] [--metrics-out FILE]
  cuart serve-sim INDEX [--producers 4] [--deadline-us 200] [--batch 32768]
                  [--ops 65536] [--unsorted] [--smoke] [--device NAME]
                  [--shards N] [--shard-devices NAME,NAME,...]
                  [--metrics-out FILE] [--trace-out FILE] [--folded-out FILE]
                  [--fault-seed N] [--fault-rate P]
                  [--admission block|reject] [--admission-timeout-us N]
                  [--queue-cap N] [--op-deadline-us N]
  cuart serve  INDEX --listen ADDR [--device NAME] [--batch 32768]
               [--deadline-us 200] [--unsorted] [--shards N]
               [--shard-devices NAME,NAME,...] [--window 32] [--workers 2]
               [--idle-timeout-ms N] [--allow-shutdown]
               [--metrics-out FILE] [--trace-out FILE] [--folded-out FILE]
               [--fault-seed N] [--fault-rate P]
               [--admission block|reject] [--admission-timeout-us N]
               [--queue-cap N] [--op-deadline-us N]
  cuart bench-net INDEX [--connect ADDR] [--clients 4] [--ops 65536]
               [--req-keys 256] [--smoke] [--shutdown] [--device NAME]
               [--metrics-out FILE]
  cuart trace  INDEX [--device NAME] [--batch N] [--batches N]
               [--out trace.json] [--folded out.txt]
  cuart verify-trace TRACE.json
  cuart verify-snapshot INDEX

DEVICES: a100 (server), rtx3090 (workstation), gtx1070 (notebook)
KEY FILES: one key per line; optional 'key<TAB>value'; --hex for hex keys
METRICS: counters, gauges, histograms and the per-batch event trace of the
run, as JSON (default) or Prometheus text
FAULTS: --fault-rate P injects device faults with probability P per op
(seeded by --fault-seed, default 0) to drill the retry/degrade/recover
path; needs a binary built with `--features faults` to actually fire.
TRACING: `trace` (and serve-sim --trace-out) export hierarchical span
trees as Chrome-trace JSON — open in chrome://tracing or Perfetto;
--folded writes flamegraph-style folded stacks. --smoke pins the
serve-sim workload to 8192 ops in batches of 1024 for comparable CI
runs. verify-trace checks a trace file nests and that every batch
tree's leaf durations reproduce the modeled batch time (±1%).
OVERLOAD: --queue-cap bounds the scheduler's resident ops; a full queue
blocks (default), fails fast (--admission reject) or blocks up to
--admission-timeout-us. --op-deadline-us sheds ops still queued past
their budget with DeadlineExceeded instead of serving them late.
SCALE-OUT: --shards N serves from N key-space shards, each on its own
device (copies of --device, or named one-by-one with --shard-devices,
e.g. rtx3090,rtx3090,gtx1070,gtx1070); every shard has its own queue
cap and circuit breaker, and per-shard cuart.sched.shard.<i>.* series
land in the metrics spill next to the global cuart.sched.* totals.
verify-snapshot checks a saved index (header, per-section CRCs,
structural parse) without loading it
NETWORK: `serve` puts the scheduler behind the cuart-net binary RPC
protocol on --listen and blocks until a remote shutdown frame
(--allow-shutdown) drains it; `bench-net` sprays lookups from --clients
TCP connections at --connect (or a self-hosted loopback server) and
reports goodput. --smoke pins bench-net to 4 clients x 8192 ops in
256-key frames; --shutdown sends the drain frame when done.";

struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                let takes_value = !matches!(
                    name,
                    "hex" | "unsorted" | "smoke" | "allow-shutdown" | "shutdown"
                );
                if takes_value && i + 1 < raw.len() {
                    flags.push((name.to_string(), Some(raw[i + 1].clone())));
                    i += 2;
                } else {
                    flags.push((name.to_string(), None));
                    i += 1;
                }
            } else {
                positional.push(raw[i].clone());
                i += 1;
            }
        }
        Args { positional, flags }
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    exit(2)
}

fn required_path(_args: &Args, what: &str, value: Option<&str>) -> PathBuf {
    match value {
        Some(v) => PathBuf::from(v),
        None => fail(&format!("missing {what}")),
    }
}

/// Parse `--fault-seed` / `--fault-rate` into [`FaultOptions`]. Either
/// flag switches injection on; the seed defaults to 0 and the rate to
/// 0.05 (the 5 % drill rate).
fn fault_options(args: &Args) -> Option<FaultOptions> {
    let seed = args
        .flag("fault-seed")
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad --fault-seed")));
    let rate: Option<f64> = args
        .flag("fault-rate")
        .map(|s| s.parse().unwrap_or_else(|_| fail("bad --fault-rate")));
    if seed.is_none() && rate.is_none() {
        return None;
    }
    let rate = rate.unwrap_or(0.05);
    if !(0.0..=1.0).contains(&rate) {
        fail("bad --fault-rate (must be within 0.0..=1.0)");
    }
    Some(FaultOptions {
        seed: seed.unwrap_or(0),
        rate,
    })
}

/// Parse the serve-sim overload knobs (`--admission`,
/// `--admission-timeout-us`, `--queue-cap`, `--op-deadline-us`).
fn overload_options(args: &Args) -> OverloadOptions {
    let timeout_us: Option<u64> = args.flag("admission-timeout-us").map(|s| {
        s.parse()
            .unwrap_or_else(|_| fail("bad --admission-timeout-us"))
    });
    let admission = match (args.flag("admission"), timeout_us) {
        (Some("reject"), _) => AdmissionPolicy::Reject,
        (Some("block") | None, Some(us)) => {
            AdmissionPolicy::BlockWithTimeout(std::time::Duration::from_micros(us))
        }
        (Some("block") | None, None) => AdmissionPolicy::Block,
        (Some(other), _) => fail(&format!("bad --admission {other:?} (block|reject)")),
    };
    OverloadOptions {
        admission,
        queue_cap: args
            .flag("queue-cap")
            .map(|s| s.parse().unwrap_or_else(|_| fail("bad --queue-cap")))
            .unwrap_or(0),
        op_deadline_us: args
            .flag("op-deadline-us")
            .map(|s| s.parse().unwrap_or_else(|_| fail("bad --op-deadline-us"))),
    }
}

/// Parse the serve-sim scale-out knobs (`--shards`, `--shard-devices`).
fn shard_options(args: &Args) -> ShardOptions {
    ShardOptions {
        shards: args
            .flag("shards")
            .map(|s| s.parse().unwrap_or_else(|_| fail("bad --shards")))
            .unwrap_or(0),
        devices: args.flag("shard-devices").map(str::to_string),
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        fail("no command");
    }
    let cmd = raw[0].clone();
    let args = Args::parse(&raw[1..]);
    let hex = args.has("hex");
    let result = match cmd.as_str() {
        "build" => {
            let keys = required_path(&args, "--keys FILE", args.flag("keys"));
            let out = required_path(&args, "--out FILE", args.flag("out"));
            let span = args
                .flag("lut-span")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --lut-span")))
                .unwrap_or(3);
            cmd_build(&keys, &out, hex, span)
        }
        "info" => cmd_info(&required_path(&args, "INDEX", args.pos(0))),
        "get" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let key = args.pos(1).unwrap_or_else(|| fail("missing KEY"));
            cmd_get(&idx, key, hex)
        }
        "range" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let lo = args.pos(1).unwrap_or_else(|| fail("missing LO"));
            let hi = args.pos(2).unwrap_or_else(|| fail("missing HI"));
            let limit = args
                .flag("limit")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --limit")))
                .unwrap_or(20);
            cmd_range(&idx, lo, hi, hex, limit)
        }
        "query" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let keys = required_path(&args, "--keys FILE", args.flag("keys"));
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            cmd_query(
                &idx,
                &keys,
                hex,
                args.flag("device").unwrap_or("rtx3090"),
                metrics_out.as_deref(),
                fault_options(&args),
            )
        }
        "bench" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let batch = args
                .flag("batch")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batch")))
                .unwrap_or(32 * 1024);
            let batches = args
                .flag("batches")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batches")))
                .unwrap_or(8);
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            cmd_bench(
                &idx,
                args.flag("device").unwrap_or("rtx3090"),
                batch,
                batches,
                metrics_out.as_deref(),
                fault_options(&args),
            )
        }
        "metrics" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let keys = args.flag("keys").map(PathBuf::from);
            let batch = args
                .flag("batch")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batch")))
                .unwrap_or(4096);
            let batches = args
                .flag("batches")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batches")))
                .unwrap_or(4);
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            cmd_metrics(
                &idx,
                keys.as_deref(),
                hex,
                args.flag("device").unwrap_or("rtx3090"),
                batch,
                batches,
                args.flag("format").unwrap_or("json"),
                metrics_out.as_deref(),
            )
        }
        "serve-sim" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let producers = args
                .flag("producers")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --producers")))
                .unwrap_or(4);
            let deadline_us = args
                .flag("deadline-us")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --deadline-us")))
                .unwrap_or(200);
            let batch = args
                .flag("batch")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batch")))
                .unwrap_or(32 * 1024);
            let ops = args
                .flag("ops")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --ops")))
                .unwrap_or(64 * 1024);
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            let trace_out = args.flag("trace-out").map(PathBuf::from);
            let folded_out = args.flag("folded-out").map(PathBuf::from);
            cmd_serve_sim(
                &idx,
                args.flag("device").unwrap_or("rtx3090"),
                producers,
                deadline_us,
                batch,
                ops,
                args.has("unsorted"),
                args.has("smoke"),
                metrics_out.as_deref(),
                trace_out.as_deref(),
                folded_out.as_deref(),
                fault_options(&args),
                overload_options(&args),
                shard_options(&args),
            )
        }
        "serve" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let listen = args
                .flag("listen")
                .unwrap_or_else(|| fail("missing --listen ADDR"));
            let deadline_us = args
                .flag("deadline-us")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --deadline-us")))
                .unwrap_or(200);
            let batch = args
                .flag("batch")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batch")))
                .unwrap_or(32 * 1024);
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            let trace_out = args.flag("trace-out").map(PathBuf::from);
            let folded_out = args.flag("folded-out").map(PathBuf::from);
            let mut net = NetOptions {
                allow_shutdown: args.has("allow-shutdown"),
                ..NetOptions::default()
            };
            if let Some(w) = args.flag("window") {
                net.window = w.parse().unwrap_or_else(|_| fail("bad --window"));
            }
            if let Some(w) = args.flag("workers") {
                net.workers = w.parse().unwrap_or_else(|_| fail("bad --workers"));
            }
            if let Some(ms) = args.flag("idle-timeout-ms") {
                net.idle_timeout_ms = ms.parse().unwrap_or_else(|_| fail("bad --idle-timeout-ms"));
            }
            cmd_serve(
                &idx,
                listen,
                args.flag("device").unwrap_or("rtx3090"),
                deadline_us,
                batch,
                args.has("unsorted"),
                metrics_out.as_deref(),
                trace_out.as_deref(),
                folded_out.as_deref(),
                fault_options(&args),
                overload_options(&args),
                shard_options(&args),
                net,
            )
        }
        "bench-net" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let clients = args
                .flag("clients")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --clients")))
                .unwrap_or(4);
            let ops = args
                .flag("ops")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --ops")))
                .unwrap_or(64 * 1024);
            let req_keys = args
                .flag("req-keys")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --req-keys")))
                .unwrap_or(256);
            let metrics_out = args.flag("metrics-out").map(PathBuf::from);
            cmd_bench_net(
                &idx,
                args.flag("connect"),
                clients,
                ops,
                req_keys,
                args.has("smoke"),
                args.has("shutdown"),
                args.flag("device").unwrap_or("rtx3090"),
                metrics_out.as_deref(),
            )
        }
        "trace" => {
            let idx = required_path(&args, "INDEX", args.pos(0));
            let batch = args
                .flag("batch")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batch")))
                .unwrap_or(4096);
            let batches = args
                .flag("batches")
                .map(|s| s.parse().unwrap_or_else(|_| fail("bad --batches")))
                .unwrap_or(8);
            let out = args.flag("out").map(PathBuf::from);
            let folded = args.flag("folded").map(PathBuf::from);
            cmd_trace(
                &idx,
                args.flag("device").unwrap_or("rtx3090"),
                batch,
                batches,
                out.as_deref(),
                folded.as_deref(),
            )
        }
        "verify-trace" => cmd_verify_trace(&required_path(&args, "TRACE.json", args.pos(0))),
        "verify-snapshot" => cmd_verify_snapshot(&required_path(&args, "INDEX", args.pos(0))),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return;
        }
        other => fail(&format!("unknown command {other:?}")),
    };
    match result {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}
