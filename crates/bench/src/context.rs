//! Shared run context: scaling rules, devices, tree/index builders.

use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::{devices, DeviceConfig};
use cuart_grt::GrtIndex;
use cuart_telemetry::Telemetry;
use cuart_workloads::uniform_keys;
use std::path::PathBuf;
use std::sync::Arc;

/// Context shared by all figure modules.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Every paper tree size is divided by this (1 = full scale).
    pub scale: usize,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Optional telemetry sink; when set, every index the context builds
    /// records its batches into it (`figures --telemetry`).
    telemetry: Option<Arc<Telemetry>>,
    /// Smoke mode (`figures --smoke`): figures shrink their thread counts
    /// and op totals so CI can exercise them end-to-end in seconds.
    smoke: bool,
}

impl RunCtx {
    /// Default scaled context (1/16 of the paper's sizes).
    pub fn new(scale: usize, out_dir: impl Into<PathBuf>) -> Self {
        assert!(scale >= 1);
        RunCtx {
            scale,
            out_dir: out_dir.into(),
            telemetry: None,
            smoke: false,
        }
    }

    /// Enable smoke mode: figures that sweep threads or large op counts
    /// shrink to a CI-sized footprint.
    pub fn with_smoke(mut self, smoke: bool) -> Self {
        self.smoke = smoke;
        self
    }

    /// `true` when running in CI smoke mode.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Attach a telemetry registry: indexes built through [`cuart`](Self::cuart)
    /// and [`grt`](Self::grt) will record every batch into it.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// A paper tree size scaled down, floored at 4 Ki entries.
    pub fn tree_size(&self, paper_entries: usize) -> usize {
        (paper_entries / self.scale).max(4096)
    }

    /// A device with its L2 shrunk by the scale factor (floor 32 KiB), so
    /// cache-residency regimes match the paper's (see crate docs).
    pub fn device(&self, base: DeviceConfig) -> DeviceConfig {
        let mut dev = base;
        dev.l2.size_bytes = (dev.l2.size_bytes / self.scale).max(32 << 10);
        dev
    }

    /// The scaled paper machines.
    pub fn server(&self) -> DeviceConfig {
        self.device(devices::a100())
    }

    /// Workstation (RTX 3090), scaled.
    pub fn workstation(&self) -> DeviceConfig {
        self.device(devices::rtx3090())
    }

    /// Notebook (GTX 1070), scaled.
    pub fn notebook(&self) -> DeviceConfig {
        self.device(devices::gtx1070())
    }

    /// Build an ART over `n` unique uniform keys of `key_len` bytes.
    pub fn build_art(&self, n: usize, key_len: usize, seed: u64) -> (Art<u64>, Vec<Vec<u8>>) {
        let keys = uniform_keys(n, key_len, seed);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1)
                .expect("unique fixed-length keys");
        }
        (art, keys)
    }

    /// Build an ART from a prepared key set.
    pub fn art_from_keys(&self, keys: &[Vec<u8>]) -> Art<u64> {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).expect("prefix-free key set");
        }
        art
    }

    /// Map to CuART with the paper's configuration (3-byte LUT).
    pub fn cuart(&self, art: &Art<u64>) -> CuartIndex {
        let index = CuartIndex::build(art, &CuartConfig::default());
        match &self.telemetry {
            Some(t) => index.with_telemetry(t.clone()),
            None => index,
        }
    }

    /// Map to the GRT baseline.
    pub fn grt(&self, art: &Art<u64>) -> GrtIndex {
        let index = GrtIndex::build(art);
        match &self.telemetry {
            Some(t) => index.with_telemetry(t.clone()),
            None => index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_rules() {
        let ctx = RunCtx::new(16, "/tmp/x");
        assert_eq!(ctx.tree_size(26_000_000), 1_625_000);
        assert_eq!(ctx.tree_size(1000), 4096, "floor applies");
        let dev = ctx.server();
        assert_eq!(dev.l2.size_bytes, (40 << 20) / 16);
        let full = RunCtx::new(1, "/tmp/x");
        assert_eq!(full.tree_size(26_000_000), 26_000_000);
        assert_eq!(full.server().l2.size_bytes, 40 << 20);
    }

    #[test]
    fn l2_floor() {
        let ctx = RunCtx::new(10_000, "/tmp/x");
        assert_eq!(ctx.notebook().l2.size_bytes, 32 << 10);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn attached_telemetry_flows_into_built_indexes() {
        use cuart_telemetry::names;
        let telemetry = Arc::new(Telemetry::new());
        let ctx = RunCtx::new(16, "/tmp/x").with_telemetry(telemetry.clone());
        let (art, keys) = ctx.build_art(4096, 8, 7);
        let cuart = ctx.cuart(&art);
        let grt = ctx.grt(&art);
        let dev = ctx.server();
        let mut session = cuart.device_session(&dev);
        session.lookup_batch(&keys[..256]).unwrap();
        grt.lookup_batch_device(&dev, &keys[..256], 8);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counters[names::LOOKUP_BATCHES], 1);
        assert_eq!(snap.counters[names::GRT_LOOKUP_BATCHES], 1);
        assert!(snap.gauges[names::DEVICE_BYTES] > 0.0);
        assert!(snap.gauges[names::GRT_DEVICE_BYTES] > 0.0);
    }

    #[test]
    fn builders_produce_consistent_indexes() {
        let ctx = RunCtx::new(16, "/tmp/x");
        let (art, keys) = ctx.build_art(5000, 16, 3);
        assert_eq!(art.len(), 5000);
        let cuart = ctx.cuart(&art);
        let grt = ctx.grt(&art);
        for k in keys.iter().take(50) {
            assert_eq!(cuart.lookup_cpu(k), art.get(k).copied());
            assert_eq!(grt.lookup_cpu(k), art.get(k).copied());
        }
    }
}
