//! Regenerate the paper's figures. See `cuart-bench` crate docs.
//!
//! ```text
//! figures all                    # every figure at 1/16 scale
//! figures fig10 fig17            # selected figures
//! figures all --scale 64         # smaller/faster
//! figures all --full             # paper-scale (needs a big machine)
//! figures all --out results/     # output directory (default: results/)
//! figures all --telemetry        # also dump results/telemetry.json
//! figures fig19 --smoke          # CI-sized sweep (threads/ops shrunk)
//! figures fig-regress            # perf gate vs results/baseline.json
//! figures fig-regress --update-baseline   # re-pin the baseline
//! ```

use cuart_bench::{figures, regress, RunCtx};
use cuart_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Instant;

/// The `fig-regress` pseudo-figure: run the pinned smoke workload and
/// gate on the checked-in baseline (see [`regress`]). Exits the process
/// on failure so CI trips; `--update-baseline` re-pins instead.
fn run_regress_gate(baseline_path: &str, update: bool, threshold: f64) {
    let current = regress::run_smoke();
    if update {
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::write(baseline_path, regress::to_json(&current)).expect("write baseline");
        println!("fig-regress: baseline re-pinned -> {baseline_path}");
        return;
    }
    let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "fig-regress: cannot read {baseline_path}: {e}\n\
             (generate it with: figures fig-regress --update-baseline)"
        );
        std::process::exit(2);
    });
    let base = regress::parse_baseline(&text).unwrap_or_else(|e| {
        eprintln!("fig-regress: bad baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    if !cfg!(feature = "telemetry") {
        eprintln!("warning: built without `telemetry`; stage-share metrics are skipped");
    }
    print!("{}", regress::diff_report(&current, &base));
    let regressions = regress::compare(&current, &base, threshold);
    if regressions.is_empty() {
        println!(
            "fig-regress: OK ({} metrics within {:.0}% of {baseline_path})",
            base.len(),
            threshold * 100.0
        );
    } else {
        eprintln!("fig-regress: FAILED against {baseline_path}:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 16usize;
    let mut out_dir = "results".to_string();
    let mut want_telemetry = false;
    let mut smoke = false;
    let mut baseline = "results/baseline.json".to_string();
    let mut update_baseline = false;
    let mut threshold = regress::DEFAULT_THRESHOLD;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes an integer");
            }
            "--full" => scale = 1,
            "--out" => {
                i += 1;
                out_dir = args[i].clone();
            }
            "--telemetry" => want_telemetry = true,
            "--smoke" => smoke = true,
            "--baseline" => {
                i += 1;
                baseline = args[i].clone();
            }
            "--update-baseline" => update_baseline = true,
            "--threshold" => {
                i += 1;
                threshold = args[i].parse().expect("--threshold takes a float");
            }
            "all" => ids.extend(figures::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.iter().any(|id| id == "fig-regress") {
        run_regress_gate(&baseline, update_baseline, threshold);
        ids.retain(|id| id != "fig-regress");
        if ids.is_empty() {
            return;
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: figures <all|figN|fig-regress ...> [--scale N] [--full] [--out DIR] \
             [--telemetry] [--smoke] [--baseline FILE] [--update-baseline] [--threshold F]"
        );
        eprintln!("known figures: {:?}", figures::ALL);
        std::process::exit(2);
    }
    ids.dedup();

    let telemetry = want_telemetry.then(|| Arc::new(Telemetry::new()));
    let mut ctx = RunCtx::new(scale, &out_dir).with_smoke(smoke);
    if let Some(t) = &telemetry {
        if !t.is_enabled() {
            eprintln!("warning: built without the `telemetry` feature; snapshot will be empty");
        }
        ctx = ctx.with_telemetry(t.clone());
    }
    println!("# CuART figure regeneration (scale 1/{scale}, output {out_dir}/)\n");
    let mut summary = String::new();
    for id in &ids {
        let start = Instant::now();
        eprintln!("[{id}] running ...");
        let fig = figures::run(id, &ctx);
        fig.write_csv(&ctx.out_dir).expect("write CSV");
        let elapsed = start.elapsed().as_secs_f64();
        eprintln!("[{id}] done in {elapsed:.1}s -> {out_dir}/{id}.csv");
        let md = fig.to_markdown();
        println!("{md}");
        summary.push_str(&md);
    }
    std::fs::create_dir_all(&ctx.out_dir).expect("create output dir");
    std::fs::write(ctx.out_dir.join("SUMMARY.md"), summary).expect("write summary");
    println!("wrote {out_dir}/SUMMARY.md");
    if let Some(t) = &telemetry {
        let path = ctx.out_dir.join("telemetry.json");
        std::fs::write(&path, t.snapshot().to_json()).expect("write telemetry snapshot");
        println!("wrote {}", path.display());
    }
}
