//! Regenerate the paper's figures. See `cuart-bench` crate docs.
//!
//! ```text
//! figures all                    # every figure at 1/16 scale
//! figures fig10 fig17            # selected figures
//! figures all --scale 64         # smaller/faster
//! figures all --full             # paper-scale (needs a big machine)
//! figures all --out results/     # output directory (default: results/)
//! figures all --telemetry        # also dump results/telemetry.json
//! figures fig19 --smoke          # CI-sized sweep (threads/ops shrunk)
//! ```

use cuart_bench::{figures, RunCtx};
use cuart_telemetry::Telemetry;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 16usize;
    let mut out_dir = "results".to_string();
    let mut want_telemetry = false;
    let mut smoke = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes an integer");
            }
            "--full" => scale = 1,
            "--out" => {
                i += 1;
                out_dir = args[i].clone();
            }
            "--telemetry" => want_telemetry = true,
            "--smoke" => smoke = true,
            "all" => ids.extend(figures::ALL.iter().map(|s| s.to_string())),
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: figures <all|figN ...> [--scale N] [--full] [--out DIR] [--telemetry] [--smoke]"
        );
        eprintln!("known figures: {:?}", figures::ALL);
        std::process::exit(2);
    }
    ids.dedup();

    let telemetry = want_telemetry.then(|| Arc::new(Telemetry::new()));
    let mut ctx = RunCtx::new(scale, &out_dir).with_smoke(smoke);
    if let Some(t) = &telemetry {
        if !t.is_enabled() {
            eprintln!("warning: built without the `telemetry` feature; snapshot will be empty");
        }
        ctx = ctx.with_telemetry(t.clone());
    }
    println!("# CuART figure regeneration (scale 1/{scale}, output {out_dir}/)\n");
    let mut summary = String::new();
    for id in &ids {
        let start = Instant::now();
        eprintln!("[{id}] running ...");
        let fig = figures::run(id, &ctx);
        fig.write_csv(&ctx.out_dir).expect("write CSV");
        let elapsed = start.elapsed().as_secs_f64();
        eprintln!("[{id}] done in {elapsed:.1}s -> {out_dir}/{id}.csv");
        let md = fig.to_markdown();
        println!("{md}");
        summary.push_str(&md);
    }
    std::fs::create_dir_all(&ctx.out_dir).expect("create output dir");
    std::fs::write(ctx.out_dir.join("SUMMARY.md"), summary).expect("write summary");
    println!("wrote {out_dir}/SUMMARY.md");
    if let Some(t) = &telemetry {
        let path = ctx.out_dir.join("telemetry.json");
        std::fs::write(&path, t.snapshot().to_json()).expect("write telemetry snapshot");
        println!("wrote {}", path.display());
    }
}
