//! # cuart-bench — the figure-regeneration harness
//!
//! One module per figure of the paper's evaluation (§4). The `figures`
//! binary runs them and writes a CSV per figure plus a markdown summary:
//!
//! ```text
//! cargo run -p cuart-bench --release --bin figures -- all
//! cargo run -p cuart-bench --release --bin figures -- fig10 fig17
//! cargo run -p cuart-bench --release --bin figures -- all --scale 64
//! cargo run -p cuart-bench --release --bin figures -- all --full
//! ```
//!
//! ## Scaling
//!
//! The paper's evaluation runs trees of up to 144 M entries on a 2 TB
//! server. Scaled runs divide every tree size by `--scale` (default 16)
//! **and shrink the simulated L2 caches by the same factor**, so the
//! cache-residency regime of every sweep point matches the paper's: a tree
//! that overflowed the A100's 40 MB L2 at full scale also overflows the
//! scaled L2. Relative results (who wins, crossovers, droops) are
//! preserved; absolute MOps/s are *not* expected to match the paper
//! (different substrate), only the shapes.

#![warn(missing_docs)]

pub mod context;
pub mod figures;
pub mod regress;
pub mod series;

pub use context::RunCtx;
pub use series::{Figure, Series};
