//! Figure data model and CSV/markdown rendering.

use std::fmt::Write as _;
use std::path::Path;

/// One line of a figure: a labelled sequence of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (e.g. `"CuART"`, `"GRT-OpenCL"`).
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Maximum y value (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// A complete regenerated figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `"fig10"`.
    pub id: String,
    /// Human title copied from the paper caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label (usually MOps/s).
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New empty figure.
    pub fn new(id: &str, title: &str, x_label: &str, y_label: &str) -> Self {
        Figure {
            id: id.to_string(),
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
        }
    }

    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as CSV: header `x,<label>...`, one row per x.
    pub fn to_csv(&self) -> String {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            write!(out, ",{}", s.label.replace(',', ";")).expect("string write");
        }
        out.push('\n');
        for x in xs {
            write!(out, "{x}").expect("string write");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => write!(out, ",{y:.4}").expect("string write"),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as a markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        write!(out, "| {} |", self.x_label).expect("string write");
        for s in &self.series {
            write!(out, " {} |", s.label).expect("string write");
        }
        out.push('\n');
        write!(out, "|---|").expect("string write");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            write!(out, "| {x} |").expect("string write");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => write!(out, " {y:.2} |").expect("string write"),
                    None => out.push_str("  |"),
                }
            }
            out.push('\n');
        }
        out.push('\n');
        out
    }

    /// Write `<id>.csv` into `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut fig = Figure::new("figX", "Test figure", "batch", "MOps/s");
        let mut a = Series::new("CuART");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("GRT");
        b.push(1.0, 5.0);
        fig.series.push(a);
        fig.series.push(b);
        fig
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "batch,CuART,GRT");
        assert_eq!(lines[1], "1,10.0000,5.0000");
        assert_eq!(lines[2], "2,20.0000,");
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### figX"));
        assert!(md.contains("| CuART |"));
        assert!(md.contains("| 1 | 10.00 | 5.00 |"));
    }

    #[test]
    fn series_lookup_helpers() {
        let fig = sample();
        assert_eq!(fig.series("CuART").unwrap().y_at(2.0), Some(20.0));
        assert!(fig.series("nope").is_none());
        assert_eq!(fig.series("CuART").unwrap().max_y(), 20.0);
    }

    #[test]
    fn csv_file_roundtrip() {
        let dir = std::env::temp_dir().join("cuart-bench-test");
        sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("figX.csv")).unwrap();
        assert!(content.starts_with("batch,"));
    }
}
