//! fig-regress — a perf-regression gate over a pinned smoke workload.
//!
//! Runs a fixed, fully deterministic serving workload (8 Ki keys, batches
//! of 1 Ki, pinned RTX 3090 model, fixed seeds) directly through
//! [`cuart::CuartSession`] batches, and distils it to a small set of
//! metrics: modeled kernel-side throughput per op kind, plus the share of
//! modeled batch time each pipeline stage consumes (from the recorded
//! span trees). Because every number is modeled, the metrics are exact
//! across runs and machines — any drift is a *code* change, not noise.
//!
//! `figures fig-regress --update-baseline` writes `results/baseline.json`;
//! plain `figures fig-regress` compares against it and fails the process
//! when throughput drops (or stage shares drift) past `--threshold`.

use cuart::{CuartConfig, CuartIndex};
use cuart_gpu_sim::devices;
use cuart_telemetry::Telemetry;
use cuart_workloads::uniform_keys;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Baseline file schema tag, bumped when the metric set changes shape.
pub const SCHEMA: &str = "cuart-fig-regress-v1";

/// Default relative regression threshold (5 %).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

const KEYS: usize = 8192;
const BATCH: usize = 1024;
const KEY_LEN: usize = 8;
const SEED: u64 = 0xC0A7;

/// Run the pinned smoke workload and return its metric map.
///
/// Metrics:
/// - `lookup_mops` / `update_mops` / `insert_mops` — modeled kernel-side
///   throughput per op kind.
/// - `net_lookup_mops` — modeled serving throughput of the same lookup
///   workload pushed through the `cuart-net` loopback RPC path (single
///   sequential client, request size pinned to the batch target, so each
///   request coalesces into exactly one batch and the modeled time is
///   exact across runs despite the TCP transport).
/// - `stage_share.<name>` — fraction of total leaf span time spent in each
///   pipeline stage (`h2d`, `dram`, `exec`, `d2h`), present only when the
///   binary was built with the `telemetry` feature.
pub fn run_smoke() -> BTreeMap<String, f64> {
    let all = uniform_keys(KEYS + 2 * BATCH, KEY_LEN, SEED);
    let (stored, fresh) = all.split_at(KEYS);
    let mut art = cuart_art::Art::new();
    for (i, k) in stored.iter().enumerate() {
        art.insert(k, i as u64 + 1)
            .expect("unique fixed-length keys");
    }
    let telemetry = Arc::new(Telemetry::new());
    let index = CuartIndex::build(&art, &CuartConfig::default()).with_telemetry(telemetry.clone());
    let dev = devices::rtx3090();
    let mut session = index.device_session(&dev);

    let mut metrics = BTreeMap::new();
    let mut lookup_ns = 0.0;
    for b in 0..KEYS / BATCH {
        let queries: Vec<Vec<u8>> = (0..BATCH)
            .map(|i| {
                stored[b.wrapping_mul(BATCH).wrapping_add(i.wrapping_mul(7)) % stored.len()].clone()
            })
            .collect();
        let (_, report) = session.lookup_batch(&queries).expect("smoke lookup");
        lookup_ns += report.time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
    }
    metrics.insert("lookup_mops".into(), KEYS as f64 / lookup_ns * 1000.0);

    let mut update_ns = 0.0;
    for b in 0..4 {
        let ops: Vec<(Vec<u8>, u64)> = (0..BATCH)
            .map(|i| (stored[(b * BATCH + i) % stored.len()].clone(), i as u64))
            .collect();
        let (_, report) = session.update_batch(&ops).expect("smoke update");
        update_ns += report.time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
    }
    metrics.insert(
        "update_mops".into(),
        (4 * BATCH) as f64 / update_ns * 1000.0,
    );

    let mut insert_ns = 0.0;
    for chunk in fresh.chunks(BATCH) {
        let ops: Vec<(Vec<u8>, u64)> = chunk
            .iter()
            .enumerate()
            .map(|(i, k)| (k.clone(), i as u64 + 1_000_000))
            .collect();
        let (_, report) = session.insert_batch(&ops).expect("smoke insert");
        insert_ns += report.time_ns; // cuart-allow: arith-overflow f64 accumulator; float addition cannot wrap
    }
    metrics.insert(
        "insert_mops".into(),
        fresh.len() as f64 / insert_ns * 1000.0,
    );

    metrics.insert("net_lookup_mops".into(), net_smoke_mops(&art, stored, &dev));

    // Stage shares from the recorded span trees: a leaf is any span no
    // other span names as parent; shares are leaf time over total leaf time.
    let snap = telemetry.snapshot();
    let parents: std::collections::BTreeSet<u64> = snap
        .spans
        .iter()
        .filter(|s| s.parent != 0)
        .map(|s| s.parent)
        .collect();
    let mut by_stage: BTreeMap<&str, u64> = BTreeMap::new();
    for s in snap.spans.iter().filter(|s| !parents.contains(&s.id)) {
        *by_stage.entry(s.name.as_str()).or_default() += s.duration_ns();
    }
    let total: u64 = by_stage.values().sum();
    if total > 0 {
        for (stage, ns) in by_stage {
            metrics.insert(format!("stage_share.{stage}"), ns as f64 / total as f64);
        }
    }
    metrics
}

/// Modeled serving throughput of the smoke lookup workload through the
/// `cuart-net` loopback RPC path, in MOps/s.
///
/// Deterministic by construction: one sequential client, each request
/// exactly `BATCH` keys against a scheduler whose batch target is also
/// `BATCH` with a far-off coalescing deadline, so every request flushes
/// as exactly one size-triggered batch. The metric is modeled kernel
/// time plus one launch overhead per batch (the fig19 convention) —
/// wall-clock TCP and thread-handoff time is deliberately excluded, so
/// the number is exact across runs and machines.
fn net_smoke_mops(
    art: &cuart_art::Art<u64>,
    stored: &[Vec<u8>],
    dev: &cuart_gpu_sim::DeviceConfig,
) -> f64 {
    use cuart_host::scheduler::{Scheduler, SchedulerConfig};
    use cuart_net::{NetClient, NetServer, NetServerConfig};

    // A fresh index without telemetry: the serving pass must not leak
    // spans into the stage-share accounting of the in-process passes.
    let index = Arc::new(CuartIndex::build(art, &CuartConfig::default()));
    let cfg = SchedulerConfig {
        batch_target: BATCH,
        deadline: std::time::Duration::from_millis(50),
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(index, *dev, cfg);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let server = NetServer::serve_single(listener, sched, None, NetServerConfig::default())
        .expect("serve on loopback");
    let mut client = NetClient::connect(server.local_addr()).expect("loopback connect");
    for b in 0..KEYS / BATCH {
        let queries: Vec<Vec<u8>> = (0..BATCH)
            .map(|i| {
                stored[b.wrapping_mul(BATCH).wrapping_add(i.wrapping_mul(7)) % stored.len()].clone()
            })
            .collect();
        client.lookup(queries).expect("smoke net lookup");
    }
    drop(client);
    server.shutdown_handle().shutdown();
    let report = server.join().expect("clean drain");
    assert_eq!(report.served_ops, KEYS as u64, "every key must be served");
    let stats = report.sched.aggregate();
    assert_eq!(
        stats.batches,
        (KEYS / BATCH) as u64,
        "one batch per request"
    );
    let total_ns = stats.kernel_time_ns + stats.batches as f64 * dev.launch_overhead_us * 1_000.0;
    stats.keys_dispatched as f64 * 1_000.0 / total_ns
}

/// Serialize a metric map as the baseline JSON document.
pub fn to_json(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"workload\": \"{KEYS} keys, batch {BATCH}, rtx3090, seed {SEED}\","
    );
    out.push_str("  \"metrics\": {\n");
    let last = metrics.len().saturating_sub(1);
    for (i, (k, v)) in metrics.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        let _ = writeln!(out, "    \"{k}\": {v:.6}{comma}");
    }
    out.push_str("  }\n}\n");
    out
}

/// Parse a baseline document produced by [`to_json`].
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let doc = cuart_telemetry::json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(SCHEMA) => {}
        other => {
            return Err(format!(
                "unknown baseline schema {other:?}, expected {SCHEMA:?}"
            ))
        }
    }
    let metrics = doc.get("metrics").ok_or("missing \"metrics\" object")?;
    match metrics {
        cuart_telemetry::json::Value::Obj(map) => map
            .iter()
            .map(|(k, v)| {
                v.as_f64()
                    .map(|f| (k.clone(), f))
                    .ok_or_else(|| format!("metric {k:?} is not a number"))
            })
            .collect(),
        _ => Err("\"metrics\" is not an object".into()),
    }
}

/// Compare `current` against `baseline`. Returns the list of regressions
/// (empty = gate passes). Throughput metrics (`*_mops`) regress when they
/// drop more than `threshold` relative; `stage_share.*` metrics regress
/// when they drift more than `threshold` absolute in either direction —
/// a stage silently growing its share is exactly the kind of change the
/// gate exists to surface. When `current` carries no stage shares at all
/// (built without telemetry), share metrics are skipped rather than
/// reported missing.
pub fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    threshold: f64,
) -> Vec<String> {
    let have_shares = current.keys().any(|k| k.starts_with("stage_share."));
    let mut regressions = Vec::new();
    for (name, &base) in baseline {
        let is_share = name.starts_with("stage_share.");
        if is_share && !have_shares {
            continue;
        }
        let Some(&cur) = current.get(name) else {
            regressions.push(format!(
                "{name}: missing from current run (baseline {base:.4})"
            ));
            continue;
        };
        if is_share {
            if (cur - base).abs() > threshold {
                regressions.push(format!(
                    "{name}: share drifted {base:.4} -> {cur:.4} (|Δ| {:.4} > {threshold})",
                    (cur - base).abs()
                ));
            }
        } else if cur < base * (1.0 - threshold) {
            regressions.push(format!(
                "{name}: {base:.2} -> {cur:.2} ({:+.1}% < -{:.0}%)",
                (cur / base - 1.0) * 100.0,
                threshold * 100.0
            ));
        }
    }
    regressions
}

/// Human-readable side-by-side of every metric, baseline vs current.
pub fn diff_report(current: &BTreeMap<String, f64>, baseline: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (name, &cur) in current {
        match baseline.get(name) {
            Some(&base) if base != 0.0 => {
                let _ = writeln!(
                    out,
                    "  {name:<24} baseline {base:>12.4}  current {cur:>12.4}  ({:+.2}%)",
                    (cur / base - 1.0) * 100.0
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  {name:<24} baseline       (none)  current {cur:>12.4}"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_metrics_are_deterministic() {
        let a = run_smoke();
        let b = run_smoke();
        assert_eq!(a, b, "modeled metrics must be exact across runs");
        assert!(a["lookup_mops"] > 0.0);
        assert!(a["update_mops"] > 0.0);
        assert!(a["insert_mops"] > 0.0);
        assert!(a["net_lookup_mops"] > 0.0);
        #[cfg(feature = "telemetry")]
        {
            let share_sum: f64 = a
                .iter()
                .filter(|(k, _)| k.starts_with("stage_share."))
                .map(|(_, v)| v)
                .sum();
            assert!(
                (share_sum - 1.0).abs() < 1e-9,
                "shares sum to 1, got {share_sum}"
            );
            assert!(a.contains_key("stage_share.exec"), "{a:?}");
            assert!(a.contains_key("stage_share.h2d"), "{a:?}");
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let metrics = run_smoke();
        let parsed = parse_baseline(&to_json(&metrics)).unwrap();
        assert_eq!(parsed.len(), metrics.len());
        for (k, v) in &metrics {
            assert!((parsed[k] - v).abs() < 1e-5, "{k}: {v} vs {}", parsed[k]);
        }
        assert!(parse_baseline("{\"schema\":\"other\"}").is_err());
        assert!(parse_baseline("not json").is_err());
    }

    #[test]
    fn compare_flags_throughput_drops_and_share_drift() {
        let base: BTreeMap<String, f64> = [
            ("lookup_mops".to_string(), 100.0),
            ("stage_share.exec".to_string(), 0.50),
        ]
        .into();
        // Within threshold: pass.
        let ok: BTreeMap<String, f64> = [
            ("lookup_mops".to_string(), 97.0),
            ("stage_share.exec".to_string(), 0.53),
        ]
        .into();
        assert!(compare(&ok, &base, 0.05).is_empty());
        // Throughput drop and share drift: both flagged.
        let bad: BTreeMap<String, f64> = [
            ("lookup_mops".to_string(), 90.0),
            ("stage_share.exec".to_string(), 0.60),
        ]
        .into();
        let regressions = compare(&bad, &base, 0.05);
        assert_eq!(regressions.len(), 2, "{regressions:?}");
        // Faster is never a regression.
        let fast: BTreeMap<String, f64> = [
            ("lookup_mops".to_string(), 150.0),
            ("stage_share.exec".to_string(), 0.50),
        ]
        .into();
        assert!(compare(&fast, &base, 0.05).is_empty());
        // A telemetry-less run skips shares but still checks throughput.
        let no_shares: BTreeMap<String, f64> = [("lookup_mops".to_string(), 100.0)].into();
        assert!(compare(&no_shares, &base, 0.05).is_empty());
        let no_shares_slow: BTreeMap<String, f64> = [("lookup_mops".to_string(), 10.0)].into();
        assert_eq!(compare(&no_shares_slow, &base, 0.05).len(), 1);
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn committed_baseline_matches_current_code() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/baseline.json");
        let text = std::fs::read_to_string(path)
            .expect("results/baseline.json is committed; regenerate with figures fig-regress --update-baseline");
        let baseline = parse_baseline(&text).unwrap();
        let current = run_smoke();
        let regressions = compare(&current, &baseline, DEFAULT_THRESHOLD);
        assert!(
            regressions.is_empty(),
            "committed baseline regressed:\n{}\n{}",
            regressions.join("\n"),
            diff_report(&current, &baseline)
        );
    }
}
