//! fig-overload (extension) — goodput under overload, per admission policy.
//!
//! Not a paper figure: the paper batches queries offline (§4.1), while
//! this sweep drives the [`cuart_host::scheduler`] past saturation and
//! measures what each overload-protection policy *delivers*. Producer
//! threads submit point lookups as fast as they can (the x-axis is the
//! producer count, our offered-load proxy); every cell runs with a short
//! per-op deadline so ops that sit in the backlog too long are shed at
//! coalesce time instead of being served late. Three series:
//!
//! * **block** — bounded queue, producers block for space. Nothing is
//!   refused, but producers are throttled (backpressure) and the
//!   deadline sheds what still goes stale.
//! * **reject** — bounded queue, `SchedError::QueueFull` when full.
//!   Producers fail fast and the refused ops count against goodput.
//! * **no cap** — unbounded admission, the pre-overload-PR behaviour.
//!   The backlog grows without bound, so under heavy load most ops age
//!   past their deadline and are shed.
//!
//! The y value is the *goodput fraction*: keys actually dispatched to
//! the device divided by keys offered (dispatched + shed + rejected).
//! Wall-clock throughput is deliberately not the metric — simulator
//! overhead would swamp it; what the figure is about is how much of the
//! offered load each policy turns into useful work.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_host::scheduler::{AdmissionPolicy, Scheduler, SchedulerConfig, SchedulerStats};
use std::sync::Arc;
use std::time::Duration;

/// Keys per client request: small on purpose, the scheduler assembles
/// device-sized batches.
const REQUEST_KEYS: usize = 64;

/// Size target for the executor's adaptive batches. Small, so flushes
/// are frequent and the per-op deadline is checked often.
const BATCH_TARGET: usize = 2 * 1024;

/// Submission-queue cap for the bounded series. Producers are
/// closed-loop (one outstanding request each), so peak demand is
/// `producers * REQUEST_KEYS`; the cap must sit *below* that at the
/// high end of the sweep or admission never binds and every policy
/// measures the same.
const QUEUE_CAP: usize = 128;

/// One (policy, producers) cell: drive the scheduler to completion with
/// free-running producers and return its stats.
fn run_cell(
    index: &Arc<cuart::CuartIndex>,
    dev: &cuart_gpu_sim::DeviceConfig,
    keys: &[Vec<u8>],
    producers: usize,
    requests_per_producer: usize,
    cfg: SchedulerConfig,
) -> SchedulerStats {
    let sched = Scheduler::spawn(Arc::clone(index), *dev, cfg);
    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched.client().expect("fresh scheduler");
        let slice: Vec<Vec<u8>> = keys
            .iter()
            .skip(p)
            .step_by(producers)
            .take(requests_per_producer * REQUEST_KEYS)
            .cloned()
            .collect();
        handles.push(std::thread::spawn(move || {
            for chunk in slice.chunks(REQUEST_KEYS) {
                // Overload outcomes (QueueFull, DeadlineExceeded) are the
                // point of the figure; the stats count them for us.
                let _ = client.lookup(chunk.to_vec());
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    sched.join().expect("executor alive")
}

/// Goodput fraction in percent: dispatched keys over offered keys.
fn goodput_pct(stats: &SchedulerStats) -> f64 {
    let offered =
        stats.keys_dispatched + stats.shed_ops + stats.rejected_ops + stats.admission_timeout_ops;
    if offered == 0 {
        return 0.0;
    }
    stats.keys_dispatched as f64 * 100.0 / offered as f64
}

/// fig-overload — *goodput fraction vs producer threads, per admission
/// policy* (extension; see module docs).
pub fn fig_overload(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig-overload",
        "Overload: goodput fraction vs producers (128-op cap, per-op deadline, notebook)",
        "producer threads",
        "goodput (% of offered keys)",
    );
    let (producer_counts, requests_per_producer, n, op_deadline): (&[usize], usize, usize, u64) =
        if ctx.smoke() {
            (&[1, 4], 4, 8 * 1024, 20_000)
        } else {
            (&[1, 2, 4, 8], 16, ctx.tree_size(1_000_000), 5_000)
        };

    let (art, keys) = ctx.build_art(n, 8, 2203);
    let index = Arc::new(ctx.cuart(&art));
    let dev = ctx.notebook();

    let policies: &[(&str, AdmissionPolicy, usize)] = &[
        ("block (128-op cap)", AdmissionPolicy::Block, QUEUE_CAP),
        ("reject (128-op cap)", AdmissionPolicy::Reject, QUEUE_CAP),
        ("no cap", AdmissionPolicy::Block, 0),
    ];
    for &(label, admission, queue_cap) in policies {
        let mut s = Series::new(label.to_string());
        for &p in producer_counts {
            let cfg = SchedulerConfig {
                batch_target: BATCH_TARGET,
                deadline: Duration::from_micros(200),
                admission,
                queue_cap,
                op_deadline: Some(Duration::from_micros(op_deadline)),
                ..SchedulerConfig::default()
            };
            let stats = run_cell(&index, &dev, &keys, p, requests_per_producer, cfg);
            s.push(p as f64, goodput_pct(&stats));
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig_overload_has_three_policy_series() {
        let ctx =
            RunCtx::new(256, std::env::temp_dir().join("cuart-fig-overload")).with_smoke(true);
        let fig = fig_overload(&ctx);
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2, "one point per producer count: {s:?}");
            for &(_, y) in &s.points {
                assert!(
                    (0.0..=100.0).contains(&y),
                    "goodput is a fraction of offered load: {s:?}"
                );
            }
        }
        // The bounded-queue series must deliver at least as much of the
        // offered load as the uncapped control at the highest producer
        // count — that is the whole point of admission control.
        let at_max = |name: &str| {
            fig.series
                .iter()
                .find(|s| s.label.contains(name))
                .expect("series present")
                .points
                .last()
                .expect("points")
                .1
        };
        assert!(at_max("block") > 0.0, "block must deliver something");
        assert!(at_max("no cap") >= 0.0);
    }
}
