//! Figure 19 (extension) — the concurrent serving layer.
//!
//! Not a paper figure: the paper batches queries offline (§4.1), while
//! this sweep drives the [`cuart_host::scheduler`] end to end — N
//! producer threads submitting small point-lookup requests, the executor
//! coalescing them into adaptive batches. Two knobs are swept:
//!
//! * **producer threads** (x-axis) — more concurrent producers queue more
//!   keys per flush window, so batches fill closer to the size target,
//! * **flush deadline** (series) — a short deadline trades batch fill
//!   (and thus launch-overhead amortisation and sort locality) for
//!   latency.
//!
//! Each (producers, deadline) cell runs twice, with sorted-batch
//! execution on and off, so the figure shows the §3.1 locality win at
//! serving time rather than in an offline batch.
//!
//! The y value is *modeled device throughput*: keys divided by modeled
//! kernel time plus one launch overhead per dispatched batch. Wall-clock
//! simulator overhead is deliberately excluded — it would swamp the
//! modeled effects the figure is about.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_host::scheduler::{Scheduler, SchedulerConfig, SchedulerStats};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic Fisher–Yates driven by a splitmix64 stream, so the
/// submitted order is unrelated to key order without pulling in an RNG
/// crate.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Keys per client request: small on purpose — the scheduler, not the
/// caller, is supposed to assemble device-sized batches.
const REQUEST_KEYS: usize = 256;

/// Size target for the executor's adaptive batches.
const BATCH_TARGET: usize = 8 * 1024;

/// One (producers, deadline, sorted) cell: run the scheduler to
/// completion and return its stats.
fn run_cell(
    index: &Arc<cuart::CuartIndex>,
    dev: &cuart_gpu_sim::DeviceConfig,
    keys: &[Vec<u8>],
    producers: usize,
    requests_per_producer: usize,
    deadline: Duration,
    sorted: bool,
) -> SchedulerStats {
    let cfg = SchedulerConfig {
        batch_target: BATCH_TARGET,
        deadline,
        sort_batches: sorted,
        ..SchedulerConfig::default()
    };
    let sched = Scheduler::spawn(Arc::clone(index), *dev, cfg);
    let mut handles = Vec::new();
    for p in 0..producers {
        let client = sched.client().expect("fresh scheduler");
        // Each producer walks its own shuffled slice of the key space, so
        // arrival order at the executor is unsorted and interleaved.
        let slice: Vec<Vec<u8>> = keys
            .iter()
            .skip(p)
            .step_by(producers)
            .take(requests_per_producer * REQUEST_KEYS)
            .cloned()
            .collect();
        handles.push(std::thread::spawn(move || {
            for chunk in slice.chunks(REQUEST_KEYS) {
                client.lookup(chunk.to_vec()).expect("scheduler alive");
            }
        }));
    }
    for h in handles {
        h.join().expect("producer thread");
    }
    sched.join().expect("executor alive")
}

/// Modeled serving throughput in MOps/s: launch overhead charged once per
/// dispatched batch, so underfilled batches (short deadlines, few
/// producers) pay for their poor amortisation.
fn modeled_mops(stats: &SchedulerStats, dev: &cuart_gpu_sim::DeviceConfig) -> f64 {
    if stats.keys_dispatched == 0 {
        return 0.0;
    }
    let launch_ns = dev.launch_overhead_us * 1_000.0;
    let total_ns = stats.kernel_time_ns + stats.batches as f64 * launch_ns;
    stats.keys_dispatched as f64 * 1_000.0 / total_ns
}

/// Figure 19 — *serving throughput vs producer threads, per flush deadline,
/// sorted vs unsorted batches* (extension; see module docs).
pub fn fig19(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig19",
        "Serving layer: modeled MOps/s vs producers (scheduler, 8Ki batch target, notebook)",
        "producer threads",
        "modeled MOps/s",
    );
    let (producer_counts, requests_per_producer, n): (&[usize], usize, usize) = if ctx.smoke() {
        (&[1, 4], 2, 16 * 1024)
    } else {
        (&[1, 2, 4, 8], 8, ctx.tree_size(4_000_000))
    };
    let deadlines: &[(u64, &str)] = if ctx.smoke() {
        &[(500, "500us")]
    } else {
        &[(50, "50us"), (500, "500us"), (5_000, "5ms")]
    };

    let (art, mut keys) = ctx.build_art(n, 8, 1901);
    // `RunCtx::cuart` already attaches the context's telemetry, if any.
    let index = Arc::new(ctx.cuart(&art));
    let dev = ctx.notebook();
    // Submission order must be unrelated to key order, or the unsorted
    // control would be accidentally sorted.
    shuffle(&mut keys, 77);

    for &(us, label) in deadlines {
        for sorted in [true, false] {
            let mut s = Series::new(format!(
                "{} deadline {label}",
                if sorted { "sorted" } else { "unsorted" }
            ));
            for &p in producer_counts {
                let stats = run_cell(
                    &index,
                    &dev,
                    &keys,
                    p,
                    requests_per_producer,
                    Duration::from_micros(us),
                    sorted,
                );
                s.push(p as f64, modeled_mops(&stats, &dev));
            }
            fig.series.push(s);
        }
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig19_has_sorted_and_unsorted_series() {
        let ctx = RunCtx::new(256, std::env::temp_dir().join("cuart-fig19")).with_smoke(true);
        let fig = fig19(&ctx);
        assert_eq!(fig.series.len(), 2);
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.max_y() > 0.0, "throughput must be positive: {s:?}");
        }
    }
}
