//! Figure 7 — CPU: classical ART vs the CuART memory layout.
//!
//! Paper caption: *"Lookup throughput on classical ART vs CuART memory
//! layout on CPUs (12 threads, 32ki items per batch, KL = Key Length,
//! workstation)"*. Both engines here are **really measured** (wall time,
//! multi-threaded); expected shape: the contiguous CuART layout wins
//! 2.5× on small (cache-resident) trees, growing toward 10–20× on large
//! ones.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_host::cpu_runner::{measure_art_lookups, measure_cuart_cpu_lookups};
use cuart_workloads::QueryStream;

const THREADS: usize = 12;
const BATCH: usize = 32 * 1024;
const QUERY_BATCHES: usize = 4;

/// Regenerate Figure 7.
pub fn fig7(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig7",
        "CPU lookup: classical ART vs CuART layout (12 threads, 32Ki batch)",
        "tree entries",
        "MOps/s",
    );
    let paper_sizes = [65_536usize, 1 << 20, 4 << 20, 26_000_000];
    let key_lens = [8usize, 32];
    for &kl in &key_lens {
        let mut art_series = Series::new(format!("ART KL={kl}"));
        let mut cuart_series = Series::new(format!("CuART KL={kl}"));
        for &paper_n in &paper_sizes {
            let n = ctx.tree_size(paper_n);
            let (art, keys) = ctx.build_art(n, kl, 7 + kl as u64);
            let index = ctx.cuart(&art);
            let mut qs = QueryStream::new(keys, 1.0, 13);
            let queries: Vec<Vec<u8>> = (0..QUERY_BATCHES)
                .flat_map(|_| qs.next_batch(BATCH))
                .collect();
            art_series.push(n as f64, measure_art_lookups(&art, &queries, THREADS));
            cuart_series.push(
                n as f64,
                measure_cuart_cpu_lookups(&index, &queries, THREADS),
            );
        }
        fig.series.push(art_series);
        fig.series.push(cuart_series);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_cuart_layout_wins() {
        // Heavy scaling for test speed; the ordering must still hold.
        let ctx = RunCtx::new(512, std::env::temp_dir());
        let fig = fig7(&ctx);
        assert_eq!(fig.series.len(), 4);
        for kl in [8usize, 32] {
            let art = fig.series(&format!("ART KL={kl}")).unwrap();
            let cuart = fig.series(&format!("CuART KL={kl}")).unwrap();
            assert_eq!(art.points.len(), cuart.points.len());
            // On the largest tree the contiguous layout must win clearly.
            let (last_x, art_y) = *art.points.last().unwrap();
            let cuart_y = cuart.y_at(last_x).unwrap();
            assert!(
                cuart_y > art_y,
                "KL={kl}: CuART layout {cuart_y} !> ART {art_y} at n={last_x}"
            );
        }
    }
}
