//! Figures 13/14 — the hybrid CPU/GPU long-key split.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_grt::ApiProfile;
use cuart_host::gpu_runner::{run_cuart_lookups, run_grt_lookups, E2eReport, RunConfig};
use cuart_host::hybrid::{hybrid_throughput_traced, CPU_LONG_KEY_NS};
use cuart_workloads::QueryStream;

const CPU_THREADS: usize = 56; // the paper's server: 2x Epyc 7752
const BATCH: usize = 32 * 1024;

fn gpu_baseline(ctx: &RunCtx) -> (E2eReport, E2eReport, E2eReport) {
    let n = ctx.tree_size(26_000_000);
    let (art, keys) = ctx.build_art(n, 32, 1301);
    let dev = ctx.server();
    let cfg = RunConfig::default();
    let cuart = ctx.cuart(&art);
    let grt = ctx.grt(&art);
    let mut qs = QueryStream::new(keys.clone(), 1.0, 13);
    let cu = run_cuart_lookups(&cuart, &dev, &cfg, &mut qs);
    let mut qs = QueryStream::new(keys.clone(), 1.0, 13);
    let gc = run_grt_lookups(&grt, ApiProfile::Cuda, &dev, &cfg, &mut qs);
    let mut qs = QueryStream::new(keys, 1.0, 13);
    let go = run_grt_lookups(&grt, ApiProfile::OpenCl, &dev, &cfg, &mut qs);
    (cu, gc, go)
}

/// Figure 13 — *"Hybrid CPU/GPU query approach (8 threads GPU / 56 threads
/// CPU, 32+byte keys, 32ki items per batch, 26Mi entries, server)"*.
/// Long keys are processed on the CPU; expected: throughput collapses
/// fast — ~50 % at 3 % CPU keys — then flattens into a CPU-bound tail.
pub fn fig13(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig13",
        "Hybrid: throughput vs long-key fraction (8 GPU / 56 CPU threads, server)",
        "long keys on CPU (%)",
        "MOps/s",
    );
    let (cu, _, _) = gpu_baseline(ctx);
    let mut s = Series::new("CuART hybrid");
    for pct in [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 25.0, 50.0] {
        let r = hybrid_throughput_traced(
            &cu,
            BATCH,
            pct / 100.0,
            CPU_THREADS,
            CPU_LONG_KEY_NS,
            ctx.telemetry().map(|t| &**t),
        );
        s.push(pct, r.mops);
    }
    fig.series.push(s);
    fig
}

/// Figure 14 — *"Hybrid CPU/GPU query approach (8 threads GPU / 56 threads
/// CPU, 5% CPU keys, 32ki items per batch, 26Mi entries, server)"*. A
/// control experiment with 5 % **short** keys forced onto the CPU:
/// expected — every GPU engine converges to (almost) the same CPU-bound
/// level.
pub fn fig14(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig14",
        "Hybrid: all engines with 5% of keys on the CPU (server)",
        "engine (0=CuART, 1=GRT-CUDA, 2=GRT-OpenCL)",
        "MOps/s",
    );
    let (cu, gc, go) = gpu_baseline(ctx);
    let mut gpu_only = Series::new("GPU only");
    let mut with_cpu = Series::new("5% keys on CPU");
    for (i, r) in [&cu, &gc, &go].iter().enumerate() {
        gpu_only.push(i as f64, r.mops);
        let h = hybrid_throughput_traced(
            r,
            BATCH,
            0.05,
            CPU_THREADS,
            CPU_LONG_KEY_NS,
            ctx.telemetry().map(|t| &**t),
        );
        with_cpu.push(i as f64, h.mops);
    }
    fig.series.push(gpu_only);
    fig.series.push(with_cpu);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> RunCtx {
        RunCtx::new(400, std::env::temp_dir())
    }

    #[test]
    fn fig13_collapse_shape() {
        let fig = fig13(&tiny_ctx());
        let s = fig.series("CuART hybrid").unwrap();
        let base = s.y_at(0.0).unwrap();
        let at3 = s.y_at(3.0).unwrap();
        let at50 = s.y_at(50.0).unwrap();
        assert!(
            at3 < 0.75 * base,
            "3% CPU keys must hurt badly: {at3} vs {base}"
        );
        assert!(at50 < at3);
        // Monotone non-increasing.
        for w in s.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn fig14_cpu_bound_convergence() {
        let fig = fig14(&tiny_ctx());
        let gpu = fig.series("GPU only").unwrap();
        let cpu = fig.series("5% keys on CPU").unwrap();
        // GPU-only differs per engine; with the CPU leg they converge.
        let spread_gpu = gpu.max_y() - gpu.points.iter().map(|(_, y)| *y).fold(f64::MAX, f64::min);
        let spread_cpu = cpu.max_y() - cpu.points.iter().map(|(_, y)| *y).fold(f64::MAX, f64::min);
        assert!(spread_cpu < spread_gpu);
        // And the CPU leg costs everyone throughput.
        for i in 0..3 {
            assert!(cpu.y_at(i as f64).unwrap() <= gpu.y_at(i as f64).unwrap());
        }
    }
}
