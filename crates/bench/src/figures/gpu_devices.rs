//! Figure 18 — the memory-architecture comparison (§4.6).

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_grt::ApiProfile;
use cuart_host::gpu_runner::{
    run_cuart_lookups, run_cuart_updates, run_grt_lookups, run_grt_updates, RunConfig,
};
use cuart_workloads::{QueryStream, UpdateStream};

/// Figure 18 — *"Lookup/Update throughput on different GPUs (16Mi entries,
/// 8 threads, 32ki items per batch, 32 byte keys)"*. Expected: CuART above
/// GRT on every device; the GDDR6X RTX 3090 beats the HBM2 A100 (higher
/// command clock → cheaper random transactions); the GTX 1070 trails; GRT
/// updates are near-constant (host-bound) across devices.
pub fn fig18(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig18",
        "Lookup/update throughput across GPUs (16Mi entries, 32B keys, 32Ki batch)",
        "device (0=A100, 1=RTX3090, 2=GTX1070)",
        "MOps/s",
    );
    let n = ctx.tree_size(16 << 20);
    let (art, keys) = ctx.build_art(n, 32, 1801);
    let cuart = ctx.cuart(&art);
    let cfg = RunConfig {
        total_queries: 1 << 18,
        sample_batches: 2,
        ..RunConfig::default()
    };
    let devices = [ctx.server(), ctx.workstation(), ctx.notebook()];
    let slots = crate::figures::update::table_slots(ctx);

    let mut cu_lookup = Series::new("CuART lookup");
    let mut grt_lookup = Series::new("GRT lookup");
    let mut cu_update = Series::new("CuART update");
    let mut grt_update = Series::new("GRT update");
    for (i, dev) in devices.iter().enumerate() {
        let x = i as f64;
        let mut qs = QueryStream::new(keys.clone(), 1.0, 18);
        cu_lookup.push(x, run_cuart_lookups(&cuart, dev, &cfg, &mut qs).mops);
        let grt = ctx.grt(&art);
        let mut qs = QueryStream::new(keys.clone(), 1.0, 18);
        grt_lookup.push(
            x,
            run_grt_lookups(&grt, ApiProfile::Cuda, dev, &cfg, &mut qs).mops,
        );
        let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 18);
        cu_update.push(x, run_cuart_updates(&cuart, dev, &cfg, &mut us, slots).mops);
        let mut grt = ctx.grt(&art);
        let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 18);
        grt_update.push(x, run_grt_updates(&mut grt, dev, &cfg, &mut us).mops);
    }
    fig.series.push(cu_lookup);
    fig.series.push(grt_lookup);
    fig.series.push(cu_update);
    fig.series.push(grt_update);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "heavy sweep; covered by the figures binary (run with --ignored)"]
    fn fig18_device_and_engine_ordering() {
        let ctx = RunCtx::new(400, std::env::temp_dir());
        let fig = fig18(&ctx);
        let cu = fig.series("CuART lookup").unwrap();
        let grt = fig.series("GRT lookup").unwrap();
        // CuART above GRT on every device.
        for i in 0..3 {
            let x = i as f64;
            assert!(
                cu.y_at(x).unwrap() > grt.y_at(x).unwrap(),
                "device {i}: CuART must beat GRT"
            );
        }
        // The GTX 1070 is the slowest device for CuART lookups.
        assert!(cu.y_at(2.0).unwrap() < cu.y_at(0.0).unwrap());
        assert!(cu.y_at(2.0).unwrap() < cu.y_at(1.0).unwrap());
        // GRT updates are host-bound: near-constant across devices.
        let gu = fig.series("GRT update").unwrap();
        let spread = gu.max_y() / gu.points.iter().map(|(_, y)| *y).fold(f64::MAX, f64::min);
        assert!(spread < 2.0, "GRT update spread {spread}");
        // CuART updates dwarf GRT updates everywhere.
        let cuu = fig.series("CuART update").unwrap();
        for i in 0..3 {
            assert!(cuu.y_at(i as f64).unwrap() > gu.y_at(i as f64).unwrap());
        }
    }
}
