//! One module per paper figure; [`run`] dispatches by id.

pub mod cpu;
pub mod gpu_devices;
pub mod hybrid;
pub mod lookup;
pub mod net;
pub mod overload;
pub mod scaleout;
pub mod serving;
pub mod update;

use crate::context::RunCtx;
use crate::series::Figure;

/// All figure ids in paper order (`fig19`, `fig-overload`, `fig-scaleout`
/// and `fig-net` are this repo's serving-layer extensions, not paper
/// figures).
pub const ALL: &[&str] = &[
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig-overload",
    "fig-scaleout",
    "fig-net",
];

/// Run one figure by id.
pub fn run(id: &str, ctx: &RunCtx) -> Figure {
    match id {
        "fig7" => cpu::fig7(ctx),
        "fig8" => lookup::fig8(ctx),
        "fig9" => lookup::fig9(ctx),
        "fig10" => lookup::fig10(ctx),
        "fig11" => lookup::fig11(ctx),
        "fig12" => lookup::fig12(ctx),
        "fig13" => hybrid::fig13(ctx),
        "fig14" => hybrid::fig14(ctx),
        "fig15" => update::fig15(ctx),
        "fig16" => update::fig16(ctx),
        "fig17" => update::fig17(ctx),
        "fig18" => gpu_devices::fig18(ctx),
        "fig19" => serving::fig19(ctx),
        "fig-overload" => overload::fig_overload(ctx),
        "fig-scaleout" => scaleout::fig_scaleout(ctx),
        "fig-net" => net::fig_net(ctx),
        other => panic!("unknown figure id {other:?}; known: {ALL:?}"),
    }
}
