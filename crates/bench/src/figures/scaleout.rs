//! Figure "scaleout" (extension) — multi-device sharded serving.
//!
//! Not a paper figure: the paper serves from one GPU, while the ROADMAP
//! north-star asks for production-scale serving across several devices.
//! This sweep drives the [`cuart_host::sharded`] layer end to end — N
//! producer threads submitting point-lookup requests through a
//! [`ShardedClient`], the router splitting each request by the §3.3 LUT
//! prefix and dispatching the sub-batches concurrently to one scheduler
//! per simulated device.
//!
//! * **shard count** (x-axis) — the fleet size, one shard per device,
//! * **fleet mix** (series) — a homogeneous RTX 3090 fleet next to a
//!   mixed fleet that replaces half the devices with GTX 1070s, showing
//!   how the slowest shard gates aggregate throughput.
//!
//! The y value is *modeled aggregate throughput*
//! ([`ShardedStats::modeled_aggregate_mops`]): total keys over the
//! slowest shard's modeled busy time (kernel time plus one launch
//! overhead per batch — the fig19 convention, maxed across shards
//! because shards run concurrently on separate devices). Wall-clock
//! simulator overhead is deliberately excluded.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_gpu_sim::DeviceConfig;
use cuart_host::scheduler::SchedulerConfig;
use cuart_host::sharded::{ShardedScheduler, ShardedStats};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic Fisher–Yates driven by a splitmix64 stream (same idiom
/// as fig19), so submission order is unrelated to key order.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        items.swap(i, (next() % (i as u64 + 1)) as usize);
    }
}

/// Keys per client request. Deliberately device-sized (half the batch
/// target), unlike fig19's small requests: the router splits every
/// request N ways, so tiny requests would fragment into per-shard
/// batches that pay one launch per round regardless of N and the sweep
/// would measure launch fragmentation, not the kernel-time split that
/// scale-out is about. fig19 covers the small-request coalescing regime.
const REQUEST_KEYS: usize = 4096;

/// Size target for each shard's adaptive batches.
const BATCH_TARGET: usize = 8 * 1024;

/// One fleet cell: run every key through the sharded scheduler from
/// `producers` threads and return the fleet stats.
fn run_cell(
    index: &Arc<cuart::CuartIndex>,
    devices: &[DeviceConfig],
    keys: &[Vec<u8>],
    producers: usize,
) -> ShardedStats {
    let cfg = SchedulerConfig {
        batch_target: BATCH_TARGET,
        deadline: Duration::from_micros(500),
        ..SchedulerConfig::default()
    };
    let sharded =
        ShardedScheduler::spawn(Arc::clone(index), devices, cfg).expect("non-empty fleet");
    std::thread::scope(|scope| {
        for p in 0..producers {
            let client = sharded.client().expect("fresh fleet");
            let slice: Vec<Vec<u8>> = keys.iter().skip(p).step_by(producers).cloned().collect();
            scope.spawn(move || {
                for chunk in slice.chunks(REQUEST_KEYS) {
                    client.lookup(chunk.to_vec()).expect("fleet alive");
                }
            });
        }
    });
    sharded.join().expect("executors alive")
}

/// A fleet of `n` devices: homogeneous workstations, or — when `mixed`
/// — workstations with the second half replaced by notebooks.
fn fleet(ctx: &RunCtx, n: usize, mixed: bool) -> Vec<DeviceConfig> {
    (0..n)
        .map(|i| {
            if mixed && i >= n.div_ceil(2) {
                ctx.notebook()
            } else {
                ctx.workstation()
            }
        })
        .collect()
}

/// Figure "scaleout" — *modeled aggregate MOps/s vs shard count,
/// homogeneous vs mixed fleet* (extension; see module docs).
pub fn fig_scaleout(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig-scaleout",
        "Sharded serving: modeled aggregate MOps/s vs shard count (8Ki batch target)",
        "shards (devices)",
        "modeled aggregate MOps/s",
    );
    let (shard_counts, producers, n): (&[usize], usize, usize) = if ctx.smoke() {
        (&[1, 2], 2, 16 * 1024)
    } else {
        (&[1, 2, 4, 8], 4, ctx.tree_size(4_000_000))
    };

    let (art, mut keys) = ctx.build_art(n, 8, 2113);
    let index = Arc::new(ctx.cuart(&art));
    // Submission order must be unrelated to key order so every request
    // fans out across the whole fleet.
    shuffle(&mut keys, 101);

    let mixes: &[(bool, &str)] = if ctx.smoke() {
        &[(false, "homogeneous rtx3090")]
    } else {
        &[
            (false, "homogeneous rtx3090"),
            (true, "mixed rtx3090+gtx1070"),
        ]
    };
    for &(mixed, label) in mixes {
        let mut s = Series::new(label);
        for &shards in shard_counts {
            let devs = fleet(ctx, shards, mixed);
            let stats = run_cell(&index, &devs, &keys, producers);
            s.push(shards as f64, stats.modeled_aggregate_mops());
        }
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig_scaleout_scales_with_shards() {
        let ctx =
            RunCtx::new(256, std::env::temp_dir().join("cuart-fig-scaleout")).with_smoke(true);
        let fig = fig_scaleout(&ctx);
        assert_eq!(fig.series.len(), 1);
        let s = &fig.series[0];
        assert_eq!(s.points.len(), 2);
        for &(x, y) in &s.points {
            assert!(y > 0.0, "throughput must be positive at {x} shards");
        }
        let one = s.points[0].1;
        let two = s.points[1].1;
        assert!(
            two > one,
            "two shards must beat one: {one:.1} vs {two:.1} MOps/s"
        );
    }
}
