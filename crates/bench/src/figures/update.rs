//! Figures 15–17 — the update/delete engine (§4.5).

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_host::cpu_runner::measure_art_atomic_updates;
use cuart_host::gpu_runner::{run_cuart_updates, run_grt_updates, RunConfig};
use cuart_workloads::UpdateStream;
use std::sync::Mutex;

/// The paper's hash table: 1 Mi entries (§4.5), scaled with the context so
/// the batch-vs-table load factors — which drive the Figure 15 droop —
/// match the paper's. Floored at twice the default 32 Ki batch so heavily
/// scaled runs cannot overflow the linear-probing table.
pub(crate) fn table_slots(ctx: &RunCtx) -> usize {
    ((1usize << 20) / ctx.scale).max(2 * 32 * 1024)
}

/// Figure 15 — *"CuART Update throughput with increasing batch size for
/// different tree sizes (…, 8 threads, 16 byte keys, workstation)"*.
/// Expected: small trees stay flat (few distinct leaves -> hash table
/// stays sparse), large trees droop as batches approach the table size
/// and linear probing degenerates.
pub fn fig15(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig15",
        "CuART update throughput vs batch size, per tree size (16B keys, workstation)",
        "batch size",
        "MOps/s",
    );
    let dev = ctx.workstation();
    let slots = table_slots(ctx);
    let batches: Vec<usize> = [1024usize, 4096, 16384, 65536]
        .iter()
        .copied()
        .chain((slots == 1 << 20).then_some(1 << 20))
        .filter(|&b| b <= slots)
        .collect();
    for paper_n in [65_536usize, 1 << 20, 16 << 20] {
        let n = ctx.tree_size(paper_n);
        let (art, keys) = ctx.build_art(n, 16, 1500 + n as u64);
        let index = ctx.cuart(&art);
        let mut s = Series::new(format!("tree {paper_n} (scaled {n})"));
        for &batch in &batches {
            let cfg = RunConfig {
                batch_size: batch,
                total_queries: batch * 8,
                sample_batches: 2,
                ..RunConfig::default()
            };
            let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 15);
            let r = run_cuart_updates(&index, &dev, &cfg, &mut us, slots);
            s.push(batch as f64, r.mops);
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 16 — *"CuART Update throughput with increasing key length for
/// different tree sizes (16ki items per batch, 8 threads, workstation)"*.
/// Expected: small trees far faster (cache effects); throughput decreases
/// with key length (comparison cost).
pub fn fig16(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig16",
        "CuART update throughput vs key length, per tree size (16Ki batch, workstation)",
        "key length (bytes)",
        "MOps/s",
    );
    let dev = ctx.workstation();
    let slots = table_slots(ctx);
    let cfg = RunConfig {
        batch_size: 16 * 1024,
        total_queries: 1 << 18,
        sample_batches: 2,
        ..RunConfig::default()
    };
    for paper_n in [65_536usize, 1 << 20, 16 << 20] {
        let n = ctx.tree_size(paper_n);
        let mut s = Series::new(format!("tree {paper_n} (scaled {n})"));
        for kl in [4usize, 8, 16, 24, 32] {
            let (art, keys) = ctx.build_art(n, kl, 1600 + (n + kl) as u64);
            let index = ctx.cuart(&art);
            let mut us = UpdateStream::new(keys, 0.0, 0.0, 16);
            let r = run_cuart_updates(&index, &dev, &cfg, &mut us, slots);
            s.push(kl as f64, r.mops);
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 17 — *"Update throughput of CuART, GRT and the CPU (16Mi
/// entries, 8 threads, 32ki items per batch, workstation)"*. Expected
/// shape: CuART ≫ GRT ≫ CPU — the paper reports ~120 / ~13 / ~2.5 MOps/s
/// (≈10× and ≈50×).
pub fn fig17(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig17",
        "Update throughput: CuART vs GRT vs CPU (16Mi entries, 32Ki batch, workstation)",
        "engine (0=CuART, 1=GRT, 2=CPU ART)",
        "MOps/s",
    );
    let dev = ctx.workstation();
    let n = ctx.tree_size(16 << 20);
    let (art, keys) = ctx.build_art(n, 16, 1701);
    let cfg = RunConfig {
        total_queries: 1 << 18,
        sample_batches: 2,
        ..RunConfig::default()
    };
    let mut s = Series::new("update throughput");

    let index = ctx.cuart(&art);
    let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 17);
    s.push(
        0.0,
        run_cuart_updates(&index, &dev, &cfg, &mut us, table_slots(ctx)).mops,
    );

    let mut grt = ctx.grt(&art);
    let mut us = UpdateStream::new(keys.clone(), 0.0, 0.0, 17);
    s.push(1.0, run_grt_updates(&mut grt, &dev, &cfg, &mut us).mops);

    // CPU: the classic ART under a global lock, really measured.
    let mut us = UpdateStream::new(keys, 0.0, 0.0, 17);
    let ops = us.next_batch(cfg.batch_size, u64::MAX - 1);
    let locked = Mutex::new(art);
    s.push(2.0, measure_art_atomic_updates(&locked, &ops, 8));

    fig.series.push(s);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> RunCtx {
        RunCtx::new(400, std::env::temp_dir())
    }

    #[test]
    #[ignore = "heavy sweep; covered by the figures binary (run with --ignored)"]
    fn fig15_large_tree_droops_small_tree_does_not() {
        let ctx = tiny_ctx();
        let fig = fig15(&ctx);
        assert_eq!(fig.series.len(), 3);
        let small = &fig.series[0];
        let large = &fig.series[2];
        // Ratio of best to last point: the large tree must degrade more.
        let degrade = |s: &Series| s.max_y() / s.points.last().unwrap().1.max(1e-9);
        assert!(
            degrade(large) > degrade(small) * 0.99,
            "large tree should droop at least as hard: {} vs {}",
            degrade(large),
            degrade(small)
        );
    }

    #[test]
    fn fig17_ordering_matches_paper() {
        let fig = fig17(&tiny_ctx());
        let s = &fig.series[0];
        let cuart = s.y_at(0.0).unwrap();
        let grt = s.y_at(1.0).unwrap();
        let cpu = s.y_at(2.0).unwrap();
        assert!(cuart > 2.0 * grt, "CuART {cuart} must dwarf GRT {grt}");
        assert!(grt > cpu, "GRT {grt} must beat the locked CPU ART {cpu}");
    }
}
