//! Figure "net" (extension) — the binary RPC serving layer over TCP.
//!
//! Not a paper figure: the paper's engine is driven in-process, while
//! the ROADMAP north-star asks for a network-facing serving surface.
//! This sweep drives the [`cuart_net`] subsystem end to end on the
//! loopback interface — N blocking clients, each with its own TCP
//! connection, issuing pipelined point-lookup requests against a
//! [`NetServer`] that owns a single-device scheduler.
//!
//! * **client connections** (x-axis) — concurrent TCP connections, each
//!   a closed loop (one request in flight per client),
//! * **request size** (series) — small requests lean on the scheduler's
//!   coalescing window (and pay per-frame overhead per few keys), large
//!   requests arrive pre-batched.
//!
//! Two quantities are reported per cell, distinguished by series label:
//! *goodput* (successful looked-up keys over wall-clock time, MOps/s)
//! and *mean request latency* (µs per request, measured client-side).
//! Unlike the modeled figures, these are wall-clock numbers — the wire,
//! the framing and the thread handoffs are exactly what this figure is
//! about — so absolute values vary by machine; the shapes (scaling with
//! connections, the small- vs large-request gap) are the point. The
//! deterministic modeled counterpart lives in `fig-regress`
//! (`net_lookup_mops`), which gates regressions.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart_host::scheduler::SchedulerConfig;
use cuart_net::{NetClient, NetServer, NetServerConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Size target for the server-side scheduler's adaptive batches.
const BATCH_TARGET: usize = 8 * 1024;

/// One (connections, request-size) cell: serve on loopback, hammer it
/// from `clients` closed-loop connections, return (goodput MOps/s,
/// mean request latency µs).
fn run_cell(
    index: &Arc<cuart::CuartIndex>,
    dev: &cuart_gpu_sim::DeviceConfig,
    keys: &[Vec<u8>],
    clients: usize,
    requests_per_client: usize,
    req_keys: usize,
) -> (f64, f64) {
    let cfg = SchedulerConfig {
        batch_target: BATCH_TARGET,
        deadline: Duration::from_micros(500),
        ..SchedulerConfig::default()
    };
    let sched = cuart_host::scheduler::Scheduler::spawn(Arc::clone(index), *dev, cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let server = NetServer::serve_single(listener, sched, None, NetServerConfig::default())
        .expect("serve on loopback");
    let addr = server.local_addr();

    let start = Instant::now();
    let mut latency_ns_total = 0u128;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients {
            // Each client walks its own stride of the key space, cycling
            // when the pool is smaller than its request volume so every
            // cell issues exactly `requests_per_client` full requests.
            let stride: Vec<&Vec<u8>> = keys.iter().skip(c).step_by(clients).collect();
            let slice: Vec<Vec<u8>> = (0..requests_per_client * req_keys)
                .map(|i| stride[i % stride.len()].clone())
                .collect();
            handles.push(scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("loopback connect");
                let mut lat_ns = 0u128;
                for chunk in slice.chunks(req_keys) {
                    let t = Instant::now();
                    client.lookup(chunk.to_vec()).expect("server alive");
                    lat_ns += t.elapsed().as_nanos();
                }
                lat_ns
            }));
        }
        for h in handles {
            latency_ns_total += h.join().expect("client thread");
        }
    });
    let wall_ns = start.elapsed().as_nanos() as f64;

    server.shutdown_handle().shutdown();
    let report = server.join().expect("clean drain");
    let total_requests = clients * requests_per_client;
    let total_keys = (total_requests * req_keys) as u64;
    assert_eq!(report.served_ops, total_keys, "every lookup must be served");

    let goodput_mops = total_keys as f64 * 1_000.0 / wall_ns;
    let mean_latency_us = latency_ns_total as f64 / total_requests as f64 / 1_000.0;
    (goodput_mops, mean_latency_us)
}

/// Figure "net" — *wall-clock goodput and mean request latency vs client
/// connections, per request size* (extension; see module docs).
pub fn fig_net(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig-net",
        "RPC serving: loopback goodput (MOps/s) and latency (us) vs connections (8Ki batch target)",
        "client connections",
        "goodput MOps/s / mean latency us (per series label)",
    );
    let (conn_counts, requests_per_client, n): (&[usize], usize, usize) = if ctx.smoke() {
        (&[1, 2], 4, 16 * 1024)
    } else {
        (&[1, 2, 4, 8], 16, ctx.tree_size(4_000_000))
    };
    let req_sizes: &[usize] = if ctx.smoke() { &[256] } else { &[256, 4096] };

    let (art, keys) = ctx.build_art(n, 8, 2207);
    let index = Arc::new(ctx.cuart(&art));
    let dev = ctx.workstation();

    for &req_keys in req_sizes {
        let mut goodput = Series::new(format!("goodput MOps/s, {req_keys}-key requests"));
        let mut latency = Series::new(format!("mean latency us, {req_keys}-key requests"));
        for &clients in conn_counts {
            let (g, l) = run_cell(&index, &dev, &keys, clients, requests_per_client, req_keys);
            goodput.push(clients as f64, g);
            latency.push(clients as f64, l);
        }
        fig.series.push(goodput);
        fig.series.push(latency);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_fig_net_serves_over_loopback() {
        let ctx = RunCtx::new(256, std::env::temp_dir().join("cuart-fig-net")).with_smoke(true);
        let fig = fig_net(&ctx);
        assert_eq!(fig.series.len(), 2, "goodput + latency for one req size");
        for s in &fig.series {
            assert_eq!(s.points.len(), 2);
            assert!(s.max_y() > 0.0, "every cell must be positive: {s:?}");
        }
    }
}
