//! Figures 8–12 — GPU exact-lookup throughput sweeps.

use crate::context::RunCtx;
use crate::series::{Figure, Series};
use cuart::CuartIndex;
use cuart_art::Art;
use cuart_gpu_sim::DeviceConfig;
use cuart_grt::{ApiProfile, GrtIndex};
use cuart_host::gpu_runner::{run_cuart_lookups, run_grt_lookups, RunConfig};
use cuart_workloads::{btc_keys, QueryStream};

/// The three lookup engines compared throughout §4.3/§4.4. Indexes are
/// built once per data set and shared across sweep points — rebuilding the
/// 128 MB compacted-root LUT per point would dominate the harness.
pub(crate) struct EngineSet {
    cuart: CuartIndex,
    grt: GrtIndex,
    keys: Vec<Vec<u8>>,
}

impl EngineSet {
    pub(crate) fn build(ctx: &RunCtx, art: &Art<u64>, keys: Vec<Vec<u8>>) -> Self {
        EngineSet {
            cuart: ctx.cuart(art),
            grt: ctx.grt(art),
            keys,
        }
    }

    pub(crate) fn labels() -> [&'static str; 3] {
        ["CuART", "GRT-CUDA", "GRT-OpenCL"]
    }

    /// End-to-end MOps/s for one engine under `cfg`.
    pub(crate) fn mops(&self, engine: &str, dev: &DeviceConfig, cfg: &RunConfig, seed: u64) -> f64 {
        let mut qs = QueryStream::new(self.keys.clone(), 1.0, seed);
        match engine {
            "CuART" => run_cuart_lookups(&self.cuart, dev, cfg, &mut qs).mops,
            "GRT-CUDA" => run_grt_lookups(&self.grt, ApiProfile::Cuda, dev, cfg, &mut qs).mops,
            "GRT-OpenCL" => run_grt_lookups(&self.grt, ApiProfile::OpenCl, dev, cfg, &mut qs).mops,
            other => panic!("unknown engine {other}"),
        }
    }
}

/// Figure 8 — *"Lookup Throughput with increasing batch size (26Mi
/// entries, 8 threads, 32 byte keys, server)"*. Expected: poor at tiny
/// batches (dispatch overhead), a broad plateau from ~8 Ki to ~128 Ki.
pub fn fig8(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig8",
        "Lookup throughput vs batch size (26Mi entries, 8 threads, 32B keys, server)",
        "batch size",
        "MOps/s",
    );
    let n = ctx.tree_size(26_000_000);
    let (art, keys) = ctx.build_art(n, 32, 801);
    let set = EngineSet::build(ctx, &art, keys);
    drop(art);
    let dev = ctx.server();
    let batches = [1024usize, 4096, 8192, 16384, 32768, 65536, 131072];
    for engine in EngineSet::labels() {
        let mut s = Series::new(engine);
        for &batch in &batches {
            let cfg = RunConfig {
                batch_size: batch,
                total_queries: (batch * 16).max(1 << 18),
                sample_batches: 2,
                ..RunConfig::default()
            };
            s.push(batch as f64, set.mops(engine, &dev, &cfg, 8));
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 9 — *"Lookup Throughput with increasing number of threads (26Mi
/// entries, 32 byte keys, 32ki items per batch, server)"*. Expected: rises
/// with host threads, then plateaus at the GPU bound; the OpenCL variant
/// plateaus lower (2 effective streams).
pub fn fig9(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig9",
        "Lookup throughput vs host threads (26Mi entries, 32B keys, 32Ki batch, server)",
        "host threads",
        "MOps/s",
    );
    let n = ctx.tree_size(26_000_000);
    let (art, keys) = ctx.build_art(n, 32, 901);
    let set = EngineSet::build(ctx, &art, keys);
    drop(art);
    let dev = ctx.server();
    for engine in EngineSet::labels() {
        let mut s = Series::new(engine);
        for threads in [1usize, 2, 4, 8, 16, 32] {
            let cfg = RunConfig {
                host_threads: threads,
                streams: threads.max(4),
                ..RunConfig::default()
            };
            s.push(threads as f64, set.mops(engine, &dev, &cfg, 9));
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 10 — *"Lookup Throughput with increasing tree size (64k-144M
/// entries, 8 threads, 32byte keys, 16ki items per batch, workstation)"*.
/// Expected: CuART above GRT everywhere; CuART roughly flat or slightly
/// rising with density, GRT degrading as large nodes dominate.
pub fn fig10(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig10",
        "Lookup throughput vs tree size (8 threads, 32B keys, 16Ki batch, workstation)",
        "tree entries",
        "MOps/s",
    );
    let dev = ctx.workstation();
    let paper_sizes = [65_536usize, 1 << 20, 4 << 20, 26_000_000, 144_000_000];
    let cfg = RunConfig {
        batch_size: 16 * 1024,
        ..RunConfig::default()
    };
    let mut sets: Vec<(usize, EngineSet)> = Vec::new();
    for &paper_n in &paper_sizes {
        let n = ctx.tree_size(paper_n);
        if sets.iter().any(|(m, _)| *m == n) {
            continue; // scaling can collapse adjacent sizes
        }
        let (art, keys) = ctx.build_art(n, 32, 1000 + n as u64);
        sets.push((n, EngineSet::build(ctx, &art, keys)));
    }
    for engine in EngineSet::labels() {
        let mut s = Series::new(engine);
        for (n, set) in &sets {
            s.push(*n as f64, set.mops(engine, &dev, &cfg, 10));
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 11 — *"Lookup Throughput with increasing key length (26Mi
/// entries, 8 threads, 32ki items per batch, server)"*. Expected
/// crossover: GRT's byte-oriented compare wins at 4-byte keys, CuART's
/// word-oriented compare and fixed leaves win from ~8–16 bytes up.
pub fn fig11(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig11",
        "Lookup throughput vs key length (26Mi entries, 8 threads, 32Ki batch, server)",
        "key length (bytes)",
        "MOps/s",
    );
    let n = ctx.tree_size(26_000_000);
    let dev = ctx.server();
    let cfg = RunConfig::default();
    let mut sets = Vec::new();
    for kl in [4usize, 8, 16, 24, 32] {
        let (art, keys) = ctx.build_art(n, kl, 1100 + kl as u64);
        sets.push((kl, EngineSet::build(ctx, &art, keys)));
    }
    for engine in EngineSet::labels() {
        let mut s = Series::new(engine);
        for (kl, set) in &sets {
            s.push(*kl as f64, set.mops(engine, &dev, &cfg, 11));
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 12 — *"Throughput against the BTC dataset (15.4M keys, 32 byte
/// key length, 32ki items per batch, 8 threads, server)"*. Expected: both
/// engines slower than on uniform synthetic keys (deep shared prefixes),
/// CuART ~20 % above GRT.
pub fn fig12(ctx: &RunCtx) -> Figure {
    let mut fig = Figure::new(
        "fig12",
        "Throughput on the (synthetic) BTC dataset vs uniform keys (server)",
        "dataset (0=uniform, 1=BTC)",
        "MOps/s",
    );
    let n = ctx.tree_size(15_400_000);
    let dev = ctx.server();
    let cfg = RunConfig::default();
    eprintln!("[fig12] building uniform data set ({n} keys)");
    let (uniform_art, uniform_keys) = ctx.build_art(n, 32, 1201);
    let uniform = EngineSet::build(ctx, &uniform_art, uniform_keys);
    drop(uniform_art);
    eprintln!("[fig12] generating BTC keys");
    let btc = btc_keys(n, 1202);
    eprintln!("[fig12] building BTC tree");
    let btc_art = ctx.art_from_keys(&btc);
    eprintln!("[fig12] mapping BTC tree");
    let btc_set = EngineSet::build(ctx, &btc_art, btc);
    drop(btc_art);
    for engine in ["CuART", "GRT-CUDA"] {
        eprintln!("[fig12] running {engine}");
        let mut s = Series::new(engine);
        s.push(0.0, uniform.mops(engine, &dev, &cfg, 12));
        s.push(1.0, btc_set.mops(engine, &dev, &cfg, 12));
        fig.series.push(s);
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> RunCtx {
        RunCtx::new(400, std::env::temp_dir())
    }

    #[test]
    #[ignore = "heavy sweep; covered by the figures binary (run with --ignored)"]
    fn fig8_plateau_shape() {
        let fig = fig8(&tiny_ctx());
        for engine in EngineSet::labels() {
            let s = fig.series(engine).unwrap();
            let first = s.points.first().unwrap().1;
            let best = s.max_y();
            assert!(
                best > 1.5 * first,
                "{engine}: large batches must beat tiny ones ({first} vs {best})"
            );
        }
        // CuART tops both GRT variants at the plateau.
        assert!(fig.series("CuART").unwrap().max_y() > fig.series("GRT-CUDA").unwrap().max_y());
    }

    #[test]
    fn fig9_threads_help_then_plateau() {
        let fig = fig9(&tiny_ctx());
        let cuart = fig.series("CuART").unwrap();
        assert!(cuart.y_at(8.0).unwrap() > cuart.y_at(1.0).unwrap());
    }

    #[test]
    #[ignore = "heavy sweep; covered by the figures binary (run with --ignored)"]
    fn fig12_btc_is_slower_than_uniform() {
        let fig = fig12(&tiny_ctx());
        for engine in ["CuART", "GRT-CUDA"] {
            let s = fig.series(engine).unwrap();
            assert!(
                s.y_at(1.0).unwrap() < s.y_at(0.0).unwrap(),
                "{engine}: BTC must be slower than uniform"
            );
        }
        // CuART stays ahead on BTC.
        assert!(
            fig.series("CuART").unwrap().y_at(1.0).unwrap()
                > fig.series("GRT-CUDA").unwrap().y_at(1.0).unwrap()
        );
    }
}
