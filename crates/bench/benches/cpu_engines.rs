//! The Figure 7 microbenchmark: pointer-based ART vs the CuART
//! structure-of-buffers layout, both on the CPU, really measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_workloads::uniform_keys;
use std::hint::black_box;

fn bench_cpu_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_lookup");
    for (n, kl) in [(65_536usize, 8usize), (65_536, 32), (1 << 20, 8)] {
        let keys = uniform_keys(n, kl, 7);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64)
                .expect("generated keys are prefix-free");
        }
        let index = CuartIndex::build(&art, &CuartConfig::for_tests());
        let probes = &keys[..8192];
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("art", format!("n{n}_kl{kl}")),
            probes,
            |b, probes| {
                b.iter(|| {
                    let mut hits = 0;
                    for k in probes {
                        if art.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cuart_layout", format!("n{n}_kl{kl}")),
            probes,
            |b, probes| {
                b.iter(|| {
                    let mut hits = 0;
                    for k in probes {
                        if index.lookup_cpu(k).is_some() {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cpu_lookup
}
criterion_main!(benches);
