//! Ablations of the design choices DESIGN.md calls out, each reported as
//! the **modeled** kernel time of one lookup batch:
//!
//! * compacted-root LUT span 0 / 2 / 3 (§3.2.2),
//! * size-classed leaves vs the initial single 32-byte leaf (§3.2.1),
//! * structure-of-buffers (CuART) vs packed single buffer (GRT) on
//!   identical data.

use criterion::{criterion_group, criterion_main, Criterion};
use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_grt::GrtIndex;
use cuart_workloads::uniform_keys;
use std::hint::black_box;

fn modeled_time(index: &CuartIndex, batch: &[Vec<u8>]) -> (f64, u64, usize) {
    let mut dev = devices::rtx3090();
    dev.l2.size_bytes = 256 << 10;
    let (_, r) = index.lookup_batch_device(&dev, batch, 16);
    (r.time_ns, r.dram_transactions, r.max_chain_steps)
}

fn ablation_report(c: &mut Criterion) {
    let keys = uniform_keys(150_000, 12, 17);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64)
            .expect("generated keys are prefix-free");
    }
    let batch = keys[..4096].to_vec();

    println!("--- ablation: compacted-root LUT span (§3.2.2) ---");
    for span in [0usize, 2, 3] {
        let cfg = CuartConfig {
            lut_span: span,
            ..CuartConfig::default()
        };
        let index = CuartIndex::build(&art, &cfg);
        let (t, tx, chain) = modeled_time(&index, &batch);
        println!(
            "lut_span={span}: {:.1} µs / 4Ki batch, {tx} DRAM tx, chain {chain} steps, {:.1} MiB device",
            t / 1e3,
            index.device_bytes() as f64 / (1 << 20) as f64
        );
    }

    println!("--- ablation: leaf size classes vs single 32B leaf (§3.2.1) ---");
    for single in [false, true] {
        let cfg = CuartConfig {
            single_leaf_class: single,
            ..CuartConfig::for_tests()
        };
        let index = CuartIndex::build(&art, &cfg);
        let (t, tx, _) = modeled_time(&index, &batch);
        println!(
            "single_leaf_class={single}: {:.1} µs / 4Ki batch, {tx} DRAM tx, {:.1} MiB leaves",
            t / 1e3,
            (index.buffers().leaf8.len()
                + index.buffers().leaf16.len()
                + index.buffers().leaf32.len()) as f64
                / (1 << 20) as f64
        );
    }

    println!("--- ablation: START multi-layer nodes (§5.1 integration) ---");
    {
        // A dense 2-level key space where merging applies.
        let mut dense = Art::new();
        for b1 in 0..=255u8 {
            for b2 in 0..=255u8 {
                dense
                    .insert(&[b1, b2, 3, 3, 3, 3, 3, 3], 1)
                    .expect("fixed-width keys are prefix-free");
            }
        }
        let dense_batch: Vec<Vec<u8>> = (0..4096u32)
            .map(|i| vec![(i % 256) as u8, (i / 16 % 256) as u8, 3, 3, 3, 3, 3, 3])
            .collect();
        for ml in [false, true] {
            let cfg = CuartConfig {
                lut_span: 0,
                multi_layer_nodes: ml,
                ..CuartConfig::default()
            };
            let index = CuartIndex::build(&dense, &cfg);
            let (t, tx, chain) = modeled_time(&index, &dense_batch);
            println!(
                "multi_layer_nodes={ml}: {:.1} µs / 4Ki batch, {tx} DRAM tx, chain {chain} steps, {:.1} MiB device",
                t / 1e3,
                index.device_bytes() as f64 / (1 << 20) as f64
            );
        }
    }

    println!("--- ablation: structure-of-buffers vs packed single buffer ---");
    let cuart = CuartIndex::build(&art, &CuartConfig::default());
    let grt = GrtIndex::build(&art);
    let mut dev = devices::rtx3090();
    dev.l2.size_bytes = 256 << 10;
    let (_, cu) = cuart.lookup_batch_device(&dev, &batch, 16);
    let (_, gr) = grt.lookup_batch_device(&dev, &batch, 16);
    println!(
        "CuART {:.1} µs (chain {}), GRT {:.1} µs (chain {}) -> kernel speedup {:.2}x",
        cu.time_ns / 1e3,
        cu.max_chain_steps,
        gr.time_ns / 1e3,
        gr.max_chain_steps,
        gr.time_ns / cu.time_ns
    );

    // A tiny criterion anchor so `cargo bench` records the run.
    c.bench_function("ablations/lookup_cpu_anchor", |b| {
        b.iter(|| black_box(cuart.lookup_cpu(&batch[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablation_report
}
criterion_main!(benches);
