//! The two-stage update engine: wall cost of simulating an update batch
//! and the modeled throughput at different hash-table load factors (the
//! Figure 15 droop mechanism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_workloads::{uniform_keys, UpdateStream};
use std::hint::black_box;

fn bench_update_batches(c: &mut Criterion) {
    let keys = uniform_keys(100_000, 16, 13);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64)
            .expect("generated keys are prefix-free");
    }
    let index = CuartIndex::build(&art, &CuartConfig::for_tests());
    let dev = devices::rtx3090();

    // Modeled throughput vs load factor, printed for the bench log.
    for (label, slots) in [("sparse_table", 1usize << 16), ("tight_table", 5000)] {
        let mut session = index.device_session_with_table(&dev, slots);
        let mut us = UpdateStream::new(keys.clone(), 0.1, 0.1, 1);
        let ops = us.next_batch(4096, DELETE);
        let (_, report) = session.update_batch(&ops).expect("bench update leg failed");
        println!(
            "{label}: modeled {:.1} µs per 4Ki update batch ({} atomic conflicts)",
            report.time_ns / 1e3,
            report.atomic_conflicts
        );
    }

    let mut group = c.benchmark_group("simulate_update_batch");
    for batch in [1024usize, 4096] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut session = index.device_session_with_table(&dev, 1 << 16);
            let mut us = UpdateStream::new(keys.clone(), 0.1, 0.1, 2);
            b.iter(|| {
                let ops = us.next_batch(batch, DELETE);
                black_box(session.update_batch(&ops).expect("bench update leg failed"))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_update_batches
}
criterion_main!(benches);
