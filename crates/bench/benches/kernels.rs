//! Simulator kernel benchmarks: wall time of simulating one lookup batch
//! (harness performance) and, more importantly, the **modeled** kernel
//! times reported alongside — printed once per configuration so `cargo
//! bench` output documents the CuART-vs-GRT transaction gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuart::{CuartConfig, CuartIndex};
use cuart_art::Art;
use cuart_gpu_sim::devices;
use cuart_grt::GrtIndex;
use cuart_workloads::uniform_keys;
use std::hint::black_box;

fn bench_lookup_kernels(c: &mut Criterion) {
    let keys = uniform_keys(100_000, 32, 11);
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64)
            .expect("generated keys are prefix-free");
    }
    let cuart = CuartIndex::build(&art, &CuartConfig::default());
    let grt = GrtIndex::build(&art);
    let mut dev = devices::a100();
    dev.l2.size_bytes = 512 << 10; // figure-harness scaled L2
    let batch = keys[..4096].to_vec();

    // Print the modeled times once, so bench logs carry the comparison.
    let (_, cu) = cuart.lookup_batch_device(&dev, &batch, 32);
    let (_, gr) = grt.lookup_batch_device(&dev, &batch, 32);
    println!(
        "modeled kernel time per 4Ki batch: CuART {:.1} µs ({} DRAM tx), GRT {:.1} µs ({} DRAM tx)",
        cu.time_ns / 1e3,
        cu.dram_transactions,
        gr.time_ns / 1e3,
        gr.dram_transactions
    );

    let mut group = c.benchmark_group("simulate_lookup_batch");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_with_input(
        BenchmarkId::new("cuart", batch.len()),
        &batch,
        |b, batch| b.iter(|| black_box(cuart.lookup_batch_device(&dev, batch, 32))),
    );
    group.bench_with_input(BenchmarkId::new("grt", batch.len()), &batch, |b, batch| {
        b.iter(|| black_box(grt.lookup_batch_device(&dev, batch, 32)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lookup_kernels
}
criterion_main!(benches);
