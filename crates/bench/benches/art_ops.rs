//! Microbenchmarks of the classic ART baseline: insert, point lookup,
//! remove, in-order iteration, range scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuart_art::Art;
use cuart_workloads::uniform_keys;
use std::hint::black_box;

fn build(keys: &[Vec<u8>]) -> Art<u64> {
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64)
            .expect("generated keys are prefix-free");
    }
    art
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("art/insert");
    for n in [10_000usize, 100_000] {
        let keys = uniform_keys(n, 8, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| black_box(build(keys)));
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("art/get");
    for (n, kl) in [(100_000usize, 8usize), (100_000, 32)] {
        let keys = uniform_keys(n, kl, 2);
        let art = build(&keys);
        let probes = &keys[..10_000];
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_kl{kl}")),
            probes,
            |b, probes| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for k in probes {
                        if art.get(k).is_some() {
                            hits += 1;
                        }
                    }
                    black_box(hits)
                });
            },
        );
    }
    group.finish();
}

fn bench_remove_insert_cycle(c: &mut Criterion) {
    let keys = uniform_keys(50_000, 8, 3);
    c.bench_function("art/remove_insert_cycle_1k", |b| {
        let mut art = build(&keys);
        b.iter(|| {
            for k in &keys[..1000] {
                black_box(art.remove(k));
            }
            for (i, k) in keys[..1000].iter().enumerate() {
                art.insert(k, i as u64)
                    .expect("generated keys are prefix-free");
            }
        });
    });
}

fn bench_iteration_and_range(c: &mut Criterion) {
    let keys = uniform_keys(100_000, 8, 4);
    let art = build(&keys);
    c.bench_function("art/iterate_100k", |b| {
        b.iter(|| black_box(art.iter().count()));
    });
    let mut sorted = keys.clone();
    sorted.sort();
    let (lo, hi) = (&sorted[20_000], &sorted[30_000]);
    c.bench_function("art/range_10k_of_100k", |b| {
        b.iter(|| black_box(art.range(lo, hi).count()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert, bench_get, bench_remove_insert_cycle, bench_iteration_and_range
}
criterion_main!(benches);
