//! Mapping cost: flattening the pointer-based ART into the GRT packed
//! buffer and the CuART structure of buffers (the "preparing the buffers"
//! step §3.1 identifies as the update-path tax of GPU-resident trees).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cuart::{mapper::map_art as map_cuart, CuartConfig};
use cuart_art::Art;
use cuart_grt::map_art as map_grt;
use cuart_workloads::uniform_keys;
use std::hint::black_box;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping");
    for n in [50_000usize, 500_000] {
        let keys = uniform_keys(n, 16, 5);
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64)
                .expect("generated keys are prefix-free");
        }
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("grt", n), &art, |b, art| {
            b.iter(|| black_box(map_grt(art)))
        });
        let cfg = CuartConfig::for_tests();
        group.bench_with_input(BenchmarkId::new("cuart", n), &art, |b, art| {
            b.iter(|| black_box(map_cuart(art, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mapping
}
criterion_main!(benches);
