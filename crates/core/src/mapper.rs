//! Mapping the pointer-based ART into the CuART structure of buffers.
//!
//! A depth-first in-order walk emits every node into its typed arena, so
//! leaves land in **lexicographic key order** within each leaf class — the
//! property that makes range-query results plain index pairs (§3.2.1).
//!
//! While walking, the compacted-root lookup table (§3.2.2) is populated:
//! the *first* node whose compressed span crosses the `lut_span`-byte
//! boundary is installed at the LUT slot named by the first `lut_span` key
//! bytes, together with the number of its prefix bytes the LUT already
//! consumed (the link's `aux` field). Keys shorter than the span cannot be
//! LUT-addressed and live in a host-side side table; keys longer than the
//! 32-byte device maximum follow the configured [`LongKeyPolicy`].

use crate::buffers::{CuartBuffers, CuartConfig, LongKeyPolicy};
use crate::layout::{self, EMPTY48, HEADER_BYTES, PREFIX_CAP};
use crate::link::{LinkType, NodeLink};
use cuart_art::view::NodeView;
use cuart_art::{Art, NodeType};

/// Maximum key length servable by the fixed-size device leaves.
pub const MAX_DEVICE_KEY: usize = 32;

/// Flatten `art` into CuART buffers under `config`.
pub fn map_art(art: &Art<u64>, config: &CuartConfig) -> CuartBuffers {
    let mut b = CuartBuffers::new(*config);
    b.entries = art.len();
    if let Some(root) = art.root_view() {
        let mut path = Vec::new();
        b.root = emit(&mut b, &root, 0, &mut path);
    }
    debug_assert!(b.short_keys.windows(2).all(|w| w[0].0 < w[1].0));
    debug_assert!(b.host_leaves.windows(2).all(|w| w[0].0 < w[1].0));
    b
}

fn link_type_of(t: NodeType) -> LinkType {
    match t {
        NodeType::N4 => LinkType::N4,
        NodeType::N16 => LinkType::N16,
        NodeType::N48 => LinkType::N48,
        NodeType::N256 => LinkType::N256,
    }
}

/// LUT slot for the first `span` bytes of `key` (big-endian interpretation).
pub fn lut_slot(key: &[u8], span: usize) -> usize {
    let mut idx = 0usize;
    for &b in &key[..span] {
        idx = (idx << 8) | b as usize;
    }
    idx
}

/// Emit the subtree at `view`, reached after consuming `path` (== `depth`
/// bytes); returns the link to it ([`NodeLink::NULL`] for keys the device
/// does not hold under the CpuRoute policy).
fn emit(
    b: &mut CuartBuffers,
    view: &NodeView<'_, u64>,
    depth: usize,
    path: &mut Vec<u8>,
) -> NodeLink {
    debug_assert_eq!(path.len(), depth);
    let span = b.config.lut_span;
    match view {
        NodeView::Leaf(leaf) => {
            let key = leaf.key();
            let value = *leaf.value();
            b.max_key_len = b.max_key_len.max(key.len());
            // Keys too short for the LUT live host-side (they are always
            // standalone: a prefix-free key set cannot extend them).
            if span > 0 && key.len() < span {
                b.short_keys.push((key.to_vec(), value));
                return NodeLink::NULL;
            }
            let class_for = if b.config.single_leaf_class {
                // Ablation: the paper's initial single 32-byte leaf.
                layout::leaf_class_for(key.len()).map(|_| LinkType::Leaf32)
            } else {
                layout::leaf_class_for(key.len())
            };
            let link = match class_for {
                Some(class) => {
                    let idx = b.alloc_record(class);
                    let rec = b.record_mut(class, idx);
                    rec[..key.len()].copy_from_slice(key);
                    rec[layout::leaf::value_at(class)..layout::leaf::value_at(class) + 8]
                        .copy_from_slice(&value.to_le_bytes());
                    rec[layout::leaf::len_at(class)] = key.len() as u8;
                    rec[layout::leaf::live_at(class)] = 1;
                    NodeLink::new(class, idx)
                }
                None => match b.config.long_key_policy {
                    LongKeyPolicy::CpuRoute => {
                        b.host_leaves.push((key.to_vec(), value));
                        return NodeLink::NULL;
                    }
                    LongKeyPolicy::HostLeafLink => {
                        let idx = b.host_leaves.len() as u64;
                        b.host_leaves.push((key.to_vec(), value));
                        NodeLink::new(LinkType::HostLeaf, idx)
                    }
                    LongKeyPolicy::DynamicLeaf => {
                        let off = b.dyn_leaves.len() as u64;
                        assert!(
                            key.len() <= u16::MAX as usize,
                            "key too long for dynamic leaf"
                        );
                        b.dyn_leaves
                            .extend_from_slice(&(key.len() as u16).to_le_bytes());
                        b.dyn_leaves.extend_from_slice(key);
                        b.dyn_leaves.extend_from_slice(&value.to_le_bytes());
                        // Pad to 8 bytes so following records stay aligned.
                        let pad = b.dyn_leaves.len().next_multiple_of(8) - b.dyn_leaves.len();
                        b.dyn_leaves.extend(std::iter::repeat_n(0, pad));
                        NodeLink::new(LinkType::DynLeaf, off)
                    }
                },
            };
            // A leaf reached at or before the LUT boundary owns its slot.
            if span > 0 && depth <= span && key.len() >= span {
                let slot = lut_slot(key, span);
                b.lut[slot] = link.0;
            }
            link
        }
        NodeView::Inner(inner) => {
            if b.config.multi_layer_nodes {
                if let Some(link) = try_emit_multilayer(b, inner, depth, path) {
                    return link;
                }
            }
            let class = link_type_of(inner.node_type());
            let prefix = inner.prefix();
            assert!(
                prefix.len() <= u8::MAX as usize,
                "compressed prefix > 255 bytes"
            );
            let idx = b.alloc_record(class);
            {
                let rec = b.record_mut(class, idx);
                rec[0] = inner.child_count().min(255) as u8;
                rec[1] = prefix.len() as u8;
                let stored = prefix.len().min(PREFIX_CAP);
                rec[2..2 + stored].copy_from_slice(&prefix[..stored]);
                if class == LinkType::N48 {
                    rec[HEADER_BYTES..HEADER_BYTES + 256].fill(EMPTY48);
                }
            }
            let link = NodeLink::new(class, idx);
            // Install in the LUT if this node's span crosses the boundary.
            if span > 0 && depth <= span && depth + prefix.len() >= span {
                let mut full = path.clone();
                full.extend_from_slice(&prefix[..span - depth]);
                let slot = lut_slot(&full, span);
                b.lut[slot] = NodeLink::with_aux(class, idx, (span - depth) as u8).0;
            }
            // Children, in ascending key order. Host-routed keys (CpuRoute)
            // yield null links and are excluded from the device arrays, so
            // the stored child count reflects device-visible children only.
            let child_depth = depth + prefix.len() + 1;
            let mut dev_children: Vec<(u8, NodeLink)> = Vec::with_capacity(inner.child_count());
            for (byte, child) in inner.children().iter() {
                path.extend_from_slice(prefix);
                path.push(*byte);
                let child_link = emit(b, child, child_depth, path);
                path.truncate(depth);
                if !child_link.is_null() {
                    dev_children.push((*byte, child_link));
                }
            }
            let base = b.record_offset(class, idx);
            b.arena_key_write(class, base, dev_children.len().min(255) as u8);
            for (slot_i, (byte, child_link)) in dev_children.iter().enumerate() {
                match class {
                    LinkType::N4 | LinkType::N16 => {
                        b.arena_key_write(class, base + layout::keys_at(class) + slot_i, *byte);
                        b.set_link_at(
                            class,
                            base + layout::links_at(class) + slot_i * 8,
                            *child_link,
                        );
                    }
                    LinkType::N48 => {
                        b.arena_key_write(
                            class,
                            base + HEADER_BYTES + *byte as usize,
                            slot_i as u8,
                        );
                        b.set_link_at(
                            class,
                            base + layout::links_at(class) + slot_i * 8,
                            *child_link,
                        );
                    }
                    LinkType::N256 => {
                        b.set_link_at(
                            class,
                            base + layout::links_at(class) + *byte as usize * 8,
                            *child_link,
                        );
                    }
                    _ => unreachable!(), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
                }
            }
            link
        }
    }
}

/// Fan-out threshold for merging an N256 with its children into one
/// multi-layer node (START): merging sparse levels would waste the 512 KiB
/// record.
const N2L_MIN_CHILDREN: usize = 192;

/// Attempt to emit `inner` and its children as one multi-layer N2L node
/// (START, §5.1). Succeeds only for a dense N256 whose children are all
/// inner nodes with empty prefixes — the only shape where two levels can
/// merge without losing path information.
fn try_emit_multilayer(
    b: &mut CuartBuffers,
    inner: &cuart_art::view::InnerView<'_, u64>,
    depth: usize,
    path: &mut Vec<u8>,
) -> Option<NodeLink> {
    if inner.node_type() != NodeType::N256 || inner.child_count() < N2L_MIN_CHILDREN {
        return None;
    }
    let children = inner.children();
    let all_mergeable = children.iter().all(|(_, c)| match c {
        NodeView::Inner(ci) => ci.prefix().is_empty(),
        NodeView::Leaf(_) => false,
    });
    if !all_mergeable {
        return None;
    }
    let prefix = inner.prefix();
    let span = b.config.lut_span;
    let idx = b.alloc_record(LinkType::N2L);
    {
        let rec = b.record_mut(LinkType::N2L, idx);
        rec[0] = inner.child_count().min(255) as u8;
        rec[1] = prefix.len() as u8;
        let stored = prefix.len().min(PREFIX_CAP);
        rec[2..2 + stored].copy_from_slice(&prefix[..stored]);
    }
    let link = NodeLink::new(LinkType::N2L, idx);
    if span > 0 && depth <= span && depth + prefix.len() >= span {
        let mut full = path.clone();
        full.extend_from_slice(&prefix[..span - depth]);
        let slot = lut_slot(&full, span);
        b.lut[slot] = NodeLink::with_aux(LinkType::N2L, idx, (span - depth) as u8).0;
    }
    // Grandchildren sit two bytes below this node's prefix.
    let grandchild_depth = depth + prefix.len() + 2;
    for (b1, child) in children.iter() {
        let NodeView::Inner(ci) = child else {
            unreachable!("checked above") // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
        };
        for (b2, grandchild) in ci.children().iter() {
            path.extend_from_slice(prefix);
            path.push(*b1);
            path.push(*b2);
            let gc_link = emit(b, grandchild, grandchild_depth, path);
            path.truncate(depth);
            if gc_link.is_null() {
                continue; // host-routed key
            }
            let slot = ((*b1 as usize) << 8) | *b2 as usize;
            let base = b.record_offset(LinkType::N2L, idx);
            b.set_link_at(
                LinkType::N2L,
                base + layout::links_at(LinkType::N2L) + slot * 8,
                gc_link,
            );
        }
    }
    Some(link)
}

impl CuartBuffers {
    /// Write a raw byte into an arena (keys array / child index). Routed
    /// through the fallible arena accessor: a type without an arena is a
    /// typed error surfaced in debug builds, not a bespoke panic arm.
    pub(crate) fn arena_key_write(&mut self, ty: LinkType, off: usize, byte: u8) {
        match self.arena_mut(ty) {
            Ok(arena) => arena[off] = byte,
            Err(e) => debug_assert!(false, "arena_key_write: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::lookup;

    fn art_of(keys: &[&[u8]]) -> Art<u64> {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        art
    }

    fn cfg(span: usize) -> CuartConfig {
        CuartConfig {
            lut_span: span,
            ..CuartConfig::for_tests()
        }
    }

    #[test]
    fn empty_tree() {
        let b = map_art(&Art::new(), &CuartConfig::for_tests());
        assert!(b.root.is_null());
        assert_eq!(b.entries, 0);
        assert_eq!(lookup(&b, b"x"), None);
    }

    #[test]
    fn single_leaf_no_lut() {
        let b = map_art(&art_of(&[b"hello"]), &cfg(0));
        assert_eq!(b.record_count(LinkType::Leaf8), 1);
        assert_eq!(b.root.link_type(), Some(LinkType::Leaf8));
        assert_eq!(lookup(&b, b"hello"), Some(1));
        assert_eq!(lookup(&b, b"hellp"), None);
    }

    #[test]
    fn leaf_classes_assigned_by_length() {
        let b = map_art(&art_of(&[&[1u8; 4], &[2u8; 12], &[3u8; 24]]), &cfg(0));
        assert_eq!(b.record_count(LinkType::Leaf8), 1);
        assert_eq!(b.record_count(LinkType::Leaf16), 1);
        assert_eq!(b.record_count(LinkType::Leaf32), 1);
        assert_eq!(lookup(&b, &[1u8; 4]), Some(1));
        assert_eq!(lookup(&b, &[2u8; 12]), Some(2));
        assert_eq!(lookup(&b, &[3u8; 24]), Some(3));
    }

    #[test]
    fn lut_entries_installed_for_leaves() {
        let b = map_art(&art_of(&[b"abcd", b"wxyz"]), &cfg(2));
        let slot_ab = lut_slot(b"abcd", 2);
        let slot_wx = lut_slot(b"wxyz", 2);
        assert_ne!(b.lut[slot_ab], 0);
        assert_ne!(b.lut[slot_wx], 0);
        assert_eq!(NodeLink(b.lut[slot_ab]).link_type(), Some(LinkType::Leaf8));
        // Unrelated slots are null.
        assert_eq!(b.lut[lut_slot(b"zz", 2)], 0);
        assert_eq!(lookup(&b, b"abcd"), Some(1));
        assert_eq!(lookup(&b, b"abcx"), None);
    }

    #[test]
    fn lut_entry_mid_prefix_records_skip() {
        // Root compresses "comm" (4 bytes) — the 2-byte LUT boundary falls
        // inside the prefix, so the entry's aux must be 2.
        let b = map_art(&art_of(&[b"commA", b"commB"]), &cfg(2));
        let entry = NodeLink(b.lut[lut_slot(b"co", 2)]);
        assert!(!entry.is_null());
        assert_eq!(entry.aux(), 2);
        assert_eq!(entry.link_type(), Some(LinkType::N4));
        assert_eq!(lookup(&b, b"commA"), Some(1));
        assert_eq!(lookup(&b, b"commB"), Some(2));
        assert_eq!(lookup(&b, b"comXA"), None);
    }

    #[test]
    fn lut_entry_for_deep_branching() {
        // Keys diverge at byte 3 (> span 2): the node branching there is
        // below the boundary; its ancestor crossing the boundary (the root,
        // prefix "ab" + branch at byte 2) is installed per first-crossing.
        let b = map_art(&art_of(&[b"abXcd", b"abXce", b"abYcd"]), &cfg(2));
        let entry = NodeLink(b.lut[lut_slot(b"ab", 2)]);
        assert!(!entry.is_null());
        assert_eq!(entry.aux(), 2, "boundary at end of prefix");
        for (i, k) in [&b"abXcd"[..], b"abXce", b"abYcd"].iter().enumerate() {
            assert_eq!(lookup(&b, k), Some(i as u64 + 1));
        }
    }

    #[test]
    fn short_keys_go_to_host_table() {
        let b = map_art(&art_of(&[b"a", b"zz", b"longenough"]), &cfg(3));
        assert_eq!(b.short_keys.len(), 2);
        assert_eq!(b.host_entries(), 2);
        assert_eq!(lookup(&b, b"a"), Some(1));
        assert_eq!(lookup(&b, b"zz"), Some(2));
        assert_eq!(lookup(&b, b"longenough"), Some(3));
        assert_eq!(lookup(&b, b"b"), None);
    }

    #[test]
    fn long_keys_cpu_route() {
        let long = vec![7u8; 40];
        let b = map_art(
            &art_of(&[b"short_key", &long]),
            &CuartConfig {
                lut_span: 2,
                long_key_policy: LongKeyPolicy::CpuRoute,
                multi_layer_nodes: false,
                single_leaf_class: false,
            },
        );
        assert_eq!(b.host_leaves.len(), 1);
        assert_eq!(lookup(&b, &long), Some(2));
        assert_eq!(lookup(&b, b"short_key"), Some(1));
        assert_eq!(b.max_key_len, 40);
    }

    #[test]
    fn long_keys_host_leaf_link() {
        let long_a = vec![9u8; 64];
        let mut long_b = long_a.clone();
        long_b[63] = 1;
        let b = map_art(
            &art_of(&[&long_a, &long_b, b"tiny_key"]),
            &CuartConfig {
                lut_span: 2,
                long_key_policy: LongKeyPolicy::HostLeafLink,
                multi_layer_nodes: false,
                single_leaf_class: false,
            },
        );
        assert_eq!(b.host_leaves.len(), 2);
        assert_eq!(lookup(&b, &long_a), Some(1));
        assert_eq!(lookup(&b, &long_b), Some(2));
        let mut probe = long_a.clone();
        probe[40] ^= 0xFF;
        assert_eq!(lookup(&b, &probe), None);
    }

    #[test]
    fn long_keys_dynamic_leaf() {
        let long = vec![5u8; 50];
        let b = map_art(
            &art_of(&[&long, b"plain_key"]),
            &CuartConfig {
                lut_span: 2,
                long_key_policy: LongKeyPolicy::DynamicLeaf,
                multi_layer_nodes: false,
                single_leaf_class: false,
            },
        );
        assert!(b.host_leaves.is_empty());
        assert!(!b.dyn_leaves.is_empty());
        assert_eq!(lookup(&b, &long), Some(1));
        let mut probe = long.clone();
        probe[49] = 0;
        assert_eq!(lookup(&b, &probe), None);
    }

    #[test]
    fn all_inner_node_types_roundtrip() {
        for n in [3usize, 10, 40, 200] {
            let keys: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8, 9, 9, 9]).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let b = map_art(&art_of(&refs), &cfg(2));
            for (i, k) in refs.iter().enumerate() {
                assert_eq!(lookup(&b, k), Some(i as u64 + 1), "fanout {n}, key {i}");
            }
        }
    }

    #[test]
    fn leaves_emitted_in_lexicographic_order() {
        let keys: &[&[u8]] = &[b"dddd", b"aaaa", b"cccc", b"bbbb"];
        let b = map_art(&art_of(keys), &cfg(2));
        let mut seen = Vec::new();
        for i in 0..b.record_count(LinkType::Leaf8) {
            let rec = b.record(LinkType::Leaf8, i as u64);
            seen.push(rec[..4].to_vec());
        }
        let mut sorted = seen.clone();
        sorted.sort();
        assert_eq!(seen, sorted);
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn optimistic_long_prefix_verified_at_leaf() {
        // Prefix longer than the 14 stored bytes: lookup skips the tail and
        // the leaf comparison must catch impostors.
        let a = b"0123456789abcdefghij_X".to_vec();
        let d = b"0123456789abcdefghij_Y".to_vec();
        let b_ = map_art(&art_of(&[&a, &d]), &cfg(2));
        assert_eq!(lookup(&b_, &a), Some(1));
        assert_eq!(lookup(&b_, &d), Some(2));
        // Same first 14 prefix bytes, diverging inside the skipped span.
        let probe = b"0123456789abcdefghiQ_X".to_vec();
        assert_eq!(lookup(&b_, &probe), None);
    }
}

#[cfg(test)]
mod multilayer_tests {
    use super::*;
    use crate::cpu::lookup;

    /// Dense 2-level key set: every (b1, b2) pair exists, keys 4 bytes.
    fn dense_keys() -> Vec<Vec<u8>> {
        let mut keys = Vec::new();
        for b1 in 0..=255u8 {
            for b2 in (0..=255u8).step_by(2) {
                keys.push(vec![b1, b2, 7, 9]);
            }
        }
        keys
    }

    fn art_of(keys: &[Vec<u8>]) -> Art<u64> {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        art
    }

    fn ml_cfg(span: usize) -> CuartConfig {
        CuartConfig {
            lut_span: span,
            multi_layer_nodes: true,
            ..CuartConfig::for_tests()
        }
    }

    #[test]
    fn dense_root_merges_into_n2l() {
        let keys = dense_keys();
        let art = art_of(&keys);
        let b = map_art(&art, &ml_cfg(0));
        assert_eq!(b.record_count(LinkType::N2L), 1, "root should merge");
        assert_eq!(b.record_count(LinkType::N256), 0, "no residual N256 levels");
        assert_eq!(b.root.link_type(), Some(LinkType::N2L));
        // Every key resolves; misses miss.
        for k in keys.iter().step_by(97) {
            assert_eq!(lookup(&b, k), art.get(k).copied());
        }
        assert_eq!(lookup(&b, &[1, 1, 7, 9]), None); // odd b2 never inserted
        assert_eq!(lookup(&b, &[1, 2, 7, 8]), None);
        assert_eq!(lookup(&b, &[1, 2]), None); // key ends inside the N2L span
    }

    #[test]
    fn sparse_trees_do_not_merge() {
        // Only 10 first bytes: below the N2L_MIN_CHILDREN threshold.
        let keys: Vec<Vec<u8>> = (0..10u8)
            .flat_map(|b1| (0..10u8).map(move |b2| vec![b1, b2, 1, 1]))
            .collect();
        let b = map_art(&art_of(&keys), &ml_cfg(0));
        assert_eq!(b.record_count(LinkType::N2L), 0);
        for k in &keys {
            assert_eq!(lookup(&b, k), lookup(&b, k)); // and still correct:
            assert!(lookup(&b, k).is_some());
        }
    }

    #[test]
    fn n2l_flag_off_changes_nothing() {
        let keys = dense_keys();
        let art = art_of(&keys);
        let with = map_art(&art, &ml_cfg(0));
        let without = map_art(
            &art,
            &CuartConfig {
                lut_span: 0,
                ..CuartConfig::for_tests()
            },
        );
        assert_eq!(without.record_count(LinkType::N2L), 0);
        for k in keys.iter().step_by(211) {
            assert_eq!(lookup(&with, k), lookup(&without, k));
        }
    }

    #[test]
    fn n2l_with_lut_spans() {
        // The LUT consumes the first 2 bytes; N2L merging then applies to
        // deeper dense levels (here: bytes 2-3 of 6-byte keys).
        let mut keys = Vec::new();
        for b2 in 0..=255u8 {
            for b3 in (0..=255u8).step_by(4) {
                keys.push(vec![9, 9, b2, b3, 5, 5]);
            }
        }
        let art = art_of(&keys);
        let b = map_art(&art, &ml_cfg(2));
        assert_eq!(b.record_count(LinkType::N2L), 1);
        // The LUT entry for [9,9] must point at the N2L node.
        let entry = NodeLink(b.lut[lut_slot(&[9, 9], 2)]);
        assert_eq!(entry.link_type(), Some(LinkType::N2L));
        for k in keys.iter().step_by(173) {
            assert_eq!(lookup(&b, k), art.get(k).copied());
        }
    }

    #[test]
    fn n2l_shortens_device_chain() {
        use cuart_gpu_sim::devices;
        let keys = dense_keys();
        let art = art_of(&keys);
        let flat = crate::CuartIndex::build(
            &art,
            &CuartConfig {
                lut_span: 0,
                ..CuartConfig::for_tests()
            },
        );
        let merged = crate::CuartIndex::build(&art, &ml_cfg(0));
        let dev = devices::a100();
        let probes: Vec<Vec<u8>> = keys.iter().step_by(37).cloned().collect();
        let (r1, flat_rep) = flat.lookup_batch_device(&dev, &probes, 8);
        let (r2, merged_rep) = merged.lookup_batch_device(&dev, &probes, 8);
        assert_eq!(r1, r2, "merging must not change results");
        assert!(
            merged_rep.max_chain_steps < flat_rep.max_chain_steps,
            "N2L {} !< flat {}",
            merged_rep.max_chain_steps,
            flat_rep.max_chain_steps
        );
    }
}
