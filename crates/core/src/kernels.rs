//! The CuART GPU lookup kernel and the shared device traversal.
//!
//! The traversal embodies §3.2.1: because the node type travels in the
//! link, each step knows the read size and alignment up front —
//!
//! * **N4** (64 B) and **N16** (160 B) are fetched whole in a single
//!   transaction ("trading memory bandwidth for access latency"),
//! * **N256** needs only the header and one link, both at *computable*
//!   addresses — two reads issued in the same step (one latency),
//! * **N48** is the only two-step node (the child index byte selects which
//!   link to read),
//! * the compacted root replaces the top `lut_span` levels with a single
//!   8-byte LUT read,
//! * leaves are one aligned read; key comparison is **word-oriented**
//!   (§4.4 — the reason GRT wins on very short keys and CuART on long).

// cuart-allow-file: index-hot-path device traversal indexes packed arenas; every offset is derived from a validated NodeLink and bounds-checked at build time (layout::stride invariants), and a panic here is preferable to silently reading a wrong record

use crate::error::CuartError;
use crate::layout::{self, leaf, stride, EMPTY48, HEADER_BYTES, PREFIX_CAP};
use crate::link::{LinkType, NodeLink};
use crate::mapper::lut_slot;
use cuart_gpu_sim::batch::{KeyBatchLayout, NOT_FOUND};
use cuart_gpu_sim::{BufferId, Dep, Kernel, ThreadCtx};

/// Result bit signalling "finish this comparison on the CPU" (host-leaf
/// links, §3.2.3 option 2). The low bits carry the host-leaf index.
/// Stored values must therefore stay below 2^63.
pub const HOST_SIGNAL: u64 = 1 << 63;

/// Fixed per-node bookkeeping cycles (branching, address arithmetic).
const NODE_OVERHEAD_CYCLES: u32 = 12;
/// Word-oriented comparison: fixed setup + cycles per 8-byte word. For a
/// 4-byte key this costs more than GRT's byte loop; for 32-byte keys far
/// less — the Figure 11 crossover.
const WORD_CMP_SETUP_CYCLES: u32 = 10;
const WORD_CMP_CYCLES_PER_WORD: u32 = 4;

/// Cycles to compare `n` bytes word-wise.
pub(crate) fn word_cmp_cycles(n: usize) -> u32 {
    WORD_CMP_SETUP_CYCLES + WORD_CMP_CYCLES_PER_WORD * (n.div_ceil(8) as u32)
}

/// Device-side handles to the CuART buffers.
#[derive(Debug, Clone, Copy)]
pub struct DeviceTree {
    /// N4 arena.
    pub n4: BufferId,
    /// N16 arena.
    pub n16: BufferId,
    /// N48 arena.
    pub n48: BufferId,
    /// N256 arena.
    pub n256: BufferId,
    /// Multi-layer (N2L) arena.
    pub n2l: BufferId,
    /// Leaf8 arena.
    pub leaf8: BufferId,
    /// Leaf16 arena.
    pub leaf16: BufferId,
    /// Leaf32 arena.
    pub leaf32: BufferId,
    /// Dynamic-leaf arena.
    pub dyn_leaves: BufferId,
    /// Compacted-root lookup table (packed links).
    pub lut: BufferId,
    /// 8-byte meta buffer holding the root link (used when the LUT is
    /// disabled).
    pub meta: BufferId,
    /// LUT span in key bytes (0 = disabled).
    pub lut_span: usize,
}

impl DeviceTree {
    /// The device buffer backing `ty`'s arena.
    ///
    /// Host leaves never have one; asking for it is a typed
    /// [`CuartError::NoDeviceArena`], not a panic.
    pub fn arena(&self, ty: LinkType) -> Result<BufferId, CuartError> {
        Ok(match ty {
            LinkType::N4 => self.n4,
            LinkType::N16 => self.n16,
            LinkType::N48 => self.n48,
            LinkType::N256 => self.n256,
            LinkType::N2L => self.n2l,
            LinkType::Leaf8 => self.leaf8,
            LinkType::Leaf16 => self.leaf16,
            LinkType::Leaf32 => self.leaf32,
            LinkType::DynLeaf => self.dyn_leaves,
            LinkType::HostLeaf => return Err(CuartError::NoDeviceArena { link_type: ty }),
        })
    }

    /// Infallible arena accessor for traversal-internal types: every
    /// `ty` that reaches here is guaranteed device-resident by the caller
    /// (host leaves short-circuit before any arena access).
    pub(crate) fn dev_arena(&self, ty: LinkType) -> BufferId {
        self.arena(ty)
            .expect("traversal link types have device arenas") // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
    }
}

/// Encoded reference to an 8-byte slot inside one of the device buffers:
/// arena tag in the top byte, byte offset below. Used for the update
/// engine's "location" (value slot) and "parent link slot".
pub mod slot_ref {
    use super::*;

    /// Tag for the LUT buffer.
    pub const TAG_LUT: u8 = 0xF;
    /// Tag for the meta (root link) buffer.
    pub const TAG_META: u8 = 0xE;

    /// Encode (tag, byte offset).
    pub fn encode(tag: u8, offset: usize) -> u64 {
        ((tag as u64) << 56) | offset as u64
    }

    /// Decode to (tag, byte offset).
    pub fn decode(v: u64) -> (u8, usize) {
        ((v >> 56) as u8, (v & ((1 << 56) - 1)) as usize)
    }

    /// The device buffer a tag refers to.
    pub fn buffer(tree: &DeviceTree, tag: u8) -> BufferId {
        match tag {
            TAG_LUT => tree.lut,
            TAG_META => tree.meta,
            t => tree.dev_arena(LinkType::from_tag(t).expect("valid arena tag")), // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        }
    }
}

/// Where a missing key could be attached by the device-side insert engine
/// (the §5.1 "structural modifying insertions" extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Attach {
    /// No atomically-attachable point: the insert needs a structural change
    /// (prefix split, leaf split, N4/N16 array insert, …) and spills to the
    /// host.
    None,
    /// A null 8-byte link slot (LUT entry, root, or N256 child): publish
    /// the new leaf with a single CAS on this slot.
    Slot(u64),
    /// A missing N48 child: claim a free link slot in the node at
    /// `node_base`, then point the index byte at `index_ref` to it.
    N48 {
        /// Encoded ref of the child-index byte (node base + header + byte).
        index_ref: u64,
        /// Byte offset of the node record within the N48 arena.
        node_base: u64,
    },
}

/// Outcome of a device traversal (shared by lookup/update/insert kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DevHit {
    /// Key found: its value, the slot holding the value, and the slot
    /// holding the link that leads to the leaf (for deletions).
    Found {
        /// Stored value.
        value: u64,
        /// Encoded reference to the 8-byte value field.
        value_slot: u64,
        /// Encoded reference to the link slot in the parent (or LUT/meta).
        parent_slot: u64,
        /// The leaf link itself.
        leaf_link: NodeLink,
    },
    /// Key not present on the device; `attach` says whether the insert
    /// engine could place it without restructuring.
    Miss {
        /// The attachable point, if any.
        attach: Attach,
    },
    /// Host-leaf link encountered: CPU must compare against this index.
    Host(u64),
}

impl DevHit {
    /// A miss with no attach point.
    pub(crate) const MISS: DevHit = DevHit::Miss {
        attach: Attach::None,
    };
}

/// Walk the device structure for `key`, issuing the CuART access pattern
/// through `ctx`.
pub(crate) fn device_traverse(tree: &DeviceTree, key: &[u8], ctx: &mut ThreadCtx<'_>) -> DevHit {
    if key.is_empty() {
        return DevHit::MISS;
    }
    let span = tree.lut_span;
    let (mut link, mut depth, mut skip, mut parent_slot) = if span > 0 {
        if key.len() < span {
            return DevHit::MISS; // short keys are host-routed
        }
        let slot = lut_slot(key, span);
        ctx.compute(4);
        let entry = NodeLink(ctx.read_u64(tree.lut, slot * 8));
        if entry.is_null() {
            // An empty LUT slot is a perfect attach point: no existing key
            // shares these first `span` bytes.
            return DevHit::Miss {
                attach: Attach::Slot(slot_ref::encode(slot_ref::TAG_LUT, slot * 8)),
            };
        }
        let parent = slot_ref::encode(slot_ref::TAG_LUT, slot * 8);
        (entry.without_aux(), span, entry.aux() as usize, parent)
    } else {
        let root = NodeLink(ctx.read_u64(tree.meta, 0));
        if root.is_null() {
            return DevHit::Miss {
                attach: Attach::Slot(slot_ref::encode(slot_ref::TAG_META, 0)),
            };
        }
        (root, 0, 0, slot_ref::encode(slot_ref::TAG_META, 0))
    };

    loop {
        let Some(ty) = link.link_type() else {
            return DevHit::MISS;
        };
        ctx.compute(NODE_OVERHEAD_CYCLES);
        match ty {
            LinkType::Leaf8 | LinkType::Leaf16 | LinkType::Leaf32 => {
                let base = link.index() as usize * stride(ty);
                // One aligned read covering key + value + metadata.
                let rec = ctx.read_bytes(tree.dev_arena(ty), base, leaf::read_bytes(ty));
                if rec[leaf::live_at(ty)] == 0 {
                    return DevHit::MISS;
                }
                let len = rec[leaf::len_at(ty)] as usize;
                ctx.compute(word_cmp_cycles(len.max(key.len())));
                if len == key.len() && &rec[..len] == key {
                    let at = leaf::value_at(ty);
                    return DevHit::Found {
                        value: u64::from_le_bytes(rec[at..at + 8].try_into().expect("8 bytes")), // cuart-allow: panic-path slice indexed to the exact field width on this line
                        value_slot: slot_ref::encode(ty as u8, base + at),
                        parent_slot,
                        leaf_link: link,
                    };
                }
                return DevHit::MISS;
            }
            LinkType::DynLeaf => {
                let off = link.index() as usize;
                // Dynamically sized: length first, then the data —
                // two dependent reads (the GRT behaviour this option keeps).
                let len = u16::from_le_bytes(
                    ctx.read_bytes(tree.dyn_leaves, off, 2)
                        .try_into()
                        .expect("2"), // cuart-allow: panic-path slice indexed to the exact field width on this line
                ) as usize;
                let body = ctx.read_bytes(tree.dyn_leaves, off + 2, len + 8);
                // Byte-oriented comparison of the arbitrary-length key.
                ctx.compute(3 * len as u32);
                if &body[..len] == key {
                    return DevHit::Found {
                        value: u64::from_le_bytes(body[len..len + 8].try_into().expect("8 bytes")), // cuart-allow: panic-path slice indexed to the exact field width on this line
                        value_slot: slot_ref::encode(ty as u8, off + 2 + len),
                        parent_slot,
                        leaf_link: link,
                    };
                }
                return DevHit::MISS;
            }
            LinkType::HostLeaf => return DevHit::Host(link.index()),
            LinkType::N2L => {
                // Multi-layer node (START, §5.1): two key bytes resolved by
                // one header + one link read, both at computable addresses
                // — one latency for two levels.
                let base = link.index() as usize * stride(ty);
                let rec = ctx.read_bytes(tree.dev_arena(ty), base, HEADER_BYTES);
                let plen = rec[1] as usize;
                debug_assert!(skip <= plen, "LUT skip beyond prefix");
                let remaining = plen - skip;
                if key.len() < depth + remaining + 2 {
                    return DevHit::MISS;
                }
                let slot =
                    ((key[depth + remaining] as usize) << 8) | key[depth + remaining + 1] as usize;
                let next = NodeLink(ctx.read_u64_dep(
                    tree.dev_arena(ty),
                    base + layout::links_at(ty) + slot * 8,
                    Dep::Independent,
                ));
                let stored = plen.min(PREFIX_CAP);
                ctx.compute(word_cmp_cycles(stored) / 2 + NODE_OVERHEAD_CYCLES / 2);
                for j in skip..stored {
                    if rec[2 + j] != key[depth + j - skip] {
                        return DevHit::MISS;
                    }
                }
                depth += remaining + 2;
                skip = 0;
                if next.is_null() {
                    return DevHit::Miss {
                        attach: Attach::Slot(slot_ref::encode(
                            ty as u8,
                            base + layout::links_at(ty) + slot * 8,
                        )),
                    };
                }
                parent_slot = slot_ref::encode(ty as u8, base + layout::links_at(ty) + slot * 8);
                link = next;
            }
            LinkType::N4 | LinkType::N16 | LinkType::N48 | LinkType::N256 => {
                let base = link.index() as usize * stride(ty);
                // Set when a null child is an atomically-attachable point.
                let mut attach_if_null = Attach::None;
                let next = match ty {
                    LinkType::N4 | LinkType::N16 => {
                        // Whole node in one transaction: size known a priori.
                        let rec = ctx.read_bytes(tree.dev_arena(ty), base, stride(ty));
                        match self::match_inner(&rec, key, &mut depth, &mut skip) {
                            Some(byte) => {
                                let count = rec[0] as usize;
                                let keys = &rec[HEADER_BYTES..HEADER_BYTES + count];
                                ctx.compute(4);
                                match keys.iter().position(|&k| k == byte) {
                                    Some(i) => {
                                        let at = layout::links_at(ty) + i * 8;
                                        NodeLink(u64::from_le_bytes(
                                            rec[at..at + 8].try_into().expect("8 bytes"), // cuart-allow: panic-path slice indexed to the exact field width on this line
                                        ))
                                    }
                                    None => NodeLink::NULL,
                                }
                            }
                            None => return DevHit::MISS,
                        }
                    }
                    LinkType::N48 => {
                        // Header read; prefix checked first, then the child
                        // index byte (computable address, same step), then
                        // the selected link (dependent).
                        let rec = ctx.read_bytes(tree.dev_arena(ty), base, HEADER_BYTES);
                        match self::match_inner(&rec, key, &mut depth, &mut skip) {
                            Some(byte) => {
                                let slot = ctx.read_u8_dep(
                                    tree.dev_arena(ty),
                                    base + HEADER_BYTES + byte as usize,
                                    Dep::Independent,
                                );
                                if slot == EMPTY48 {
                                    attach_if_null = Attach::N48 {
                                        index_ref: slot_ref::encode(
                                            ty as u8,
                                            base + HEADER_BYTES + byte as usize,
                                        ),
                                        node_base: base as u64,
                                    };
                                    NodeLink::NULL
                                } else {
                                    NodeLink(ctx.read_u64(
                                        tree.dev_arena(ty),
                                        base + layout::links_at(ty) + slot as usize * 8,
                                    ))
                                }
                            }
                            None => return DevHit::MISS,
                        }
                    }
                    LinkType::N256 => {
                        // Header and link addresses are both computable from
                        // the link alone: one step, two parallel reads.
                        let rec = ctx.read_bytes(tree.dev_arena(ty), base, HEADER_BYTES);
                        // Peek the branch byte optimistically using the
                        // *declared* prefix length, so the link read can be
                        // issued in the same step when the prefix fits.
                        let plen = rec[1] as usize;
                        let opt_byte = key.get(depth + plen.saturating_sub(skip)).copied();
                        let speculative = opt_byte.map(|byte| {
                            NodeLink(ctx.read_u64_dep(
                                tree.dev_arena(ty),
                                base + layout::links_at(ty) + byte as usize * 8,
                                Dep::Independent,
                            ))
                        });
                        match self::match_inner(&rec, key, &mut depth, &mut skip) {
                            Some(byte) => {
                                attach_if_null = Attach::Slot(slot_ref::encode(
                                    ty as u8,
                                    base + layout::links_at(ty) + byte as usize * 8,
                                ));
                                speculative.unwrap_or(NodeLink::NULL)
                            }
                            None => return DevHit::MISS,
                        }
                    }
                    _ => unreachable!(), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
                };
                if next.is_null() {
                    return DevHit::Miss {
                        attach: attach_if_null,
                    };
                }
                // The slot we read `next` from becomes the parent ref.
                parent_slot = match ty {
                    LinkType::N256 => {
                        let byte = key[depth - 1];
                        slot_ref::encode(ty as u8, base + layout::links_at(ty) + byte as usize * 8)
                    }
                    _ => parent_of_inner(tree, ty, base, next, ctx),
                };
                link = next;
            }
        }
    }
}

/// Check the prefix of an inner record against `key`; on success advances
/// `depth` past the prefix and the branch byte, resets `skip`, and returns
/// the branch byte.
fn match_inner(rec: &[u8], key: &[u8], depth: &mut usize, skip: &mut usize) -> Option<u8> {
    let plen = rec[1] as usize;
    let remaining = plen - *skip;
    if key.len() < *depth + remaining + 1 {
        return None;
    }
    let stored = plen.min(PREFIX_CAP);
    for j in *skip..stored {
        if rec[2 + j] != key[*depth + j - *skip] {
            return None;
        }
    }
    *depth += remaining;
    *skip = 0;
    let byte = key[*depth];
    *depth += 1;
    Some(byte)
}

/// Locate the link slot within an N4/N16/N48 record that holds `target`.
/// (Cheap host-side scan over data already fetched — no extra device
/// traffic is logged.)
fn parent_of_inner(
    tree: &DeviceTree,
    ty: LinkType,
    base: usize,
    target: NodeLink,
    ctx: &mut ThreadCtx<'_>,
) -> u64 {
    let links_at = layout::links_at(ty);
    let cap = match ty {
        LinkType::N4 => 4,
        LinkType::N16 => 16,
        LinkType::N48 => 48,
        _ => unreachable!(), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
    };
    let mem = ctx.memory();
    for i in 0..cap {
        let at = base + links_at + i * 8;
        if mem.read_u64(tree.dev_arena(ty), at) == target.0 {
            return slot_ref::encode(ty as u8, at);
        }
    }
    unreachable!("child link not found in parent record"); // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
}

/// One lookup per thread over the CuART structure of buffers.
pub struct CuartLookupKernel {
    /// Device tree handles.
    pub tree: DeviceTree,
    /// Packed query keys.
    pub queries: BufferId,
    /// Query record layout.
    pub layout: KeyBatchLayout,
    /// One u64 result per query.
    pub results: BufferId,
    /// Number of queries.
    pub count: usize,
}

impl Kernel for CuartLookupKernel {
    fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.count {
            return;
        }
        let rec_off = self.layout.offset(tid);
        let rec = ctx.read_bytes(self.queries, rec_off, self.layout.record_bytes());
        let key_len = rec[0] as usize;
        let key = &rec[1..1 + key_len];
        let result = match device_traverse(&self.tree, key, ctx) {
            DevHit::Found { value, .. } => value,
            DevHit::Miss { .. } => NOT_FOUND,
            DevHit::Host(idx) => HOST_SIGNAL | idx,
        };
        ctx.write_u64(self.results, tid * 8, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CuartIndex;
    use crate::buffers::{CuartConfig, LongKeyPolicy};
    use cuart_art::Art;
    use cuart_gpu_sim::devices;

    fn index(keys: &[Vec<u8>], cfg: &CuartConfig) -> CuartIndex {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        CuartIndex::build(&art, cfg)
    }

    #[test]
    fn kernel_matches_cpu_engine() {
        let keys: Vec<Vec<u8>> = (0..3000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).to_be_bytes().to_vec())
            .collect();
        let idx = index(&keys, &CuartConfig::for_tests());
        let mut probes = keys[..512].to_vec();
        probes.push(vec![0xAB; 8]);
        let (results, _) = idx.lookup_batch_device(&devices::a100(), &probes, 8);
        for (p, got) in probes.iter().zip(&results) {
            let want = idx.lookup_cpu(p).unwrap_or(NOT_FOUND);
            assert_eq!(*got, want, "probe {p:x?}");
        }
    }

    #[test]
    fn chain_is_shorter_than_grt() {
        // Dense 4-level tree: CuART should finish in fewer dependent steps
        // than GRT on identical data — the core claim of §3.2.1.
        let keys: Vec<Vec<u8>> = (0..4096u64)
            .map(|i| {
                let mut k = vec![0u8; 8];
                k[..2].copy_from_slice(&((i % 64) as u16).to_be_bytes());
                k[2] = (i / 64) as u8;
                k[7] = 1;
                k
            })
            .collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        let cfg = CuartConfig {
            lut_span: 2,
            ..CuartConfig::for_tests()
        };
        let idx = index(&dedup, &cfg);
        let mut art = Art::new();
        for (i, k) in dedup.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let grt = cuart_grt_like_chain(&art, &dedup[..256]);
        let dev = devices::a100();
        let (_, report) = idx.lookup_batch_device(&dev, &dedup[..256], 8);
        assert!(
            report.max_chain_steps < grt,
            "cuart chain {} !< grt chain {}",
            report.max_chain_steps,
            grt
        );
    }

    /// Helper: the GRT chain depth on the same tree, via the real GRT crate.
    fn cuart_grt_like_chain(art: &Art<u64>, probes: &[Vec<u8>]) -> usize {
        let grt = cuart_grt::GrtIndex::build(art);
        let (_, report) = grt.lookup_batch_device(&devices::a100(), probes, 8);
        report.max_chain_steps
    }

    #[test]
    fn host_signal_for_host_leaf_links() {
        let long = vec![3u8; 48];
        let cfg = CuartConfig {
            lut_span: 2,
            long_key_policy: LongKeyPolicy::HostLeafLink,
            multi_layer_nodes: false,
            single_leaf_class: false,
        };
        let idx = index(&[long.clone(), b"normal_key".to_vec()], &cfg);
        let (results, _) =
            idx.lookup_batch_device_raw(&devices::a100(), std::slice::from_ref(&long), 64);
        assert_eq!(results[0] & HOST_SIGNAL, HOST_SIGNAL);
        let host_idx = (results[0] & !HOST_SIGNAL) as usize;
        assert_eq!(idx.buffers().host_leaves[host_idx].0, long);
    }

    #[test]
    fn slot_ref_encoding_roundtrip() {
        for (tag, off) in [(1u8, 0usize), (7, 123456), (0xF, 8), (0xE, 0)] {
            let enc = slot_ref::encode(tag, off);
            assert_eq!(slot_ref::decode(enc), (tag, off));
        }
    }

    #[test]
    fn word_cmp_cost_grows_with_length() {
        assert!(word_cmp_cycles(32) > word_cmp_cycles(8));
        // 1..8 bytes cost the same (one word) — the short-key handicap.
        assert_eq!(word_cmp_cycles(1), word_cmp_cycles(8));
    }
}
