//! Byte layouts of the typed node and leaf records (§3.2.1, Figure 2).
//!
//! Because the node type lives in the link, the header needs **no type
//! byte**; the freed byte extends the in-node prefix to 14 bytes (GRT
//! stores 13). All inner records are multiples of 16 bytes, so the
//! compile-time alignment guarantee of §3.2.1 holds: a traversal step knows
//! both the size *and* the alignment of its read before issuing it.
//!
//! ```text
//! header (16 B):  [child_count u8][prefix_len u8][prefix 14 B]
//! N4    (64 B):   header  keys[4]  pad[4]  links[4]  x u64
//! N16   (160 B):  header  keys[16]         links[16] x u64
//! N48   (656 B):  header  child_index[256] links[48] x u64
//! N256  (2064 B): header  links[256] x u64
//! leaf8  (24 B):  key[8]   value u64  [len u8][live u8][pad 6]
//! leaf16 (32 B):  key[16]  value u64  [len u8][live u8][pad 6]
//! leaf32 (48 B):  key[32]  value u64  [len u8][live u8][pad 6]
//! dyn leaf:       [key_len u16][key ...][value u64]   (§3.2.3 option 3)
//! ```

use crate::link::LinkType;

/// Inner-node header size.
pub const HEADER_BYTES: usize = 16;
/// Prefix bytes stored inline (one more than GRT thanks to the dropped
/// type byte).
pub const PREFIX_CAP: usize = 14;
/// "Empty" marker in an N48 child index.
pub const EMPTY48: u8 = 0xFF;
/// Trailing metadata in a fixed-size leaf: value u64 + len u8 + live u8 +
/// padding to 8.
pub const LEAF_META_BYTES: usize = 16;

/// Record stride for each link type's arena.
pub fn stride(ty: LinkType) -> usize {
    match ty {
        LinkType::N4 => 64,
        LinkType::N16 => 160,
        LinkType::N48 => 656,
        LinkType::N256 => 2064,
        LinkType::Leaf8 => 8 + LEAF_META_BYTES,
        LinkType::Leaf16 => 16 + LEAF_META_BYTES,
        LinkType::Leaf32 => 32 + LEAF_META_BYTES,
        LinkType::HostLeaf => 0, // host-resident, no device record
        LinkType::DynLeaf => 0,  // dynamically sized
        LinkType::N2L => HEADER_BYTES + (1 << 16) * 8, // START multi-layer node
    }
}

/// Key capacity of a fixed-size leaf class.
pub fn leaf_key_cap(ty: LinkType) -> usize {
    match ty {
        LinkType::Leaf8 => 8,
        LinkType::Leaf16 => 16,
        LinkType::Leaf32 => 32,
        _ => panic!("not a fixed-size leaf class: {ty:?}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
    }
}

/// The smallest leaf class holding a `len`-byte key on the device, or
/// `None` if the key is too long for any (→ long-key policy applies).
pub fn leaf_class_for(len: usize) -> Option<LinkType> {
    match len {
        0 => None,
        1..=8 => Some(LinkType::Leaf8),
        9..=16 => Some(LinkType::Leaf16),
        17..=32 => Some(LinkType::Leaf32),
        _ => None,
    }
}

/// Byte offset of the keys array within an N4/N16 record.
pub fn keys_at(ty: LinkType) -> usize {
    match ty {
        LinkType::N4 | LinkType::N16 => HEADER_BYTES,
        _ => panic!("{ty:?} has no keys array"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
    }
}

/// Byte offset of the child-links array within an inner record.
pub fn links_at(ty: LinkType) -> usize {
    match ty {
        LinkType::N4 => HEADER_BYTES + 8, // 4 key bytes + 4 pad
        LinkType::N16 => HEADER_BYTES + 16,
        LinkType::N48 => HEADER_BYTES + 256,
        LinkType::N256 => HEADER_BYTES,
        LinkType::N2L => HEADER_BYTES,
        _ => panic!("{ty:?} has no links array"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
    }
}

/// Offsets inside a fixed-size leaf record.
pub mod leaf {
    use super::*;

    /// Byte offset of the value field.
    pub fn value_at(ty: LinkType) -> usize {
        leaf_key_cap(ty)
    }

    /// Byte offset of the key-length byte.
    pub fn len_at(ty: LinkType) -> usize {
        leaf_key_cap(ty) + 8
    }

    /// Byte offset of the live flag.
    pub fn live_at(ty: LinkType) -> usize {
        leaf_key_cap(ty) + 9
    }

    /// Bytes a lookup kernel must read to compare a key and fetch the
    /// value: key + value + len/live metadata.
    pub fn read_bytes(ty: LinkType) -> usize {
        leaf_key_cap(ty) + 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_strides_are_16_aligned() {
        for ty in [LinkType::N4, LinkType::N16, LinkType::N48, LinkType::N256] {
            assert_eq!(stride(ty) % 16, 0, "{ty:?}");
        }
    }

    #[test]
    fn leaf_strides_are_8_aligned() {
        for ty in [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32] {
            assert_eq!(stride(ty) % 8, 0, "{ty:?}");
        }
        assert_eq!(stride(LinkType::Leaf8), 24);
        assert_eq!(stride(LinkType::Leaf16), 32);
        assert_eq!(stride(LinkType::Leaf32), 48);
    }

    #[test]
    fn n48_and_n256_match_art_footprints() {
        // Same ballpark as the ART/GRT nodes (~650 B / ~2 KB, §3.1).
        assert_eq!(stride(LinkType::N48), 656);
        assert_eq!(stride(LinkType::N256), 2064);
    }

    #[test]
    fn leaf_class_selection() {
        assert_eq!(leaf_class_for(0), None);
        assert_eq!(leaf_class_for(1), Some(LinkType::Leaf8));
        assert_eq!(leaf_class_for(8), Some(LinkType::Leaf8));
        assert_eq!(leaf_class_for(9), Some(LinkType::Leaf16));
        assert_eq!(leaf_class_for(16), Some(LinkType::Leaf16));
        assert_eq!(leaf_class_for(17), Some(LinkType::Leaf32));
        assert_eq!(leaf_class_for(32), Some(LinkType::Leaf32));
        assert_eq!(leaf_class_for(33), None);
    }

    #[test]
    fn field_offsets_fit_in_stride() {
        for ty in [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32] {
            assert!(leaf::live_at(ty) < stride(ty));
            assert!(leaf::read_bytes(ty) <= stride(ty));
        }
        assert_eq!(links_at(LinkType::N4) + 4 * 8, 56);
        assert!(links_at(LinkType::N16) + 16 * 8 <= stride(LinkType::N16));
        assert!(links_at(LinkType::N48) + 48 * 8 <= stride(LinkType::N48));
        assert!(links_at(LinkType::N256) + 256 * 8 <= stride(LinkType::N256));
    }

    #[test]
    fn prefix_cap_is_one_more_than_grt() {
        assert_eq!(PREFIX_CAP, 14);
    }
}
