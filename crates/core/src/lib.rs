//! # cuart — the CuART index (ICPP 2021)
//!
//! A structure-of-buffers GPU Adaptive Radix Tree with a device-side batch
//! update engine — the primary contribution of Koppehel, Pionteck, Groth and
//! Groppe, *"CuART — a CUDA-based, scalable Radix-Tree lookup and update
//! engine"*, ICPP 2021. This crate implements the index itself; the GPU it
//! runs on is the `cuart-gpu-sim` simulator and the pointer-based source
//! tree comes from `cuart-art`.
//!
//! ## The optimizations (§3.2 of the paper)
//!
//! 1. **One buffer per node type** ([`buffers`]): N4/N16/N48/N256 and three
//!    fixed-size leaf classes (8/16/32-byte keys) each live in their own
//!    aligned arena, so a traversal step knows the read size and alignment
//!    *before* issuing the memory transaction — one transaction per node
//!    instead of GRT's header-then-body pair.
//! 2. **Packed 64-bit node links** ([`link`]): node type in the most
//!    significant bits, index into the per-type buffer in the least
//!    significant bits. The type byte this removes from the node header is
//!    reused for a longer in-node prefix.
//! 3. **Compacted root** ([`mapper`]): the first `lut_span` (default 3) key
//!    bytes index a dense lookup table of node links, merging the top tree
//!    layers as proposed by START (Fent et al. 2020). 2^24 entries × 8 B =
//!    the 128 MB figure of §3.2.2.
//! 4. **Ordered fixed-size leaves** ([`range`]): leaves are emitted in
//!    lexicographic key order, so a range query result is just a pair of
//!    indices per leaf buffer.
//! 5. **Long-key handling** ([`LongKeyPolicy`]): route to CPU, host-leaf
//!    links, or GRT-style dynamic leaves (§3.2.3).
//! 6. **Two-stage batch updates** ([`update`]): stage 1 resolves each key to
//!    its leaf slot and publishes (slot → max thread index) claims into an
//!    atomic hash table with linear probing; after a grid-wide sync, stage 2
//!    lets only the winning thread write. Deletes are updates with a nil
//!    sentinel: the leaf is cleared, its slot freed, and the parent's child
//!    link removed — without restructuring the tree (§3.3/§3.4).
//!
//! ## Quick example
//!
//! ```
//! use cuart::{CuartConfig, CuartIndex};
//! use cuart_art::Art;
//! use cuart_gpu_sim::devices;
//!
//! let mut art = Art::new();
//! for i in 0..1000u64 {
//!     art.insert(&i.to_be_bytes(), i).unwrap();
//! }
//! let index = CuartIndex::build(&art, &CuartConfig::for_tests());
//!
//! // CPU engine (the Figure 7 fast path):
//! assert_eq!(index.lookup_cpu(&42u64.to_be_bytes()), Some(42));
//!
//! // Simulated-GPU batch lookup:
//! let queries: Vec<Vec<u8>> = (0..64u64).map(|i| i.to_be_bytes().to_vec()).collect();
//! let (results, report) = index.lookup_batch_device(&devices::rtx3090(), &queries, 8);
//! assert_eq!(results[5], 5);
//! assert!(report.time_ns > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod buffers;
pub mod cpu;
pub mod error;
pub mod insert;
pub mod kernels;
pub mod layout;
pub mod link;
pub mod mapper;
pub mod persist;
pub mod range;
pub mod shard;
pub mod update;

pub use api::{CuartIndex, CuartSession, FaultStats};
pub use buffers::{CuartBuffers, CuartConfig, LongKeyPolicy};
pub use error::{CuartError, RetryPolicy};
pub use kernels::DeviceTree;
pub use link::NodeLink;
pub use shard::ShardRouter;
pub use update::DELETE;
