//! The structure-of-buffers representation: one typed arena per node kind.
//!
//! This is the host-side image of the index. [`upload`](crate::CuartIndex::upload)
//! copies each arena into its own aligned device buffer; the paper's §3.3
//! uses CUDA unified memory for the same purpose, so host and device see one
//! coherent set of buffers.

use crate::error::CuartError;
use crate::layout::stride;
use crate::link::{LinkType, NodeLink};

/// How keys longer than the 32-byte device maximum are handled (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LongKeyPolicy {
    /// Option 1 (the paper's recommendation): long keys never reach the
    /// GPU; the host answers them from a side table while the GPU serves
    /// the short keys (Figures 13/14).
    CpuRoute,
    /// Option 2: long keys live in host memory; the device tree stores
    /// [`LinkType::HostLeaf`] links and the kernel returns a "compare on
    /// CPU" signal.
    HostLeafLink,
    /// Option 3 (what GRT does): dynamically sized on-device leaves,
    /// compared byte-wise by the kernel.
    DynamicLeaf,
}

/// Build-time configuration of a CuART index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CuartConfig {
    /// Key bytes consumed by the compacted-root lookup table (§3.2.2).
    /// 3 gives the paper's 2^24-entry / 128 MB table; 2 gives a 512 KiB
    /// table suitable for tests; 0 disables the LUT.
    pub lut_span: usize,
    /// Long-key strategy.
    pub long_key_policy: LongKeyPolicy,
    /// Enable START multi-layer nodes (§5.1): dense two-level N256
    /// subtrees are merged into single 2^16-fanout nodes at map time,
    /// halving the traversal depth through dense regions at the cost of
    /// 512 KiB per merged node.
    pub multi_layer_nodes: bool,
    /// Ablation switch: store every device key in the 32-byte leaf class,
    /// as CuART's *initial* implementation did before §3.2.1's switch to
    /// size-classed leaves ("during the evaluation, we switched from a
    /// single sized leaves to several leaf objects of different sizes").
    pub single_leaf_class: bool,
}

impl Default for CuartConfig {
    fn default() -> Self {
        CuartConfig {
            lut_span: 3,
            long_key_policy: LongKeyPolicy::CpuRoute,
            multi_layer_nodes: false,
            single_leaf_class: false,
        }
    }
}

impl CuartConfig {
    /// A small-LUT configuration for unit tests (2-byte span → 512 KiB).
    pub fn for_tests() -> Self {
        CuartConfig {
            lut_span: 2,
            long_key_policy: LongKeyPolicy::CpuRoute,
            multi_layer_nodes: false,
            single_leaf_class: false,
        }
    }

    /// Number of LUT entries (0 when the LUT is disabled).
    pub fn lut_entries(&self) -> usize {
        if self.lut_span == 0 {
            0
        } else {
            1usize << (8 * self.lut_span)
        }
    }
}

/// The typed arenas plus the compacted-root table and host-side side
/// tables. Indices in [`NodeLink`]s address records within these arenas.
#[derive(Debug, Clone)]
pub struct CuartBuffers {
    /// Build configuration.
    pub config: CuartConfig,
    /// N4 records.
    pub n4: Vec<u8>,
    /// N16 records.
    pub n16: Vec<u8>,
    /// N48 records.
    pub n48: Vec<u8>,
    /// N256 records.
    pub n256: Vec<u8>,
    /// Multi-layer (N2L) records, when `multi_layer_nodes` is enabled.
    pub n2l: Vec<u8>,
    /// Leaf records for keys ≤ 8 bytes.
    pub leaf8: Vec<u8>,
    /// Leaf records for keys ≤ 16 bytes.
    pub leaf16: Vec<u8>,
    /// Leaf records for keys ≤ 32 bytes.
    pub leaf32: Vec<u8>,
    /// Dynamically sized leaves (LongKeyPolicy::DynamicLeaf).
    pub dyn_leaves: Vec<u8>,
    /// Compacted-root lookup table: `lut_entries()` packed links.
    pub lut: Vec<u64>,
    /// Root link, used when the LUT is disabled and as the traversal
    /// fallback for keys shorter than the LUT span.
    pub root: NodeLink,
    /// Keys shorter than `lut_span`, sorted (binary-searched side table).
    pub short_keys: Vec<(Vec<u8>, u64)>,
    /// Long keys resident in host memory (CpuRoute / HostLeafLink),
    /// sorted by key.
    pub host_leaves: Vec<(Vec<u8>, u64)>,
    /// Number of keys stored (device + host side).
    pub entries: usize,
    /// Longest key in the index.
    pub max_key_len: usize,
}

impl CuartBuffers {
    /// Empty buffers with the given configuration.
    pub fn new(config: CuartConfig) -> Self {
        CuartBuffers {
            config,
            n4: Vec::new(),
            n16: Vec::new(),
            n48: Vec::new(),
            n256: Vec::new(),
            n2l: Vec::new(),
            leaf8: Vec::new(),
            leaf16: Vec::new(),
            leaf32: Vec::new(),
            dyn_leaves: Vec::new(),
            lut: vec![0; config.lut_entries()],
            root: NodeLink::NULL,
            short_keys: Vec::new(),
            host_leaves: Vec::new(),
            entries: 0,
            max_key_len: 0,
        }
    }

    /// Borrow the arena of a fixed-stride link type.
    ///
    /// Host leaves live in host memory by definition, so asking for their
    /// device arena is a typed [`CuartError::NoDeviceArena`] — not a panic.
    pub fn arena(&self, ty: LinkType) -> Result<&Vec<u8>, CuartError> {
        Ok(match ty {
            LinkType::N4 => &self.n4,
            LinkType::N16 => &self.n16,
            LinkType::N48 => &self.n48,
            LinkType::N256 => &self.n256,
            LinkType::N2L => &self.n2l,
            LinkType::Leaf8 => &self.leaf8,
            LinkType::Leaf16 => &self.leaf16,
            LinkType::Leaf32 => &self.leaf32,
            LinkType::DynLeaf => &self.dyn_leaves,
            LinkType::HostLeaf => return Err(CuartError::NoDeviceArena { link_type: ty }),
        })
    }

    pub(crate) fn arena_mut(&mut self, ty: LinkType) -> Result<&mut Vec<u8>, CuartError> {
        Ok(match ty {
            LinkType::N4 => &mut self.n4,
            LinkType::N16 => &mut self.n16,
            LinkType::N48 => &mut self.n48,
            LinkType::N256 => &mut self.n256,
            LinkType::N2L => &mut self.n2l,
            LinkType::Leaf8 => &mut self.leaf8,
            LinkType::Leaf16 => &mut self.leaf16,
            LinkType::Leaf32 => &mut self.leaf32,
            LinkType::DynLeaf => &mut self.dyn_leaves,
            LinkType::HostLeaf => return Err(CuartError::NoDeviceArena { link_type: ty }),
        })
    }

    /// Append a zeroed record to `ty`'s arena; returns its index.
    pub fn alloc_record(&mut self, ty: LinkType) -> u64 {
        let s = stride(ty);
        assert!(s > 0, "{ty:?} has no fixed-stride arena");
        let arena = self
            .arena_mut(ty)
            .expect("fixed-stride types have a device arena"); // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        let index = (arena.len() / s) as u64;
        arena.resize(arena.len() + s, 0);
        index
    }

    /// Number of records in `ty`'s arena (0 for host-resident types).
    pub fn record_count(&self, ty: LinkType) -> usize {
        self.arena(ty)
            .map(|a| a.len().checked_div(stride(ty)).unwrap_or(0))
            .unwrap_or(0)
    }

    /// Byte offset of record `index` in `ty`'s arena.
    pub fn record_offset(&self, ty: LinkType, index: u64) -> usize {
        index as usize * stride(ty)
    }

    /// Read a field of a record. Callers guarantee `ty` is device-resident
    /// (like slice indexing guarantees `index` is in bounds).
    pub fn record(&self, ty: LinkType, index: u64) -> &[u8] {
        let off = self.record_offset(ty, index);
        let arena = self.arena(ty).expect("record() needs a device arena"); // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        &arena[off..off + stride(ty)]
    }

    /// Mutable view of a record.
    pub fn record_mut(&mut self, ty: LinkType, index: u64) -> &mut [u8] {
        let off = self.record_offset(ty, index);
        let s = stride(ty);
        let arena = self
            .arena_mut(ty)
            .expect("record_mut() needs a device arena"); // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        &mut arena[off..off + s]
    }

    /// Read a packed link stored at byte `off` within `ty`'s arena.
    pub fn link_at(&self, ty: LinkType, off: usize) -> NodeLink {
        let arena = self.arena(ty).expect("link_at() needs a device arena"); // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        NodeLink(u64::from_le_bytes(
            arena[off..off + 8].try_into().expect("8 bytes"), // cuart-allow: panic-path slice indexed to the exact field width on this line
        ))
    }

    /// Write a packed link at byte `off` within `ty`'s arena.
    pub fn set_link_at(&mut self, ty: LinkType, off: usize, link: NodeLink) {
        let arena = self
            .arena_mut(ty)
            .expect("set_link_at() needs a device arena"); // cuart-allow: panic-path fixed-stride traversal types always carry a device arena (mapper invariant)
        arena[off..off + 8].copy_from_slice(&link.0.to_le_bytes());
    }

    /// Total bytes the device-side structures occupy (arenas + LUT).
    pub fn device_bytes(&self) -> usize {
        self.n4.len()
            + self.n16.len()
            + self.n48.len()
            + self.n256.len()
            + self.n2l.len()
            + self.leaf8.len()
            + self.leaf16.len()
            + self.leaf32.len()
            + self.dyn_leaves.len()
            + self.lut.len() * 8
    }

    /// Keys held on the host side (short + long tables).
    pub fn host_entries(&self) -> usize {
        self.short_keys.len() + self.host_leaves.len()
    }

    /// Binary search a host-side sorted table.
    pub(crate) fn search_table(table: &[(Vec<u8>, u64)], key: &[u8]) -> Option<u64> {
        table
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| table[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;

    #[test]
    fn config_lut_sizes() {
        assert_eq!(CuartConfig::default().lut_entries(), 1 << 24);
        assert_eq!(CuartConfig::for_tests().lut_entries(), 1 << 16);
        let off = CuartConfig {
            lut_span: 0,
            ..CuartConfig::for_tests()
        };
        assert_eq!(off.lut_entries(), 0);
    }

    #[test]
    fn default_lut_is_128_mib() {
        // §3.2.2: "resulting in 128MB of memory consumption on the device".
        let cfg = CuartConfig::default();
        assert_eq!(cfg.lut_entries() * 8, 128 << 20);
    }

    #[test]
    fn alloc_records_and_strides() {
        let mut b = CuartBuffers::new(CuartConfig::for_tests());
        let i0 = b.alloc_record(LinkType::N4);
        let i1 = b.alloc_record(LinkType::N4);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(b.record_count(LinkType::N4), 2);
        assert_eq!(b.n4.len(), 128);
        assert_eq!(b.record_count(LinkType::N256), 0);
        assert_eq!(b.record(LinkType::N4, 1).len(), 64);
    }

    #[test]
    fn link_read_write() {
        let mut b = CuartBuffers::new(CuartConfig::for_tests());
        b.alloc_record(LinkType::N256);
        let link = NodeLink::new(LinkType::Leaf16, 42);
        b.set_link_at(LinkType::N256, layout::links_at(LinkType::N256) + 8, link);
        assert_eq!(
            b.link_at(LinkType::N256, layout::links_at(LinkType::N256) + 8),
            link
        );
    }

    #[test]
    fn device_bytes_accounts_everything() {
        let mut b = CuartBuffers::new(CuartConfig::for_tests());
        let lut_bytes = (1usize << 16) * 8;
        assert_eq!(b.device_bytes(), lut_bytes);
        b.alloc_record(LinkType::Leaf32);
        assert_eq!(b.device_bytes(), lut_bytes + 48);
    }

    #[test]
    fn table_search() {
        let table = vec![
            (b"aa".to_vec(), 1u64),
            (b"bb".to_vec(), 2),
            (b"cc".to_vec(), 3),
        ];
        assert_eq!(CuartBuffers::search_table(&table, b"bb"), Some(2));
        assert_eq!(CuartBuffers::search_table(&table, b"zz"), None);
    }

    #[test]
    fn host_leaf_has_no_arena() {
        let b = CuartBuffers::new(CuartConfig::for_tests());
        assert!(matches!(
            b.arena(LinkType::HostLeaf),
            Err(CuartError::NoDeviceArena {
                link_type: LinkType::HostLeaf
            })
        ));
        // And the derived accessors degrade gracefully instead of panicking.
        assert_eq!(b.record_count(LinkType::HostLeaf), 0);
    }
}
