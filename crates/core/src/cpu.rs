//! The CPU lookup engine over CuART buffers.
//!
//! §4.2 of the paper shows the structure-of-buffers layout is not a
//! GPU-only trick: on the CPU it beats the classic pointer-based ART by
//! 2.5–20× (Figure 7) because the arenas are contiguous, cache lines are
//! fully used, and traversal reads are sequential within each record. This
//! module is that engine; it is also the functional reference the GPU
//! kernels are tested against.

use crate::buffers::{CuartBuffers, LongKeyPolicy};
use crate::layout::{self, leaf, EMPTY48, HEADER_BYTES, PREFIX_CAP};
use crate::link::{LinkType, NodeLink};
use crate::mapper::{lut_slot, MAX_DEVICE_KEY};

/// Outcome of a device-structure traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// The key was found with this value.
    Found(u64),
    /// The key is not in the device structure.
    NotFound,
    /// The traversal hit a host-leaf link (§3.2.3 option 2): the CPU must
    /// compare the key against host leaf `index`.
    HostCompare(u64),
}

/// Traverse the device-visible structure for `key`. Host-side side tables
/// (short keys, CPU-routed long keys) are *not* consulted — that is
/// [`lookup`]'s job, mirroring the split between GPU kernel and host code.
pub fn traverse(b: &CuartBuffers, key: &[u8]) -> Resolution {
    if key.is_empty() || b.entries == 0 {
        return Resolution::NotFound;
    }
    let span = b.config.lut_span;
    let (mut link, mut depth, mut skip) = if span > 0 {
        if key.len() < span {
            return Resolution::NotFound;
        }
        let entry = NodeLink(b.lut[lut_slot(key, span)]);
        if entry.is_null() {
            return Resolution::NotFound;
        }
        (entry.without_aux(), span, entry.aux() as usize)
    } else {
        (b.root, 0usize, 0usize)
    };

    loop {
        let Some(ty) = link.link_type() else {
            return Resolution::NotFound;
        };
        match ty {
            LinkType::Leaf8 | LinkType::Leaf16 | LinkType::Leaf32 => {
                let rec = b.record(ty, link.index());
                if rec[leaf::live_at(ty)] == 0 {
                    return Resolution::NotFound;
                }
                let len = rec[leaf::len_at(ty)] as usize;
                if len == key.len() && &rec[..len] == key {
                    let at = leaf::value_at(ty);
                    return Resolution::Found(u64::from_le_bytes(
                        rec[at..at + 8].try_into().expect("8 bytes"), // cuart-allow: panic-path slice indexed to the exact field width on this line
                    ));
                }
                return Resolution::NotFound;
            }
            LinkType::DynLeaf => {
                let off = link.index() as usize;
                let len = u16::from_le_bytes(b.dyn_leaves[off..off + 2].try_into().expect("2 bytes")) // cuart-allow: panic-path slice indexed to the exact field width on this line
                        as usize;
                let stored = &b.dyn_leaves[off + 2..off + 2 + len];
                if stored == key {
                    let at = off + 2 + len;
                    return Resolution::Found(u64::from_le_bytes(
                        b.dyn_leaves[at..at + 8].try_into().expect("8 bytes"), // cuart-allow: panic-path slice indexed to the exact field width on this line
                    ));
                }
                return Resolution::NotFound;
            }
            LinkType::HostLeaf => return Resolution::HostCompare(link.index()),
            LinkType::N2L => {
                let base = b.record_offset(ty, link.index());
                let rec = b.record(ty, link.index());
                let plen = rec[1] as usize;
                debug_assert!(skip <= plen, "LUT skip beyond prefix");
                let remaining = plen - skip;
                // Two branch bytes must exist after the prefix.
                if key.len() < depth + remaining + 2 {
                    return Resolution::NotFound;
                }
                let stored = plen.min(PREFIX_CAP);
                for j in skip..stored {
                    if rec[2 + j] != key[depth + j - skip] {
                        return Resolution::NotFound;
                    }
                }
                depth += remaining;
                skip = 0;
                let slot = ((key[depth] as usize) << 8) | key[depth + 1] as usize;
                let next = b.link_at(ty, base + layout::links_at(ty) + slot * 8);
                if next.is_null() {
                    return Resolution::NotFound;
                }
                link = next;
                depth += 2;
            }
            LinkType::N4 | LinkType::N16 | LinkType::N48 | LinkType::N256 => {
                let base = b.record_offset(ty, link.index());
                let rec = b.record(ty, link.index());
                let count = rec[0] as usize;
                let plen = rec[1] as usize;
                debug_assert!(skip <= plen, "LUT skip beyond prefix");
                let remaining = plen - skip;
                // The branch byte must exist after the prefix.
                if key.len() < depth + remaining + 1 {
                    return Resolution::NotFound;
                }
                // Compare the stored prefix bytes; the tail beyond
                // PREFIX_CAP is skipped optimistically (leaf verifies).
                let stored = plen.min(PREFIX_CAP);
                for j in skip..stored {
                    if rec[2 + j] != key[depth + j - skip] {
                        return Resolution::NotFound;
                    }
                }
                depth += remaining;
                skip = 0;
                let byte = key[depth];
                let next = match ty {
                    LinkType::N4 | LinkType::N16 => {
                        let keys = &rec[HEADER_BYTES..HEADER_BYTES + count];
                        match keys.iter().position(|&k| k == byte) {
                            Some(i) => b.link_at(ty, base + layout::links_at(ty) + i * 8),
                            None => NodeLink::NULL,
                        }
                    }
                    LinkType::N48 => {
                        let slot = rec[HEADER_BYTES + byte as usize];
                        if slot == EMPTY48 {
                            NodeLink::NULL
                        } else {
                            b.link_at(ty, base + layout::links_at(ty) + slot as usize * 8)
                        }
                    }
                    LinkType::N256 => {
                        b.link_at(ty, base + layout::links_at(ty) + byte as usize * 8)
                    }
                    _ => unreachable!(), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
                };
                if next.is_null() {
                    return Resolution::NotFound;
                }
                link = next;
                depth += 1;
            }
        }
    }
}

/// Full lookup: routes short and long keys to the host-side tables exactly
/// as the host pipeline would, and resolves host-compare signals.
pub fn lookup(b: &CuartBuffers, key: &[u8]) -> Option<u64> {
    let span = b.config.lut_span;
    if span > 0 && !key.is_empty() && key.len() < span {
        return CuartBuffers::search_table(&b.short_keys, key);
    }
    if key.len() > MAX_DEVICE_KEY && b.config.long_key_policy == LongKeyPolicy::CpuRoute {
        return CuartBuffers::search_table(&b.host_leaves, key);
    }
    match traverse(b, key) {
        Resolution::Found(v) => Some(v),
        Resolution::NotFound => None,
        Resolution::HostCompare(idx) => {
            let (stored, value) = &b.host_leaves[idx as usize];
            (stored.as_slice() == key).then_some(*value)
        }
    }
}

/// Batch lookup convenience (the CPU engine of Figure 7 runs batches of
/// 32 Ki keys through exactly this loop).
pub fn lookup_batch(b: &CuartBuffers, keys: &[Vec<u8>]) -> Vec<Option<u64>> {
    keys.iter().map(|k| lookup(b, k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::CuartConfig;
    use crate::mapper::map_art;
    use cuart_art::Art;

    fn build(keys: &[Vec<u8>], span: usize) -> CuartBuffers {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        map_art(
            &art,
            &CuartConfig {
                lut_span: span,
                ..CuartConfig::for_tests()
            },
        )
    }

    #[test]
    fn agrees_with_art_random_8byte_keys() {
        let mut art = Art::new();
        let mut x = 7u64;
        let mut keys = Vec::new();
        for i in 0..5000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x.to_be_bytes().to_vec();
            art.insert(&k, i).unwrap();
            keys.push(k);
        }
        for span in [0usize, 2] {
            let b = map_art(
                &art,
                &CuartConfig {
                    lut_span: span,
                    ..CuartConfig::for_tests()
                },
            );
            for k in &keys {
                assert_eq!(
                    lookup(&b, k).as_ref(),
                    art.get(k),
                    "span {span}, key {k:x?}"
                );
            }
            for i in 0..200u64 {
                let probe = (i | 0xABCD_0000_0000_0000).to_be_bytes();
                assert_eq!(lookup(&b, &probe).as_ref(), art.get(&probe), "span {span}");
            }
        }
    }

    #[test]
    fn sixteen_and_thirtytwo_byte_keys() {
        let keys: Vec<Vec<u8>> = (0..1000u64)
            .map(|i| {
                let mut k = vec![0u8; 32];
                k[..8].copy_from_slice(&i.wrapping_mul(0x2545F4914F6CDD1D).to_be_bytes());
                k[24..].copy_from_slice(&i.to_be_bytes());
                k
            })
            .collect();
        let b = build(&keys, 2);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(lookup(&b, k), Some(i as u64 + 1));
        }
    }

    #[test]
    fn traverse_does_not_see_host_tables() {
        let b = build(&[b"a".to_vec(), b"device_key".to_vec()], 3);
        // "a" is host-side (shorter than the LUT span).
        assert_eq!(traverse(&b, b"a"), Resolution::NotFound);
        assert_eq!(lookup(&b, b"a"), Some(1));
        assert!(matches!(traverse(&b, b"device_key"), Resolution::Found(2)));
    }

    #[test]
    fn empty_key_and_empty_index() {
        let b = build(&[b"k1".to_vec()], 0);
        assert_eq!(lookup(&b, b""), None);
        let empty = map_art(&Art::new(), &CuartConfig::for_tests());
        assert_eq!(lookup(&empty, b"k1"), None);
    }

    #[test]
    fn batch_lookup_order_preserved() {
        let b = build(&[b"kx1".to_vec(), b"kx2".to_vec()], 2);
        let out = lookup_batch(&b, &[b"kx2".to_vec(), b"missing".to_vec(), b"kx1".to_vec()]);
        assert_eq!(out, vec![Some(2), None, Some(1)]);
    }

    #[test]
    fn mixed_key_lengths_with_lut() {
        // Lengths straddling every leaf class, all through the 2-byte LUT.
        let keys: Vec<Vec<u8>> = (0..300u64)
            .map(|i| {
                let len = 4 + (i % 29) as usize;
                let mut k = vec![0u8; len];
                k[0] = (i % 256) as u8;
                k[1] = (i / 256) as u8;
                k[2] = len as u8;
                k[len - 1] = 0xEE;
                k
            })
            .collect();
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        let b = build(&unique, 2);
        for k in &unique {
            assert!(lookup(&b, k).is_some(), "lost key {k:?}");
        }
    }
}
