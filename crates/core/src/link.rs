//! Packed 64-bit node links (§3.2.1, Figure 2 of the paper).
//!
//! GRT addresses children with plain 64-bit byte offsets into its single
//! buffer. CuART replaces them with a packed value: **node type in the most
//! significant bits, index into the corresponding typed buffer in the least
//! significant bits**. The paper uses tags 1–4 for the inner node types and
//! 5–7 for the three leaf classes; we extend the tag space by one bit to
//! also encode the long-key targets of §3.2.3 (host leaves and dynamic
//! leaves).
//!
//! Bit layout (MSB → LSB):
//!
//! ```text
//! [63..60] type tag (4 bits)   [59..55] aux (5 bits)   [54..0] index
//! ```
//!
//! The `aux` field carries the number of already-consumed prefix bytes for
//! links installed in the compacted-root lookup table (a LUT entry can point
//! *into the middle* of a node's compressed prefix); it is 0 for ordinary
//! child links. The all-zero word is the null link.

/// Node/leaf type tags carried in the top bits of a [`NodeLink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LinkType {
    /// Inner node, ≤ 4 children.
    N4 = 1,
    /// Inner node, ≤ 16 children.
    N16 = 2,
    /// Inner node, ≤ 48 children.
    N48 = 3,
    /// Inner node, ≤ 256 children.
    N256 = 4,
    /// Fixed-size leaf, keys ≤ 8 bytes.
    Leaf8 = 5,
    /// Fixed-size leaf, keys ≤ 16 bytes.
    Leaf16 = 6,
    /// Fixed-size leaf, keys ≤ 32 bytes.
    Leaf32 = 7,
    /// Long key stored in host memory; the GPU signals the CPU to finish
    /// the comparison (§3.2.3, option 2).
    HostLeaf = 8,
    /// Dynamically sized on-device leaf, GRT-style (§3.2.3, option 3).
    DynLeaf = 9,
    /// Multi-layer node (START, Fent et al. 2020 — the §5.1 integration):
    /// consumes **two** key bytes through a dense 2^16-entry link table,
    /// merging two dense N256 levels into a single memory access.
    N2L = 10,
}

impl LinkType {
    /// Decode a tag; `None` for invalid values.
    pub fn from_tag(tag: u8) -> Option<LinkType> {
        Some(match tag {
            1 => LinkType::N4,
            2 => LinkType::N16,
            3 => LinkType::N48,
            4 => LinkType::N256,
            5 => LinkType::Leaf8,
            6 => LinkType::Leaf16,
            7 => LinkType::Leaf32,
            8 => LinkType::HostLeaf,
            9 => LinkType::DynLeaf,
            10 => LinkType::N2L,
            _ => return None,
        })
    }

    /// `true` for the three fixed-size device leaf classes.
    pub fn is_device_leaf(self) -> bool {
        matches!(self, LinkType::Leaf8 | LinkType::Leaf16 | LinkType::Leaf32)
    }

    /// `true` for the inner node types (including the multi-layer N2L).
    pub fn is_inner(self) -> bool {
        matches!(
            self,
            LinkType::N4 | LinkType::N16 | LinkType::N48 | LinkType::N256 | LinkType::N2L
        )
    }
}

const TYPE_SHIFT: u32 = 60;
const AUX_SHIFT: u32 = 55;
const AUX_MASK: u64 = 0x1F;
const INDEX_MASK: u64 = (1 << AUX_SHIFT) - 1;

/// A packed node link. The all-zero link is null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeLink(pub u64);

impl NodeLink {
    /// The null link.
    pub const NULL: NodeLink = NodeLink(0);

    /// Pack `ty` and `index` (aux = 0).
    pub fn new(ty: LinkType, index: u64) -> NodeLink {
        assert!(index <= INDEX_MASK, "node index {index} overflows link");
        NodeLink(((ty as u64) << TYPE_SHIFT) | index)
    }

    /// Pack with an explicit aux value (consumed-prefix count for LUT
    /// entries).
    pub fn with_aux(ty: LinkType, index: u64, aux: u8) -> NodeLink {
        assert!(u64::from(aux) <= AUX_MASK, "aux {aux} overflows link");
        NodeLink(NodeLink::new(ty, index).0 | (u64::from(aux) << AUX_SHIFT))
    }

    /// `true` if this is the null link.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The type tag, if valid and non-null.
    pub fn link_type(self) -> Option<LinkType> {
        LinkType::from_tag((self.0 >> TYPE_SHIFT) as u8)
    }

    /// The index into the per-type buffer.
    pub fn index(self) -> u64 {
        self.0 & INDEX_MASK
    }

    /// The aux field (consumed prefix bytes for LUT entries).
    pub fn aux(self) -> u8 {
        ((self.0 >> AUX_SHIFT) & AUX_MASK) as u8
    }

    /// The same link with aux cleared (an ordinary child link).
    pub fn without_aux(self) -> NodeLink {
        NodeLink(self.0 & !(AUX_MASK << AUX_SHIFT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for ty in [
            LinkType::N4,
            LinkType::N16,
            LinkType::N48,
            LinkType::N256,
            LinkType::Leaf8,
            LinkType::Leaf16,
            LinkType::Leaf32,
            LinkType::HostLeaf,
            LinkType::DynLeaf,
        ] {
            for idx in [0u64, 1, 12345, INDEX_MASK] {
                let link = NodeLink::new(ty, idx);
                assert_eq!(link.link_type(), Some(ty));
                assert_eq!(link.index(), idx);
                assert_eq!(link.aux(), 0);
                assert!(!link.is_null());
            }
        }
    }

    #[test]
    fn aux_field_roundtrip() {
        let link = NodeLink::with_aux(LinkType::N48, 999, 17);
        assert_eq!(link.link_type(), Some(LinkType::N48));
        assert_eq!(link.index(), 999);
        assert_eq!(link.aux(), 17);
        assert_eq!(link.without_aux(), NodeLink::new(LinkType::N48, 999));
    }

    #[test]
    fn null_link() {
        assert!(NodeLink::NULL.is_null());
        assert!(NodeLink::default().is_null());
        assert_eq!(NodeLink::NULL.link_type(), None);
        assert!(!NodeLink::new(LinkType::N4, 0).is_null());
    }

    #[test]
    #[should_panic(expected = "overflows link")]
    fn index_overflow_rejected() {
        NodeLink::new(LinkType::N4, INDEX_MASK + 1);
    }

    #[test]
    #[should_panic(expected = "overflows link")]
    fn aux_overflow_rejected() {
        NodeLink::with_aux(LinkType::N4, 0, 32);
    }

    #[test]
    fn tag_paper_values() {
        // §3.2.1: "we use the numbers 1 to 4 to represent the different node
        // types (1=N4, 2=N16, 3=N48, 4=N256) and 5 to 7 for the leaf types".
        assert_eq!(LinkType::N4 as u8, 1);
        assert_eq!(LinkType::N256 as u8, 4);
        assert_eq!(LinkType::Leaf8 as u8, 5);
        assert_eq!(LinkType::Leaf32 as u8, 7);
    }

    #[test]
    fn classification_helpers() {
        assert!(LinkType::N4.is_inner());
        assert!(!LinkType::N4.is_device_leaf());
        assert!(LinkType::Leaf16.is_device_leaf());
        assert!(!LinkType::HostLeaf.is_device_leaf());
        assert!(!LinkType::DynLeaf.is_inner());
        assert!(LinkType::N2L.is_inner());
        assert_eq!(LinkType::from_tag(10), Some(LinkType::N2L));
        assert_eq!(LinkType::from_tag(0), None);
        assert_eq!(LinkType::from_tag(11), None);
    }
}
