//! Device-side batch **inserts** — the §5.1 future-work extension.
//!
//! The paper: *"Possible future improvements include a full device-based
//! management of the whole ART, implementing structural modifying
//! insertions and deletions. To achieve this, a more sophisticated buffer
//! management needs to be implemented, as the need to allocate new nodes or
//! free old nodes arises."*
//!
//! This module implements the tractable half of that program on the device
//! and spills the rest to the host, conservatively and correctly:
//!
//! * **Buffer management** — each leaf arena is uploaded with headroom and
//!   carries an atomic *tail* counter (bump allocation); leaf slots freed
//!   by the §3.3 delete path are reused first (free-list pop).
//! * **Attachable inserts run on the device** — a key whose traversal ends
//!   at a *null link slot* (an empty compacted-root entry, the null root,
//!   or a missing N256 child) is published with one CAS; a missing N48
//!   child claims a free link slot and sets the index byte. These are the
//!   cases that need no restructuring.
//! * **Everything else spills** — N4/N16 array inserts (sorted-array
//!   shifts are not atomic), prefix splits, leaf splits, grown nodes and
//!   capacity exhaustion go to a host-side overflow table that the session
//!   consults after device misses. A production system would fold the
//!   overflow back into the tree at the next remap.
//!
//! Like the update engine (§3.4), inserts are batched with thread-id
//! priority: stage 1 classifies against the pre-batch state and claims the
//! target slot in the atomic hash table; after the grid-wide sync, stage 2
//! lets only the winning thread allocate and publish.

use crate::kernels::{device_traverse, slot_ref, Attach, DevHit, DeviceTree};
use crate::layout::{self, leaf, stride, EMPTY48};
use crate::link::{LinkType, NodeLink};
use crate::update::FreeLists;
use cuart_gpu_sim::batch::KeyBatchLayout;
use cuart_gpu_sim::{BufferId, PhasedKernel, ThreadCtx};

/// Per-operation status written to the results buffer.
pub mod insert_status {
    /// The key existed; this thread won and replaced its value.
    pub const UPDATED: u64 = 1;
    /// A higher-priority thread wrote the same key.
    pub const SUPERSEDED: u64 = 2;
    /// New key attached on the device.
    pub const INSERTED: u64 = 3;
    /// Structural insert required: op spilled to the host overflow table.
    pub const SPILLED: u64 = 4;
    /// Invalid operation (empty key): not stored anywhere.
    pub const REJECTED: u64 = 5;
    /// The claim hash table had no slot for this op: nothing was written;
    /// the session re-runs the op in a smaller sub-batch. Never surfaces
    /// through `CuartSession::insert_batch`.
    pub const EXHAUSTED: u64 = 6;
}

/// Stage-1 classification codes stored in the scratch-leaf buffer.
mod class {
    pub const SPILL: u64 = 0;
    pub const UPDATE: u64 = 1;
    pub const ATTACH_SLOT: u64 = 2;
    pub const ATTACH_N48: u64 = 3;
    /// Claim failed: every hash-table slot held a different target.
    pub const EXHAUSTED: u64 = 4;
}

/// Device buffer holding the bump-allocation tails of the three leaf
/// arenas: `[leaf8_tail][leaf16_tail][leaf32_tail]` (record counts).
#[derive(Debug, Clone, Copy)]
pub struct ArenaTails(pub BufferId);

impl ArenaTails {
    /// Byte offset of a leaf class's tail counter.
    pub fn offset(ty: LinkType) -> usize {
        match ty {
            LinkType::Leaf8 => 0,
            LinkType::Leaf16 => 8,
            LinkType::Leaf32 => 16,
            _ => panic!("no tail for {ty:?}"), // cuart-allow: panic-path caller contract documented on the function: only validated classes reach here
        }
    }
}

/// The two-phase insert kernel.
pub struct CuartInsertKernel {
    /// Device tree handles.
    pub tree: DeviceTree,
    /// Packed keys to insert.
    pub queries: BufferId,
    /// Query record layout.
    pub layout: KeyBatchLayout,
    /// One u64 value per op.
    pub values: BufferId,
    /// One status per op (see [`insert_status`]).
    pub results: BufferId,
    /// Number of ops.
    pub count: usize,
    /// Claim hash table (keys), zeroed before the batch.
    pub hash_keys: BufferId,
    /// Claim hash table (max thread id + 1).
    pub hash_vals: BufferId,
    /// Hash-table capacity.
    pub table_slots: usize,
    /// Scratch: primary target ref (value slot / attach slot / index ref).
    pub scratch_loc: BufferId,
    /// Scratch: secondary (N48 node base).
    pub scratch_parent: BufferId,
    /// Scratch: classification code.
    pub scratch_class: BufferId,
    /// Leaf free lists (deleted slots reused first).
    pub free_lists: FreeLists,
    /// Leaf arena bump tails.
    pub tails: ArenaTails,
}

fn hash_of(location: u64, slots: usize) -> usize {
    (location.wrapping_mul(0x9E3779B97F4A7C15) >> 16) as usize % slots
}

impl PhasedKernel for CuartInsertKernel {
    fn phases(&self) -> usize {
        2
    }

    fn execute_phase(&self, phase: usize, tid: usize, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.count {
            return;
        }
        if phase == 0 {
            self.stage1(tid, ctx);
        } else {
            self.stage2(tid, ctx);
        }
    }
}

impl CuartInsertKernel {
    fn read_key(&self, tid: usize, ctx: &mut ThreadCtx<'_>) -> Vec<u8> {
        let rec_off = self.layout.offset(tid);
        let rec = ctx.read_bytes(self.queries, rec_off, self.layout.record_bytes());
        let key_len = rec[0] as usize;
        rec[1..1 + key_len].to_vec()
    }

    /// Stage 1: classify against the pre-batch tree and claim the target.
    fn stage1(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        let key = self.read_key(tid, ctx);
        let (cls, primary, secondary) = match device_traverse(&self.tree, &key, ctx) {
            DevHit::Found { value_slot, .. } => (class::UPDATE, value_slot, 0),
            DevHit::Miss { attach } => match attach {
                Attach::Slot(slot) => (class::ATTACH_SLOT, slot, 0),
                Attach::N48 {
                    index_ref,
                    node_base,
                } => (class::ATTACH_N48, index_ref, node_base),
                Attach::None => (class::SPILL, 0, 0),
            },
            DevHit::Host(_) => (class::SPILL, 0, 0),
        };
        ctx.write_u64(self.scratch_class, tid * 8, cls);
        ctx.write_u64(self.scratch_loc, tid * 8, primary);
        ctx.write_u64(self.scratch_parent, tid * 8, secondary);
        if cls == class::SPILL {
            return;
        }
        // Claim the target (value slot or attach point) with max-tid wins.
        let mut h = hash_of(primary, self.table_slots);
        for _ in 0..self.table_slots {
            let prev = ctx.atomic_cas_u64(self.hash_keys, h * 8, 0, primary);
            if prev == 0 || prev == primary {
                ctx.atomic_max_u64(self.hash_vals, h * 8, (tid + 1) as u64);
                return;
            }
            h = (h + 1) % self.table_slots;
        }
        // Claim impossible: mark exhausted (no device write happened) so
        // the session re-runs this op after the table is cleared.
        ctx.write_u64(self.scratch_class, tid * 8, class::EXHAUSTED);
    }

    /// Stage 2: the winning claimant allocates and publishes.
    fn stage2(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        let cls = ctx.read_u64(self.scratch_class, tid * 8);
        if cls == class::SPILL {
            ctx.write_u64(self.results, tid * 8, insert_status::SPILLED);
            return;
        }
        if cls == class::EXHAUSTED {
            ctx.write_u64(self.results, tid * 8, insert_status::EXHAUSTED);
            return;
        }
        let primary = ctx.read_u64(self.scratch_loc, tid * 8);
        // Winner check.
        let mut h = hash_of(primary, self.table_slots);
        let winner = loop {
            let k = ctx.read_u64(self.hash_keys, h * 8);
            if k == primary {
                break ctx.read_u64(self.hash_vals, h * 8);
            }
            debug_assert_ne!(k, 0, "claim vanished from hash table");
            h = (h + 1) % self.table_slots;
        };
        if winner != (tid + 1) as u64 {
            // For updates, a shared value slot means the same key: a
            // higher-priority duplicate wins. For attaches, a shared slot
            // may come from a *different* key needing the same branch
            // point — compare against the winner's query record: equal key
            // → superseded duplicate; different key → structural spill.
            let verdict = if cls == class::UPDATE {
                insert_status::SUPERSEDED
            } else {
                let winner_key = self.read_key(winner as usize - 1, ctx);
                let key = self.read_key(tid, ctx);
                if winner_key == key {
                    insert_status::SUPERSEDED
                } else {
                    insert_status::SPILLED
                }
            };
            ctx.write_u64(self.results, tid * 8, verdict);
            return;
        }
        let value = ctx.read_u64(self.values, tid * 8);
        if cls == class::UPDATE {
            let (tag, off) = slot_ref::decode(primary);
            ctx.write_u64(slot_ref::buffer(&self.tree, tag), off, value);
            ctx.write_u64(self.results, tid * 8, insert_status::UPDATED);
            return;
        }
        // Attach a brand-new leaf.
        let key = self.read_key(tid, ctx);
        let Some(leaf_ty) = layout::leaf_class_for(key.len()) else {
            ctx.write_u64(self.results, tid * 8, insert_status::SPILLED);
            return;
        };
        let Some(slot_idx) = self.alloc_leaf(leaf_ty, ctx) else {
            // Arena exhausted: the host must grow the buffers.
            ctx.write_u64(self.results, tid * 8, insert_status::SPILLED);
            return;
        };
        // Write the leaf record before publishing any link to it.
        let base = slot_idx as usize * stride(leaf_ty);
        let mut rec = vec![0u8; stride(leaf_ty)];
        rec[..key.len()].copy_from_slice(&key);
        rec[leaf::value_at(leaf_ty)..leaf::value_at(leaf_ty) + 8]
            .copy_from_slice(&value.to_le_bytes());
        rec[leaf::len_at(leaf_ty)] = key.len() as u8;
        rec[leaf::live_at(leaf_ty)] = 1;
        ctx.write_bytes(self.tree.dev_arena(leaf_ty), base, &rec);
        let link = NodeLink::new(leaf_ty, slot_idx);

        let published = match cls {
            class::ATTACH_SLOT => {
                let (tag, off) = slot_ref::decode(primary);
                let buf = slot_ref::buffer(&self.tree, tag);
                ctx.atomic_cas_u64(buf, off, 0, link.0) == 0
            }
            class::ATTACH_N48 => {
                let node_base = ctx.read_u64(self.scratch_parent, tid * 8) as usize;
                self.attach_n48(primary, node_base, ctx, link)
            }
            _ => unreachable!("unknown class {cls}"), // cuart-allow: panic-path arm excluded by the tag/class validation guarding this match
        };
        if published {
            ctx.write_u64(self.results, tid * 8, insert_status::INSERTED);
        } else {
            // Lost a publish race (possible when an update/delete batch ran
            // concurrently in a richer system): clear the unpublished
            // record (so arena scans never see a live-but-unlinked leaf)
            // and return the slot.
            ctx.write_bytes(
                self.tree.dev_arena(leaf_ty),
                base,
                &vec![0u8; stride(leaf_ty)],
            );
            self.free_leaf(leaf_ty, slot_idx, ctx);
            ctx.write_u64(self.results, tid * 8, insert_status::SPILLED);
        }
    }

    /// Claim a free link slot in an N48 node, then set its index byte.
    /// The stage-1 claim on `index_ref` makes this thread the only writer
    /// for this (node, byte) pair.
    fn attach_n48(
        &self,
        index_ref: u64,
        node_base: usize,
        ctx: &mut ThreadCtx<'_>,
        link: NodeLink,
    ) -> bool {
        let (_, index_off) = slot_ref::decode(index_ref);
        let arena = self.tree.dev_arena(LinkType::N48);
        // Other bytes of the same node may be attaching concurrently:
        // claim a link slot with CAS.
        for i in 0..48usize {
            let at = node_base + layout::links_at(LinkType::N48) + i * 8;
            if ctx.atomic_cas_u64(arena, at, 0, link.0) == 0 {
                ctx.write_bytes(arena, index_off, &[i as u8]);
                return true;
            }
        }
        false // node full: spill
    }

    /// Pop a freed slot, else bump the arena tail. `None` when exhausted.
    fn alloc_leaf(&self, ty: LinkType, ctx: &mut ThreadCtx<'_>) -> Option<u64> {
        // Free-list pop (CAS loop on the count).
        let fl = self.free_lists.dev_of(ty);
        loop {
            let count = ctx.read_u64(fl, 0);
            if count == 0 {
                break;
            }
            if ctx.atomic_cas_u64(fl, 0, count, count - 1) == count {
                let idx = ctx.read_u64(fl, 8 + (count as usize - 1) * 8);
                // A recycled record may hold stale bytes; stage 2 rewrites
                // it completely before publishing.
                return Some(idx);
            }
        }
        // Bump allocation against the arena capacity.
        let cap = (ctx.memory().buffer(self.tree.dev_arena(ty)).len() / stride(ty)) as u64;
        let idx = ctx.atomic_add_u64(self.tails.0, ArenaTails::offset(ty), 1);
        if idx < cap {
            Some(idx)
        } else {
            // Undo the overshoot so capacity reads stay meaningful.
            ctx.atomic_add_u64(self.tails.0, ArenaTails::offset(ty), u64::MAX);
            None
        }
    }

    /// Return a slot to the free list (publish-race path).
    fn free_leaf(&self, ty: LinkType, idx: u64, ctx: &mut ThreadCtx<'_>) {
        let fl = self.free_lists.dev_of(ty);
        let pos = ctx.atomic_add_u64(fl, 0, 1);
        ctx.write_u64(fl, 8 + pos as usize * 8, idx);
    }
}

/// Cleared-record check used by tests: a freshly attached or recycled leaf
/// must be fully initialised.
pub fn leaf_is_live(rec: &[u8], ty: LinkType) -> bool {
    rec[leaf::live_at(ty)] == 1
}

/// Validate an N48 node's index/link consistency (test helper): every
/// non-EMPTY index byte points at a non-null link slot.
pub fn n48_consistent(rec: &[u8]) -> bool {
    let links_at = layout::links_at(LinkType::N48);
    for b in 0..256 {
        let slot = rec[layout::HEADER_BYTES + b];
        if slot != EMPTY48 {
            let at = links_at + slot as usize * 8;
            let link = u64::from_le_bytes(rec[at..at + 8].try_into().expect("8 bytes")); // cuart-allow: panic-path slice indexed to the exact field width on this line
            if link == 0 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CuartIndex;
    use crate::buffers::CuartConfig;
    use cuart_art::Art;
    use cuart_gpu_sim::batch::NOT_FOUND;
    use cuart_gpu_sim::devices;

    fn index(n: u64, cfg: &CuartConfig) -> CuartIndex {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&(i * 4).to_be_bytes(), i + 1).unwrap();
        }
        CuartIndex::build(art_ref(&art), cfg)
    }

    fn art_ref(art: &Art<u64>) -> &Art<u64> {
        art
    }

    #[test]
    fn insert_new_keys_into_empty_lut_slots() {
        // Keys 0..n*4 occupy low LUT slots; new keys with distinct high
        // prefixes land in null LUT entries -> pure device attach.
        let idx = index(1000, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let ops: Vec<(Vec<u8>, u64)> = (0..200u64)
            .map(|i| {
                (
                    (0xAA00_0000_0000_0000u64 | i).to_be_bytes().to_vec(),
                    5000 + i,
                )
            })
            .collect();
        let (statuses, _) = session.insert_batch(&ops).unwrap();
        // Distinct 2-byte prefixes? All share 0xAA00 -> only the FIRST
        // claims the LUT slot; the rest spill (structural). Verify split.
        let inserted = statuses
            .iter()
            .filter(|&&s| s == insert_status::INSERTED)
            .count();
        let spilled = statuses
            .iter()
            .filter(|&&s| s == insert_status::SPILLED)
            .count();
        assert_eq!(inserted, 1);
        assert_eq!(spilled, 199);
        // Every key is findable afterwards (device or overflow).
        let keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, 5000 + i as u64, "key {i}");
        }
        assert_eq!(session.overflow_len(), 199);
    }

    #[test]
    fn insert_spread_prefixes_all_attach_on_device() {
        let idx = index(100, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        // Distinct first-2-bytes per key -> every one gets its own LUT slot.
        let ops: Vec<(Vec<u8>, u64)> = (0..300u64)
            .map(|i| {
                let mut k = vec![0u8; 8];
                k[0] = 0x80 | (i / 200) as u8;
                k[1] = (i % 200) as u8;
                k[7] = 1;
                (k, 9000 + i)
            })
            .collect();
        let (statuses, _) = session.insert_batch(&ops).unwrap();
        assert!(
            statuses.iter().all(|&s| s == insert_status::INSERTED),
            "{statuses:?}"
        );
        assert_eq!(session.overflow_len(), 0);
        let keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, 9000 + i as u64);
        }
    }

    #[test]
    fn insert_existing_key_is_an_update() {
        let idx = index(500, &CuartConfig::for_tests());
        let dev = devices::rtx3090();
        let mut session = idx.device_session(&dev);
        let key = (40u64).to_be_bytes().to_vec();
        let (statuses, _) = session
            .insert_batch(&[(key.clone(), 777), (key.clone(), 888)])
            .unwrap();
        assert_eq!(
            statuses,
            vec![insert_status::SUPERSEDED, insert_status::UPDATED]
        );
        let (results, _) = session.lookup_batch(&[key]).unwrap();
        assert_eq!(results[0], 888);
    }

    #[test]
    fn deleted_slot_is_recycled_by_insert() {
        let idx = index(500, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        // Delete a key, then insert a brand-new key of the same class.
        let victim = (80u64).to_be_bytes().to_vec();
        session
            .update_batch(&[(victim.clone(), crate::update::DELETE)])
            .unwrap();
        assert_eq!(session.free_count(LinkType::Leaf8), 1);
        let fresh = (0xBB00_0000_0000_0001u64).to_be_bytes().to_vec();
        let (statuses, _) = session.insert_batch(&[(fresh.clone(), 42)]).unwrap();
        assert_eq!(statuses[0], insert_status::INSERTED);
        // The freed slot was consumed.
        assert_eq!(session.free_count(LinkType::Leaf8), 0);
        let (results, _) = session.lookup_batch(&[fresh, victim]).unwrap();
        assert_eq!(results[0], 42);
        assert_eq!(results[1], NOT_FOUND);
    }

    #[test]
    fn duplicate_new_key_highest_thread_wins() {
        let idx = index(100, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let key = (0xCC00_0000_0000_0007u64).to_be_bytes().to_vec();
        let ops = vec![(key.clone(), 1), (key.clone(), 2), (key.clone(), 3)];
        let (statuses, _) = session.insert_batch(&ops).unwrap();
        assert_eq!(
            statuses,
            vec![
                insert_status::SUPERSEDED,
                insert_status::SUPERSEDED,
                insert_status::INSERTED
            ]
        );
        let (results, _) = session.lookup_batch(&[key]).unwrap();
        assert_eq!(results[0], 3, "max thread id must win");
        assert_eq!(
            session.overflow_len(),
            0,
            "duplicates must not pollute the overflow"
        );
    }

    #[test]
    fn empty_key_rejected() {
        let idx = index(10, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let (statuses, _) = session.insert_batch(&[(Vec::new(), 1)]).unwrap();
        assert_eq!(statuses[0], insert_status::REJECTED);
        assert_eq!(session.overflow_len(), 0);
    }

    #[test]
    fn short_and_long_keys_insert_host_side() {
        let mut art = Art::new();
        art.insert(b"seed_key", 1).unwrap();
        let idx = CuartIndex::build(
            &art,
            &CuartConfig {
                lut_span: 3,
                ..CuartConfig::for_tests()
            },
        );
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let short = b"ab".to_vec();
        let long = vec![7u8; 40];
        let (statuses, _) = session
            .insert_batch(&[(short.clone(), 10), (long.clone(), 20)])
            .unwrap();
        assert_eq!(
            statuses,
            vec![insert_status::INSERTED, insert_status::INSERTED]
        );
        let (results, _) = session
            .lookup_batch(&[short.clone(), long.clone()])
            .unwrap();
        assert_eq!(results, vec![10, 20]);
        // Re-insert updates in place.
        let (statuses, _) = session.insert_batch(&[(short, 11), (long, 21)]).unwrap();
        assert!(statuses.iter().all(|&s| s == insert_status::UPDATED));
    }

    #[test]
    fn overflow_keys_are_updatable_and_deletable() {
        let idx = index(1000, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        // Force spills: many keys sharing one new prefix.
        let ops: Vec<(Vec<u8>, u64)> = (0..50u64)
            .map(|i| ((0xDD00_0000_0000_0000u64 | i).to_be_bytes().to_vec(), i))
            .collect();
        session.insert_batch(&ops).unwrap();
        assert!(session.overflow_len() > 0);
        let parked = ops[10].0.clone();
        // Update through the normal update path.
        let (st, _) = session.update_batch(&[(parked.clone(), 999)]).unwrap();
        assert_eq!(st[0], crate::update::status::APPLIED);
        let (results, _) = session.lookup_batch(std::slice::from_ref(&parked)).unwrap();
        assert_eq!(results[0], 999);
        // Delete.
        let (st, _) = session
            .update_batch(&[(parked.clone(), crate::update::DELETE)])
            .unwrap();
        assert_eq!(st[0], crate::update::status::APPLIED);
        let (results, _) = session.lookup_batch(&[parked]).unwrap();
        assert_eq!(results[0], NOT_FOUND);
    }

    #[test]
    fn reinsert_of_overflow_key_updates_overflow() {
        let idx = index(1000, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let ops: Vec<(Vec<u8>, u64)> = (0..10u64)
            .map(|i| ((0xEE00_0000_0000_0000u64 | i).to_be_bytes().to_vec(), i))
            .collect();
        session.insert_batch(&ops).unwrap();
        let before = session.overflow_len();
        let (st, _) = session.insert_batch(&[(ops[3].0.clone(), 12345)]).unwrap();
        assert_eq!(st[0], insert_status::UPDATED);
        assert_eq!(
            session.overflow_len(),
            before,
            "no duplicate overflow entries"
        );
        let (results, _) = session.lookup_batch(&[ops[3].0.clone()]).unwrap();
        assert_eq!(results[0], 12345);
    }

    #[test]
    fn n48_attach_keeps_node_consistent() {
        // Build a tree whose second level is N48 (branch fanout ~40), with
        // the LUT disabled so inserts traverse the nodes themselves.
        let mut art = Art::new();
        for i in 0..40u64 {
            art.insert(&[1, i as u8, 1, 1], i + 1).unwrap();
        }
        let cfg = CuartConfig {
            lut_span: 0,
            ..CuartConfig::for_tests()
        };
        let idx = CuartIndex::build(&art, &cfg);
        assert_eq!(idx.buffers().record_count(LinkType::N48), 1);
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        // Attach new children at unused bytes of the N48 root.
        let ops: Vec<(Vec<u8>, u64)> = (200..206u64).map(|b| (vec![1, b as u8, 1, 1], b)).collect();
        let (statuses, _) = session.insert_batch(&ops).unwrap();
        assert!(
            statuses.iter().all(|&s| s == insert_status::INSERTED),
            "{statuses:?}"
        );
        for (k, v) in &ops {
            let (results, _) = session.lookup_batch(std::slice::from_ref(k)).unwrap();
            assert_eq!(results[0], *v);
        }
        // Old keys unharmed.
        let (results, _) = session.lookup_batch(&[vec![1, 5, 1, 1]]).unwrap();
        assert_eq!(results[0], 6);
    }

    #[test]
    fn arena_exhaustion_spills_gracefully() {
        // A tiny tree gives tiny headroom? Headroom floor is 1024, so force
        // exhaustion by inserting more than count/4+1024 fresh leaf8 keys.
        let idx = index(16, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let ops: Vec<(Vec<u8>, u64)> = (0..1200u64)
            .map(|i| {
                let mut k = vec![0u8; 8];
                k[0] = 0x90 | ((i / 256) as u8 & 0x0F);
                k[1] = (i % 256) as u8;
                k[7] = 3;
                (k, i)
            })
            .collect();
        let (statuses, _) = session.insert_batch(&ops).unwrap();
        let inserted = statuses
            .iter()
            .filter(|&&s| s == insert_status::INSERTED)
            .count();
        let spilled = statuses
            .iter()
            .filter(|&&s| s == insert_status::SPILLED)
            .count();
        assert_eq!(inserted + spilled, 1200);
        // Headroom is max(entries/4, 1024) = 1024 fresh slots.
        assert_eq!(inserted, 1024, "headroom bound");
        // All keys remain findable regardless of where they landed.
        let keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64, "key {i}");
        }
    }
}
