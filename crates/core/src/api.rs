//! The public CuART index façade and the stateful device session.
//!
//! [`CuartIndex::build`] maps an ART into the structure of buffers;
//! [`CuartIndex::device_session`] uploads it to a simulated device and
//! keeps the L2 cache, hash table, free lists and staging buffers alive
//! across batches — the steady-state regime the paper measures.

use crate::buffers::{CuartBuffers, CuartConfig, LongKeyPolicy};
use crate::cpu;
use crate::error::{CuartError, RetryPolicy};
use crate::insert::{insert_status, ArenaTails, CuartInsertKernel};
use crate::kernels::{CuartLookupKernel, DeviceTree, HOST_SIGNAL};
use crate::link::LinkType;
use crate::mapper::{map_art, MAX_DEVICE_KEY};
use crate::range::{range_device_rows, RangeSpanKernel, RANGE_RECORD_BYTES, RANGE_RESULT_BYTES};
use crate::update::{status, CuartUpdateKernel, FreeLists, DEFAULT_TABLE_SLOTS, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::{pack_keys, pack_keys_into, KeyBatchLayout, NOT_FOUND};
use cuart_gpu_sim::cache::Cache;
use cuart_gpu_sim::exec::{launch_with_cache, KernelReport};
use cuart_gpu_sim::{BufferId, DeviceConfig, DeviceMemory, FaultInjector, FaultSite};
use cuart_telemetry::{names, BatchEvent, BatchKind, SpanNode, Telemetry};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A built CuART index (host-side image of the device buffers).
#[derive(Debug, Clone)]
pub struct CuartIndex {
    buffers: CuartBuffers,
    /// Shared metrics registry; `None` (the default) records nothing and
    /// costs one branch per batch.
    telemetry: Option<Arc<Telemetry>>,
}

impl CuartIndex {
    /// Map `art` into CuART buffers under `config`.
    pub fn build(art: &Art<u64>, config: &CuartConfig) -> Self {
        CuartIndex {
            buffers: map_art(art, config),
            telemetry: None,
        }
    }

    /// Assemble an index from deserialised buffers (see
    /// [`persist`](crate::persist)).
    pub(crate) fn from_buffers(buffers: CuartBuffers) -> Self {
        CuartIndex {
            buffers,
            telemetry: None,
        }
    }

    /// Attach a telemetry registry. Build-shape gauges (device bytes,
    /// node/leaf-class occupancy) are recorded immediately and a `build`
    /// event is traced; sessions opened afterwards inherit the registry
    /// and record every batch.
    pub fn attach_telemetry(&mut self, telemetry: Arc<Telemetry>) {
        self.record_build_metrics(&telemetry);
        self.telemetry = Some(telemetry);
    }

    /// Builder-style variant of [`attach_telemetry`](Self::attach_telemetry).
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.attach_telemetry(telemetry);
        self
    }

    /// The attached telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    fn record_build_metrics(&self, t: &Telemetry) {
        let b = &self.buffers;
        t.gauge_set(names::DEVICE_BYTES, self.device_bytes() as f64);
        let node_types = [
            (names::BUILD_RECORDS_N4, LinkType::N4),
            (names::BUILD_RECORDS_N16, LinkType::N16),
            (names::BUILD_RECORDS_N48, LinkType::N48),
            (names::BUILD_RECORDS_N256, LinkType::N256),
            (names::BUILD_RECORDS_N2L, LinkType::N2L),
        ];
        let leaf_types = [
            (names::BUILD_RECORDS_LEAF8, LinkType::Leaf8),
            (names::BUILD_RECORDS_LEAF16, LinkType::Leaf16),
            (names::BUILD_RECORDS_LEAF32, LinkType::Leaf32),
        ];
        let mut nodes = 0usize;
        for (name, ty) in node_types {
            let n = b.record_count(ty);
            nodes += n;
            t.gauge_set(name, n as f64);
        }
        let mut leaves = 0usize;
        for (name, ty) in leaf_types {
            let n = b.record_count(ty);
            leaves += n;
            t.gauge_set(name, n as f64);
        }
        t.gauge_set(names::BUILD_NODES, nodes as f64);
        t.gauge_set(names::BUILD_LEAVES, leaves as f64);
        t.gauge_set(names::BUILD_HOST_ENTRIES, b.host_entries() as f64);
        let mut e = BatchEvent::new(BatchKind::Build, b.entries as u64);
        e.dram_bytes = self.device_bytes() as u64;
        t.record(e);
    }

    /// The underlying buffers.
    pub fn buffers(&self) -> &CuartBuffers {
        &self.buffers
    }

    /// Number of keys stored (device + host side).
    pub fn len(&self) -> usize {
        self.buffers.entries
    }

    /// `true` if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.buffers.entries == 0
    }

    /// Device memory footprint in bytes (arenas + LUT).
    pub fn device_bytes(&self) -> usize {
        self.buffers.device_bytes()
    }

    /// CPU-engine point lookup (the Figure 7 fast path).
    pub fn lookup_cpu(&self, key: &[u8]) -> Option<u64> {
        cpu::lookup(&self.buffers, key)
    }

    /// CPU-engine batch lookup.
    pub fn lookup_batch_cpu(&self, keys: &[Vec<u8>]) -> Vec<Option<u64>> {
        cpu::lookup_batch(&self.buffers, keys)
    }

    /// Key stride for device query batches. Under the CpuRoute policy long
    /// keys never reach the device, so the stride is capped at the device
    /// maximum; the other policies ship full-length keys to the kernel
    /// (host-leaf traversals and dynamic-leaf comparisons need them).
    pub fn device_key_stride(&self) -> usize {
        match self.buffers.config.long_key_policy {
            LongKeyPolicy::CpuRoute => self.buffers.max_key_len.clamp(8, MAX_DEVICE_KEY),
            LongKeyPolicy::HostLeafLink | LongKeyPolicy::DynamicLeaf => {
                self.buffers.max_key_len.max(8)
            }
        }
    }

    /// Upload all buffers into `mem`; returns the device handles.
    pub fn upload(&self, mem: &mut DeviceMemory) -> DeviceTree {
        self.upload_with_headroom(mem, 0)
    }

    /// Upload with `leaf_headroom` extra zeroed record slots per leaf
    /// class, so the device-side insert engine (§5.1 extension) can bump-
    /// allocate new leaves.
    pub fn upload_with_headroom(&self, mem: &mut DeviceMemory, leaf_headroom: usize) -> DeviceTree {
        let b = &self.buffers;
        // Pre-sized chunk writes: the default LUT is 2^24 entries, and a
        // per-element `flat_map().collect()` made every session open (and
        // every recovery re-upload) pay seconds for it in debug builds.
        let mut lut_bytes = vec![0u8; b.lut.len() * 8];
        for (chunk, v) in lut_bytes.chunks_exact_mut(8).zip(&b.lut) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        let mut meta = [0u8; 8];
        meta.copy_from_slice(&b.root.0.to_le_bytes());
        let padded = |name: &str, data: &[u8], ty: LinkType, mem: &mut DeviceMemory| {
            let extra = leaf_headroom * crate::layout::stride(ty);
            let id = mem.alloc(name, data.len() + extra, 32);
            mem.write_bytes(id, 0, data);
            id
        };
        DeviceTree {
            n4: mem.alloc_from("cuart-n4", &b.n4, 32),
            n16: mem.alloc_from("cuart-n16", &b.n16, 32),
            n48: mem.alloc_from("cuart-n48", &b.n48, 32),
            n256: mem.alloc_from("cuart-n256", &b.n256, 32),
            n2l: mem.alloc_from("cuart-n2l", &b.n2l, 32),
            leaf8: padded("cuart-leaf8", &b.leaf8, LinkType::Leaf8, mem),
            leaf16: padded("cuart-leaf16", &b.leaf16, LinkType::Leaf16, mem),
            leaf32: padded("cuart-leaf32", &b.leaf32, LinkType::Leaf32, mem),
            dyn_leaves: mem.alloc_from("cuart-dyn", &b.dyn_leaves, 32),
            lut: mem.alloc_from("cuart-lut", &lut_bytes, 32),
            meta: mem.alloc_from("cuart-meta", &meta, 16),
            lut_span: b.config.lut_span,
        }
    }

    /// One-shot device batch lookup with host-signal resolution (fresh
    /// device memory and cold L2 — use [`device_session`](Self::device_session)
    /// for steady-state measurements).
    pub fn lookup_batch_device(
        &self,
        dev: &DeviceConfig,
        queries: &[Vec<u8>],
        stride: usize,
    ) -> (Vec<u64>, KernelReport) {
        let (raw, report) = self.lookup_batch_device_raw(dev, queries, stride);
        let resolved = raw
            .iter()
            .zip(queries)
            .map(|(&r, q)| self.resolve_host_signal(r, q))
            .collect();
        (resolved, report)
    }

    /// As [`lookup_batch_device`](Self::lookup_batch_device) but returning
    /// raw kernel results (host signals unresolved). Queries longer than
    /// the batch stride saturate to [`NOT_FOUND`] — a key that does not
    /// fit the stride cannot be stored under it either.
    pub fn lookup_batch_device_raw(
        &self,
        dev: &DeviceConfig,
        queries: &[Vec<u8>],
        stride: usize,
    ) -> (Vec<u64>, KernelReport) {
        let mut mem = DeviceMemory::new();
        let tree = self.upload(&mut mem);
        let mut l2 = Cache::new(&dev.l2);
        run_lookup_batch(dev, &mut mem, &tree, &mut l2, queries, stride)
    }

    /// Resolve a raw kernel result: follow host-leaf signals into the host
    /// table and finish the comparison on the CPU (§3.2.3 option 2).
    pub fn resolve_host_signal(&self, raw: u64, key: &[u8]) -> u64 {
        if raw != NOT_FOUND && raw & HOST_SIGNAL != 0 {
            let idx = (raw & !HOST_SIGNAL) as usize;
            let (stored, value) = &self.buffers.host_leaves[idx];
            if stored.as_slice() == key {
                *value
            } else {
                NOT_FOUND
            }
        } else {
            raw
        }
    }

    /// `true` if this key is served by the host rather than the device
    /// (too short for the LUT, or long under the CpuRoute policy).
    pub fn is_host_routed(&self, key: &[u8]) -> bool {
        let span = self.buffers.config.lut_span;
        (span > 0 && key.len() < span)
            || (key.len() > MAX_DEVICE_KEY
                && self.buffers.config.long_key_policy == LongKeyPolicy::CpuRoute)
    }

    /// Open a stateful device session with the default 1 Mi-slot update
    /// hash table (§4.5).
    pub fn device_session(&self, dev: &DeviceConfig) -> CuartSession<'_> {
        self.device_session_with_table(dev, DEFAULT_TABLE_SLOTS)
    }

    /// Open a session with an explicit update hash-table capacity.
    pub fn device_session_with_table(
        &self,
        dev: &DeviceConfig,
        table_slots: usize,
    ) -> CuartSession<'_> {
        CuartSession::new(self, dev, table_slots)
    }

    /// Open a session with a [`FaultInjector`] attached from the first
    /// batch. Attaching at open time matters: the session journals every
    /// device-leg mutation from the start, so a later degradation and
    /// recovery re-upload (which restores the pristine build image) loses
    /// nothing.
    pub fn device_session_with_faults(
        &self,
        dev: &DeviceConfig,
        injector: FaultInjector,
    ) -> CuartSession<'_> {
        let mut session = self.device_session(dev);
        session.attach_fault_injector(injector);
        session
    }
}

/// Low-level: run one lookup batch against an already-uploaded tree,
/// without a [`CuartSession`]. Used by the out-of-core partition manager
/// (`cuart-host::oversized`), which juggles many resident trees in one
/// device memory. Allocates fresh query/result staging per call.
///
/// Queries longer than the batch stride (or the 255-byte length field)
/// saturate to [`NOT_FOUND`] instead of panicking: a key that cannot be
/// packed under this stride cannot be stored under it either, so the miss
/// is the semantically correct answer.
pub fn run_lookup_batch(
    dev: &DeviceConfig,
    mem: &mut DeviceMemory,
    tree: &DeviceTree,
    l2: &mut Cache,
    queries: &[Vec<u8>],
    stride: usize,
) -> (Vec<u64>, KernelReport) {
    let max = KeyBatchLayout { stride }.max_key_len();
    if queries.iter().any(|q| q.len() > max) {
        let keep: Vec<usize> = (0..queries.len())
            .filter(|&i| queries[i].len() <= max)
            .collect();
        let mut out = vec![NOT_FOUND; queries.len()];
        if keep.is_empty() {
            return (out, KernelReport::default());
        }
        let sub: Vec<Vec<u8>> = keep.iter().map(|&i| queries[i].clone()).collect();
        let (sub_results, report) = run_packable_lookup_batch(dev, mem, tree, l2, &sub, stride);
        for (j, &i) in keep.iter().enumerate() {
            out[i] = sub_results[j];
        }
        return (out, report);
    }
    run_packable_lookup_batch(dev, mem, tree, l2, queries, stride)
}

/// [`run_lookup_batch`] after oversized-query filtering: every key is
/// guaranteed to fit the stride.
fn run_packable_lookup_batch(
    dev: &DeviceConfig,
    mem: &mut DeviceMemory,
    tree: &DeviceTree,
    l2: &mut Cache,
    queries: &[Vec<u8>],
    stride: usize,
) -> (Vec<u64>, KernelReport) {
    let (qbuf, layout) = match pack_keys(mem, "oversized-queries", queries, stride) {
        Ok(packed) => packed,
        // The caller filtered every key against the layout's max length;
        // if the packer still refuses, answer misses rather than panic.
        Err(_) => return (vec![NOT_FOUND; queries.len()], KernelReport::default()),
    };
    let results = cuart_gpu_sim::batch::alloc_results(mem, "oversized-results", queries.len());
    let kernel = CuartLookupKernel {
        tree: *tree,
        queries: qbuf,
        layout,
        results,
        count: queries.len(),
    };
    let report = launch_with_cache(dev, mem, &kernel, queries.len(), l2);
    (
        cuart_gpu_sim::batch::read_results(mem, results, queries.len()),
        report,
    )
}

/// Reusable device buffers for range-span batches
/// ([`CuartSession::range_batch`]), so a long-serving session does not
/// grow modeled device memory with every range call.
struct RangeStaging {
    queries: BufferId,
    results: BufferId,
    capacity: usize,
}

/// Staging buffers reused across batches within a session.
struct Staging {
    queries: BufferId,
    layout: KeyBatchLayout,
    results: BufferId,
    values: BufferId,
    scratch_loc: BufferId,
    scratch_parent: BufferId,
    scratch_leaf: BufferId,
    capacity: usize,
}

/// The device-resident half of a session: everything a recovery
/// re-upload rebuilds from scratch. Factored out of [`CuartSession::new`]
/// so the fault-recovery path constructs exactly the same image.
struct DeviceState {
    mem: DeviceMemory,
    tree: DeviceTree,
    hash_keys: BufferId,
    hash_vals: BufferId,
    free_lists: FreeLists,
    tails: ArenaTails,
}

impl DeviceState {
    fn build(index: &CuartIndex, table_slots: usize) -> Self {
        let mut mem = DeviceMemory::new();
        let headroom = (index.buffers.entries / 4).max(1024);
        let tree = index.upload_with_headroom(&mut mem, headroom);
        let hash_keys = mem.alloc("hash-keys", table_slots * 8, 32);
        let hash_vals = mem.alloc("hash-vals", table_slots * 8, 32);
        let fl_size = |ty: LinkType| 8 + (index.buffers.record_count(ty) + headroom) * 8 + 8;
        let free_lists = FreeLists {
            leaf8: mem.alloc("free-leaf8", fl_size(LinkType::Leaf8), 32),
            leaf16: mem.alloc("free-leaf16", fl_size(LinkType::Leaf16), 32),
            leaf32: mem.alloc("free-leaf32", fl_size(LinkType::Leaf32), 32),
        };
        let tails = ArenaTails(mem.alloc("arena-tails", 24, 32));
        for ty in [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32] {
            mem.write_u64(
                tails.0,
                ArenaTails::offset(ty),
                index.buffers.record_count(ty) as u64,
            );
        }
        DeviceState {
            mem,
            tree,
            hash_keys,
            hash_vals,
            free_lists,
            tails,
        }
    }
}

/// Point-in-time fault-handling statistics for a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults the attached injector has fired so far.
    pub injected: u64,
    /// Retried device legs (each retry models one backoff wait).
    pub retries: u64,
    /// GPU→CPU degradations (retry budget exhausted).
    pub degradations: u64,
    /// Successful device re-uploads after a degradation.
    pub recoveries: u64,
    /// `true` while the session is serving device keys on the CPU path.
    pub degraded: bool,
}

/// A stateful device session: uploaded tree + persistent L2, hash table,
/// free lists, arena tails, host-side tables and staging buffers.
///
/// # Fault tolerance
///
/// With a [`FaultInjector`] attached (see
/// [`CuartIndex::device_session_with_faults`]) every device leg is
/// guarded: the injector is consulted **before** any device write
/// (transfer check before packing, kernel check before launch), so a
/// failed attempt leaves zero device state behind and is always safe to
/// retry. Transient failures are retried under the session's
/// [`RetryPolicy`] with modeled exponential backoff; when the budget is
/// exhausted the session *degrades* — the failed batch and all following
/// device legs are served by the CPU engine against the pristine build
/// image plus a session journal of device mutations — until a re-upload
/// succeeds at the start of a later batch and the session *recovers*.
pub struct CuartSession<'a> {
    index: &'a CuartIndex,
    dev: DeviceConfig,
    mem: DeviceMemory,
    tree: DeviceTree,
    l2: Cache,
    table_slots: usize,
    hash_keys: BufferId,
    hash_vals: BufferId,
    free_lists: FreeLists,
    tails: ArenaTails,
    staging: Option<Staging>,
    range_staging: Option<RangeStaging>,
    /// Inherited from the index at session open; `None` records nothing.
    telemetry: Option<Arc<Telemetry>>,
    /// Session-private copies of the host-side tables so host-routed
    /// updates stay coherent with device state.
    short_keys: Vec<(Vec<u8>, u64)>,
    host_leaves: Vec<(Vec<u8>, u64)>,
    /// Structural inserts the device spilled (§5.1 extension): consulted
    /// after device misses, folded back into the tree at the next remap.
    overflow: BTreeMap<Vec<u8>, u64>,
    /// Deterministic fault source for the device legs; `None` disables
    /// all fault paths (the checks compile to a single branch).
    injector: Option<FaultInjector>,
    retry: RetryPolicy,
    /// `true` while device legs are served by the CPU fallback.
    degraded: bool,
    /// External pin (the scheduler's circuit breaker): while set, the
    /// session stays degraded and skips per-batch recovery probing, so an
    /// open breaker serves every batch from the CPU path with no device
    /// traffic at all.
    cpu_only: bool,
    /// Once a degradation happens the journal becomes the authority for
    /// every key it contains — a recovery re-upload restores the pristine
    /// build image, so pre-fault device mutations only survive here.
    journal_authoritative: bool,
    /// Device-leg mutations since session open (`None` = deleted).
    /// Maintained whenever an injector is attached or shadowing is
    /// forced on.
    journal: BTreeMap<Vec<u8>, Option<u64>>,
    /// Force journal shadowing even without an injector, so a later
    /// [`CuartSession::set_cpu_only`] pin (e.g. a latency-SLO breaker
    /// trip with no fault injector) still finds every device mutation in
    /// the journal.
    journal_shadowing: bool,
    retries_total: u64,
    degradations: u64,
    recoveries: u64,
    /// When `false`, batch ops skip committing their own span trees —
    /// used by callers (the scheduler) that record a richer tree around
    /// the same device leg, so stages are never double-counted.
    record_spans: bool,
}

impl<'a> CuartSession<'a> {
    fn new(index: &'a CuartIndex, dev: &DeviceConfig, table_slots: usize) -> Self {
        let state = DeviceState::build(index, table_slots);
        CuartSession {
            index,
            dev: *dev,
            l2: Cache::new(&dev.l2),
            mem: state.mem,
            tree: state.tree,
            table_slots,
            hash_keys: state.hash_keys,
            hash_vals: state.hash_vals,
            free_lists: state.free_lists,
            tails: state.tails,
            staging: None,
            range_staging: None,
            telemetry: index.telemetry.clone(),
            short_keys: index.buffers.short_keys.clone(),
            host_leaves: index.buffers.host_leaves.clone(),
            overflow: BTreeMap::new(),
            injector: None,
            retry: RetryPolicy::default(),
            degraded: false,
            cpu_only: false,
            journal_authoritative: false,
            journal: BTreeMap::new(),
            journal_shadowing: false,
            retries_total: 0,
            degradations: 0,
            recoveries: 0,
            record_spans: true,
        }
    }

    /// The device configuration this session runs on.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// The packed per-key byte stride of the device key layout (what one
    /// key costs on the PCIe upload).
    pub fn device_key_stride(&self) -> usize {
        self.index.device_key_stride()
    }

    /// Enable or disable per-batch span trees (`batch.lookup` /
    /// `batch.update` / `batch.insert`). On by default; the batch
    /// scheduler turns it off because it records the whole
    /// `sched.batch.*` tree (queueing, sort, scatter **and** the device
    /// leg) itself.
    pub fn set_span_recording(&mut self, on: bool) {
        self.record_spans = on;
    }

    /// Build and commit a `batch.<kind>` span tree for a device leg:
    /// `h2d` (PCIe upload of the packed keys), the kernel's `dram`/`exec`
    /// decomposition, and `d2h` (PCIe download of one `u64` per key). The
    /// children run back to back, so the leaf durations sum to the root's
    /// modeled batch time.
    fn record_batch_span(
        &self,
        t: &Telemetry,
        name: &str,
        report: &KernelReport,
        device_keys: usize,
        total_keys: usize,
    ) {
        if !self.record_spans || device_keys == 0 || report.time_ns <= 0.0 {
            return;
        }
        let stride = self.index.device_key_stride();
        let up = cuart_gpu_sim::pcie::upload(&self.dev.pcie, device_keys, stride);
        let down = cuart_gpu_sim::pcie::download(&self.dev.pcie, device_keys, 8);
        let root = SpanNode::node(
            name,
            vec![
                SpanNode::leaf(names::spans::H2D, up.time_ns as u64).with_attr("bytes", up.bytes),
                report.to_span(),
                SpanNode::leaf(names::spans::D2H, down.time_ns as u64)
                    .with_attr("bytes", down.bytes),
            ],
        )
        .with_attr("keys", total_keys)
        .with_attr("device_keys", device_keys);
        t.record_span_tree(&root);
    }

    /// Attach a fault injector. Attach **before** the first mutating
    /// batch: only journaled mutations survive a recovery re-upload.
    pub fn attach_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Override the default [`RetryPolicy`].
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// The retry policy governing device-leg failures.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// `true` while device keys are served by the CPU fallback.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Pin (or release) the session to the authoritative CPU path.
    ///
    /// Pinning degrades the session (journal becomes authoritative, a
    /// `Degraded` event is emitted) and suppresses the per-batch recovery
    /// probe, so no device traffic happens until the pin is released —
    /// this is how the scheduler's circuit breaker serves an `Open`
    /// window without retry storms. Releasing only clears the pin; the
    /// next batch's normal `try_recover` performs the re-upload (and may
    /// itself fault, keeping the session degraded).
    pub fn set_cpu_only(&mut self, on: bool) {
        self.cpu_only = on;
        if on {
            self.degrade(0);
        }
    }

    /// `true` while the session is pinned to the CPU path.
    pub fn is_cpu_only(&self) -> bool {
        self.cpu_only
    }

    /// Force journal shadowing of device mutations even without an
    /// injector. Callers that may pin the session later (the scheduler's
    /// circuit breaker) enable this **before** the first mutating batch,
    /// so the CPU path is authoritative whenever the pin lands.
    pub fn set_journal_shadowing(&mut self, on: bool) {
        self.journal_shadowing = on;
    }

    /// Fault-handling statistics so far.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            injected: self
                .injector
                .as_ref()
                .map(|i| i.faults_injected())
                .unwrap_or(0),
            retries: self.retries_total,
            degradations: self.degradations,
            recoveries: self.recoveries,
            degraded: self.degraded,
        }
    }

    /// Consult the injector at a fault site. Called only *before* device
    /// writes (transfer before packing, kernel before launch), so a
    /// failed attempt performs zero device mutations and retrying is
    /// always exact.
    fn fault_check(&mut self, site: FaultSite) -> Result<(), CuartError> {
        if let Some(inj) = &mut self.injector {
            if let Err(fault) = inj.check(site) {
                if let Some(t) = &self.telemetry {
                    t.incr(names::FAULTS_INJECTED, 1);
                }
                return Err(fault.into());
            }
        }
        Ok(())
    }

    /// Run a device leg under the retry policy. Transient failures are
    /// retried with exponential backoff + deterministic jitter; the
    /// accumulated backoff is *modeled* — added to the successful
    /// attempt's `time_ns` — rather than slept, keeping the simulator
    /// fast and reproducible.
    fn run_with_retry(
        &mut self,
        mut attempt_fn: impl FnMut(&mut Self) -> Result<KernelReport, CuartError>,
    ) -> Result<KernelReport, CuartError> {
        let max = self.retry.max_attempts.max(1);
        let jitter_seed = self.injector.as_ref().map(|i| i.config().seed).unwrap_or(0);
        let mut backoff_total = 0u64;
        let mut last: Option<CuartError> = None;
        for attempt in 1..=max {
            match attempt_fn(self) {
                Ok(mut report) => {
                    report.time_ns += backoff_total as f64;
                    return Ok(report);
                }
                Err(e) if e.is_transient() => {
                    if attempt < max {
                        let wait = self.retry.backoff_ns(attempt, jitter_seed);
                        backoff_total = backoff_total.saturating_add(wait);
                        self.retries_total += 1;
                        if let Some(t) = &self.telemetry {
                            t.incr(names::FAULT_RETRIES, 1);
                            t.observe(names::FAULT_BACKOFF_NS, wait);
                        }
                    }
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(match last {
            Some(e) => CuartError::RetriesExhausted {
                attempts: max,
                last: Box::new(e),
            },
            None => CuartError::Internal {
                detail: "retry loop finished without recording an attempt".into(),
            },
        })
    }

    /// Enter degraded mode: device legs are served by the CPU engine
    /// until a re-upload succeeds. The journal becomes (and stays) the
    /// authority for every key it contains.
    fn degrade(&mut self, batch_keys: u64) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.journal_authoritative = true;
        self.degradations += 1;
        if let Some(t) = &self.telemetry {
            t.incr(names::FAULT_DEGRADATIONS, 1);
            t.gauge_set(names::FAULT_DEGRADED, 1.0);
            t.record(BatchEvent::new(BatchKind::Degraded, batch_keys));
        }
    }

    /// While degraded, attempt a device re-upload at the start of each
    /// batch. The re-upload is itself a transfer and can fault — in that
    /// case the session stays degraded and serves the batch on the CPU.
    fn try_recover(&mut self) {
        if !self.degraded || self.cpu_only {
            return;
        }
        if self.fault_check(FaultSite::Transfer).is_err() {
            return;
        }
        let state = DeviceState::build(self.index, self.table_slots);
        self.mem = state.mem;
        self.tree = state.tree;
        self.hash_keys = state.hash_keys;
        self.hash_vals = state.hash_vals;
        self.free_lists = state.free_lists;
        self.tails = state.tails;
        self.l2 = Cache::new(&self.dev.l2);
        self.staging = None;
        self.range_staging = None;
        self.degraded = false;
        self.recoveries += 1;
        if let Some(t) = &self.telemetry {
            t.incr(names::FAULT_RECOVERIES, 1);
            t.gauge_set(names::FAULT_DEGRADED, 0.0);
            t.record(BatchEvent::new(BatchKind::Recovered, 0));
        }
    }

    /// CPU-path lookup for a device-eligible key: journal, then overflow,
    /// then the pristine build image.
    fn degraded_lookup(&self, key: &[u8]) -> u64 {
        if let Some(entry) = self.journal.get(key) {
            return entry.unwrap_or(NOT_FOUND);
        }
        if let Some(v) = self.overflow.get(key) {
            return *v;
        }
        cpu::lookup(&self.index.buffers, key).unwrap_or(NOT_FOUND)
    }

    /// CPU-path update for a device-eligible key. Overflow keys are left
    /// as `MISS` here — the shared overflow block after the device leg
    /// applies them.
    fn degraded_update(&mut self, key: &[u8], value: u64) -> u64 {
        let exists = match self.journal.get(key) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => cpu::lookup(&self.index.buffers, key).is_some(),
        };
        if !exists {
            return status::MISS;
        }
        self.journal.insert(
            key.to_vec(),
            if value == DELETE { None } else { Some(value) },
        );
        status::APPLIED
    }

    /// CPU-path insert for a device-eligible key.
    fn degraded_insert(&mut self, key: &[u8], value: u64) -> u64 {
        let existed = match self.journal.get(key) {
            Some(Some(_)) => true,
            Some(None) => false,
            None => cpu::lookup(&self.index.buffers, key).is_some(),
        };
        self.journal.insert(key.to_vec(), Some(value));
        if existed {
            insert_status::UPDATED
        } else {
            insert_status::INSERTED
        }
    }

    /// Record CPU-fallback service in telemetry.
    fn note_cpu_fallback(&self, keys_served: u64) {
        if keys_served == 0 {
            return;
        }
        if let Some(t) = &self.telemetry {
            t.incr(names::FAULT_CPU_FALLBACK_BATCHES, 1);
            t.incr(names::FAULT_CPU_FALLBACK_KEYS, keys_served);
        }
    }

    /// `true` if this key must be answered from the session journal
    /// rather than the (pristine, post-recovery) device image.
    fn journal_routed(&self, key: &[u8]) -> bool {
        self.journal_authoritative && self.journal.contains_key(key)
    }

    fn ensure_staging(&mut self, batch: usize) -> Result<&Staging, CuartError> {
        let stride = self.index.device_key_stride();
        let reusable = self
            .staging
            .take()
            .filter(|s| s.capacity >= batch && s.layout.stride == stride);
        let st = match reusable {
            Some(s) => s,
            None => {
                let cap = batch.next_power_of_two().max(64);
                let blank = vec![Vec::new(); cap];
                let (queries, layout) = pack_keys(&mut self.mem, "stage-queries", &blank, stride)?;
                Staging {
                    queries,
                    layout,
                    results: self.mem.alloc("stage-results", cap * 8, 32),
                    values: self.mem.alloc("stage-values", cap * 8, 32),
                    scratch_loc: self.mem.alloc("stage-loc", cap * 8, 32),
                    scratch_parent: self.mem.alloc("stage-parent", cap * 8, 32),
                    scratch_leaf: self.mem.alloc("stage-leaf", cap * 8, 32),
                    capacity: cap,
                }
            }
        };
        Ok(self.staging.insert(st))
    }

    fn ensure_range_staging(&mut self, batch: usize) -> &RangeStaging {
        let reusable = self.range_staging.take().filter(|s| s.capacity >= batch);
        let st = match reusable {
            Some(s) => s,
            None => {
                let cap = batch.next_power_of_two().max(64);
                RangeStaging {
                    queries: self
                        .mem
                        .alloc("range-stage-queries", cap * RANGE_RECORD_BYTES, 32),
                    results: self
                        .mem
                        .alloc("range-stage-results", cap * RANGE_RESULT_BYTES, 32),
                    capacity: cap,
                }
            }
        };
        self.range_staging.insert(st)
    }

    /// Host-authoritative rows for one inclusive range: pristine device
    /// rows (arena spans + dynamic leaves), the session's host tables,
    /// parked overflow inserts, and finally the mutation journal overlay
    /// (which wins on conflicts and removes deletions). Inverted bounds
    /// yield an empty result rather than panicking.
    fn range_rows(&self, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, u64)> {
        if lo > hi {
            return Vec::new();
        }
        let mut map: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
        for (k, v) in range_device_rows(&self.index.buffers, lo, hi) {
            map.insert(k, v);
        }
        for table in [&self.short_keys, &self.host_leaves] {
            for (k, v) in table.iter() {
                if k.as_slice() >= lo && k.as_slice() <= hi {
                    map.insert(k.clone(), *v);
                }
            }
        }
        let bounds = (std::ops::Bound::Included(lo), std::ops::Bound::Included(hi));
        for (k, v) in self.overflow.range::<[u8], _>(bounds) {
            map.insert(k.clone(), *v);
        }
        for (k, entry) in self.journal.range::<[u8], _>(bounds) {
            match entry {
                Some(v) => {
                    map.insert(k.clone(), *v);
                }
                None => {
                    map.remove(k);
                }
            }
        }
        map.into_iter().collect()
    }

    fn host_lookup(&self, key: &[u8]) -> u64 {
        let table = if key.len() > MAX_DEVICE_KEY {
            &self.host_leaves
        } else {
            &self.short_keys
        };
        CuartBuffers::search_table(table, key).unwrap_or(NOT_FOUND)
    }

    /// Batch lookup: host-routed keys answered from the session tables,
    /// device keys through the lookup kernel; results in query order.
    ///
    /// Infallible unless a non-transient error escapes the fault path: a
    /// device leg that exhausts its retries degrades to the CPU engine
    /// rather than failing the batch.
    pub fn lookup_batch(
        &mut self,
        keys: &[Vec<u8>],
    ) -> Result<(Vec<u64>, KernelReport), CuartError> {
        self.try_recover();
        let stride_max = KeyBatchLayout {
            stride: self.index.device_key_stride(),
        }
        .max_key_len();
        let mut results = vec![NOT_FOUND; keys.len()];
        let mut device_idx = Vec::new();
        let mut device_keys = Vec::new();
        let mut host_spills = 0u64;
        for (i, k) in keys.iter().enumerate() {
            if self.index.is_host_routed(k) || k.is_empty() {
                results[i] = self.host_lookup(k);
                host_spills += 1;
            } else if k.len() > stride_max {
                // The key cannot be packed at the device stride — and the
                // stride covers every stored key, so this is a guaranteed
                // miss (the overflow merge below still gets its say).
                host_spills += 1;
            } else if self.journal_routed(k) {
                results[i] = self.journal.get(k).copied().flatten().unwrap_or(NOT_FOUND);
                host_spills += 1;
            } else {
                device_idx.push(i);
                device_keys.push(k.clone());
            }
        }
        let mut report = KernelReport::default();
        let mut fallback_keys = 0u64;
        if !device_keys.is_empty() {
            let launched = if self.degraded {
                None
            } else {
                match self.run_with_retry(|s| {
                    s.fault_check(FaultSite::Transfer)?;
                    let st = s.ensure_staging(device_keys.len())?;
                    let (queries, layout, results_buf) = (st.queries, st.layout, st.results);
                    pack_keys_into(&mut s.mem, queries, &layout, &device_keys)?;
                    s.fault_check(FaultSite::Kernel)?;
                    let kernel = CuartLookupKernel {
                        tree: s.tree,
                        queries,
                        layout,
                        results: results_buf,
                        count: device_keys.len(),
                    };
                    Ok(launch_with_cache(
                        &s.dev,
                        &mut s.mem,
                        &kernel,
                        device_keys.len(),
                        &mut s.l2,
                    ))
                }) {
                    Ok(r) => Some(r),
                    Err(CuartError::RetriesExhausted { .. }) => {
                        self.degrade(keys.len() as u64);
                        None
                    }
                    Err(e) => return Err(e),
                }
            };
            match launched {
                Some(r) => {
                    report = r;
                    let results_buf = match self.staging.as_ref() {
                        Some(st) => st.results,
                        None => {
                            return Err(CuartError::Internal {
                                detail: "staging vanished after a launched batch".into(),
                            })
                        }
                    };
                    for (j, &i) in device_idx.iter().enumerate() {
                        let raw = self.mem.read_u64(results_buf, j * 8);
                        // Host-leaf signals finish on the CPU against the
                        // session table (which sees host-side updates).
                        results[i] = if raw != NOT_FOUND && raw & HOST_SIGNAL != 0 {
                            host_spills += 1;
                            let idx = (raw & !HOST_SIGNAL) as usize;
                            let (stored, value) = &self.host_leaves[idx];
                            if stored.as_slice() == keys[i] {
                                *value
                            } else {
                                NOT_FOUND
                            }
                        } else {
                            raw
                        };
                    }
                }
                None => {
                    for (j, &i) in device_idx.iter().enumerate() {
                        results[i] = self.degraded_lookup(&device_keys[j]);
                    }
                    fallback_keys = device_keys.len() as u64;
                }
            }
        }
        self.note_cpu_fallback(fallback_keys);
        // Device misses may be structural inserts parked in the overflow.
        if !self.overflow.is_empty() {
            for (i, k) in keys.iter().enumerate() {
                if results[i] == NOT_FOUND {
                    if let Some(v) = self.overflow.get(k) {
                        results[i] = *v;
                    }
                }
            }
        }
        if let Some(t) = &self.telemetry {
            t.incr(names::LOOKUP_BATCHES, 1);
            t.incr(names::LOOKUP_KEYS, keys.len() as u64);
            t.incr(names::LOOKUP_HOST_SPILLS, host_spills);
            t.observe(names::LOOKUP_KERNEL_NS, report.time_ns as u64);
            report.record_into(t);
            let mut e = report.to_event(BatchKind::Lookup, keys.len() as u64);
            e.host_spills = host_spills;
            t.record(e);
            self.record_batch_span(
                t,
                names::spans::BATCH_LOOKUP,
                &report,
                device_keys.len(),
                keys.len(),
            );
        }
        Ok((results, report))
    }

    /// Batch of inclusive range queries: per range, every live `(key,
    /// value)` row in `[lo, hi]`, sorted by key; results in query order.
    ///
    /// The device leg runs the §3.2.1 span kernel over the session's
    /// arenas to model the lookup cost, but the rows themselves are
    /// materialized host-side (pristine spans + dynamic leaves, session
    /// host tables, parked overflow inserts, then the mutation journal
    /// overlay) so device mutations recorded in the journal are visible.
    /// Mutations made *before* journal shadowing was enabled are not —
    /// the scheduler path enables shadowing up front, so serving-path
    /// ranges are exact. Inverted or empty ranges return empty rows. A
    /// device leg that exhausts its retries degrades to the CPU engine
    /// rather than failing the batch.
    #[allow(clippy::type_complexity)]
    pub fn range_batch(
        &mut self,
        ranges: &[(Vec<u8>, Vec<u8>)],
    ) -> Result<(Vec<Vec<(Vec<u8>, u64)>>, KernelReport), CuartError> {
        self.try_recover();
        if ranges.is_empty() {
            return Ok((Vec::new(), KernelReport::default()));
        }
        let mut report = KernelReport::default();
        let mut fallback_keys = 0u64;
        if self.degraded {
            fallback_keys = ranges.len() as u64;
        } else {
            match self.run_with_retry(|s| {
                s.fault_check(FaultSite::Transfer)?;
                let st = s.ensure_range_staging(ranges.len());
                let (queries, results) = (st.queries, st.results);
                let mut data = vec![0u8; ranges.len() * RANGE_RECORD_BYTES];
                for (i, (lo, hi)) in ranges.iter().enumerate() {
                    // Bounds longer than the packed 32-byte field are
                    // clamped: the kernel leg only models span-search
                    // cost, the host merge below is authoritative.
                    let lo_n = lo.len().min(32);
                    let hi_n = hi.len().min(32);
                    let at = i * RANGE_RECORD_BYTES;
                    data[at] = lo_n as u8;
                    data[at + 1..at + 1 + lo_n].copy_from_slice(&lo[..lo_n]);
                    data[at + 33] = hi_n as u8;
                    data[at + 34..at + 34 + hi_n].copy_from_slice(&hi[..hi_n]);
                }
                s.mem.write_bytes(queries, 0, &data);
                s.fault_check(FaultSite::Kernel)?;
                let kernel = RangeSpanKernel {
                    tree: s.tree,
                    queries,
                    results,
                    count: ranges.len(),
                    mapped: [
                        s.index.buffers.record_count(LinkType::Leaf8) as u64,
                        s.index.buffers.record_count(LinkType::Leaf16) as u64,
                        s.index.buffers.record_count(LinkType::Leaf32) as u64,
                    ],
                };
                Ok(launch_with_cache(
                    &s.dev,
                    &mut s.mem,
                    &kernel,
                    ranges.len(),
                    &mut s.l2,
                ))
            }) {
                Ok(r) => report = r,
                Err(CuartError::RetriesExhausted { .. }) => {
                    self.degrade(ranges.len() as u64);
                    fallback_keys = ranges.len() as u64;
                }
                Err(e) => return Err(e),
            }
        }
        self.note_cpu_fallback(fallback_keys);
        let mut rows_total = 0u64;
        let out: Vec<Vec<(Vec<u8>, u64)>> = ranges
            .iter()
            .map(|(lo, hi)| {
                let rows = self.range_rows(lo, hi);
                rows_total += rows.len() as u64;
                rows
            })
            .collect();
        if let Some(t) = &self.telemetry {
            t.incr(names::RANGE_BATCHES, 1);
            t.incr(names::RANGE_KEYS, ranges.len() as u64);
            t.incr(names::RANGE_ROWS, rows_total);
            t.observe(names::RANGE_KERNEL_NS, report.time_ns as u64);
            report.record_into(t);
            let mut e = report.to_event(BatchKind::Range, ranges.len() as u64);
            e.host_spills = fallback_keys;
            t.record(e);
            if self.record_spans && fallback_keys == 0 && report.time_ns > 0.0 {
                let up =
                    cuart_gpu_sim::pcie::upload(&self.dev.pcie, ranges.len(), RANGE_RECORD_BYTES);
                let down =
                    cuart_gpu_sim::pcie::download(&self.dev.pcie, ranges.len(), RANGE_RESULT_BYTES);
                let root = SpanNode::node(
                    names::spans::BATCH_RANGE,
                    vec![
                        SpanNode::leaf(names::spans::H2D, up.time_ns as u64)
                            .with_attr("bytes", up.bytes),
                        report.to_span(),
                        SpanNode::leaf(names::spans::D2H, down.time_ns as u64)
                            .with_attr("bytes", down.bytes),
                    ],
                )
                .with_attr("ranges", ranges.len())
                .with_attr("rows", rows_total);
                t.record_span_tree(&root);
            }
        }
        Ok((out, report))
    }

    /// Batch update/delete through the two-stage kernel. `DELETE` as the
    /// value deletes the key. Returns per-op statuses (see
    /// [`status`](crate::update::status)) and the kernel report (which
    /// includes the hash-table clear cost).
    ///
    /// A device leg that exhausts its retries degrades to the CPU engine
    /// rather than failing the batch; hash-table starvation with a
    /// degenerate (zero-capacity) table surfaces as
    /// [`CuartError::HashTableFull`].
    pub fn update_batch(
        &mut self,
        ops: &[(Vec<u8>, u64)],
    ) -> Result<(Vec<u64>, KernelReport), CuartError> {
        self.try_recover();
        let stride_max = KeyBatchLayout {
            stride: self.index.device_key_stride(),
        }
        .max_key_len();
        let free_before = if self.telemetry.is_some() {
            self.free_total()
        } else {
            0
        };
        let mut statuses = vec![status::MISS; ops.len()];
        let mut device_idx = Vec::new();
        let mut device_keys = Vec::new();
        let mut device_values = Vec::new();
        for (i, (k, v)) in ops.iter().enumerate() {
            if self.index.is_host_routed(k) || k.is_empty() {
                statuses[i] = self.host_update(k, *v);
            } else if k.len() > stride_max {
                // Unpackable at the device stride — no stored key can match,
                // so the op is a MISS here; the overflow merge below applies
                // it if the key is parked host-side.
            } else if self.journal_routed(k) {
                statuses[i] = self.degraded_update(k, *v);
            } else {
                device_idx.push(i);
                device_keys.push(k.clone());
                device_values.push(*v);
            }
        }
        let mut report = KernelReport::default();
        let mut fallback_keys = 0u64;
        if !device_keys.is_empty() {
            let launched = if self.degraded {
                None
            } else {
                match self.run_with_retry(|s| {
                    s.fault_check(FaultSite::Transfer)?;
                    let st = s.ensure_staging(device_keys.len())?;
                    let (queries, layout) = (st.queries, st.layout);
                    let (results_buf, values_buf) = (st.results, st.values);
                    let (loc, parent, leaf) = (st.scratch_loc, st.scratch_parent, st.scratch_leaf);
                    pack_keys_into(&mut s.mem, queries, &layout, &device_keys)?;
                    for (j, v) in device_values.iter().enumerate() {
                        s.mem.write_u64(values_buf, j * 8, *v);
                    }
                    s.fault_check(FaultSite::Kernel)?;
                    s.clear_hash_table();
                    let kernel = CuartUpdateKernel {
                        tree: s.tree,
                        queries,
                        layout,
                        values: values_buf,
                        results: results_buf,
                        count: device_keys.len(),
                        hash_keys: s.hash_keys,
                        hash_vals: s.hash_vals,
                        table_slots: s.table_slots,
                        scratch_loc: loc,
                        scratch_parent: parent,
                        scratch_leaf: leaf,
                        free_lists: s.free_lists,
                    };
                    let mut r = launch_with_cache(
                        &s.dev,
                        &mut s.mem,
                        &kernel,
                        device_keys.len(),
                        &mut s.l2,
                    );
                    r.time_ns += crate::update::hash_clear_ns(&s.dev, s.table_slots);
                    Ok(r)
                }) {
                    Ok(r) => Some(r),
                    Err(CuartError::RetriesExhausted { .. }) => {
                        self.degrade(ops.len() as u64);
                        None
                    }
                    Err(e) => return Err(e),
                }
            };
            match launched {
                Some(r) => {
                    report = r;
                    let results_buf = match self.staging.as_ref() {
                        Some(st) => st.results,
                        None => {
                            return Err(CuartError::Internal {
                                detail: "staging vanished after a launched batch".into(),
                            })
                        }
                    };
                    for (j, &i) in device_idx.iter().enumerate() {
                        statuses[i] = self.mem.read_u64(results_buf, j * 8);
                    }
                    self.rerun_exhausted_updates(
                        &mut statuses,
                        &device_idx,
                        &device_keys,
                        &device_values,
                        &mut report,
                    )?;
                    self.journal_device_mutations(
                        &statuses,
                        &device_idx,
                        &device_keys,
                        &device_values,
                        false,
                    );
                }
                None => {
                    for (j, &i) in device_idx.iter().enumerate() {
                        statuses[i] = self.degraded_update(&device_keys[j], device_values[j]);
                    }
                    fallback_keys = device_keys.len() as u64;
                }
            }
        }
        self.note_cpu_fallback(fallback_keys);
        // Device misses may target keys parked in the overflow table.
        if !self.overflow.is_empty() {
            for (i, (k, v)) in ops.iter().enumerate() {
                if statuses[i] == status::MISS && self.overflow.contains_key(k) {
                    if *v == DELETE {
                        self.overflow.remove(k);
                    } else {
                        self.overflow.insert(k.clone(), *v);
                    }
                    statuses[i] = status::APPLIED;
                }
            }
        }
        if let Some(t) = &self.telemetry {
            let refills = self.free_total().saturating_sub(free_before);
            t.incr(names::UPDATE_BATCHES, 1);
            t.incr(names::UPDATE_KEYS, ops.len() as u64);
            t.incr(names::CLAIM_CONFLICTS, report.atomic_conflicts);
            t.incr(names::FREELIST_REFILLS, refills);
            t.observe(names::UPDATE_KERNEL_NS, report.time_ns as u64);
            report.record_into(t);
            let mut e = report.to_event(BatchKind::Update, ops.len() as u64);
            e.claim_conflicts = report.atomic_conflicts;
            e.freelist_refills = refills;
            t.record(e);
            self.record_batch_span(
                t,
                names::spans::BATCH_UPDATE,
                &report,
                device_keys.len(),
                ops.len(),
            );
        }
        Ok((statuses, report))
    }

    /// Re-run ops starved out of the claim hash table against a freshly
    /// cleared table. The stage-1 linear probe covers every slot, so
    /// `EXHAUSTED` for a location means that location is nowhere in the
    /// table — exhaustion is all-or-nothing per location and a sub-batch
    /// re-run (original relative order) preserves max-tid-wins
    /// semantics. Each round resolves at least one location, so the loop
    /// terminates; a no-progress round means the table cannot hold a
    /// single entry. Re-runs ride the already-fault-validated launch and
    /// are not re-checked.
    fn rerun_exhausted_updates(
        &mut self,
        statuses: &mut [u64],
        device_idx: &[usize],
        device_keys: &[Vec<u8>],
        device_values: &[u64],
        report: &mut KernelReport,
    ) -> Result<(), CuartError> {
        loop {
            let pending: Vec<usize> = (0..device_keys.len())
                .filter(|&j| statuses[device_idx[j]] == status::EXHAUSTED)
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            let sub_keys: Vec<Vec<u8>> = pending.iter().map(|&j| device_keys[j].clone()).collect();
            let st = match self.staging.as_ref() {
                Some(st) => st,
                None => {
                    return Err(CuartError::Internal {
                        detail: "staging missing for a retry sub-batch".into(),
                    })
                }
            };
            let (queries, layout) = (st.queries, st.layout);
            let (results_buf, values_buf) = (st.results, st.values);
            let (loc, parent, leaf) = (st.scratch_loc, st.scratch_parent, st.scratch_leaf);
            pack_keys_into(&mut self.mem, queries, &layout, &sub_keys)?;
            for (m, &j) in pending.iter().enumerate() {
                self.mem.write_u64(values_buf, m * 8, device_values[j]);
            }
            self.clear_hash_table();
            let kernel = CuartUpdateKernel {
                tree: self.tree,
                queries,
                layout,
                values: values_buf,
                results: results_buf,
                count: sub_keys.len(),
                hash_keys: self.hash_keys,
                hash_vals: self.hash_vals,
                table_slots: self.table_slots,
                scratch_loc: loc,
                scratch_parent: parent,
                scratch_leaf: leaf,
                free_lists: self.free_lists,
            };
            let mut sub = launch_with_cache(
                &self.dev,
                &mut self.mem,
                &kernel,
                sub_keys.len(),
                &mut self.l2,
            );
            sub.time_ns += crate::update::hash_clear_ns(&self.dev, self.table_slots);
            let mut progressed = false;
            for (m, &j) in pending.iter().enumerate() {
                let s = self.mem.read_u64(results_buf, m * 8);
                if s != status::EXHAUSTED {
                    progressed = true;
                }
                statuses[device_idx[j]] = s;
            }
            report.accumulate(&sub);
            if !progressed {
                return Err(CuartError::HashTableFull {
                    table_slots: self.table_slots,
                });
            }
        }
    }

    /// Shadow device-leg mutations in the journal so a recovery
    /// re-upload (which restores the pristine build image) loses
    /// nothing. Only the max-tid winner of each key carries an applied
    /// status. Runs before the overflow merge so overflow-applied ops
    /// never enter the journal.
    fn journal_device_mutations(
        &mut self,
        statuses: &[u64],
        device_idx: &[usize],
        device_keys: &[Vec<u8>],
        device_values: &[u64],
        insert: bool,
    ) {
        if self.injector.is_none() && !self.journal_authoritative && !self.journal_shadowing {
            return;
        }
        for (j, &i) in device_idx.iter().enumerate() {
            let applied = if insert {
                statuses[i] == insert_status::UPDATED || statuses[i] == insert_status::INSERTED
            } else {
                statuses[i] == status::APPLIED
            };
            if applied {
                let v = device_values[j];
                let entry = if !insert && v == DELETE {
                    None
                } else {
                    Some(v)
                };
                self.journal.insert(device_keys[j].clone(), entry);
            }
        }
    }

    /// Batch **insert** through the device-side insert engine (the §5.1
    /// future-work extension). Existing keys are updated (thread-id
    /// priority, like [`update_batch`](Self::update_batch)); new keys are
    /// attached on the device where a single-CAS attach point exists, and
    /// spill to the session's host overflow table otherwise. Returns one
    /// [`insert_status`](crate::insert::insert_status) per op.
    ///
    /// A device leg that exhausts its retries degrades to the CPU engine
    /// rather than failing the batch.
    pub fn insert_batch(
        &mut self,
        ops: &[(Vec<u8>, u64)],
    ) -> Result<(Vec<u64>, KernelReport), CuartError> {
        self.try_recover();
        let stride_max = KeyBatchLayout {
            stride: self.index.device_key_stride(),
        }
        .max_key_len();
        let free_before = if self.telemetry.is_some() {
            self.free_total()
        } else {
            0
        };
        let mut statuses = vec![insert_status::REJECTED; ops.len()];
        let mut device_idx = Vec::new();
        let mut device_keys = Vec::new();
        let mut device_values = Vec::new();
        for (i, (k, v)) in ops.iter().enumerate() {
            if k.is_empty() {
                continue; // REJECTED
            }
            if self.index.is_host_routed(k) {
                statuses[i] = self.host_insert(k, *v);
            } else if k.len() > stride_max {
                // Unpackable at the device stride: no structural attach
                // point can exist for it, so it spills to the host overflow
                // table like any other structurally impossible insert.
                self.overflow.insert(k.clone(), *v);
                statuses[i] = insert_status::SPILLED;
            } else if let Some(slot) = self.overflow.get_mut(k) {
                *slot = *v;
                statuses[i] = insert_status::UPDATED;
            } else if self.journal_routed(k) {
                statuses[i] = self.degraded_insert(k, *v);
            } else {
                device_idx.push(i);
                device_keys.push(k.clone());
                device_values.push(*v);
            }
        }
        let mut report = KernelReport::default();
        let mut fallback_keys = 0u64;
        if !device_keys.is_empty() {
            let launched = if self.degraded {
                None
            } else {
                match self.run_with_retry(|s| {
                    s.fault_check(FaultSite::Transfer)?;
                    let st = s.ensure_staging(device_keys.len())?;
                    let (queries, layout) = (st.queries, st.layout);
                    let (results_buf, values_buf) = (st.results, st.values);
                    let (loc, parent, class_buf) =
                        (st.scratch_loc, st.scratch_parent, st.scratch_leaf);
                    pack_keys_into(&mut s.mem, queries, &layout, &device_keys)?;
                    for (j, v) in device_values.iter().enumerate() {
                        s.mem.write_u64(values_buf, j * 8, *v);
                    }
                    s.fault_check(FaultSite::Kernel)?;
                    s.clear_hash_table();
                    let kernel = CuartInsertKernel {
                        tree: s.tree,
                        queries,
                        layout,
                        values: values_buf,
                        results: results_buf,
                        count: device_keys.len(),
                        hash_keys: s.hash_keys,
                        hash_vals: s.hash_vals,
                        table_slots: s.table_slots,
                        scratch_loc: loc,
                        scratch_parent: parent,
                        scratch_class: class_buf,
                        free_lists: s.free_lists,
                        tails: s.tails,
                    };
                    let mut r = launch_with_cache(
                        &s.dev,
                        &mut s.mem,
                        &kernel,
                        device_keys.len(),
                        &mut s.l2,
                    );
                    r.time_ns += crate::update::hash_clear_ns(&s.dev, s.table_slots);
                    Ok(r)
                }) {
                    Ok(r) => Some(r),
                    Err(CuartError::RetriesExhausted { .. }) => {
                        self.degrade(ops.len() as u64);
                        None
                    }
                    Err(e) => return Err(e),
                }
            };
            match launched {
                Some(r) => {
                    report = r;
                    let results_buf = match self.staging.as_ref() {
                        Some(st) => st.results,
                        None => {
                            return Err(CuartError::Internal {
                                detail: "staging vanished after a launched batch".into(),
                            })
                        }
                    };
                    for (j, &i) in device_idx.iter().enumerate() {
                        statuses[i] = self.mem.read_u64(results_buf, j * 8);
                    }
                    self.rerun_exhausted_inserts(
                        &mut statuses,
                        &device_idx,
                        &device_keys,
                        &device_values,
                        &mut report,
                    )?;
                    self.journal_device_mutations(
                        &statuses,
                        &device_idx,
                        &device_keys,
                        &device_values,
                        true,
                    );
                    for (j, &i) in device_idx.iter().enumerate() {
                        if statuses[i] == insert_status::SPILLED {
                            // Parked host-side; later spills of the same key
                            // win naturally (ops are visited in tid order).
                            self.overflow
                                .insert(device_keys[j].clone(), device_values[j]);
                        }
                    }
                }
                None => {
                    for (j, &i) in device_idx.iter().enumerate() {
                        statuses[i] = self.degraded_insert(&device_keys[j], device_values[j]);
                    }
                    fallback_keys = device_keys.len() as u64;
                }
            }
        }
        self.note_cpu_fallback(fallback_keys);
        if let Some(t) = &self.telemetry {
            let spills = statuses
                .iter()
                .filter(|&&s| s == insert_status::SPILLED)
                .count() as u64;
            // Inserts consume free slots; deletes folded into the batch can
            // also push some back. Report net growth as refills.
            let refills = self.free_total().saturating_sub(free_before);
            t.incr(names::INSERT_BATCHES, 1);
            t.incr(names::INSERT_KEYS, ops.len() as u64);
            t.incr(names::INSERT_HOST_SPILLS, spills);
            t.incr(names::CLAIM_CONFLICTS, report.atomic_conflicts);
            t.incr(names::FREELIST_REFILLS, refills);
            t.observe(names::INSERT_KERNEL_NS, report.time_ns as u64);
            report.record_into(t);
            let mut e = report.to_event(BatchKind::Insert, ops.len() as u64);
            e.host_spills = spills;
            e.claim_conflicts = report.atomic_conflicts;
            e.freelist_refills = refills;
            t.record(e);
            self.record_batch_span(
                t,
                names::spans::BATCH_INSERT,
                &report,
                device_keys.len(),
                ops.len(),
            );
        }
        Ok((statuses, report))
    }

    /// Insert-engine twin of
    /// [`rerun_exhausted_updates`](Self::rerun_exhausted_updates): same
    /// all-or-nothing-per-location argument, same progress guarantee.
    fn rerun_exhausted_inserts(
        &mut self,
        statuses: &mut [u64],
        device_idx: &[usize],
        device_keys: &[Vec<u8>],
        device_values: &[u64],
        report: &mut KernelReport,
    ) -> Result<(), CuartError> {
        loop {
            let pending: Vec<usize> = (0..device_keys.len())
                .filter(|&j| statuses[device_idx[j]] == insert_status::EXHAUSTED)
                .collect();
            if pending.is_empty() {
                return Ok(());
            }
            let sub_keys: Vec<Vec<u8>> = pending.iter().map(|&j| device_keys[j].clone()).collect();
            let st = match self.staging.as_ref() {
                Some(st) => st,
                None => {
                    return Err(CuartError::Internal {
                        detail: "staging missing for a retry sub-batch".into(),
                    })
                }
            };
            let (queries, layout) = (st.queries, st.layout);
            let (results_buf, values_buf) = (st.results, st.values);
            let (loc, parent, class_buf) = (st.scratch_loc, st.scratch_parent, st.scratch_leaf);
            pack_keys_into(&mut self.mem, queries, &layout, &sub_keys)?;
            for (m, &j) in pending.iter().enumerate() {
                self.mem.write_u64(values_buf, m * 8, device_values[j]);
            }
            self.clear_hash_table();
            let kernel = CuartInsertKernel {
                tree: self.tree,
                queries,
                layout,
                values: values_buf,
                results: results_buf,
                count: sub_keys.len(),
                hash_keys: self.hash_keys,
                hash_vals: self.hash_vals,
                table_slots: self.table_slots,
                scratch_loc: loc,
                scratch_parent: parent,
                scratch_class: class_buf,
                free_lists: self.free_lists,
                tails: self.tails,
            };
            let mut sub = launch_with_cache(
                &self.dev,
                &mut self.mem,
                &kernel,
                sub_keys.len(),
                &mut self.l2,
            );
            sub.time_ns += crate::update::hash_clear_ns(&self.dev, self.table_slots);
            let mut progressed = false;
            for (m, &j) in pending.iter().enumerate() {
                let s = self.mem.read_u64(results_buf, m * 8);
                if s != insert_status::EXHAUSTED {
                    progressed = true;
                }
                statuses[device_idx[j]] = s;
            }
            report.accumulate(&sub);
            if !progressed {
                return Err(CuartError::HashTableFull {
                    table_slots: self.table_slots,
                });
            }
        }
    }

    fn host_insert(&mut self, key: &[u8], value: u64) -> u64 {
        // Long keys only route here under CpuRoute, where host_leaves has
        // no device links referencing it — sorted insertion is safe.
        let table = if key.len() > MAX_DEVICE_KEY {
            &mut self.host_leaves
        } else {
            &mut self.short_keys
        };
        match table.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                table[i].1 = value;
                insert_status::UPDATED
            }
            Err(i) => {
                table.insert(i, (key.to_vec(), value));
                insert_status::INSERTED
            }
        }
    }

    /// Number of keys parked in the host overflow table.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    fn host_update(&mut self, key: &[u8], value: u64) -> u64 {
        let table = if key.len() > MAX_DEVICE_KEY {
            &mut self.host_leaves
        } else {
            &mut self.short_keys
        };
        match table.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                if value == DELETE {
                    table.remove(i);
                } else {
                    table[i].1 = value;
                }
                status::APPLIED
            }
            Err(_) => status::MISS,
        }
    }

    fn clear_hash_table(&mut self) {
        let zeros = vec![0u8; self.table_slots * 8];
        self.mem.write_bytes(self.hash_keys, 0, &zeros);
        self.mem.write_bytes(self.hash_vals, 0, &zeros);
    }

    /// Number of freed slots currently on the free list of a leaf class.
    /// Non-leaf classes have no free list and report zero.
    pub fn free_count(&self, ty: LinkType) -> u64 {
        self.free_lists
            .of(ty)
            .map(|fl| self.mem.read_u64(fl, 0))
            .unwrap_or(0)
    }

    /// Total freed slots across all leaf classes.
    fn free_total(&self) -> u64 {
        [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32]
            .iter()
            .map(|&ty| self.free_count(ty))
            .sum()
    }

    /// The telemetry registry this session records into, if any.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The freed leaf indices of a class (for tests and future inserts).
    pub fn free_entries(&self, ty: LinkType) -> Vec<u64> {
        let Ok(fl) = self.free_lists.of(ty) else {
            return Vec::new();
        };
        let n = self.free_count(ty) as usize;
        (0..n).map(|i| self.mem.read_u64(fl, 8 + i * 8)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(n: u64, cfg: &CuartConfig) -> CuartIndex {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&(i * 2).to_be_bytes(), i).unwrap();
        }
        CuartIndex::build(&art, cfg)
    }

    #[test]
    fn facade_basics() {
        let idx = index(100, &CuartConfig::for_tests());
        assert_eq!(idx.len(), 100);
        assert!(!idx.is_empty());
        assert!(idx.device_bytes() > 0);
        assert_eq!(idx.lookup_cpu(&10u64.to_be_bytes()), Some(5));
        assert_eq!(idx.device_key_stride(), 8);
        assert_eq!(
            idx.lookup_batch_cpu(&[4u64.to_be_bytes().to_vec(), 5u64.to_be_bytes().to_vec()]),
            vec![Some(2), None]
        );
    }

    #[test]
    fn session_lookup_matches_cpu() {
        let idx = index(1000, &CuartConfig::for_tests());
        let dev = cuart_gpu_sim::devices::rtx3090();
        let mut session = idx.device_session(&dev);
        let keys: Vec<Vec<u8>> = (0..200u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (results, report) = session.lookup_batch(&keys).unwrap();
        for (k, r) in keys.iter().zip(&results) {
            assert_eq!(*r, idx.lookup_cpu(k).unwrap_or(NOT_FOUND));
        }
        assert!(report.time_ns > 0.0);
    }

    #[test]
    fn session_reuses_staging_buffers() {
        let idx = index(100, &CuartConfig::for_tests());
        let dev = cuart_gpu_sim::devices::a100();
        let mut session = idx.device_session(&dev);
        let keys: Vec<Vec<u8>> = (0..64u64).map(|i| i.to_be_bytes().to_vec()).collect();
        session.lookup_batch(&keys).unwrap();
        let buffers_before = session.mem.buffer_count();
        for _ in 0..5 {
            session.lookup_batch(&keys).unwrap();
        }
        assert_eq!(
            session.mem.buffer_count(),
            buffers_before,
            "staging must be reused"
        );
    }

    #[test]
    fn session_warm_l2_beats_cold() {
        let idx = index(5000, &CuartConfig::for_tests());
        let dev = cuart_gpu_sim::devices::rtx3090();
        let mut session = idx.device_session(&dev);
        let keys: Vec<Vec<u8>> = (0..2000u64)
            .map(|i| (i * 2).to_be_bytes().to_vec())
            .collect();
        let (_, cold) = session.lookup_batch(&keys).unwrap();
        let (_, warm) = session.lookup_batch(&keys).unwrap();
        assert!(warm.time_ns <= cold.time_ns);
    }

    #[test]
    fn host_routed_keys_in_session() {
        let mut art = Art::new();
        art.insert(b"ab", 1).unwrap(); // shorter than 3-byte LUT span
        art.insert(&[9u8; 40], 2).unwrap(); // longer than device max
        art.insert(b"device_resident", 3).unwrap();
        let idx = CuartIndex::build(
            &art,
            &CuartConfig {
                lut_span: 3,
                long_key_policy: LongKeyPolicy::CpuRoute,
                multi_layer_nodes: false,
                single_leaf_class: false,
            },
        );
        let dev = cuart_gpu_sim::devices::a100();
        let mut session = idx.device_session(&dev);
        let keys = vec![b"ab".to_vec(), vec![9u8; 40], b"device_resident".to_vec()];
        let (results, _) = session.lookup_batch(&keys).unwrap();
        assert_eq!(results, vec![1, 2, 3]);
        // Host-side update + delete stay coherent.
        let (st, _) = session
            .update_batch(&[(b"ab".to_vec(), 42), (vec![9u8; 40], DELETE)])
            .unwrap();
        assert_eq!(st, vec![status::APPLIED, status::APPLIED]);
        let (results, _) = session.lookup_batch(&keys).unwrap();
        assert_eq!(results, vec![42, NOT_FOUND, 3]);
    }

    #[test]
    fn one_shot_device_lookup() {
        let idx = index(50, &CuartConfig::for_tests());
        let dev = cuart_gpu_sim::devices::gtx1070();
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| (i * 2).to_be_bytes().to_vec()).collect();
        let (results, _) = idx.lookup_batch_device(&dev, &keys, 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64);
        }
    }

    #[test]
    fn empty_index_session() {
        let idx = CuartIndex::build(&Art::new(), &CuartConfig::for_tests());
        let dev = cuart_gpu_sim::devices::a100();
        let mut session = idx.device_session(&dev);
        let (results, _) = session.lookup_batch(&[b"anything".to_vec()]).unwrap();
        assert_eq!(results[0], NOT_FOUND);
        let (st, _) = session.update_batch(&[(b"anything".to_vec(), 5)]).unwrap();
        assert_eq!(st[0], status::MISS);
    }
}
