//! Crash-safe index persistence: save/load the mapped CuART buffers.
//!
//! Mapping a large ART into the structure of buffers is the expensive
//! setup step of the paper's pipeline (§4.1). Persisting the mapped image
//! lets a process restart skip both the ART build and the map.
//!
//! # Format (version 2)
//!
//! ```text
//! header : MAGIC "CUARTIDX" (8 B) | version u32 LE | section_count u32 LE
//! section: payload_len u64 LE | crc32(payload) u32 LE | payload
//! ```
//!
//! Fourteen sections: the config/scalar block, the nine arenas, the
//! sparse LUT, and the two host tables. Every section carries its own
//! IEEE CRC-32, so a torn write, truncation, or bit flip anywhere in the
//! file is detected at load time and rejected with
//! [`CuartError::SnapshotCorrupt`] instead of deserialising garbage.
//!
//! # Crash safety
//!
//! [`CuartIndex::save`] never writes the destination in place: the image
//! goes to a process-unique temporary file in the same directory, is
//! flushed and fsynced, and is then atomically renamed over the target.
//! A crash mid-save leaves either the old snapshot or no snapshot —
//! never a half-written one.
//!
//! ```
//! use cuart::{CuartConfig, CuartIndex};
//! use cuart_art::Art;
//!
//! let mut art = Art::new();
//! art.insert(b"key-0001", 7u64).unwrap();
//! let index = CuartIndex::build(&art, &CuartConfig::for_tests());
//!
//! let path = std::env::temp_dir().join("doc.cuart");
//! index.save(&path).unwrap();
//! let loaded = CuartIndex::load(&path).unwrap();
//! assert_eq!(loaded.lookup_cpu(b"key-0001"), Some(7));
//! assert!(cuart::persist::verify_snapshot(&path).is_ok());
//! ```

use crate::buffers::{CuartBuffers, CuartConfig, LongKeyPolicy};
use crate::error::CuartError;
use crate::link::NodeLink;
use crate::CuartIndex;
use std::io::Write;
use std::path::Path;

const MAGIC: &[u8; 8] = b"CUARTIDX";
/// Current snapshot format version (see the module docs).
pub const VERSION: u32 = 2;
const SECTIONS: u32 = 14;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven; the table is built at compile time
// so the crate stays free of external checksum dependencies.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `data` (the polynomial used by zip/png/ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Section encoding helpers.
// ---------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, data: &[u8]) {
    put_u64(out, data.len() as u64);
    out.extend_from_slice(data);
}

fn put_table(out: &mut Vec<u8>, table: &[(Vec<u8>, u64)]) {
    put_u64(out, table.len() as u64);
    for (k, v) in table {
        put_bytes(out, k);
        put_u64(out, *v);
    }
}

/// Bounds-checked reader over a fully-loaded snapshot. Every read that
/// would run past the end is a corruption, not a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CuartError> {
        let end = self.pos.checked_add(n).ok_or_else(|| {
            CuartError::corrupt(format!("{what}: length overflows the file offset"))
        })?;
        if end > self.buf.len() {
            return Err(CuartError::corrupt(format!(
                "{what}: need {n} bytes at offset {}, file has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CuartError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes"))) // cuart-allow: panic-path slice indexed to the exact field width on this line
    }

    fn u64(&mut self, what: &str) -> Result<u64, CuartError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes"))) // cuart-allow: panic-path slice indexed to the exact field width on this line
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn get_bytes<'a>(c: &mut Cursor<'a>, what: &str) -> Result<&'a [u8], CuartError> {
    let len = c.u64(what)? as usize;
    c.take(len, what)
}

fn get_table(c: &mut Cursor<'_>, what: &str) -> Result<Vec<(Vec<u8>, u64)>, CuartError> {
    let n = c.u64(what)? as usize;
    // Each entry is at least 16 bytes; reject counts the file cannot hold.
    if n.saturating_mul(16) > c.buf.len() {
        return Err(CuartError::corrupt(format!(
            "{what}: entry count {n} exceeds file capacity"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = get_bytes(c, what)?.to_vec();
        let v = c.u64(what)?;
        out.push((k, v));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Snapshot assembly / parsing.
// ---------------------------------------------------------------------

fn encode_sections(b: &CuartBuffers) -> Vec<Vec<u8>> {
    let mut sections = Vec::with_capacity(SECTIONS as usize);
    // Section 0: config + scalars.
    let mut meta = Vec::with_capacity(56);
    put_u64(&mut meta, b.config.lut_span as u64);
    put_u64(
        &mut meta,
        match b.config.long_key_policy {
            LongKeyPolicy::CpuRoute => 0,
            LongKeyPolicy::HostLeafLink => 1,
            LongKeyPolicy::DynamicLeaf => 2,
        },
    );
    put_u64(&mut meta, b.config.multi_layer_nodes as u64);
    put_u64(&mut meta, b.config.single_leaf_class as u64);
    put_u64(&mut meta, b.root.0);
    put_u64(&mut meta, b.entries as u64);
    put_u64(&mut meta, b.max_key_len as u64);
    sections.push(meta);
    // Sections 1–9: arenas (raw).
    for arena in [
        &b.n4,
        &b.n16,
        &b.n48,
        &b.n256,
        &b.n2l,
        &b.leaf8,
        &b.leaf16,
        &b.leaf32,
        &b.dyn_leaves,
    ] {
        sections.push(arena.clone());
    }
    // Section 10: LUT, stored sparsely (most of the 2^24 table is null).
    let mut lut = Vec::new();
    let occupied: Vec<(u64, u64)> = b
        .lut
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != 0)
        .map(|(i, &v)| (i as u64, v))
        .collect();
    put_u64(&mut lut, occupied.len() as u64);
    for (slot, v) in occupied {
        put_u64(&mut lut, slot);
        put_u64(&mut lut, v);
    }
    sections.push(lut);
    // Sections 11–12: host tables.
    let mut short_keys = Vec::new();
    put_table(&mut short_keys, &b.short_keys);
    sections.push(short_keys);
    let mut host_leaves = Vec::new();
    put_table(&mut host_leaves, &b.host_leaves);
    sections.push(host_leaves);
    // Section 13: reserved trailer (empty; room for future metadata
    // without a version bump breaking old readers' section count).
    sections.push(Vec::new());
    sections
}

/// Split a raw snapshot into CRC-verified section payloads.
fn checked_sections(data: &[u8]) -> Result<Vec<&[u8]>, CuartError> {
    let mut c = Cursor::new(data);
    let magic = c.take(8, "magic")?;
    if magic != MAGIC {
        return Err(CuartError::corrupt("bad magic (not a CuART snapshot)"));
    }
    let version = c.u32("version")?;
    if version != VERSION {
        return Err(CuartError::corrupt(format!(
            "unsupported snapshot version {version} (this build reads {VERSION})"
        )));
    }
    let count = c.u32("section count")?;
    if count != SECTIONS {
        return Err(CuartError::corrupt(format!(
            "expected {SECTIONS} sections, header claims {count}"
        )));
    }
    let mut sections = Vec::with_capacity(count as usize);
    for i in 0..count {
        let what = format!("section {i}");
        let len = c.u64(&what)? as usize;
        let stored_crc = c.u32(&what)?;
        let payload = c.take(len, &what)?;
        let actual = crc32(payload);
        if actual != stored_crc {
            return Err(CuartError::corrupt(format!(
                "section {i}: CRC mismatch (stored {stored_crc:#010x}, computed {actual:#010x})"
            )));
        }
        sections.push(payload);
    }
    if !c.done() {
        return Err(CuartError::corrupt(format!(
            "{} trailing bytes after the last section",
            data.len() - c.pos
        )));
    }
    Ok(sections)
}

fn parse_buffers(sections: &[&[u8]]) -> Result<CuartBuffers, CuartError> {
    let mut meta = Cursor::new(sections[0]);
    let lut_span = meta.u64("lut_span")? as usize;
    if lut_span > 3 {
        return Err(CuartError::corrupt(format!(
            "lut_span {lut_span} out of range"
        )));
    }
    let long_key_policy = match meta.u64("long_key_policy")? {
        0 => LongKeyPolicy::CpuRoute,
        1 => LongKeyPolicy::HostLeafLink,
        2 => LongKeyPolicy::DynamicLeaf,
        p => return Err(CuartError::corrupt(format!("unknown long-key policy {p}"))),
    };
    let multi_layer_nodes = meta.u64("multi_layer_nodes")? != 0;
    let single_leaf_class = meta.u64("single_leaf_class")? != 0;
    let config = CuartConfig {
        lut_span,
        long_key_policy,
        multi_layer_nodes,
        single_leaf_class,
    };
    let root = NodeLink(meta.u64("root")?);
    let entries = meta.u64("entries")? as usize;
    let max_key_len = meta.u64("max_key_len")? as usize;
    if !meta.done() {
        return Err(CuartError::corrupt("config section has trailing bytes"));
    }
    let mut b = CuartBuffers::new(config);
    b.root = root;
    b.entries = entries;
    b.max_key_len = max_key_len;
    b.n4 = sections[1].to_vec();
    b.n16 = sections[2].to_vec();
    b.n48 = sections[3].to_vec();
    b.n256 = sections[4].to_vec();
    b.n2l = sections[5].to_vec();
    b.leaf8 = sections[6].to_vec();
    b.leaf16 = sections[7].to_vec();
    b.leaf32 = sections[8].to_vec();
    b.dyn_leaves = sections[9].to_vec();
    let mut lut = Cursor::new(sections[10]);
    let occupied = lut.u64("LUT occupancy")? as usize;
    for _ in 0..occupied {
        let slot = lut.u64("LUT slot")? as usize;
        let v = lut.u64("LUT value")?;
        if slot >= b.lut.len() {
            return Err(CuartError::corrupt(format!(
                "LUT slot {slot} out of range ({} slots)",
                b.lut.len()
            )));
        }
        b.lut[slot] = v;
    }
    if !lut.done() {
        return Err(CuartError::corrupt("LUT section has trailing bytes"));
    }
    b.short_keys = get_table(&mut Cursor::new(sections[11]), "short-key table")?;
    b.host_leaves = get_table(&mut Cursor::new(sections[12]), "host-leaf table")?;
    Ok(b)
}

/// Summary returned by [`verify_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version of the verified file.
    pub version: u32,
    /// Number of CRC-verified sections.
    pub sections: u32,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Keys stored in the index (device + host side).
    pub entries: u64,
}

/// Fully validate a snapshot without keeping the index: header, every
/// section CRC, and a structural parse of all buffers. Returns a summary
/// on success; any corruption is a [`CuartError::SnapshotCorrupt`].
pub fn verify_snapshot(path: impl AsRef<Path>) -> Result<SnapshotInfo, CuartError> {
    let data = std::fs::read(path)?;
    let sections = checked_sections(&data)?;
    let b = parse_buffers(&sections)?;
    Ok(SnapshotInfo {
        version: VERSION,
        sections: SECTIONS,
        file_bytes: data.len() as u64,
        entries: b.entries as u64,
    })
}

impl CuartIndex {
    /// Serialise the mapped buffers to `path`, crash-safely: the image is
    /// written to a temporary file in the same directory, fsynced, then
    /// atomically renamed over `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CuartError> {
        let path = path.as_ref();
        let sections = encode_sections(self.buffers());
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&SECTIONS.to_le_bytes());
        for payload in &sections {
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&crc32(payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        // Unique per process so concurrent savers never tear each other's
        // temporary; rename() then makes the publish atomic.
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            std::fs::remove_file(&tmp).ok();
        }
        Ok(result?)
    }

    /// Load an index previously written by [`save`](Self::save). Every
    /// section CRC is checked before any bytes are interpreted; torn,
    /// truncated or bit-flipped snapshots are rejected with
    /// [`CuartError::SnapshotCorrupt`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CuartError> {
        let data = std::fs::read(path)?;
        let sections = checked_sections(&data)?;
        Ok(CuartIndex::from_buffers(parse_buffers(&sections)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_art::Art;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cuart-persist-{name}-{}", std::process::id()))
    }

    fn sample(cfg: &CuartConfig) -> CuartIndex {
        let mut art = Art::new();
        for i in 0..3000u64 {
            art.insert(&(i * 7).to_be_bytes(), i).unwrap();
        }
        art.insert(&[3u8; 40], 999_999).unwrap(); // long key
        CuartIndex::build(&art, cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("roundtrip");
        idx.save(&path).unwrap();
        let loaded = CuartIndex::load(&path).unwrap();
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.device_bytes(), idx.device_bytes());
        assert_eq!(loaded.buffers().config, idx.buffers().config);
        for i in (0..3000u64).step_by(17) {
            let k = (i * 7).to_be_bytes();
            assert_eq!(loaded.lookup_cpu(&k), idx.lookup_cpu(&k));
        }
        assert_eq!(loaded.lookup_cpu(&[3u8; 40]), Some(999_999));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_all_policies_and_flags() {
        for policy in [
            LongKeyPolicy::CpuRoute,
            LongKeyPolicy::HostLeafLink,
            LongKeyPolicy::DynamicLeaf,
        ] {
            let cfg = CuartConfig {
                lut_span: 2,
                long_key_policy: policy,
                multi_layer_nodes: true,
                single_leaf_class: false,
            };
            let idx = sample(&cfg);
            let path = temp("policies");
            idx.save(&path).unwrap();
            let loaded = CuartIndex::load(&path).unwrap();
            assert_eq!(loaded.buffers().config, cfg);
            assert_eq!(loaded.lookup_cpu(&[3u8; 40]), Some(999_999), "{policy:?}");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn loaded_index_works_on_device() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("device");
        idx.save(&path).unwrap();
        let loaded = CuartIndex::load(&path).unwrap();
        let dev = cuart_gpu_sim::devices::a100();
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| (i * 7).to_be_bytes().to_vec())
            .collect();
        let (results, _) = loaded.lookup_batch_device(&dev, &keys, 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_rejected() {
        let path = temp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(matches!(
            CuartIndex::load(&path),
            Err(CuartError::SnapshotCorrupt { .. })
        ));
        std::fs::write(&path, b"CUARTIDX").unwrap(); // truncated after magic
        assert!(matches!(
            CuartIndex::load(&path),
            Err(CuartError::SnapshotCorrupt { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncation_anywhere_is_rejected() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("truncate");
        idx.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Chop at a spread of prefixes, including mid-header and mid-CRC.
        for cut in [0, 4, 11, 15, 17, full.len() / 3, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(
                matches!(
                    CuartIndex::load(&path),
                    Err(CuartError::SnapshotCorrupt { .. })
                ),
                "truncation at {cut} must be rejected"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bit_flips_are_rejected() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("bitflip");
        idx.save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Flip one bit at a spread of offsets beyond the header; each must
        // trip a section CRC (or a structural check).
        for pos in [20usize, 40, full.len() / 2, full.len() - 2] {
            let mut copy = full.clone();
            copy[pos] ^= 0x10;
            std::fs::write(&path, &copy).unwrap();
            assert!(
                CuartIndex::load(&path).is_err(),
                "bit flip at {pos} must be rejected"
            );
        }
        // The pristine image still loads.
        std::fs::write(&path, &full).unwrap();
        assert!(CuartIndex::load(&path).is_ok());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn verify_snapshot_reports_and_rejects() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("verify");
        idx.save(&path).unwrap();
        let info = verify_snapshot(&path).unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.sections, SECTIONS);
        assert_eq!(info.entries, idx.len() as u64);
        assert_eq!(
            info.file_bytes,
            std::fs::metadata(&path).unwrap().len(),
            "info must report the real file size"
        );
        let mut copy = std::fs::read(&path).unwrap();
        let mid = copy.len() / 2;
        copy[mid] ^= 0x01;
        std::fs::write(&path, &copy).unwrap();
        assert!(matches!(
            verify_snapshot(&path),
            Err(CuartError::SnapshotCorrupt { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("notmp");
        idx.save(&path).unwrap();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        assert!(!tmp.exists(), "temporary file must be renamed away");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sparse_lut_encoding_is_compact() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("sparse");
        idx.save(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        // The dense LUT alone would be 512 KiB; the file must be far below
        // arenas + dense LUT.
        assert!(
            file_len < idx.device_bytes(),
            "file {} !< device bytes {}",
            file_len,
            idx.device_bytes()
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }
}
