//! Index persistence: save/load the mapped CuART buffers.
//!
//! Mapping a large ART into the structure of buffers is the expensive
//! setup step of the paper's pipeline (§4.1). Persisting the mapped image
//! lets a process restart skip both the ART build and the map: the format
//! is a plain sectioned binary — magic, version, config, then each arena
//! and table length-prefixed — written with std I/O only.
//!
//! ```
//! use cuart::{CuartConfig, CuartIndex};
//! use cuart_art::Art;
//!
//! let mut art = Art::new();
//! art.insert(b"key-0001", 7u64).unwrap();
//! let index = CuartIndex::build(&art, &CuartConfig::for_tests());
//!
//! let path = std::env::temp_dir().join("doc.cuart");
//! index.save(&path).unwrap();
//! let loaded = CuartIndex::load(&path).unwrap();
//! assert_eq!(loaded.lookup_cpu(b"key-0001"), Some(7));
//! ```

use crate::buffers::{CuartBuffers, CuartConfig, LongKeyPolicy};
use crate::link::NodeLink;
use crate::CuartIndex;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CUARTIDX";
const VERSION: u32 = 1;

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_bytes(w: &mut impl Write, data: &[u8]) -> io::Result<()> {
    write_u64(w, data.len() as u64)?;
    w.write_all(data)
}

fn read_bytes(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u64(r)? as usize;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn write_table(w: &mut impl Write, table: &[(Vec<u8>, u64)]) -> io::Result<()> {
    write_u64(w, table.len() as u64)?;
    for (k, v) in table {
        write_bytes(w, k)?;
        write_u64(w, *v)?;
    }
    Ok(())
}

fn read_table(r: &mut impl Read) -> io::Result<Vec<(Vec<u8>, u64)>> {
    let n = read_u64(r)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = read_bytes(r)?;
        let v = read_u64(r)?;
        out.push((k, v));
    }
    Ok(out)
}

fn corrupt(msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt CuART index file: {msg}"),
    )
}

impl CuartIndex {
    /// Serialise the mapped buffers to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        let b = self.buffers();
        w.write_all(MAGIC)?;
        write_u64(&mut w, VERSION as u64)?;
        // Config.
        write_u64(&mut w, b.config.lut_span as u64)?;
        write_u64(
            &mut w,
            match b.config.long_key_policy {
                LongKeyPolicy::CpuRoute => 0,
                LongKeyPolicy::HostLeafLink => 1,
                LongKeyPolicy::DynamicLeaf => 2,
            },
        )?;
        write_u64(&mut w, b.config.multi_layer_nodes as u64)?;
        write_u64(&mut w, b.config.single_leaf_class as u64)?;
        // Scalars.
        write_u64(&mut w, b.root.0)?;
        write_u64(&mut w, b.entries as u64)?;
        write_u64(&mut w, b.max_key_len as u64)?;
        // Arenas.
        for arena in [
            &b.n4,
            &b.n16,
            &b.n48,
            &b.n256,
            &b.n2l,
            &b.leaf8,
            &b.leaf16,
            &b.leaf32,
            &b.dyn_leaves,
        ] {
            write_bytes(&mut w, arena)?;
        }
        // LUT (stored sparsely: most slots of the 2^24 table are null).
        let occupied: Vec<(u64, u64)> = b
            .lut
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i as u64, v))
            .collect();
        write_u64(&mut w, occupied.len() as u64)?;
        for (slot, v) in occupied {
            write_u64(&mut w, slot)?;
            write_u64(&mut w, v)?;
        }
        // Host tables.
        write_table(&mut w, &b.short_keys)?;
        write_table(&mut w, &b.host_leaves)?;
        w.flush()
    }

    /// Load an index previously written by [`save`](Self::save).
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(corrupt("bad magic"));
        }
        if read_u64(&mut r)? != VERSION as u64 {
            return Err(corrupt("unsupported version"));
        }
        let lut_span = read_u64(&mut r)? as usize;
        if lut_span > 3 {
            return Err(corrupt("lut_span out of range"));
        }
        let long_key_policy = match read_u64(&mut r)? {
            0 => LongKeyPolicy::CpuRoute,
            1 => LongKeyPolicy::HostLeafLink,
            2 => LongKeyPolicy::DynamicLeaf,
            _ => return Err(corrupt("unknown long-key policy")),
        };
        let multi_layer_nodes = read_u64(&mut r)? != 0;
        let single_leaf_class = read_u64(&mut r)? != 0;
        let config = CuartConfig {
            lut_span,
            long_key_policy,
            multi_layer_nodes,
            single_leaf_class,
        };
        let root = NodeLink(read_u64(&mut r)?);
        let entries = read_u64(&mut r)? as usize;
        let max_key_len = read_u64(&mut r)? as usize;
        let mut b = CuartBuffers::new(config);
        b.root = root;
        b.entries = entries;
        b.max_key_len = max_key_len;
        b.n4 = read_bytes(&mut r)?;
        b.n16 = read_bytes(&mut r)?;
        b.n48 = read_bytes(&mut r)?;
        b.n256 = read_bytes(&mut r)?;
        b.n2l = read_bytes(&mut r)?;
        b.leaf8 = read_bytes(&mut r)?;
        b.leaf16 = read_bytes(&mut r)?;
        b.leaf32 = read_bytes(&mut r)?;
        b.dyn_leaves = read_bytes(&mut r)?;
        let occupied = read_u64(&mut r)? as usize;
        for _ in 0..occupied {
            let slot = read_u64(&mut r)? as usize;
            let v = read_u64(&mut r)?;
            if slot >= b.lut.len() {
                return Err(corrupt("LUT slot out of range"));
            }
            b.lut[slot] = v;
        }
        b.short_keys = read_table(&mut r)?;
        b.host_leaves = read_table(&mut r)?;
        Ok(CuartIndex::from_buffers(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuart_art::Art;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cuart-persist-{name}-{}", std::process::id()))
    }

    fn sample(cfg: &CuartConfig) -> CuartIndex {
        let mut art = Art::new();
        for i in 0..3000u64 {
            art.insert(&(i * 7).to_be_bytes(), i).unwrap();
        }
        art.insert(&[3u8; 40], 999_999).unwrap(); // long key
        CuartIndex::build(&art, cfg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("roundtrip");
        idx.save(&path).unwrap();
        let loaded = CuartIndex::load(&path).unwrap();
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.device_bytes(), idx.device_bytes());
        assert_eq!(loaded.buffers().config, idx.buffers().config);
        for i in (0..3000u64).step_by(17) {
            let k = (i * 7).to_be_bytes();
            assert_eq!(loaded.lookup_cpu(&k), idx.lookup_cpu(&k));
        }
        assert_eq!(loaded.lookup_cpu(&[3u8; 40]), Some(999_999));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn roundtrip_all_policies_and_flags() {
        for policy in [
            LongKeyPolicy::CpuRoute,
            LongKeyPolicy::HostLeafLink,
            LongKeyPolicy::DynamicLeaf,
        ] {
            let cfg = CuartConfig {
                lut_span: 2,
                long_key_policy: policy,
                multi_layer_nodes: true,
                single_leaf_class: false,
            };
            let idx = sample(&cfg);
            let path = temp("policies");
            idx.save(&path).unwrap();
            let loaded = CuartIndex::load(&path).unwrap();
            assert_eq!(loaded.buffers().config, cfg);
            assert_eq!(loaded.lookup_cpu(&[3u8; 40]), Some(999_999), "{policy:?}");
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn loaded_index_works_on_device() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("device");
        idx.save(&path).unwrap();
        let loaded = CuartIndex::load(&path).unwrap();
        let dev = cuart_gpu_sim::devices::a100();
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| (i * 7).to_be_bytes().to_vec())
            .collect();
        let (results, _) = loaded.lookup_batch_device(&dev, &keys, 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_rejected() {
        let path = temp("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(CuartIndex::load(&path).is_err());
        std::fs::write(&path, b"CUARTIDX").unwrap(); // truncated after magic
        assert!(CuartIndex::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sparse_lut_encoding_is_compact() {
        let idx = sample(&CuartConfig::for_tests());
        let path = temp("sparse");
        idx.save(&path).unwrap();
        let file_len = std::fs::metadata(&path).unwrap().len() as usize;
        // The dense LUT alone would be 512 KiB; the file must be far below
        // arenas + dense LUT.
        assert!(
            file_len < idx.device_bytes(),
            "file {} !< device bytes {}",
            file_len,
            idx.device_bytes()
        );
        std::fs::remove_file(path).ok();
    }
}
