//! Range queries as leaf-buffer index spans (§3.2.1).
//!
//! Leaves are emitted in lexicographic key order within each leaf class, so
//! "transferring range queries from the accelerator to the host is trivial
//! because it is only required to transmit both the start and the end index
//! within the leaf arrays". A range query therefore returns one
//! [`LeafSpan`] per class (plus any matches from the host-side tables);
//! materialisation walks the spans and skips leaves deleted since the map.

use crate::buffers::CuartBuffers;
use crate::layout::leaf;
use crate::link::LinkType;

/// A contiguous index range `[start, end)` within one leaf class arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafSpan {
    /// The leaf class.
    pub class: LinkType,
    /// First leaf index in range.
    pub start: u64,
    /// One past the last leaf index in range.
    pub end: u64,
}

impl LeafSpan {
    /// Number of leaves covered (including deleted holes).
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// `true` if the span covers nothing.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// The stored key of leaf `i` in `class`, or `None` if the slot was
/// deleted/cleared.
fn leaf_key(b: &CuartBuffers, class: LinkType, i: u64) -> Option<&[u8]> {
    let rec = b.record(class, i);
    if rec[leaf::live_at(class)] == 0 {
        return None;
    }
    let len = rec[leaf::len_at(class)] as usize;
    Some(&rec[..len])
}

/// The value of leaf `i`.
fn leaf_value(b: &CuartBuffers, class: LinkType, i: u64) -> u64 {
    let rec = b.record(class, i);
    let at = leaf::value_at(class);
    u64::from_le_bytes(rec[at..at + 8].try_into().expect("8 bytes")) // cuart-allow: panic-path slice indexed to the exact field width on this line
}

/// First index whose key is `>= bound`, skipping deleted holes. The arenas
/// are sorted at map time; deleted slots are treated as "equal to their
/// nearest live successor" during the search.
fn partition(b: &CuartBuffers, class: LinkType, bound: &[u8], include_equal: bool) -> u64 {
    let n = b.record_count(class) as u64;
    let mut lo = 0u64;
    let mut hi = n;
    while lo < hi {
        let mid = (lo + hi) / 2;
        // Probe the nearest live leaf at or after mid.
        let mut probe = mid;
        let key = loop {
            if probe >= hi {
                break None;
            }
            match leaf_key(b, class, probe) {
                Some(k) => break Some(k),
                None => probe += 1,
            }
        };
        let goes_right = match key {
            Some(k) => {
                if include_equal {
                    k < bound
                } else {
                    k <= bound
                }
            }
            None => false, // all dead up to hi: shrink right side
        };
        if goes_right {
            lo = probe + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Compute one [`LeafSpan`] per leaf class for the **inclusive key
/// interval** `[lo, hi]`.
///
/// Contract (one sentence, both halves): the *key* interval is closed on
/// both ends — a stored key equal to `lo` or `hi` is in range — while the
/// returned *index* span is half-open `[start, end)`, per [`LeafSpan`].
/// Degenerate inputs follow from the same rule: `lo == hi` selects exactly
/// the leaves storing that key (a span of length 0 or 1 per class);
/// `lo > hi` yields empty spans; bounds absent from the tree snap to the
/// nearest stored neighbors; a class with no leaves yields `0..0`.
pub fn range_spans(b: &CuartBuffers, lo: &[u8], hi: &[u8]) -> Vec<LeafSpan> {
    [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32]
        .into_iter()
        .map(|class| LeafSpan {
            class,
            start: partition(b, class, lo, true),
            end: partition(b, class, hi, false),
        })
        .collect()
}

/// Materialise a span into `(key, value)` pairs, skipping deleted holes.
pub fn materialize_span(b: &CuartBuffers, span: &LeafSpan) -> Vec<(Vec<u8>, u64)> {
    (span.start..span.end)
        .filter_map(|i| {
            leaf_key(b, span.class, i).map(|k| (k.to_vec(), leaf_value(b, span.class, i)))
        })
        .collect()
}

/// The device-resident rows of the inclusive key interval `[lo, hi]`:
/// ordered leaf-arena spans plus the (unordered, scanned) dynamic leaves.
/// Host-side tables are **excluded** — callers that maintain their own
/// host tables (a [`CuartSession`](crate::CuartSession)) merge those
/// themselves; [`range_query`] merges the buffers' copies.
pub fn range_device_rows(b: &CuartBuffers, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, u64)> {
    let mut out: Vec<(Vec<u8>, u64)> = Vec::new();
    for span in range_spans(b, lo, hi) {
        out.extend(materialize_span(b, &span));
    }
    // Dynamic leaves are not index-ordered; scan them.
    let mut off = 0usize;
    while off + 2 <= b.dyn_leaves.len() {
        let len =
            u16::from_le_bytes(b.dyn_leaves[off..off + 2].try_into().expect("2 bytes")) as usize; // cuart-allow: panic-path slice indexed to the exact field width on this line
        if len == 0 {
            break;
        }
        let key = &b.dyn_leaves[off + 2..off + 2 + len];
        let value = u64::from_le_bytes(
            b.dyn_leaves[off + 2 + len..off + 2 + len + 8]
                .try_into()
                .expect("8 bytes"), // cuart-allow: panic-path slice indexed to the exact field width on this line
        );
        if key >= lo && key <= hi {
            out.push((key.to_vec(), value));
        }
        off = (off + 2 + len + 8).next_multiple_of(8);
    }
    out
}

/// Full range query over the **inclusive key interval** `[lo, hi]`:
/// device spans plus host-side tables, merged in lexicographic order.
/// Matches `Art::range` on the same data.
pub fn range_query(b: &CuartBuffers, lo: &[u8], hi: &[u8]) -> Vec<(Vec<u8>, u64)> {
    let mut out = range_device_rows(b, lo, hi);
    for table in [&b.short_keys, &b.host_leaves] {
        for (k, v) in table {
            if k.as_slice() >= lo && k.as_slice() <= hi {
                out.push((k.clone(), *v));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffers::CuartConfig;
    use crate::mapper::map_art;
    use cuart_art::Art;

    fn build(keys: &[Vec<u8>]) -> (Art<u64>, CuartBuffers) {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let b = map_art(&art, &CuartConfig::for_tests());
        (art, b)
    }

    #[test]
    fn span_matches_art_range_fixed_len() {
        let keys: Vec<Vec<u8>> = (0..500u64)
            .map(|i| (i * 3).to_be_bytes().to_vec())
            .collect();
        let (art, b) = build(&keys);
        let lo = 100u64.to_be_bytes();
        let hi = 700u64.to_be_bytes();
        let got = range_query(&b, &lo, &hi);
        let want: Vec<(Vec<u8>, u64)> = art.range(&lo, &hi).map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn span_is_contiguous_indices() {
        let keys: Vec<Vec<u8>> = (0..100u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, b) = build(&keys);
        let spans = range_spans(&b, &10u64.to_be_bytes(), &20u64.to_be_bytes());
        let leaf8 = spans.iter().find(|s| s.class == LinkType::Leaf8).unwrap();
        // §3.2.1: the result is literally (start, end) indices.
        assert_eq!(leaf8.start, 10);
        assert_eq!(leaf8.end, 21);
        assert_eq!(leaf8.len(), 11);
    }

    #[test]
    fn empty_range() {
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, b) = build(&keys);
        let spans = range_spans(&b, &100u64.to_be_bytes(), &200u64.to_be_bytes());
        assert!(spans.iter().all(|s| s.is_empty()));
        assert!(range_query(&b, &100u64.to_be_bytes(), &200u64.to_be_bytes()).is_empty());
    }

    #[test]
    fn mixed_leaf_classes_merge_sorted() {
        // Keys of different lengths land in different arenas but must merge
        // into one ordered result.
        let keys = vec![
            vec![1u8, 0, 0, 0],                   // leaf8
            vec![1u8, 0, 0, 2, 0, 0, 0, 0, 0, 1], // leaf16
            vec![2u8; 20],                        // leaf32
            vec![3u8, 3, 3],                      // leaf8
        ];
        let (art, b) = build(&keys);
        let lo = vec![0u8];
        let hi = vec![0xFFu8; 32];
        let got = range_query(&b, &lo, &hi);
        let want: Vec<(Vec<u8>, u64)> = art.range(&lo, &hi).map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn materialize_skips_deleted_holes() {
        let keys: Vec<Vec<u8>> = (0..20u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, mut b) = build(&keys);
        // Manually clear leaf 5 (simulating a device-side delete).
        let rec = b.record_mut(LinkType::Leaf8, 5);
        rec.fill(0);
        let span = LeafSpan {
            class: LinkType::Leaf8,
            start: 0,
            end: 20,
        };
        let got = materialize_span(&b, &span);
        assert_eq!(got.len(), 19);
        assert!(got.iter().all(|(k, _)| k != &5u64.to_be_bytes().to_vec()));
        // Range search still works around the hole.
        let q = range_query(&b, &4u64.to_be_bytes(), &6u64.to_be_bytes());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn point_interval_lo_equals_hi() {
        // `lo == hi` under the inclusive-key contract selects exactly that
        // key: a one-element index span when stored, empty when absent.
        let keys: Vec<Vec<u8>> = (0..100u64)
            .map(|i| (i * 2).to_be_bytes().to_vec())
            .collect();
        let (_, b) = build(&keys);
        let stored = 40u64.to_be_bytes();
        let spans = range_spans(&b, &stored, &stored);
        let total: u64 = spans.iter().map(|s| s.len()).sum();
        assert_eq!(total, 1, "stored point interval covers exactly one leaf");
        let rows = range_query(&b, &stored, &stored);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, stored.to_vec());
        // An absent key (odd — only evens stored) yields nothing.
        let absent = 41u64.to_be_bytes();
        let spans = range_spans(&b, &absent, &absent);
        assert!(spans.iter().all(|s| s.is_empty()));
        assert!(range_query(&b, &absent, &absent).is_empty());
    }

    #[test]
    fn bounds_absent_from_tree_snap_to_neighbors() {
        // lo/hi not stored: the span still covers every stored key inside
        // the inclusive interval, exactly like Art::range.
        let keys: Vec<Vec<u8>> = (0..200u64)
            .map(|i| (i * 10).to_be_bytes().to_vec())
            .collect();
        let (art, b) = build(&keys);
        // 95 and 1234 are not multiples of 10.
        let lo = 95u64.to_be_bytes();
        let hi = 1234u64.to_be_bytes();
        let got = range_query(&b, &lo, &hi);
        let want: Vec<(Vec<u8>, u64)> = art.range(&lo, &hi).map(|(k, &v)| (k, v)).collect();
        assert_eq!(got, want);
        assert_eq!(got.first().unwrap().0, 100u64.to_be_bytes().to_vec());
        assert_eq!(got.last().unwrap().0, 1230u64.to_be_bytes().to_vec());
    }

    #[test]
    fn empty_leaf_class_yields_zero_span() {
        // All keys are 8-byte: leaf16/leaf32 arenas are empty and must
        // report the 0..0 span, not panic or fabricate indices.
        let keys: Vec<Vec<u8>> = (0..30u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, b) = build(&keys);
        let spans = range_spans(&b, &0u64.to_be_bytes(), &29u64.to_be_bytes());
        for span in &spans {
            if span.class != LinkType::Leaf8 {
                assert_eq!((span.start, span.end), (0, 0), "class {:?}", span.class);
                assert!(span.is_empty());
            }
        }
    }

    #[test]
    fn inverted_interval_is_empty() {
        let keys: Vec<Vec<u8>> = (0..50u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, b) = build(&keys);
        let spans = range_spans(&b, &40u64.to_be_bytes(), &10u64.to_be_bytes());
        assert!(spans.iter().all(|s| s.is_empty()));
    }

    #[test]
    fn host_and_dynamic_leaves_included() {
        let mut art = Art::new();
        art.insert(b"ab", 1).unwrap(); // host (short)
        art.insert(&[0x61u8; 40], 2).unwrap(); // host (long, CpuRoute)
        art.insert(b"axcdef", 3).unwrap(); // device
        let b = map_art(
            &art,
            &CuartConfig {
                lut_span: 3,
                ..CuartConfig::for_tests()
            },
        );
        let got = range_query(&b, b"a", b"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz");
        assert_eq!(got.len(), 3);
        let want: Vec<(Vec<u8>, u64)> = art
            .range(b"a", b"zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")
            .map(|(k, &v)| (k, v))
            .collect();
        assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------------
// Device-side range spans (§3.2.1 on the GPU)
// ---------------------------------------------------------------------------

use crate::kernels::DeviceTree;
use cuart_gpu_sim::{BufferId, Kernel, ThreadCtx};

/// Query record layout for the range kernel: `[lo_len u8][lo 32B][hi_len
/// u8][hi 32B]`, padded to 72 bytes.
pub const RANGE_RECORD_BYTES: usize = 72;
/// Result layout: 3 leaf classes × (start u64, end u64) = 48 bytes/query.
pub const RANGE_RESULT_BYTES: usize = 48;

/// One inclusive range query per thread: binary searches each ordered leaf
/// arena and writes the `[start, end)` index pair per class — exactly the
/// two indices §3.2.1 says a range result consists of.
///
/// Operates on the *mapped snapshot*: arenas are sorted at map time, so
/// this kernel must not be used after device-side structural inserts have
/// recycled slots (use the host-side [`range_query`] then).
pub struct RangeSpanKernel {
    /// Device tree handles.
    pub tree: DeviceTree,
    /// Packed range records.
    pub queries: BufferId,
    /// `RANGE_RESULT_BYTES` per query.
    pub results: BufferId,
    /// Number of queries.
    pub count: usize,
    /// Mapped record counts per class (leaf8, leaf16, leaf32): the sorted
    /// prefix of each arena.
    pub mapped: [u64; 3],
}

const CLASSES: [LinkType; 3] = [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32];

impl Kernel for RangeSpanKernel {
    fn execute(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.count {
            return;
        }
        let rec = ctx.read_bytes(self.queries, tid * RANGE_RECORD_BYTES, RANGE_RECORD_BYTES);
        let lo_len = rec[0] as usize;
        let lo = rec[1..1 + lo_len].to_vec();
        let hi_len = rec[33] as usize;
        let hi = rec[34..34 + hi_len].to_vec();
        for (ci, class) in CLASSES.into_iter().enumerate() {
            let n = self.mapped[ci];
            let start = self.partition_dev(class, n, &lo, true, ctx);
            let end = self.partition_dev(class, n, &hi, false, ctx);
            let at = tid * RANGE_RESULT_BYTES + ci * 16;
            ctx.write_u64(self.results, at, start);
            ctx.write_u64(self.results, at + 8, end);
        }
    }
}

impl RangeSpanKernel {
    /// Device-side twin of [`partition`]: first index whose key is
    /// `>= bound` (or `> bound`), skipping deleted holes. Each probe is one
    /// dependent leaf read — a log₂(n) chain, far shorter than scanning.
    fn partition_dev(
        &self,
        class: LinkType,
        n: u64,
        bound: &[u8],
        include_equal: bool,
        ctx: &mut ThreadCtx<'_>,
    ) -> u64 {
        let arena = self.tree.dev_arena(class);
        let mut lo = 0u64;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let mut probe = mid;
            let key = loop {
                if probe >= hi {
                    break None;
                }
                let base = probe as usize * stride(class);
                let rec = ctx.read_bytes(arena, base, leaf::read_bytes(class));
                if rec[leaf::live_at(class)] == 0 {
                    probe += 1;
                    continue;
                }
                let len = rec[leaf::len_at(class)] as usize;
                break Some(rec[..len].to_vec());
            };
            ctx.compute(8);
            let goes_right = match &key {
                Some(k) => {
                    if include_equal {
                        k.as_slice() < bound
                    } else {
                        k.as_slice() <= bound
                    }
                }
                None => false,
            };
            if goes_right {
                lo = probe + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

use crate::layout::stride;

impl crate::CuartIndex {
    /// Run inclusive range queries **on the device**: one thread per
    /// query, each producing the per-class `[start, end)` index pairs of
    /// §3.2.1. Functionally identical to [`range_spans`] on the host
    /// buffers (tested); returns the kernel report alongside.
    pub fn range_spans_device(
        &self,
        dev: &cuart_gpu_sim::DeviceConfig,
        ranges: &[(Vec<u8>, Vec<u8>)],
    ) -> (Vec<Vec<LeafSpan>>, cuart_gpu_sim::KernelReport) {
        let mut mem = cuart_gpu_sim::DeviceMemory::new();
        let tree = self.upload(&mut mem);
        let mut data = vec![0u8; ranges.len() * RANGE_RECORD_BYTES];
        for (i, (lo, hi)) in ranges.iter().enumerate() {
            assert!(
                lo.len() <= 32 && hi.len() <= 32,
                "range bounds exceed 32 bytes"
            );
            let at = i * RANGE_RECORD_BYTES;
            data[at] = lo.len() as u8;
            data[at + 1..at + 1 + lo.len()].copy_from_slice(lo);
            data[at + 33] = hi.len() as u8;
            data[at + 34..at + 34 + hi.len()].copy_from_slice(hi);
        }
        let queries = mem.alloc_from("range-queries", &data, 32);
        let results = mem.alloc("range-results", ranges.len() * RANGE_RESULT_BYTES, 32);
        let kernel = RangeSpanKernel {
            tree,
            queries,
            results,
            count: ranges.len(),
            mapped: [
                self.buffers().record_count(LinkType::Leaf8) as u64,
                self.buffers().record_count(LinkType::Leaf16) as u64,
                self.buffers().record_count(LinkType::Leaf32) as u64,
            ],
        };
        let report = cuart_gpu_sim::launch(dev, &mut mem, &kernel, ranges.len());
        let spans = (0..ranges.len())
            .map(|i| {
                CLASSES
                    .into_iter()
                    .enumerate()
                    .map(|(ci, class)| {
                        let at = i * RANGE_RESULT_BYTES + ci * 16;
                        LeafSpan {
                            class,
                            start: mem.read_u64(results, at),
                            end: mem.read_u64(results, at + 8),
                        }
                    })
                    .collect()
            })
            .collect();
        (spans, report)
    }
}

#[cfg(test)]
mod device_tests {
    use super::*;
    use crate::buffers::CuartConfig;
    use crate::CuartIndex;
    use cuart_art::Art;
    use cuart_gpu_sim::devices;

    fn index(keys: &[Vec<u8>]) -> (Art<u64>, CuartIndex) {
        let mut art = Art::new();
        for (i, k) in keys.iter().enumerate() {
            art.insert(k, i as u64 + 1).unwrap();
        }
        let idx = CuartIndex::build(&art, &CuartConfig::for_tests());
        (art, idx)
    }

    #[test]
    fn device_spans_match_host_spans() {
        let keys: Vec<Vec<u8>> = (0..2000u64)
            .map(|i| (i * 5).to_be_bytes().to_vec())
            .collect();
        let (_, idx) = index(&keys);
        let ranges: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (100u64.to_be_bytes().to_vec(), 900u64.to_be_bytes().to_vec()),
            (
                0u64.to_be_bytes().to_vec(),
                10_000u64.to_be_bytes().to_vec(),
            ),
            (
                9_999u64.to_be_bytes().to_vec(),
                9_999u64.to_be_bytes().to_vec(),
            ),
        ];
        let (device, report) = idx.range_spans_device(&devices::a100(), &ranges);
        for ((lo, hi), dev_spans) in ranges.iter().zip(&device) {
            let host = range_spans(idx.buffers(), lo, hi);
            assert_eq!(dev_spans, &host, "range {lo:x?}..{hi:x?}");
        }
        // Binary search: the chain must be logarithmic, not linear.
        assert!(
            report.max_chain_steps < 150,
            "chain {} should be ~6·log2(2000)",
            report.max_chain_steps
        );
    }

    #[test]
    fn device_spans_across_leaf_classes() {
        let keys = vec![
            vec![1u8, 1, 1, 1],
            vec![2u8; 12],
            vec![3u8; 24],
            vec![4u8, 4, 4, 4],
        ];
        let (art, idx) = index(&keys);
        let lo = vec![0u8];
        let hi = vec![0xFFu8; 30];
        let (device, _) = idx.range_spans_device(&devices::gtx1070(), &[(lo.clone(), hi.clone())]);
        let total: u64 = device[0].iter().map(|s| s.len()).sum();
        assert_eq!(total as usize, art.len());
        // Materialising the device spans gives the same rows as the host.
        let host_rows = range_query(idx.buffers(), &lo, &hi);
        let dev_rows: Vec<(Vec<u8>, u64)> = {
            let mut rows: Vec<(Vec<u8>, u64)> = device[0]
                .iter()
                .flat_map(|s| materialize_span(idx.buffers(), s))
                .collect();
            rows.sort();
            rows
        };
        assert_eq!(dev_rows, host_rows);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let keys: Vec<Vec<u8>> = (0..100u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let (_, idx) = index(&keys);
        let (device, _) = idx.range_spans_device(
            &devices::rtx3090(),
            &[
                (
                    5_000u64.to_be_bytes().to_vec(),
                    6_000u64.to_be_bytes().to_vec(),
                ),
                (50u64.to_be_bytes().to_vec(), 10u64.to_be_bytes().to_vec()),
            ],
        );
        assert!(device[0].iter().all(|s| s.is_empty()));
        assert!(device[1].iter().all(|s| s.is_empty() || s.start >= s.end));
    }
}
