//! Key-space shard routing for multi-device serving.
//!
//! The §3.3 compacted root already orders the key space by its leading
//! bytes: the first `lut_span` bytes of a key, read big-endian, index the
//! dense root LUT. A sharded serving layer wants the *same* order — if
//! shards own contiguous ranges of the LUT prefix, each shard's working
//! set is a contiguous slice of the root table and of the ordered leaf
//! arenas beneath it, so the §3.1 sorted-batch locality win survives the
//! split.
//!
//! [`ShardRouter`] is that partition: the leading key bytes (zero-padded,
//! big-endian) become a 64-bit fraction of the key space, and shard `i`
//! owns the `i`-th of `n` equal slices of it. The map is
//!
//! * **total** — every key (including keys shorter than the prefix, which
//!   the LUT routes host-side) lands on exactly one shard, so last-write-
//!   wins update semantics (§3.4) hold per key across the whole fleet;
//! * **monotone** — `a <= b` (lexicographic, zero-padded) implies
//!   `shard_of(a) <= shard_of(b)`, i.e. shards are contiguous key ranges
//!   aligned with the LUT prefix order;
//! * **stateless** — routing needs no tree access, only the key bytes, so
//!   a router can split batches before any device is touched.

/// Number of leading key bytes folded into the routing fraction. Eight
/// bytes (one `u64`) always covers the root LUT span (≤ 3 in practice),
/// so routing never splits a LUT slot across shards.
pub const ROUTE_PREFIX_BYTES: usize = 8;

/// Stateless key-space partitioner: `n` shards over the lexicographic
/// order of the leading key bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> ShardRouter {
        ShardRouter {
            shards: shards.max(1),
        }
    }

    /// Number of shards this router partitions the key space into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key's position in the key space as a 64-bit big-endian
    /// fraction: the first [`ROUTE_PREFIX_BYTES`] bytes, zero-padded on
    /// the right. Zero-padding (rather than truncation alone) keeps the
    /// fraction order identical to lexicographic key order for keys
    /// shorter than the prefix.
    pub fn prefix_fraction(key: &[u8]) -> u64 {
        let mut bytes = [0u8; ROUTE_PREFIX_BYTES];
        let n = key.len().min(ROUTE_PREFIX_BYTES);
        bytes[..n].copy_from_slice(&key[..n]);
        u64::from_be_bytes(bytes)
    }

    /// The shard owning `key`: the fraction's slice index out of
    /// `shards` equal slices. Multiplying in `u128` keeps the map exact
    /// (no rounding seam between shards) and monotone.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        if self.shards == 1 {
            return 0;
        }
        let frac = Self::prefix_fraction(key) as u128;
        ((frac * self.shards as u128) >> 64) as usize
    }

    /// Split a batch into per-shard index lists, preserving arrival order
    /// within each shard (the split is stable). `lists[s]` holds the
    /// positions in `keys` routed to shard `s`; concatenating the lists
    /// in shard order yields a permutation of `0..keys.len()`.
    pub fn split_indices(&self, keys: &[Vec<u8>]) -> Vec<Vec<usize>> {
        let mut lists: Vec<Vec<usize>> = vec![Vec::new(); self.shards];
        for (i, k) in keys.iter().enumerate() {
            lists[self.shard_of(k)].push(i);
        }
        lists
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn every_key_maps_to_exactly_one_shard() {
        let r = ShardRouter::new(4);
        for i in 0..4096u64 {
            let s = r.shard_of(&key(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            assert!(s < 4);
        }
        // Short and empty keys route too (they live host-side in the
        // index, but the router must still own them somewhere).
        assert_eq!(r.shard_of(&[]), 0);
        assert!(r.shard_of(&[0xff]) < 4);
    }

    #[test]
    fn routing_is_monotone_in_key_order() {
        let r = ShardRouter::new(5);
        let mut keys: Vec<Vec<u8>> = (0..512u64)
            .map(|i| key(i.wrapping_mul(0x5851_f42d_4c95_7f2d)))
            .collect();
        keys.push(vec![]);
        keys.push(vec![0x80]);
        keys.push(vec![0x80, 0x00, 0x01]);
        keys.sort();
        let shards: Vec<usize> = keys.iter().map(|k| r.shard_of(k)).collect();
        assert!(
            shards.windows(2).all(|w| w[0] <= w[1]),
            "shard ids must be non-decreasing over sorted keys"
        );
    }

    #[test]
    fn uniform_prefixes_reach_every_shard_roughly_evenly() {
        let n = 8usize;
        let r = ShardRouter::new(n);
        let mut counts = vec![0usize; n];
        let total = 64 * 1024u64;
        for i in 0..total {
            // Uniform top byte ⇒ uniform fraction ⇒ near-even split.
            counts[r.shard_of(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_be_bytes())] += 1;
        }
        let ideal = total as usize / n;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "shard {s} holds {c} of {total} uniform keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn split_is_a_stable_permutation() {
        let r = ShardRouter::new(3);
        let keys: Vec<Vec<u8>> = (0..257u64)
            .map(|i| key(i.wrapping_mul(0xbf58_476d_1ce4_e5b9)))
            .collect();
        let lists = r.split_indices(&keys);
        let mut seen = vec![false; keys.len()];
        for (s, list) in lists.iter().enumerate() {
            assert!(
                list.windows(2).all(|w| w[0] < w[1]),
                "arrival order must be preserved within shard {s}"
            );
            for &i in list {
                assert!(!seen[i], "index {i} routed twice");
                seen[i] = true;
                assert_eq!(r.shard_of(&keys[i]), s);
            }
        }
        assert!(seen.iter().all(|&b| b), "every index routed once");
    }

    #[test]
    fn lut_slots_never_straddle_shards() {
        // Keys sharing the same ROUTE_PREFIX_BYTES-byte prefix (hence the
        // same LUT slot for any span ≤ 8) always land on the same shard.
        let r = ShardRouter::new(7);
        let prefix = [0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        let base = r.shard_of(&prefix);
        for tail in 0..64u8 {
            let mut k = prefix.to_vec();
            k.push(tail);
            assert_eq!(r.shard_of(&k), base);
        }
    }
}
