//! Typed errors and the batch retry policy.
//!
//! The paper's device pipeline assumes every transfer, launch and arena
//! allocation succeeds; a production engine cannot. Every fallible device
//! operation in this crate surfaces a [`CuartError`] instead of panicking,
//! and [`CuartSession`](crate::CuartSession) drives a bounded
//! [`RetryPolicy`] (exponential backoff with deterministic jitter) before
//! degrading a batch to the CPU path.

use crate::link::LinkType;
use cuart_gpu_sim::faults::{DeviceFault, FaultSite};
use std::fmt;

/// Every failure a CuART device operation can report.
#[derive(Debug)]
pub enum CuartError {
    /// A device allocation failed: the device is out of memory.
    DeviceOom {
        /// Global injector op index (or 0 when reported by a real device).
        op_index: u64,
    },
    /// A host↔device transfer failed before completing.
    TransferFailed {
        /// Global injector op index of the failed transfer.
        op_index: u64,
    },
    /// A kernel launch aborted before any device write landed.
    KernelAborted {
        /// Global injector op index of the aborted launch.
        op_index: u64,
    },
    /// A per-type device arena has no room for another node/leaf.
    ArenaFull {
        /// The arena's node/leaf type.
        link_type: LinkType,
    },
    /// The requested node/leaf type has no device arena at all
    /// (host leaves live in host memory by definition).
    NoDeviceArena {
        /// The offending type.
        link_type: LinkType,
    },
    /// The update/insert claim hash table could not absorb the batch even
    /// after sub-batch splitting.
    HashTableFull {
        /// Configured slot count of the table.
        table_slots: usize,
    },
    /// A snapshot file failed validation (bad magic/version, truncated
    /// section, CRC mismatch, or inconsistent content).
    SnapshotCorrupt {
        /// Human-readable description of what failed to validate.
        detail: String,
    },
    /// A device operation kept failing after exhausting the retry budget.
    RetriesExhausted {
        /// Attempts made (initial try + retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<CuartError>,
    },
    /// A key batch failed to pack into its device staging buffer.
    KeyPack {
        /// What the packer rejected.
        detail: String,
    },
    /// An engine invariant was violated — a bug surfaced as an error
    /// instead of a panic, so a serving process can shed the batch and
    /// keep running.
    Internal {
        /// Which invariant broke.
        detail: String,
    },
    /// An underlying I/O error (snapshot read/write).
    Io(std::io::Error),
}

impl fmt::Display for CuartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CuartError::DeviceOom { op_index } => {
                write!(f, "device out of memory (op #{op_index})")
            }
            CuartError::TransferFailed { op_index } => {
                write!(f, "host-device transfer failed (op #{op_index})")
            }
            CuartError::KernelAborted { op_index } => {
                write!(f, "kernel launch aborted (op #{op_index})")
            }
            CuartError::ArenaFull { link_type } => {
                write!(f, "device arena full for {link_type:?}")
            }
            CuartError::NoDeviceArena { link_type } => {
                write!(f, "{link_type:?} has no device arena")
            }
            CuartError::HashTableFull { table_slots } => {
                write!(f, "claim hash table full ({table_slots} slots)")
            }
            CuartError::SnapshotCorrupt { detail } => {
                write!(f, "snapshot corrupt: {detail}")
            }
            CuartError::RetriesExhausted { attempts, last } => {
                write!(f, "device op failed after {attempts} attempts: {last}")
            }
            CuartError::KeyPack { detail } => write!(f, "key batch pack failed: {detail}"),
            CuartError::Internal { detail } => write!(f, "internal invariant violated: {detail}"),
            CuartError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CuartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CuartError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            CuartError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CuartError {
    fn from(e: std::io::Error) -> Self {
        CuartError::Io(e)
    }
}

impl From<cuart_gpu_sim::batch::PackError> for CuartError {
    fn from(e: cuart_gpu_sim::batch::PackError) -> Self {
        CuartError::KeyPack {
            detail: e.to_string(),
        }
    }
}

impl From<DeviceFault> for CuartError {
    fn from(fault: DeviceFault) -> Self {
        match fault.site {
            FaultSite::Transfer => CuartError::TransferFailed {
                op_index: fault.op_index,
            },
            FaultSite::Kernel => CuartError::KernelAborted {
                op_index: fault.op_index,
            },
            FaultSite::Alloc => CuartError::DeviceOom {
                op_index: fault.op_index,
            },
        }
    }
}

impl CuartError {
    /// Shorthand for a [`CuartError::SnapshotCorrupt`].
    pub fn corrupt(detail: impl Into<String>) -> Self {
        CuartError::SnapshotCorrupt {
            detail: detail.into(),
        }
    }

    /// `true` when retrying the same operation might succeed — injected
    /// device faults are transient; structural errors are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            CuartError::DeviceOom { .. }
                | CuartError::TransferFailed { .. }
                | CuartError::KernelAborted { .. }
        )
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// The backoff is *modeled*, not slept: each retry charges
/// `backoff_ns(attempt)` to the batch's kernel-time account, the same way
/// the simulator charges PCIe latency. This keeps tests fast and the
/// timing model honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum attempts per device operation (initial try included).
    /// Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry (ns).
    pub base_backoff_ns: u64,
    /// Backoff ceiling (ns).
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ns: 50_000,   // 50 µs
            max_backoff_ns: 5_000_000, // 5 ms
        }
    }
}

impl RetryPolicy {
    /// Modeled backoff before retry number `retry` (1-based), with a
    /// deterministic jitter derived from `jitter_seed` so two sessions
    /// with different seeds do not retry in lockstep.
    pub fn backoff_ns(&self, retry: u32, jitter_seed: u64) -> u64 {
        let exp = retry.saturating_sub(1).min(20);
        let base = self
            .base_backoff_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ns);
        // Up to +25% jitter, deterministic in (seed, retry).
        let mut z = jitter_seed ^ u64::from(retry).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 31;
        base + (z % (base / 4 + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = CuartError::ArenaFull {
            link_type: LinkType::Leaf8,
        };
        assert!(e.to_string().contains("Leaf8"));
        let e = CuartError::NoDeviceArena {
            link_type: LinkType::HostLeaf,
        };
        assert!(e.to_string().contains("no device arena"));
    }

    #[test]
    fn device_fault_maps_by_site() {
        let f = DeviceFault {
            site: FaultSite::Transfer,
            op_index: 9,
        };
        assert!(matches!(
            CuartError::from(f),
            CuartError::TransferFailed { op_index: 9 }
        ));
        let f = DeviceFault {
            site: FaultSite::Kernel,
            op_index: 2,
        };
        assert!(matches!(
            CuartError::from(f),
            CuartError::KernelAborted { op_index: 2 }
        ));
        let f = DeviceFault {
            site: FaultSite::Alloc,
            op_index: 5,
        };
        assert!(matches!(
            CuartError::from(f),
            CuartError::DeviceOom { op_index: 5 }
        ));
    }

    #[test]
    fn transience_split() {
        assert!(CuartError::TransferFailed { op_index: 0 }.is_transient());
        assert!(!CuartError::corrupt("x").is_transient());
        assert!(!CuartError::HashTableFull { table_slots: 8 }.is_transient());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        let b1 = p.backoff_ns(1, 0);
        let b2 = p.backoff_ns(2, 0);
        let b3 = p.backoff_ns(3, 0);
        assert!(b1 >= p.base_backoff_ns);
        assert!(b2 > b1 / 2 && b2 >= p.base_backoff_ns * 2);
        assert!(b3 >= p.base_backoff_ns * 4);
        // Far past the cap, backoff stays bounded by cap + 25% jitter.
        let huge = p.backoff_ns(30, 7);
        assert!(huge <= p.max_backoff_ns + p.max_backoff_ns / 4);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(2, 11), p.backoff_ns(2, 11));
        assert_ne!(p.backoff_ns(2, 11), p.backoff_ns(2, 12));
    }

    #[test]
    fn retries_exhausted_chains_source() {
        let e = CuartError::RetriesExhausted {
            attempts: 4,
            last: Box::new(CuartError::KernelAborted { op_index: 3 }),
        };
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("4 attempts"));
    }
}
