//! The two-stage device-side batch update/delete engine (§3.4, Figure 6).
//!
//! Updates arrive in batches over a one-dimensional grid, so **update
//! priority increases with thread id**. Duplicate writes to the same key
//! are eliminated with an atomic hash table (Farrell's simple GPU hash
//! table, linear probing):
//!
//! * **Stage 1** — every thread traverses the tree to its key's leaf slot
//!   ("returning the memory location instead of the actual value"), then
//!   publishes `(location → max thread index)` into the hash table with
//!   `atomicCAS` + `atomicMax`.
//! * **grid-wide sync** —
//! * **Stage 2** — every thread re-reads the winning index for its
//!   location; only the winner performs the global-memory write.
//!
//! Deletions are the same kernel with the [`DELETE`] sentinel value
//! (§3.3/§3.4: "signaling a deletion through setting a nil pointer"): the
//! winner clears the leaf, removes the parent's reference to it, and pushes
//! the leaf index onto a free list for future inserts. The tree structure
//! is deliberately **not** collapsed — that is what makes device-side
//! deletion fast.
//!
//! The hash-table size is a parameter: §4.5 shows throughput dropping once
//! batches are large enough to fill the 1 Mi-slot table (Figure 15); the
//! `figures` harness reproduces that droop with this engine.

use crate::error::CuartError;
use crate::kernels::{device_traverse, slot_ref, DevHit, DeviceTree};
use crate::layout::stride;
use crate::link::LinkType;
use cuart_gpu_sim::batch::KeyBatchLayout;
use cuart_gpu_sim::{BufferId, DeviceConfig, PhasedKernel, ThreadCtx};

/// Sentinel value meaning "delete this key" (the nil pointer of §3.4).
pub const DELETE: u64 = u64::MAX;

/// Default hash-table capacity used in the paper's evaluation (§4.5:
/// "we used a hash table size of 1Mi entries").
pub const DEFAULT_TABLE_SLOTS: usize = 1 << 20;

/// Per-operation status written to the results buffer.
pub mod status {
    /// Key not found; nothing written.
    pub const MISS: u64 = 0;
    /// This thread won and performed the write/delete.
    pub const APPLIED: u64 = 1;
    /// A higher-priority thread updated the same key.
    pub const SUPERSEDED: u64 = 2;
    /// The claim hash table had no slot left for this op's location: the
    /// op performed **no** device write and must be re-submitted (the
    /// session re-runs exhausted ops as a smaller sub-batch). Never
    /// surfaces through `CuartSession::update_batch`.
    pub const EXHAUSTED: u64 = 3;
}

/// Scratch-location sentinel marking a thread whose hash-table claim was
/// rejected because every slot was taken (stage 2 reports
/// [`status::EXHAUSTED`] for it). Distinct from `0`, which means "miss".
pub(crate) const LOC_EXHAUSTED: u64 = u64::MAX;

/// Free-list device buffer layout: `[count u64][leaf indices ...]`.
#[derive(Debug, Clone, Copy)]
pub struct FreeLists {
    /// Free list for leaf8 records.
    pub leaf8: BufferId,
    /// Free list for leaf16 records.
    pub leaf16: BufferId,
    /// Free list for leaf32 records.
    pub leaf32: BufferId,
}

impl FreeLists {
    /// The free list for a leaf class; non-leaf types have none and get a
    /// typed [`CuartError::NoDeviceArena`].
    pub fn of(&self, ty: LinkType) -> Result<BufferId, CuartError> {
        match ty {
            LinkType::Leaf8 => Ok(self.leaf8),
            LinkType::Leaf16 => Ok(self.leaf16),
            LinkType::Leaf32 => Ok(self.leaf32),
            _ => Err(CuartError::NoDeviceArena { link_type: ty }),
        }
    }

    /// Infallible accessor for kernel-internal sites where `ty` is already
    /// known to be a device leaf class.
    pub(crate) fn dev_of(&self, ty: LinkType) -> BufferId {
        self.of(ty).expect("device leaf classes have free lists") // cuart-allow: panic-path device leaf classes are created with free lists at build time
    }
}

/// The two-phase update kernel.
pub struct CuartUpdateKernel {
    /// Device tree handles.
    pub tree: DeviceTree,
    /// Packed update keys.
    pub queries: BufferId,
    /// Query record layout.
    pub layout: KeyBatchLayout,
    /// One u64 new value per operation ([`DELETE`] = delete).
    pub values: BufferId,
    /// One u64 status per operation (see [`status`]).
    pub results: BufferId,
    /// Number of operations.
    pub count: usize,
    /// Hash-table key slots (`table_slots` × u64), zero-initialised.
    pub hash_keys: BufferId,
    /// Hash-table winner slots (`table_slots` × u64, holding thread id + 1).
    pub hash_vals: BufferId,
    /// Number of hash-table slots.
    pub table_slots: usize,
    /// Stage-1 scratch: resolved value-slot location per thread.
    pub scratch_loc: BufferId,
    /// Stage-1 scratch: parent link slot per thread.
    pub scratch_parent: BufferId,
    /// Stage-1 scratch: leaf link per thread.
    pub scratch_leaf: BufferId,
    /// Free lists for deleted leaves.
    pub free_lists: FreeLists,
}

fn hash_of(location: u64, slots: usize) -> usize {
    (location.wrapping_mul(0x9E3779B97F4A7C15) >> 16) as usize % slots
}

impl PhasedKernel for CuartUpdateKernel {
    fn phases(&self) -> usize {
        2
    }

    fn execute_phase(&self, phase: usize, tid: usize, ctx: &mut ThreadCtx<'_>) {
        if tid >= self.count {
            return;
        }
        if phase == 0 {
            self.stage1(tid, ctx);
        } else {
            self.stage2(tid, ctx);
        }
    }
}

impl CuartUpdateKernel {
    /// Stage 1: resolve the leaf location and publish the claim.
    fn stage1(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        let rec_off = self.layout.offset(tid);
        let rec = ctx.read_bytes(self.queries, rec_off, self.layout.record_bytes());
        let key_len = rec[0] as usize;
        let key = &rec[1..1 + key_len];

        let (location, parent, leaf_link) = match device_traverse(&self.tree, key, ctx) {
            DevHit::Found {
                value_slot,
                parent_slot,
                leaf_link,
                ..
            } => (value_slot, parent_slot, leaf_link.0),
            // Host-leaf links cannot be updated on-device; treated as a
            // miss here (the host pipeline routes such ops to the CPU).
            DevHit::Miss { .. } | DevHit::Host(_) => (0, 0, 0),
        };
        ctx.write_u64(self.scratch_loc, tid * 8, location);
        ctx.write_u64(self.scratch_parent, tid * 8, parent);
        ctx.write_u64(self.scratch_leaf, tid * 8, leaf_link);
        if location == 0 {
            return;
        }
        // Linear-probing insert: claim a slot for `location`, then raise
        // the winning thread index (stored as tid + 1 so 0 = empty).
        let mut h = hash_of(location, self.table_slots);
        for _probe in 0..self.table_slots {
            let prev = ctx.atomic_cas_u64(self.hash_keys, h * 8, 0, location);
            if prev == 0 || prev == location {
                ctx.atomic_max_u64(self.hash_vals, h * 8, (tid + 1) as u64);
                return;
            }
            h = (h + 1) % self.table_slots;
        }
        // Every slot holds a different location: this op cannot claim.
        // Mark it exhausted — no device write happened for it, so the
        // session can safely re-run it in a smaller sub-batch.
        ctx.write_u64(self.scratch_loc, tid * 8, LOC_EXHAUSTED);
    }

    /// Stage 2: the winning thread applies the write (or delete).
    fn stage2(&self, tid: usize, ctx: &mut ThreadCtx<'_>) {
        let location = ctx.read_u64(self.scratch_loc, tid * 8);
        if location == 0 {
            ctx.write_u64(self.results, tid * 8, status::MISS);
            return;
        }
        if location == LOC_EXHAUSTED {
            ctx.write_u64(self.results, tid * 8, status::EXHAUSTED);
            return;
        }
        // Probe to our location's slot and read the winner.
        let mut h = hash_of(location, self.table_slots);
        let winner = loop {
            let k = ctx.read_u64(self.hash_keys, h * 8);
            if k == location {
                break ctx.read_u64(self.hash_vals, h * 8);
            }
            debug_assert_ne!(k, 0, "location vanished from hash table");
            h = (h + 1) % self.table_slots;
        };
        if winner != (tid + 1) as u64 {
            ctx.write_u64(self.results, tid * 8, status::SUPERSEDED);
            return;
        }
        let value = ctx.read_u64(self.values, tid * 8);
        let (tag, value_off) = slot_ref::decode(location);
        let buf = slot_ref::buffer(&self.tree, tag);
        if value == DELETE {
            self.delete_leaf(tid, value_off, ctx);
        } else {
            ctx.write_u64(buf, value_off, value);
        }
        ctx.write_u64(self.results, tid * 8, status::APPLIED);
    }

    /// Delete: clear the leaf record, null the parent's link, free the slot.
    fn delete_leaf(&self, tid: usize, _value_off: usize, ctx: &mut ThreadCtx<'_>) {
        let leaf_link = crate::link::NodeLink(ctx.read_u64(self.scratch_leaf, tid * 8));
        let parent = ctx.read_u64(self.scratch_parent, tid * 8);
        let ty = leaf_link.link_type().expect("leaf link"); // cuart-allow: panic-path link checked leaf-tagged before entering this path
                                                            // Clear the leaf contents (§3.3: "its contents are cleared").
        if ty.is_device_leaf() {
            let base = leaf_link.index() as usize * stride(ty);
            ctx.write_bytes(self.tree.dev_arena(ty), base, &vec![0u8; stride(ty)]);
            // Push the slot onto the free list for future inserts.
            let fl = self.free_lists.dev_of(ty);
            let pos = ctx.atomic_add_u64(fl, 0, 1);
            ctx.write_u64(fl, 8 + pos as usize * 8, leaf_link.index());
        } else if ty == LinkType::DynLeaf {
            // Dynamic leaves are just unlinked (no slot reuse).
        }
        // Remove the reference from the last visited node / LUT / root.
        let (ptag, poff) = slot_ref::decode(parent);
        ctx.write_u64(slot_ref::buffer(&self.tree, ptag), poff, 0);
    }
}

/// Host-side time to clear the hash table between batches (a device-side
/// memset running at peak bandwidth).
pub fn hash_clear_ns(dev: &DeviceConfig, table_slots: usize) -> f64 {
    let bytes = (table_slots * 16) as f64;
    bytes / dev.mem.peak_bandwidth_gbps() + 2_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CuartIndex;
    use crate::buffers::CuartConfig;
    use cuart_art::Art;
    use cuart_gpu_sim::devices;

    fn index(n: u64) -> CuartIndex {
        let mut art = Art::new();
        for i in 0..n {
            art.insert(&(i * 3).to_be_bytes(), i).unwrap();
        }
        CuartIndex::build(&art, &CuartConfig::for_tests())
    }

    #[test]
    fn updates_apply_and_are_visible_to_lookups() {
        let idx = index(500);
        let dev = devices::rtx3090();
        let mut session = idx.device_session(&dev);
        let ops: Vec<(Vec<u8>, u64)> = (0..100u64)
            .map(|i| ((i * 3).to_be_bytes().to_vec(), 7_000 + i))
            .collect();
        let (statuses, _) = session.update_batch(&ops).unwrap();
        assert!(statuses.iter().all(|&s| s == status::APPLIED));
        let keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, 7_000 + i as u64);
        }
    }

    #[test]
    fn duplicate_keys_highest_thread_wins() {
        let idx = index(100);
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let key = (30u64).to_be_bytes().to_vec();
        // Three conflicting updates to the same key in one batch.
        let ops = vec![(key.clone(), 111), (key.clone(), 222), (key.clone(), 333)];
        let (statuses, report) = session.update_batch(&ops).unwrap();
        assert_eq!(statuses[0], status::SUPERSEDED);
        assert_eq!(statuses[1], status::SUPERSEDED);
        assert_eq!(statuses[2], status::APPLIED);
        let (results, _) = session.lookup_batch(&[key]).unwrap();
        assert_eq!(results[0], 333, "highest thread id must win (§3.4)");
        assert!(
            report.atomic_conflicts > 0,
            "conflicting claims must serialize"
        );
    }

    #[test]
    fn missing_keys_report_miss() {
        let idx = index(10);
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let ops = vec![(vec![0xEEu8; 8], 1u64)];
        let (statuses, _) = session.update_batch(&ops).unwrap();
        assert_eq!(statuses[0], status::MISS);
    }

    #[test]
    fn delete_clears_leaf_and_frees_slot() {
        let idx = index(100);
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let key = (60u64).to_be_bytes().to_vec();
        let (statuses, _) = session.update_batch(&[(key.clone(), DELETE)]).unwrap();
        assert_eq!(statuses[0], status::APPLIED);
        // Deleted key now misses.
        let (results, _) = session.lookup_batch(std::slice::from_ref(&key)).unwrap();
        assert_eq!(results[0], cuart_gpu_sim::batch::NOT_FOUND);
        // Other keys survive.
        let (alive, _) = session
            .lookup_batch(&[(63u64).to_be_bytes().to_vec()])
            .unwrap();
        assert_eq!(alive[0], 21);
        // The slot landed on the free list.
        assert_eq!(session.free_count(LinkType::Leaf8), 1);
    }

    #[test]
    fn delete_then_update_same_key_in_one_batch() {
        // The delete (lower tid) is superseded by the update (higher tid).
        let idx = index(50);
        let dev = devices::a100();
        let mut session = idx.device_session(&dev);
        let key = (30u64).to_be_bytes().to_vec();
        let (statuses, _) = session
            .update_batch(&[(key.clone(), DELETE), (key.clone(), 42)])
            .unwrap();
        assert_eq!(statuses, vec![status::SUPERSEDED, status::APPLIED]);
        let (results, _) = session.lookup_batch(&[key]).unwrap();
        assert_eq!(results[0], 42);
    }

    #[test]
    fn small_table_survives_collisions() {
        // Table barely larger than the batch: long probe chains but correct.
        let idx = index(300);
        let dev = devices::a100();
        let mut session = idx.device_session_with_table(&dev, 512);
        let ops: Vec<(Vec<u8>, u64)> = (0..300u64)
            .map(|i| ((i * 3).to_be_bytes().to_vec(), i + 1))
            .collect();
        let (statuses, _) = session.update_batch(&ops).unwrap();
        assert!(statuses.iter().all(|&s| s == status::APPLIED));
        let keys: Vec<Vec<u8>> = ops.iter().map(|(k, _)| k.clone()).collect();
        let (results, _) = session.lookup_batch(&keys).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, i as u64 + 1);
        }
    }

    #[test]
    fn hash_clear_cost_scales_with_table() {
        let dev = devices::a100();
        assert!(hash_clear_ns(&dev, 1 << 20) > hash_clear_ns(&dev, 1 << 10));
    }
}
