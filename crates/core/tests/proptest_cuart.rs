//! Property tests for the CuART buffers: mapping agreement, LUT
//! invariants, session ops vs a reference model (mixed inserts, updates,
//! deletes over many batches).

use cuart::insert::insert_status;
use cuart::link::{LinkType, NodeLink};
use cuart::mapper::lut_slot;
use cuart::update::status;
use cuart::{CuartConfig, CuartIndex, DELETE};
use cuart_art::Art;
use cuart_gpu_sim::batch::NOT_FOUND;
use cuart_gpu_sim::devices;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn art_of(keys: &[Vec<u8>]) -> Art<u64> {
    let mut art = Art::new();
    for (i, k) in keys.iter().enumerate() {
        art.insert(k, i as u64 + 1).unwrap();
    }
    art
}

proptest! {
    #[test]
    fn cpu_engine_agrees_with_art(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 10), 1..120),
        span in 0usize..3,
    ) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let art = art_of(&keys);
        let cfg = CuartConfig { lut_span: span, ..CuartConfig::for_tests() };
        let idx = CuartIndex::build(&art, &cfg);
        for k in &keys {
            prop_assert_eq!(idx.lookup_cpu(k), art.get(k).copied(), "span {}", span);
        }
    }

    #[test]
    fn lut_entries_are_sound(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 5), 1..100)
    ) {
        // Every stored key's LUT slot must be non-null; every null slot
        // must mean "no key with that prefix".
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let idx = CuartIndex::build(&art_of(&keys), &CuartConfig::for_tests());
        let b = idx.buffers();
        for k in &keys {
            let slot = lut_slot(k, 2);
            prop_assert!(!NodeLink(b.lut[slot]).is_null(), "key {:x?} has null LUT slot", k);
        }
        let prefixes: std::collections::HashSet<usize> =
            keys.iter().map(|k| lut_slot(k, 2)).collect();
        for (slot, &entry) in b.lut.iter().enumerate() {
            if entry != 0 {
                // Some stored key must own this prefix.
                prop_assert!(prefixes.contains(&slot), "orphan LUT slot {slot:#x}");
            }
        }
    }

    #[test]
    fn leaf_arenas_are_sorted_per_class(
        keys in prop::collection::hash_set(prop::collection::vec(any::<u8>(), 7), 2..150)
    ) {
        let keys: Vec<Vec<u8>> = keys.into_iter().collect();
        let idx = CuartIndex::build(&art_of(&keys), &CuartConfig::for_tests());
        let b = idx.buffers();
        for class in [LinkType::Leaf8, LinkType::Leaf16, LinkType::Leaf32] {
            let mut prev: Option<Vec<u8>> = None;
            for i in 0..b.record_count(class) {
                let rec = b.record(class, i as u64);
                let len = rec[cuart::layout::leaf::len_at(class)] as usize;
                let key = rec[..len].to_vec();
                if let Some(p) = &prev {
                    prop_assert!(p < &key, "arena {class:?} out of order at {i}");
                }
                prev = Some(key);
            }
        }
    }

    #[test]
    fn session_mixed_ops_match_model(
        ops_spec in prop::collection::vec(
            (0u8..80, prop::option::of(1u64..1_000_000), any::<bool>()),
            1..100,
        ),
    ) {
        // 40 pre-loaded keys + 40 fresh candidates. Each op: (key id,
        // Some(v)=write | None=delete, insert_or_update flag).
        let preloaded: Vec<Vec<u8>> = (0..40u64).map(|i| (i * 2).to_be_bytes().to_vec()).collect();
        let fresh: Vec<Vec<u8>> = (0..40u64)
            .map(|i| (0xF000_0000_0000_0000u64 | i).to_be_bytes().to_vec())
            .collect();
        let art = art_of(&preloaded);
        let idx = CuartIndex::build(&art, &CuartConfig::for_tests());
        let dev = devices::a100();
        let mut session = idx.device_session_with_table(&dev, 1 << 12);
        let mut model: BTreeMap<Vec<u8>, u64> =
            preloaded.iter().enumerate().map(|(i, k)| (k.clone(), i as u64 + 1)).collect();

        for (kid, val, is_insert) in &ops_spec {
            let key = if *kid < 40 {
                preloaded[*kid as usize].clone()
            } else {
                fresh[*kid as usize - 40].clone()
            };
            match (val, is_insert) {
                (Some(v), true) => {
                    let (st, _) = session.insert_batch(&[(key.clone(), *v)]).unwrap();
                    prop_assert_ne!(st[0], insert_status::REJECTED);
                    model.insert(key, *v);
                }
                (Some(v), false) => {
                    let (st, _) = session.update_batch(&[(key.clone(), *v)]).unwrap();
                    if let std::collections::btree_map::Entry::Occupied(mut e) = model.entry(key) {
                        prop_assert_eq!(st[0], status::APPLIED);
                        e.insert(*v);
                    } else {
                        prop_assert_eq!(st[0], status::MISS);
                    }
                }
                (None, _) => {
                    let (st, _) = session.update_batch(&[(key.clone(), DELETE)]).unwrap();
                    if model.remove(&key).is_some() {
                        prop_assert_eq!(st[0], status::APPLIED);
                    } else {
                        prop_assert_eq!(st[0], status::MISS);
                    }
                }
            }
        }
        // Final state agrees for every key ever touched.
        let mut all = preloaded.clone();
        all.extend(fresh);
        let (results, _) = session.lookup_batch(&all).unwrap();
        for (k, got) in all.iter().zip(&results) {
            prop_assert_eq!(*got, model.get(k).copied().unwrap_or(NOT_FOUND), "key {:x?}", k);
        }
    }
}
