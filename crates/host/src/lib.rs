//! # cuart-host — the end-to-end query engine
//!
//! The paper measures throughput "in an end-to-end manner, including CPU
//! overhead for processing the lookups afterwards, PCIe transfer times and
//! pipelining" (§4.1). This crate is that measurement harness:
//!
//! * [`gpu_runner`] — composes per-batch kernel times (sampled from the
//!   `cuart-gpu-sim` simulator) with the PCIe and multi-stream pipeline
//!   models into end-to-end throughput, for CuART and both GRT variants
//!   (CUDA / OpenCL, §4.1),
//! * [`cpu_runner`] — *real, measured* multi-threaded CPU lookups over the
//!   classic ART and over the CuART layout (Figure 7), plus mutex-guarded
//!   atomic CPU updates (Figure 17),
//! * [`hybrid`] — the CPU/GPU split of §3.2.3 option 1: long keys answered
//!   by host threads while the GPU serves the rest (Figures 13/14),
//! * [`oversized`] — the §5.1 out-of-core extension: indexes larger than
//!   device memory, partitioned by key range with access-driven migration
//!   between device and host,
//! * [`scheduler`] — the concurrent serving layer: N producer threads
//!   submit point ops through an MPSC queue; an executor thread coalesces
//!   them into adaptive batches (size target or deadline), sorts each
//!   batch for locality and inverts the permutation on return,
//! * [`sharded`] — the multi-device scale-out layer: one scheduler per
//!   simulated device, key space partitioned by the §3.3 LUT prefix, with
//!   concurrent split/dispatch/merge routing and per-shard overload
//!   isolation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu_runner;
pub mod gpu_runner;
pub mod hybrid;
pub mod oversized;
pub mod scheduler;
pub mod sharded;

pub use gpu_runner::{E2eReport, Engine, RunConfig};
pub use hybrid::HybridReport;
pub use scheduler::{
    RangeRows, SchedError, Scheduler, SchedulerClient, SchedulerConfig, SchedulerStats,
};
pub use sharded::{ShardStats, ShardedClient, ShardedScheduler, ShardedStats};
